package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"sprofile"
	"sprofile/internal/server"
)

func newClient(t *testing.T, capacity int) *Client {
	t.Helper()
	s, err := server.New(server.Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesURL(t *testing.T) {
	if _, err := New("not a url"); err == nil {
		t.Fatal("New accepted a garbage URL")
	}
	if _, err := New("/just/a/path"); err == nil {
		t.Fatal("New accepted a URL without a host")
	}
}

func TestIngestAndSingleStats(t *testing.T) {
	c := newClient(t, 16)
	ctx := context.Background()

	applied, err := c.SendEvents(ctx, []Event{
		{Object: "a", Action: ActionAdd},
		{Object: "a", Action: ActionAdd},
		{Object: "b", Action: ActionAdd},
	})
	if err != nil || applied != 3 {
		t.Fatalf("SendEvents = (%d, %v)", applied, err)
	}
	if err := c.Add(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	mode, ties, err := c.Mode(ctx)
	if err != nil || mode.Key != "a" || mode.Frequency != 3 || ties != 1 {
		t.Fatalf("Mode = (%+v, %d, %v)", mode, ties, err)
	}
	if f, err := c.Count(ctx, "a"); err != nil || f != 3 {
		t.Fatalf("Count(a) = (%d, %v)", f, err)
	}
	if f, err := c.Count(ctx, "ghost"); err != nil || f != 0 {
		t.Fatalf("Count(ghost) = (%d, %v)", f, err)
	}
	top, err := c.TopK(ctx, 2)
	if err != nil || len(top) != 2 || top[0].Key != "a" {
		t.Fatalf("TopK = (%+v, %v)", top, err)
	}
	if _, _, err := c.Min(ctx); err != nil {
		t.Fatalf("Min: %v", err)
	}
	if _, err := c.Median(ctx); err != nil {
		t.Fatalf("Median: %v", err)
	}
	if e, err := c.Quantile(ctx, 1); err != nil || e.Frequency != 3 {
		t.Fatalf("Quantile(1) = (%+v, %v)", e, err)
	}
	if _, _, err := c.Majority(ctx); err != nil {
		t.Fatalf("Majority: %v", err)
	}
	dist, err := c.Distribution(ctx)
	if err != nil || len(dist) == 0 {
		t.Fatalf("Distribution = (%+v, %v)", dist, err)
	}
	sum, err := c.Summary(ctx)
	if err != nil || sum.Total != 3 || sum.Tracked != 2 {
		t.Fatalf("Summary = (%+v, %v)", sum, err)
	}
	if h, err := c.Healthz(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("Healthz = (%+v, %v)", h, err)
	}
}

func TestBulkIngest(t *testing.T) {
	c := newClient(t, 64)
	ctx := context.Background()

	events := make([]Event, 0, 300)
	for i := 0; i < 100; i++ {
		events = append(events,
			Event{Object: "hot", Action: ActionAdd},
			Event{Object: "warm", Action: ActionAdd},
			Event{Object: "hot", Action: ActionAdd})
	}
	applied, err := c.BulkIngest(ctx, events)
	if err != nil || applied != 300 {
		t.Fatalf("BulkIngest = (%d, %v)", applied, err)
	}
	if f, err := c.Count(ctx, "hot"); err != nil || f != 200 {
		t.Fatalf("Count(hot) = (%d, %v)", f, err)
	}

	applied, err = c.BulkIngestReader(ctx, strings.NewReader(
		"{\"object\":\"cool\",\"action\":\"add\"}\n\n{\"object\":\"cool\",\"action\":\"add\"}\n"))
	if err != nil || applied != 2 {
		t.Fatalf("BulkIngestReader = (%d, %v)", applied, err)
	}
}

func TestCompositeQuery(t *testing.T) {
	c := newClient(t, 16)
	ctx := context.Background()

	if _, err := c.BulkIngest(ctx, []Event{
		{Object: "a", Action: ActionAdd}, {Object: "a", Action: ActionAdd}, {Object: "a", Action: ActionAdd},
		{Object: "b", Action: ActionAdd}, {Object: "b", Action: ActionAdd},
		{Object: "c", Action: ActionAdd},
	}); err != nil {
		t.Fatal(err)
	}

	res, err := c.Query(ctx, sprofile.KeyedQuery[string]{
		Count:     []string{"a", "nobody"},
		Mode:      true,
		TopK:      2,
		Quantiles: []float64{0.5, 1},
		Summary:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode == nil || res.Mode.Key != "a" || res.Mode.Frequency != 3 {
		t.Fatalf("mode = %+v", res.Mode)
	}
	if len(res.Counts) != 2 || res.Counts[0].Frequency != 3 || res.Counts[1].Frequency != 0 {
		t.Fatalf("counts = %+v", res.Counts)
	}
	if len(res.TopK) != 2 || res.TopK[0].Key != "a" || res.TopK[1].Key != "b" {
		t.Fatalf("top_k = %+v", res.TopK)
	}
	if len(res.Quantiles) != 2 || res.Quantiles[1].Frequency != 3 {
		t.Fatalf("quantiles = %+v", res.Quantiles)
	}
	if res.Summary == nil || res.Summary.Total != 6 {
		t.Fatalf("summary = %+v", res.Summary)
	}
	if res.Min != nil || res.Median != nil || res.Majority != nil || res.Distribution != nil {
		t.Fatalf("unrequested fields were filled: %+v", res)
	}
}

// TestErrorTaxonomyAcrossTheWire pins that errors.Is against the sprofile
// taxonomy works on client-side errors, and that the full APIError stays
// inspectable.
func TestErrorTaxonomyAcrossTheWire(t *testing.T) {
	c := newClient(t, 4)
	ctx := context.Background()

	// Removing an unknown key → ErrUnknownKey via the wire code.
	err := c.Remove(ctx, "ghost")
	if !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("Remove(ghost) = %v, want errors.Is ErrUnknownKey", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 404 || ae.Code != "unknown_key" {
		t.Fatalf("APIError = %+v", ae)
	}

	// Removing a known key at frequency zero → ErrStrictViolation.
	if err := c.Add(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	err = c.Remove(ctx, "a")
	if !errors.Is(err, sprofile.ErrStrictViolation) {
		t.Fatalf("strict remove = %v, want errors.Is ErrStrictViolation", err)
	}

	// A malformed composite query resolves to both of its classes, exactly
	// like the local error does (Query validation always wraps an
	// out-of-range argument alongside ErrInvalidQuery).
	_, err = c.Query(ctx, sprofile.KeyedQuery[string]{KthLargest: []int{99}})
	if !errors.Is(err, sprofile.ErrInvalidQuery) || !errors.Is(err, sprofile.ErrOutOfRange) {
		t.Fatalf("bad query = %v, want errors.Is ErrInvalidQuery and ErrOutOfRange", err)
	}

	// Overflowing the key capacity → ErrCapExceeded. A fresh server with no
	// idle keys guarantees nothing can be recycled, whatever the stripe
	// geometry.
	full := newClient(t, 2)
	for _, k := range []string{"k1", "k2"} {
		if err := full.Add(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	err = full.Add(ctx, "k3")
	if !errors.Is(err, sprofile.ErrCapExceeded) {
		t.Fatalf("overflow add = %v, want errors.Is ErrCapExceeded", err)
	}

	// Partial batches surface the applied prefix on the APIError.
	applied, err := c.SendEvents(ctx, []Event{
		{Object: "k1", Action: ActionAdd},
		{Object: "k2", Action: "bogus"},
	})
	if err == nil || applied != 1 {
		t.Fatalf("partial batch = (%d, %v), want 1 applied and an error", applied, err)
	}
	if !errors.Is(err, sprofile.ErrInvalidAction) {
		t.Fatalf("bogus action = %v, want errors.Is ErrInvalidAction", err)
	}
}

// TestAsyncServerFlushAndBackpressure drives the client against an
// async-ingest server: Flush is the read-your-write barrier, deferred apply
// errors come back with their taxonomy class, and a wire "backpressure"
// code unwraps to sprofile.ErrBackpressure.
func TestAsyncServerFlushAndBackpressure(t *testing.T) {
	s, err := server.New(server.Config{Capacity: 16, AsyncIngest: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := c.Add(ctx, "a"); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if f, err := c.Count(ctx, "a"); err != nil || f != 1 {
		t.Fatalf("Count after Flush = (%d, %v), want (1, nil)", f, err)
	}

	// A remove of an unknown key is accepted at enqueue time; the error
	// surfaces on Flush with its class intact.
	if err := c.Remove(ctx, "ghost"); err != nil {
		t.Fatalf("Remove enqueue: %v", err)
	}
	if err := c.Flush(ctx); !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("Flush after bad remove = %v, want ErrUnknownKey", err)
	}

	if !errors.Is(codeToErr["backpressure"], sprofile.ErrBackpressure) {
		t.Fatal("wire code backpressure does not unwrap to ErrBackpressure")
	}
}

func TestMetricsScrape(t *testing.T) {
	c := newClient(t, 16)
	ctx := context.Background()
	if err := c.Add(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"sprofile_http_requests_total",
		"sprofile_ingest_events_total",
		"sprofile_build_info",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Fatalf("scrape missing family %s", family)
		}
	}
}
