package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sprofile"
)

// stubServer always answers the configured error document, counting hits.
type stubServer struct {
	status     int
	code       string
	retryAfter string
	hits       atomic.Int32
}

func (s *stubServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	if s.retryAfter != "" {
		w.Header().Set("Retry-After", s.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(s.status)
	json.NewEncoder(w).Encode(map[string]string{"error": "induced", "code": s.code})
}

// TestRetryPolicyTable pins the full retry decision matrix: which wire codes
// each of the read and write paths retries, and which taxonomy sentinel each
// code resolves to across the wire.
func TestRetryPolicyTable(t *testing.T) {
	const attempts = 3
	cases := []struct {
		name       string
		read       bool
		status     int
		code       string
		retryAfter string
		wantHits   int32
		wantErr    error
	}{
		// Degraded is retryable for reads only: a degraded node still serves
		// reads, so the code reaching a read means a transient race — but a
		// write may land on a node that stays degraded indefinitely.
		{"degraded read retries", true, http.StatusServiceUnavailable, "degraded", "1", attempts, sprofile.ErrDegraded},
		{"degraded write does not retry", false, http.StatusServiceUnavailable, "degraded", "1", 1, sprofile.ErrDegraded},
		{"shed read retries", true, http.StatusServiceUnavailable, "shed", "1", attempts, sprofile.ErrShed},
		{"shed write does not retry", false, http.StatusServiceUnavailable, "shed", "1", 1, sprofile.ErrShed},
		{"backpressure read retries", true, http.StatusTooManyRequests, "backpressure", "1", attempts, sprofile.ErrBackpressure},
		{"backpressure write does not retry", false, http.StatusTooManyRequests, "backpressure", "1", 1, sprofile.ErrBackpressure},
		{"read_only is not same-node retryable", true, http.StatusServiceUnavailable, "read_only", "", 1, sprofile.ErrReadOnly},
		{"stale_read is not same-node retryable", true, http.StatusServiceUnavailable, "stale_read", "", 1, sprofile.ErrStaleRead},
		{"plain 503 read retries", true, http.StatusServiceUnavailable, "internal", "", attempts, nil},
		{"bad request never retries", true, http.StatusBadRequest, "bad_request", "", 1, nil},
		{"wal_append write does not retry", false, http.StatusInternalServerError, "wal_append", "", 1, sprofile.ErrWALAppend},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ss := &stubServer{status: tc.status, code: tc.code, retryAfter: tc.retryAfter}
			ts := httptest.NewServer(ss)
			defer ts.Close()
			c, err := New(ts.URL, WithRetry(RetryPolicy{
				MaxAttempts: attempts,
				BaseDelay:   time.Millisecond,
				MaxDelay:    2 * time.Millisecond, // caps any Retry-After hint, keeping the test fast
			}))
			if err != nil {
				t.Fatal(err)
			}
			if tc.read {
				_, err = c.Summary(context.Background())
			} else {
				err = c.Add(context.Background(), "x")
			}
			if err == nil {
				t.Fatalf("request against a permanently failing server succeeded")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.wantErr)
			}
			if got := ss.hits.Load(); got != tc.wantHits {
				t.Fatalf("server hit %d times, want %d", got, tc.wantHits)
			}
			var ae *APIError
			if !errors.As(err, &ae) {
				t.Fatalf("err %v carries no *APIError", err)
			}
			if tc.retryAfter != "" && ae.RetryAfter != time.Second {
				t.Fatalf("APIError.RetryAfter = %s, want 1s (from the header)", ae.RetryAfter)
			}
		})
	}
}

// TestNextDelayHonorsRetryAfter pins the backoff arithmetic: the server hint
// raises the policy delay, and the policy cap bounds the hint.
func TestNextDelayHonorsRetryAfter(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 5 * time.Second}
	cases := []struct {
		name     string
		err      error
		min, max time.Duration
	}{
		{"no hint keeps the jittered policy delay", &APIError{StatusCode: 503}, 5 * time.Millisecond, 10 * time.Millisecond},
		{"hint above the delay wins", &APIError{StatusCode: 503, RetryAfter: time.Second}, time.Second, time.Second},
		{"hint above MaxDelay is capped", &APIError{StatusCode: 503, RetryAfter: time.Minute}, 5 * time.Second, 5 * time.Second},
		{"non-API errors keep the policy delay", errors.New("conn reset"), 5 * time.Millisecond, 10 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				d := p.nextDelay(0, tc.err)
				if d < tc.min || d > tc.max {
					t.Fatalf("nextDelay = %s, want within [%s, %s]", d, tc.min, tc.max)
				}
			}
		})
	}
}

// TestRetryWaitsForRetryAfter proves the hint is actually waited out end to
// end, not just computed: with a generous policy cap, two attempts separated
// by a Retry-After of one second take at least a second.
func TestRetryWaitsForRetryAfter(t *testing.T) {
	ss := &stubServer{status: http.StatusServiceUnavailable, code: "shed", retryAfter: "1"}
	ts := httptest.NewServer(ss)
	defer ts.Close()
	c, err := New(ts.URL, WithRetry(RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Summary(context.Background()); err == nil {
		t.Fatal("permanently shedding server answered")
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("two attempts took %s; the 1s Retry-After hint was not honored", elapsed)
	}
	if got := ss.hits.Load(); got != 2 {
		t.Fatalf("server hit %d times, want 2", got)
	}
}
