package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sprofile"
	"sprofile/internal/server"
)

// flakyServer answers failures times with the given status/code document,
// then succeeds with body. It counts every hit.
type flakyServer struct {
	failures int32
	status   int
	code     string
	body     string
	hits     atomic.Int32
}

func (f *flakyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.hits.Add(1)
	if int(n) <= int(f.failures) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(map[string]string{"error": "induced", "code": f.code})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(f.body))
}

func TestRetryHealsTransient503(t *testing.T) {
	fs := &flakyServer{failures: 2, status: http.StatusServiceUnavailable, code: "internal",
		body: `{"tracked":1,"total":2,"capacity":16}`}
	ts := httptest.NewServer(fs)
	defer ts.Close()

	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary(context.Background())
	if err != nil || sum.Total != 2 {
		t.Fatalf("Summary after two 503s = (%+v, %v)", sum, err)
	}
	if got := fs.hits.Load(); got != 3 {
		t.Fatalf("server hit %d times, want 3", got)
	}
}

func TestRetryGivesUpAtCap(t *testing.T) {
	fs := &flakyServer{failures: 100, status: http.StatusServiceUnavailable, code: "internal"}
	ts := httptest.NewServer(fs)
	defer ts.Close()

	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Summary(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if got := fs.hits.Load(); got != 3 {
		t.Fatalf("server hit %d times, want exactly MaxAttempts", got)
	}
}

func TestNoRetryWithoutOptIn(t *testing.T) {
	fs := &flakyServer{failures: 1, status: http.StatusServiceUnavailable, code: "internal"}
	ts := httptest.NewServer(fs)
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Summary(context.Background()); err == nil {
		t.Fatal("un-configured client retried its way past a 503")
	}
	if got := fs.hits.Load(); got != 1 {
		t.Fatalf("server hit %d times, want 1", got)
	}
}

func TestRetryRespectsContextCancellation(t *testing.T) {
	fs := &flakyServer{failures: 100, status: http.StatusServiceUnavailable, code: "internal"}
	ts := httptest.NewServer(fs)
	defer ts.Close()

	// A long backoff that cancellation must cut short.
	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Minute, MaxDelay: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err = c.Summary(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s; the backoff did not yield", elapsed)
	}
	if got := fs.hits.Load(); got != 1 {
		t.Fatalf("server hit %d times after cancellation mid-backoff, want 1", got)
	}
}

func TestWritesDoNotRetryOnServerErrors(t *testing.T) {
	// A 503 on a write could mean "applied but the ack was lost"; the client
	// must not re-send a non-idempotent ingest.
	fs := &flakyServer{failures: 1, status: http.StatusServiceUnavailable, code: "internal",
		body: `{"applied":1}`}
	ts := httptest.NewServer(fs)
	defer ts.Close()

	c, err := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(context.Background(), "x"); err == nil {
		t.Fatal("write retried past a 503")
	}
	if got := fs.hits.Load(); got != 1 {
		t.Fatalf("server hit %d times for one write, want 1", got)
	}
}

func TestRetryPolicyDelayBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		want := 50 * time.Millisecond << attempt
		if want > 200*time.Millisecond || want <= 0 {
			want = 200 * time.Millisecond
		}
		for i := 0; i < 100; i++ {
			d := p.delay(attempt)
			if d < want/2 || d > want {
				t.Fatalf("delay(%d) = %s, want within [%s, %s]", attempt, d, want/2, want)
			}
		}
	}
}

// TestFollowerRoutingAndLeaderFallback runs a real leader+follower pair and
// checks the client's read path end to end: reads land on the follower and
// carry its watermark; writes land on the leader; when the follower dies,
// reads transparently fall back to the leader.
func TestFollowerRoutingAndLeaderFallback(t *testing.T) {
	leader, err := server.New(server.Config{Capacity: 64, WALPath: t.TempDir() + "/wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lts := httptest.NewServer(leader)
	defer lts.Close()

	follower, err := server.New(server.Config{
		Capacity:   64,
		WALPath:    t.TempDir() + "/mirror",
		Follow:     lts.URL,
		FollowPoll: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fts := httptest.NewServer(follower)
	defer fts.Close()

	c, err := New(lts.URL,
		WithFollowers(fts.URL),
		WithMaxStaleness(time.Minute),
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Writes go to the leader even though a follower is configured.
	if _, err := c.SendEvents(ctx, []Event{
		{Object: "a", Action: ActionAdd}, {Object: "a", Action: ActionAdd}, {Object: "b", Action: ActionAdd},
	}); err != nil {
		t.Fatal(err)
	}

	// A composite query routes to the follower — the watermark says so — and
	// converges on the acked data within the poll cadence.
	var res sprofile.KeyedQueryResult[string]
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err = c.Query(ctx, sprofile.KeyedQuery[string]{Mode: true})
		if err == nil && res.Mode != nil && res.Mode.Key == "a" &&
			res.Replication != nil && res.Replication.Role == "follower" && res.Replication.CaughtUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: res=%+v repl=%+v err=%v", res.Mode, res.Replication, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res.Mode.Frequency != 2 {
		t.Fatalf("mode via follower = %+v", res.Mode)
	}
	if res.Replication.Leader != lts.URL {
		t.Fatalf("watermark leader = %q, want %q", res.Replication.Leader, lts.URL)
	}

	// Kill the follower: the same read now falls back to the leader.
	fts.Close()
	res, err = c.Query(ctx, sprofile.KeyedQuery[string]{Mode: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replication == nil || res.Replication.Role != "leader" {
		t.Fatalf("post-fallback watermark = %+v, want the leader's", res.Replication)
	}

	// Health against the leader base reports the leader role and WAL section.
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "leader" || h.WAL == nil || h.WAL.Fsyncs == 0 {
		t.Fatalf("Healthz = %+v (wal %+v)", h, h.WAL)
	}
}

// TestStaleReadFallsBackToLeader pins that a follower refusing with
// stale_read does not fail the read — the leader answers instead — and that
// the wire codes map onto the sprofile error taxonomy.
func TestStaleReadFallsBackToLeader(t *testing.T) {
	staleDoc := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"replica is 12000ms stale","code":"stale_read"}`))
	}

	var followerHits, leaderHits atomic.Int32
	fol := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		followerHits.Add(1)
		if r.Header.Get(HeaderMaxStaleness) == "" {
			t.Error("read reached the follower without a max-staleness demand")
		}
		staleDoc(w)
	}))
	defer fol.Close()
	lead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		leaderHits.Add(1)
		w.Write([]byte(`{"tracked":2,"total":3,"capacity":64}`))
	}))
	defer lead.Close()

	c, err := New(lead.URL, WithFollowers(fol.URL), WithMaxStaleness(time.Second),
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary(context.Background())
	if err != nil || sum.Total != 3 {
		t.Fatalf("Summary = (%+v, %v)", sum, err)
	}
	// stale_read is not same-node-retryable: exactly one follower attempt,
	// then the leader.
	if followerHits.Load() != 1 || leaderHits.Load() != 1 {
		t.Fatalf("hits = follower %d, leader %d; want 1 and 1",
			followerHits.Load(), leaderHits.Load())
	}

	// Without a leader to fall back to, the taxonomy mapping surfaces.
	solo := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { staleDoc(w) }))
	defer solo.Close()
	c2, err := New(solo.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c2.Summary(context.Background())
	if !errors.Is(err, sprofile.ErrStaleRead) {
		t.Fatalf("err = %v, want ErrStaleRead in its chain", err)
	}
}

// TestReadOnlyErrorMapping pins the write-rejection path: a follower refusing
// a write surfaces sprofile.ErrReadOnly through the client.
func TestReadOnlyErrorMapping(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"this node is a read-only follower","code":"read_only"}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Add(context.Background(), "x")
	if !errors.Is(err, sprofile.ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly in its chain", err)
	}
}

// TestPromoteViaClient drives a failover through the SDK alone.
func TestPromoteViaClient(t *testing.T) {
	leader, err := server.New(server.Config{Capacity: 64, WALPath: t.TempDir() + "/wal"})
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(leader)

	lc, err := New(lts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := lc.SendEvents(ctx, []Event{{Object: "k", Action: ActionAdd}}); err != nil {
		t.Fatal(err)
	}

	follower, err := server.New(server.Config{
		Capacity: 64, WALPath: t.TempDir() + "/mirror",
		Follow: lts.URL, FollowPoll: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fts := httptest.NewServer(follower)
	defer fts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for st := follower.Follower().Status(); !st.CaughtUp || st.Records < 1; st = follower.Follower().Status() {
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Promoting the leader is a no-op reporting false.
	if did, err := lc.Promote(ctx); err != nil || did {
		t.Fatalf("Promote(leader) = (%v, %v), want (false, nil)", did, err)
	}

	lts.Close()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	fc, err := New(fts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if did, err := fc.Promote(ctx); err != nil || !did {
		t.Fatalf("Promote(follower) = (%v, %v), want (true, nil)", did, err)
	}
	// Idempotent: a second promote reports false without error.
	if did, err := fc.Promote(ctx); err != nil || did {
		t.Fatalf("second Promote = (%v, %v), want (false, nil)", did, err)
	}

	// The promoted node holds the acked write and accepts new ones.
	n, err := fc.Count(ctx, "k")
	if err != nil || n != 1 {
		t.Fatalf("Count(k) after promote = (%d, %v)", n, err)
	}
	if err := fc.Add(ctx, "k"); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	h, err := fc.Healthz(ctx)
	if err != nil || h.Role != "leader" {
		t.Fatalf("Healthz after promote = (%+v, %v)", h, err)
	}
}
