// Package client is the typed Go SDK for the sprofile HTTP server
// (internal/server, run as cmd/sprofiled). It covers the whole wire surface:
// single-event and batched ingestion, the streaming NDJSON bulk path,
// every single-statistic endpoint, and the composite POST /v1/query
// endpoint that answers an atomic multi-statistic sprofile.KeyedQuery.
//
// Errors mirror the library's taxonomy across the wire: the server tags
// every error response with a machine-readable code, and the client maps it
// back, so
//
//	_, err := c.Count(ctx, "ghost")
//	if errors.Is(err, sprofile.ErrUnknownKey) { ... }
//
// works against a remote profile exactly as against a local one at the
// class level (ErrOutOfRange, ErrStrictViolation, ErrCapExceeded, ...); the
// wire carries one code per response, so sentinels finer than a class
// (ErrObjectRange vs ErrBadRank) do not survive the round trip. The full
// *APIError (HTTP status, code, server message) stays available via
// errors.As.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"sprofile"
)

// Event is the JSON wire form of one log event, matching the server's
// POST /v1/events document.
type Event struct {
	Object string `json:"object"`
	Action string `json:"action"`
}

// Wire action strings accepted by the server.
const (
	ActionAdd    = "add"
	ActionRemove = "remove"
)

// Summary is the document served by GET /v1/stats/summary: the profile's
// aggregate counters plus the number of currently tracked keys.
type Summary struct {
	Capacity            int    `json:"capacity"`
	Tracked             int    `json:"tracked"`
	Total               int64  `json:"total"`
	Active              int    `json:"active"`
	DistinctFrequencies int    `json:"distinct_frequencies"`
	MaxFrequency        int64  `json:"max_frequency"`
	MinFrequency        int64  `json:"min_frequency"`
	Adds                uint64 `json:"adds"`
	Removes             uint64 `json:"removes"`
}

// APIError is an error response from the server: the HTTP status, the
// machine-readable taxonomy code and the server's message. Its Unwrap maps
// the code back onto the sprofile error taxonomy, so errors.Is against
// sentinels like sprofile.ErrUnknownKey works across the wire.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// Applied reports how many events of an ingest request took effect
	// before the failure (zero for non-ingest requests).
	Applied int
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("sprofile client: %s (http %d, code %s)", e.Message, e.StatusCode, e.Code)
	}
	return fmt.Sprintf("sprofile client: %s (http %d)", e.Message, e.StatusCode)
}

// codeToErr maps wire error codes back onto the library's taxonomy roots.
// The wire carries one code per response, so only the class survives the
// round trip: fine-grained sentinels below a class (ErrObjectRange vs
// ErrBadRank under ErrOutOfRange) cannot be distinguished remotely.
// invalid_query maps to both of its classes because Query validation always
// wraps an out-of-range argument alongside ErrInvalidQuery.
var codeToErr = map[string]error{
	"out_of_range":     sprofile.ErrOutOfRange,
	"unknown_key":      sprofile.ErrUnknownKey,
	"strict_violation": sprofile.ErrStrictViolation,
	"empty_profile":    sprofile.ErrEmptyProfile,
	"cap_exceeded":     sprofile.ErrCapExceeded,
	"invalid_action":   sprofile.ErrInvalidAction,
	"invalid_query":    errors.Join(sprofile.ErrInvalidQuery, sprofile.ErrOutOfRange),
	"wal_append":       sprofile.ErrWALAppend,
}

// Unwrap resolves the wire code to its sprofile taxonomy class (nil for
// request-level codes like bad_request, which have no library counterpart).
func (e *APIError) Unwrap() error { return codeToErr[e.Code] }

// Client is a typed HTTP client for one sprofile server.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient uses hc for every request instead of http.DefaultClient;
// set timeouts and transports there.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("sprofile client: invalid base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("sprofile client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// wireError is the shape of every server error document (the ingest variant
// adds applied).
type wireError struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	Applied int    `json:"applied"`
}

// do issues one request and decodes a JSON answer into out (when non-nil).
// Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, contentType string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var we wireError
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if jsonErr := json.Unmarshal(data, &we); jsonErr != nil || we.Error == "" {
			we.Error = strings.TrimSpace(string(data))
			if we.Error == "" {
				we.Error = resp.Status
			}
		}
		return &APIError{StatusCode: resp.StatusCode, Code: we.Code, Message: we.Error, Applied: we.Applied}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, bytes.NewReader(data), "application/json", out)
}

// appliedResponse mirrors the server's ingest answer.
type appliedResponse struct {
	Applied int `json:"applied"`
}

// Add ingests one add event for object.
func (c *Client) Add(ctx context.Context, object string) error {
	_, err := c.SendEvents(ctx, []Event{{Object: object, Action: ActionAdd}})
	return err
}

// Remove ingests one remove event for object.
func (c *Client) Remove(ctx context.Context, object string) error {
	_, err := c.SendEvents(ctx, []Event{{Object: object, Action: ActionRemove}})
	return err
}

// SendEvents posts a batch of events to /v1/events and returns how many were
// applied. On failure the returned count comes from the server's partial
// answer (also available as APIError.Applied).
func (c *Client) SendEvents(ctx context.Context, events []Event) (int, error) {
	var out appliedResponse
	err := c.postJSON(ctx, "/v1/events", events, &out)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) {
			return ae.Applied, err
		}
		return 0, err
	}
	return out.Applied, nil
}

// BulkIngest streams events to /v1/events/bulk as NDJSON — the server's
// delta-batched fast path — and returns how many were applied. The event
// slice is encoded incrementally, so arbitrarily large batches stream
// without buffering the whole document.
func (c *Client) BulkIngest(ctx context.Context, events []Event) (int, error) {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	return c.bulk(ctx, pr)
}

// BulkIngestReader streams raw NDJSON (one {"object","action"} document per
// line) from r to /v1/events/bulk; use it to pipe a prepared event log
// without re-encoding.
func (c *Client) BulkIngestReader(ctx context.Context, r io.Reader) (int, error) {
	return c.bulk(ctx, r)
}

func (c *Client) bulk(ctx context.Context, r io.Reader) (int, error) {
	var out appliedResponse
	err := c.do(ctx, http.MethodPost, "/v1/events/bulk", r, "application/x-ndjson", &out)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) {
			return ae.Applied, err
		}
		return 0, err
	}
	return out.Applied, nil
}

// Query executes ONE composite, atomic multi-statistic query via
// POST /v1/query: every statistic the KeyedQuery selects is answered from a
// single consistent cut of the server's profile. Prefer it over sequences of
// single-statistic calls — one round trip, one lock acquisition server-side,
// and no torn reads under concurrent ingest.
func (c *Client) Query(ctx context.Context, q sprofile.KeyedQuery[string]) (sprofile.KeyedQueryResult[string], error) {
	var out sprofile.KeyedQueryResult[string]
	err := c.postJSON(ctx, "/v1/query", q, &out)
	return out, err
}

// entryResponse mirrors the single-statistic wire form.
type entryResponse struct {
	Object    string `json:"object"`
	Frequency int64  `json:"frequency"`
	Ties      int    `json:"ties"`
}

func (e entryResponse) keyed() sprofile.KeyedEntry[string] {
	return sprofile.KeyedEntry[string]{Key: e.Object, Frequency: e.Frequency}
}

// Mode returns the most frequent object, its frequency, and how many objects
// tie with it.
func (c *Client) Mode(ctx context.Context) (sprofile.KeyedEntry[string], int, error) {
	var out entryResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats/mode", nil, "", &out)
	return out.keyed(), out.Ties, err
}

// Min returns the least frequent slot, its frequency, and how many slots tie
// with it.
func (c *Client) Min(ctx context.Context) (sprofile.KeyedEntry[string], int, error) {
	var out entryResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats/min", nil, "", &out)
	return out.keyed(), out.Ties, err
}

// Count returns the current frequency of object (zero when unknown).
func (c *Client) Count(ctx context.Context, object string) (int64, error) {
	var out entryResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats/count?object="+url.QueryEscape(object), nil, "", &out)
	return out.Frequency, err
}

func (c *Client) kList(ctx context.Context, path string, k int) ([]sprofile.KeyedEntry[string], error) {
	var out []entryResponse
	err := c.do(ctx, http.MethodGet, path+"?k="+strconv.Itoa(k), nil, "", &out)
	if err != nil {
		return nil, err
	}
	entries := make([]sprofile.KeyedEntry[string], len(out))
	for i, e := range out {
		entries[i] = e.keyed()
	}
	return entries, nil
}

// TopK returns the k most frequent objects in non-increasing frequency order.
func (c *Client) TopK(ctx context.Context, k int) ([]sprofile.KeyedEntry[string], error) {
	return c.kList(ctx, "/v1/stats/top", k)
}

// BottomK returns the k least frequent slots in non-decreasing frequency
// order.
func (c *Client) BottomK(ctx context.Context, k int) ([]sprofile.KeyedEntry[string], error) {
	return c.kList(ctx, "/v1/stats/bottom", k)
}

// Median returns the lower-median entry of the frequency multiset.
func (c *Client) Median(ctx context.Context) (sprofile.KeyedEntry[string], error) {
	var out entryResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats/median", nil, "", &out)
	return out.keyed(), err
}

// Quantile returns the entry at quantile q in [0, 1].
func (c *Client) Quantile(ctx context.Context, q float64) (sprofile.KeyedEntry[string], error) {
	var out entryResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats/quantile?q="+strconv.FormatFloat(q, 'g', -1, 64), nil, "", &out)
	return out.keyed(), err
}

// majorityResponse mirrors the majority wire form.
type majorityResponse struct {
	Object    string `json:"object"`
	Frequency int64  `json:"frequency"`
	Majority  bool   `json:"majority"`
}

// Majority returns the object holding a strict majority of the total count,
// if one exists.
func (c *Client) Majority(ctx context.Context) (sprofile.KeyedEntry[string], bool, error) {
	var out majorityResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats/majority", nil, "", &out)
	return sprofile.KeyedEntry[string]{Key: out.Object, Frequency: out.Frequency}, out.Majority, err
}

// Distribution returns the full frequency histogram in ascending frequency
// order.
func (c *Client) Distribution(ctx context.Context) ([]sprofile.FreqCount, error) {
	var out []sprofile.FreqCount
	err := c.do(ctx, http.MethodGet, "/v1/stats/distribution", nil, "", &out)
	return out, err
}

// Summary returns the profile's aggregate counters.
func (c *Client) Summary(ctx context.Context) (Summary, error) {
	var out Summary
	err := c.do(ctx, http.MethodGet, "/v1/stats/summary", nil, "", &out)
	return out, err
}

// Checkpoint asks the server to snapshot its profile and truncate the
// write-ahead log (POST /v1/admin/checkpoint).
func (c *Client) Checkpoint(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/admin/checkpoint", nil, "", nil)
}

// Health probes GET /healthz; a non-nil CheckpointError field surfaces the
// server's last background-checkpoint failure without failing the probe.
type Health struct {
	Status          string `json:"status"`
	CheckpointError string `json:"checkpoint_error"`
}

// Healthz returns the server's liveness document.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, "", &out)
	return out, err
}
