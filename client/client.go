// Package client is the typed Go SDK for the sprofile HTTP server
// (internal/server, run as cmd/sprofiled). It covers the whole wire surface:
// single-event and batched ingestion, the streaming NDJSON bulk path,
// every single-statistic endpoint, and the composite POST /v1/query
// endpoint that answers an atomic multi-statistic sprofile.KeyedQuery.
//
// Errors mirror the library's taxonomy across the wire: the server tags
// every error response with a machine-readable code, and the client maps it
// back, so
//
//	_, err := c.Count(ctx, "ghost")
//	if errors.Is(err, sprofile.ErrUnknownKey) { ... }
//
// works against a remote profile exactly as against a local one at the
// class level (ErrOutOfRange, ErrStrictViolation, ErrCapExceeded, ...); the
// wire carries one code per response, so sentinels finer than a class
// (ErrObjectRange vs ErrBadRank) do not survive the round trip. The full
// *APIError (HTTP status, code, server message) stays available via
// errors.As.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sprofile"
	"sprofile/internal/failpoint"
)

// Event is the JSON wire form of one log event, matching the server's
// POST /v1/events document.
type Event struct {
	Object string `json:"object"`
	Action string `json:"action"`
}

// Wire action strings accepted by the server.
const (
	ActionAdd    = "add"
	ActionRemove = "remove"
)

// Summary is the document served by GET /v1/stats/summary: the profile's
// aggregate counters plus the number of currently tracked keys.
type Summary struct {
	Capacity            int    `json:"capacity"`
	Tracked             int    `json:"tracked"`
	Total               int64  `json:"total"`
	Active              int    `json:"active"`
	DistinctFrequencies int    `json:"distinct_frequencies"`
	MaxFrequency        int64  `json:"max_frequency"`
	MinFrequency        int64  `json:"min_frequency"`
	Adds                uint64 `json:"adds"`
	Removes             uint64 `json:"removes"`
}

// APIError is an error response from the server: the HTTP status, the
// machine-readable taxonomy code and the server's message. Its Unwrap maps
// the code back onto the sprofile error taxonomy, so errors.Is against
// sentinels like sprofile.ErrUnknownKey works across the wire.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// Applied reports how many events of an ingest request took effect
	// before the failure (zero for non-ingest requests).
	Applied int
	// RetryAfter is the server's Retry-After hint (zero when absent). With
	// WithRetry the client honors it: the backoff before the next attempt is
	// at least this long, still capped by RetryPolicy.MaxDelay.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("sprofile client: %s (http %d, code %s)", e.Message, e.StatusCode, e.Code)
	}
	return fmt.Sprintf("sprofile client: %s (http %d)", e.Message, e.StatusCode)
}

// codeToErr maps wire error codes back onto the library's taxonomy roots.
// The wire carries one code per response, so only the class survives the
// errConfig is the construction-time sentinel every invalid New argument or
// option wraps, so callers can errors.Is for the whole misconfiguration
// class. It is never produced by a round trip.
var errConfig = errors.New("sprofile client: invalid configuration")

// round trip: fine-grained sentinels below a class (ErrObjectRange vs
// ErrBadRank under ErrOutOfRange) cannot be distinguished remotely.
// invalid_query maps to both of its classes because Query validation always
// wraps an out-of-range argument alongside ErrInvalidQuery.
var codeToErr = map[string]error{
	"out_of_range":     sprofile.ErrOutOfRange,
	"unknown_key":      sprofile.ErrUnknownKey,
	"strict_violation": sprofile.ErrStrictViolation,
	"empty_profile":    sprofile.ErrEmptyProfile,
	"cap_exceeded":     sprofile.ErrCapExceeded,
	"invalid_action":   sprofile.ErrInvalidAction,
	"invalid_query":    errors.Join(sprofile.ErrInvalidQuery, sprofile.ErrOutOfRange),
	"wal_append":       sprofile.ErrWALAppend,
	"read_only":        sprofile.ErrReadOnly,
	"stale_read":       sprofile.ErrStaleRead,
	"backpressure":     sprofile.ErrBackpressure,
	"degraded":         sprofile.ErrDegraded,
	"shed":             sprofile.ErrShed,
}

// Unwrap resolves the wire code to its sprofile taxonomy class (nil for
// request-level codes like bad_request, which have no library counterpart).
func (e *APIError) Unwrap() error { return codeToErr[e.Code] }

// Client is a typed HTTP client for one sprofile server — or, with
// WithFollowers, for a replicated deployment: writes always go to the leader,
// reads round-robin across the followers and fall back to the leader when the
// chosen follower is unreachable, too stale, or otherwise failing.
type Client struct {
	base string
	hc   *http.Client

	retry        RetryPolicy
	retryOn      bool
	followers    []string
	next         atomic.Uint32 // round-robin cursor over followers
	maxStaleness time.Duration // >0: demanded on every read via header
}

// HeaderMaxStaleness is the request header carrying a read's freshness
// demand in milliseconds; it mirrors the server-side constant.
const HeaderMaxStaleness = "X-Sprofile-Max-Staleness-Ms"

// RetryPolicy bounds the automatic retries of WithRetry. Zero fields select
// the defaults noted on each.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per target (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms);
	// it doubles per attempt with 50–100% jitter.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 3
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 2 * time.Second
}

func (p RetryPolicy) delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.maxDelay()
	d := base << attempt
	if d > max || d <= 0 {
		d = max
	}
	// Full jitter over the upper half: uniform in [d/2, d). Decorrelates
	// client herds without ever collapsing the backoff to zero.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient uses hc for every request instead of http.DefaultClient;
// set timeouts and transports there.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry retries transiently failing requests with jittered exponential
// backoff. Reads retry on connection errors and on 429/502/503/504 answers
// (except read_only and stale_read, which a same-node retry cannot heal —
// those trigger leader fallback instead when followers are configured; the
// degraded and shed codes ARE read-retryable). Writes retry only on
// connection-refused, where the request provably never reached a server —
// anything later and a non-idempotent ingest could be applied twice, and a
// degraded node may refuse writes indefinitely. A server Retry-After hint
// (429 backpressure, 503 shed/degraded) raises the backoff to at least the
// hinted wait, capped by RetryPolicy.MaxDelay. Context cancellation always
// stops the retry loop.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry, c.retryOn = p, true }
}

// WithFollowers routes reads across the given follower base URLs
// round-robin; the construction-time base URL remains the leader, serving
// every write and the fallback for reads whose follower failed. Statistics
// read from a follower may trail the leader by its replication lag — demand a
// bound with WithMaxStaleness when it matters.
func WithFollowers(urls ...string) Option {
	return func(c *Client) {
		for _, u := range urls {
			c.followers = append(c.followers, strings.TrimRight(u, "/"))
		}
	}
}

// WithMaxStaleness attaches a freshness demand to every read: a follower
// whose staleness watermark exceeds d refuses with sprofile.ErrStaleRead
// (and the client falls back to the leader, which always satisfies it).
func WithMaxStaleness(d time.Duration) Option {
	return func(c *Client) { c.maxStaleness = d }
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("sprofile client: invalid base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("%w: base URL %q needs a scheme and host", errConfig, baseURL)
	}
	// The default transport carries the "client.http" failpoint seam: a
	// no-op (one atomic load per request) until armed, at which point chaos
	// rigs inject latency, connection drops, truncated bodies and 5xx bursts
	// without a proxy. WithHTTPClient replaces it wholesale.
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{
		Transport: failpoint.RoundTripper("client.http", nil),
	}}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// wireError is the shape of every server error document (the ingest variant
// adds applied).
type wireError struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	Applied int    `json:"applied"`
}

// sendOnce issues one request against one base URL and decodes a JSON answer
// into out (when non-nil). Non-2xx responses become *APIError. Reads carry
// the client's max-staleness demand.
func (c *Client) sendOnce(ctx context.Context, method, base, path string, body io.Reader, contentType string, read bool, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if read && c.maxStaleness > 0 {
		req.Header.Set(HeaderMaxStaleness, strconv.FormatInt(c.maxStaleness.Milliseconds(), 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var we wireError
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if jsonErr := json.Unmarshal(data, &we); jsonErr != nil || we.Error == "" {
			we.Error = strings.TrimSpace(string(data))
			if we.Error == "" {
				we.Error = resp.Status
			}
		}
		ae := &APIError{StatusCode: resp.StatusCode, Code: we.Code, Message: we.Error, Applied: we.Applied}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		return ae
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// transportFailure reports a request that died in transit (as opposed to a
// server answer or the caller's own context expiring).
func transportFailure(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// readRetryable classifies errors a repeat of the same idempotent read could
// heal: transport failures, 429 backpressure, and gateway-ish 5xx answers —
// including "shed" (a slot frees as soon as any request finishes) and
// "degraded" (reads are never refused on a degraded node, so seeing the code
// at all means a proxy or a mid-transition race; a retry is safe and cheap
// for an idempotent read). read_only and stale_read are excluded — the same
// node will keep giving the same answer; they are grounds for leader
// fallback, not same-node retry.
func readRetryable(err error) bool {
	if transportFailure(err) {
		return true
	}
	var ae *APIError
	if errors.As(err, &ae) && ae.Code != "read_only" && ae.Code != "stale_read" {
		switch ae.StatusCode {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
	}
	return false
}

// writeRetryable is deliberately narrow: only connection-refused, where the
// request provably never reached a server. A write that failed any later
// could have been applied — retrying a non-idempotent ingest would double it.
// In particular "degraded" (503) is NOT write-retryable: the node may stay
// degraded indefinitely, and nothing was applied — callers should fail over
// or surface the error; only reads treat degraded as transient.
func writeRetryable(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue) && errors.Is(ue.Err, syscall.ECONNREFUSED)
}

// withRetry runs fn under the configured retry policy, backing off with
// jittered exponential delays between attempts while retryable(err) holds.
// A server Retry-After hint (429 backpressure, 503 shed/degraded) raises the
// backoff to at least the hinted wait, still capped by the policy's MaxDelay.
// Without WithRetry it runs fn exactly once.
func (c *Client) withRetry(ctx context.Context, retryable func(error) bool, fn func() error) error {
	attempts := 1
	if c.retryOn {
		attempts = c.retry.attempts()
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.retry.nextDelay(a-1, err)):
			}
		}
		if err = fn(); err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// nextDelay is the backoff before retrying after err: the policy's jittered
// exponential delay, raised to the server's Retry-After hint when err carries
// a longer one, and always capped by the policy's MaxDelay (a server cannot
// park a client beyond what the caller configured).
func (p RetryPolicy) nextDelay(attempt int, err error) time.Duration {
	d := p.delay(attempt)
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
		if max := p.maxDelay(); d > max {
			d = max
		}
	}
	return d
}

// doRead routes one idempotent read: round-robin follower first (when
// configured), leader as fallback. Each target gets the full retry budget;
// any follower failure that is not the caller's own fault (4xx) falls
// through to the leader.
func (c *Client) doRead(ctx context.Context, method, path string, body []byte, contentType string, out any) error {
	targets := []string{c.base}
	if len(c.followers) > 0 {
		i := int(c.next.Add(1)-1) % len(c.followers)
		targets = []string{c.followers[i], c.base}
	}
	var err error
	for ti, base := range targets {
		err = c.withRetry(ctx, readRetryable, func() error {
			var r io.Reader
			if body != nil {
				r = bytes.NewReader(body)
			}
			return c.sendOnce(ctx, method, base, path, r, contentType, true, out)
		})
		if err == nil {
			return nil
		}
		if ti == len(targets)-1 || ctx.Err() != nil {
			return err
		}
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode < http.StatusInternalServerError {
			return err // the request itself is bad; the leader would agree
		}
	}
	return err
}

// doWrite sends one mutating request to the leader.
func (c *Client) doWrite(ctx context.Context, method, path string, body []byte, contentType string, out any) error {
	return c.withRetry(ctx, writeRetryable, func() error {
		var r io.Reader
		if body != nil {
			r = bytes.NewReader(body)
		}
		return c.sendOnce(ctx, method, c.base, path, r, contentType, false, out)
	})
}

func (c *Client) getRead(ctx context.Context, path string, out any) error {
	return c.doRead(ctx, http.MethodGet, path, nil, "", out)
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.doWrite(ctx, http.MethodPost, path, data, "application/json", out)
}

// appliedResponse mirrors the server's ingest answer.
type appliedResponse struct {
	Applied int `json:"applied"`
}

// Add ingests one add event for object.
func (c *Client) Add(ctx context.Context, object string) error {
	_, err := c.SendEvents(ctx, []Event{{Object: object, Action: ActionAdd}})
	return err
}

// Remove ingests one remove event for object.
func (c *Client) Remove(ctx context.Context, object string) error {
	_, err := c.SendEvents(ctx, []Event{{Object: object, Action: ActionRemove}})
	return err
}

// SendEvents posts a batch of events to /v1/events and returns how many were
// applied. On failure the returned count comes from the server's partial
// answer (also available as APIError.Applied).
func (c *Client) SendEvents(ctx context.Context, events []Event) (int, error) {
	var out appliedResponse
	err := c.postJSON(ctx, "/v1/events", events, &out)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) {
			return ae.Applied, err
		}
		return 0, err
	}
	return out.Applied, nil
}

// BulkIngest streams events to /v1/events/bulk as NDJSON — the server's
// delta-batched fast path — and returns how many were applied. The event
// slice is encoded incrementally, so arbitrarily large batches stream
// without buffering the whole document.
func (c *Client) BulkIngest(ctx context.Context, events []Event) (int, error) {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	return c.bulk(ctx, pr)
}

// BulkIngestReader streams raw NDJSON (one {"object","action"} document per
// line) from r to /v1/events/bulk; use it to pipe a prepared event log
// without re-encoding.
func (c *Client) BulkIngestReader(ctx context.Context, r io.Reader) (int, error) {
	return c.bulk(ctx, r)
}

func (c *Client) bulk(ctx context.Context, r io.Reader) (int, error) {
	var out appliedResponse
	err := c.sendOnce(ctx, http.MethodPost, c.base, "/v1/events/bulk", r, "application/x-ndjson", false, &out)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) {
			return ae.Applied, err
		}
		return 0, err
	}
	return out.Applied, nil
}

// Query executes ONE composite, atomic multi-statistic query via
// POST /v1/query: every statistic the KeyedQuery selects is answered from a
// single consistent cut of the server's profile. Prefer it over sequences of
// single-statistic calls — one round trip, one lock acquisition server-side,
// and no torn reads under concurrent ingest.
//
// Query is a read: with WithFollowers it is routed to a follower (falling
// back to the leader), and the result's Replication field reports which
// node's cut answered and how stale it may be.
func (c *Client) Query(ctx context.Context, q sprofile.KeyedQuery[string]) (sprofile.KeyedQueryResult[string], error) {
	var out sprofile.KeyedQueryResult[string]
	data, err := json.Marshal(q)
	if err != nil {
		return out, err
	}
	err = c.doRead(ctx, http.MethodPost, "/v1/query", data, "application/json", &out)
	return out, err
}

// entryResponse mirrors the single-statistic wire form.
type entryResponse struct {
	Object    string `json:"object"`
	Frequency int64  `json:"frequency"`
	Ties      int    `json:"ties"`
}

func (e entryResponse) keyed() sprofile.KeyedEntry[string] {
	return sprofile.KeyedEntry[string]{Key: e.Object, Frequency: e.Frequency}
}

// Mode returns the most frequent object, its frequency, and how many objects
// tie with it.
func (c *Client) Mode(ctx context.Context) (sprofile.KeyedEntry[string], int, error) {
	var out entryResponse
	err := c.getRead(ctx, "/v1/stats/mode", &out)
	return out.keyed(), out.Ties, err
}

// Min returns the least frequent slot, its frequency, and how many slots tie
// with it.
func (c *Client) Min(ctx context.Context) (sprofile.KeyedEntry[string], int, error) {
	var out entryResponse
	err := c.getRead(ctx, "/v1/stats/min", &out)
	return out.keyed(), out.Ties, err
}

// Count returns the current frequency of object (zero when unknown).
func (c *Client) Count(ctx context.Context, object string) (int64, error) {
	var out entryResponse
	err := c.getRead(ctx, "/v1/stats/count?object="+url.QueryEscape(object), &out)
	return out.Frequency, err
}

func (c *Client) kList(ctx context.Context, path string, k int) ([]sprofile.KeyedEntry[string], error) {
	var out []entryResponse
	err := c.getRead(ctx, path+"?k="+strconv.Itoa(k), &out)
	if err != nil {
		return nil, err
	}
	entries := make([]sprofile.KeyedEntry[string], len(out))
	for i, e := range out {
		entries[i] = e.keyed()
	}
	return entries, nil
}

// TopK returns the k most frequent objects in non-increasing frequency order.
func (c *Client) TopK(ctx context.Context, k int) ([]sprofile.KeyedEntry[string], error) {
	return c.kList(ctx, "/v1/stats/top", k)
}

// BottomK returns the k least frequent slots in non-decreasing frequency
// order.
func (c *Client) BottomK(ctx context.Context, k int) ([]sprofile.KeyedEntry[string], error) {
	return c.kList(ctx, "/v1/stats/bottom", k)
}

// Median returns the lower-median entry of the frequency multiset.
func (c *Client) Median(ctx context.Context) (sprofile.KeyedEntry[string], error) {
	var out entryResponse
	err := c.getRead(ctx, "/v1/stats/median", &out)
	return out.keyed(), err
}

// Quantile returns the entry at quantile q in [0, 1].
func (c *Client) Quantile(ctx context.Context, q float64) (sprofile.KeyedEntry[string], error) {
	var out entryResponse
	err := c.getRead(ctx, "/v1/stats/quantile?q="+strconv.FormatFloat(q, 'g', -1, 64), &out)
	return out.keyed(), err
}

// majorityResponse mirrors the majority wire form.
type majorityResponse struct {
	Object    string `json:"object"`
	Frequency int64  `json:"frequency"`
	Majority  bool   `json:"majority"`
}

// Majority returns the object holding a strict majority of the total count,
// if one exists.
func (c *Client) Majority(ctx context.Context) (sprofile.KeyedEntry[string], bool, error) {
	var out majorityResponse
	err := c.getRead(ctx, "/v1/stats/majority", &out)
	return sprofile.KeyedEntry[string]{Key: out.Object, Frequency: out.Frequency}, out.Majority, err
}

// Distribution returns the full frequency histogram in ascending frequency
// order.
func (c *Client) Distribution(ctx context.Context) ([]sprofile.FreqCount, error) {
	var out []sprofile.FreqCount
	err := c.getRead(ctx, "/v1/stats/distribution", &out)
	return out, err
}

// Summary returns the profile's aggregate counters.
func (c *Client) Summary(ctx context.Context) (Summary, error) {
	var out Summary
	err := c.getRead(ctx, "/v1/stats/summary", &out)
	return out, err
}

// Checkpoint asks the server to snapshot its profile and truncate the
// write-ahead log (POST /v1/admin/checkpoint).
func (c *Client) Checkpoint(ctx context.Context) error {
	return c.doWrite(ctx, http.MethodPost, "/v1/admin/checkpoint", nil, "", nil)
}

// Flush asks the server to drain its async ingest plane (POST
// /v1/admin/flush): when it returns nil, every previously acknowledged event
// is applied and visible to reads, and any deferred apply error has been
// surfaced (it comes back with its taxonomy class, so errors.Is works). On a
// synchronous server it degrades to a WAL sync.
func (c *Client) Flush(ctx context.Context) error {
	return c.doWrite(ctx, http.MethodPost, "/v1/admin/flush", nil, "", nil)
}

// WALHealth mirrors the "wal" section of /healthz: the durable log's append
// position and the observability counters behind it.
type WALHealth struct {
	Segment             uint64 `json:"segment"`
	Offset              int64  `json:"offset"`
	Segments            int    `json:"segments"`
	Fsyncs              uint64 `json:"fsyncs"`
	TailBytes           int64  `json:"tail_bytes"`
	SnapshotSeq         uint64 `json:"snapshot_seq"`
	LastCheckpointAgeMs int64  `json:"last_checkpoint_age_ms"` // -1 = never checkpointed
}

// Health probes GET /healthz; a non-empty CheckpointError or ReplicationError
// surfaces a background failure without failing the probe. WAL and
// Replication are nil on nodes that have neither.
type Health struct {
	Status           string                      `json:"status"`
	UptimeSeconds    float64                     `json:"uptime_seconds"`
	Version          string                      `json:"version"`
	Commit           string                      `json:"commit"`
	Role             string                      `json:"role"`
	Degraded         bool                        `json:"degraded"`
	WALError         string                      `json:"wal_error"`
	CheckpointError  string                      `json:"checkpoint_error"`
	ReplicationError string                      `json:"replication_error"`
	WAL              *WALHealth                  `json:"wal"`
	Replication      *sprofile.ReplicationStatus `json:"replication"`
	Async            *sprofile.AsyncStats        `json:"async"`
}

// Healthz returns the server's liveness document. It probes the configured
// base URL only — point a dedicated Client at each node to monitor a fleet.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var out Health
	err := c.sendOnce(ctx, http.MethodGet, c.base, "/healthz", nil, "", false, &out)
	return out, err
}

// Metrics fetches the raw Prometheus text exposition from GET /metrics on
// the client's base URL, for tooling that relays or archives scrapes. The
// node answers from its own registry (metrics are per-process, never proxied
// to the leader), so fleet monitors should point one Client at each node,
// exactly as with Healthz.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}

// Promote asks the node at the client's base URL to stop following and become
// the leader (POST /v1/admin/promote). It reports whether this call performed
// the transition: false with a nil error means the node already was (or
// always had been) a leader, so orchestrators can fire-and-retry safely.
func (c *Client) Promote(ctx context.Context) (bool, error) {
	var out struct {
		Promoted bool   `json:"promoted"`
		Role     string `json:"role"`
	}
	if err := c.doWrite(ctx, http.MethodPost, "/v1/admin/promote", nil, "", &out); err != nil {
		return false, err
	}
	return out.Promoted, nil
}
