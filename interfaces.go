package sprofile

// This file defines the public contract every profile variant in the module
// satisfies. It is the promotion of the internal evaluation interface
// (internal/profiler) into the supported API: callers program against
// Updater/Reader/Profiler and pick a concrete representation — plain,
// mutex-protected, sharded, windowed, durable — with Build, swapping one for
// another without touching query code.

// Updater is the ingestion half of a profile: it consumes the (object,
// add|remove) log stream the paper is built around. Object ids are dense
// integers in [0, Cap()).
type Updater interface {
	// Add applies an "add" event: the frequency of object x rises by one.
	Add(x int) error
	// Remove applies a "remove" event: the frequency of object x drops by
	// one. Profiles built with WithStrictNonNegative reject removals that
	// would make a frequency negative.
	Remove(x int) error
	// Apply applies one log tuple.
	Apply(t Tuple) error
	// ApplyAll applies tuples in order, stopping at the first error; it
	// returns the number of tuples applied. Implementations amortise
	// per-batch overheads (lock acquisition, WAL syncs) across the batch.
	ApplyAll(tuples []Tuple) (int, error)
}

// Reader is the query half of a profile: every statistic the S-Profile
// structure maintains, each answered from the continuously sorted frequency
// multiset. On a plain Profile all of these are O(1) (O(k) for TopK/BottomK,
// O(#distinct frequencies) for Distribution); concurrency wrappers add lock
// or merge overhead but keep the same semantics.
type Reader interface {
	// Count returns the current frequency of object x.
	Count(x int) (int64, error)
	// Mode returns an object with maximum frequency, that frequency, and how
	// many objects share it.
	Mode() (Entry, int, error)
	// Min returns an object with minimum frequency, that frequency, and how
	// many objects share it.
	Min() (Entry, int, error)
	// TopK returns the k most frequent entries in non-increasing frequency
	// order.
	TopK(k int) []Entry
	// BottomK returns the k least frequent entries in non-decreasing
	// frequency order.
	BottomK(k int) []Entry
	// KthLargest returns the entry holding the k-th largest frequency
	// (1-based: k=1 is the mode representative).
	KthLargest(k int) (Entry, error)
	// Median returns the lower-median entry of the frequency multiset.
	Median() (Entry, error)
	// Quantile returns the entry at quantile q in [0, 1], using the
	// nearest-rank definition shared by every implementation.
	Quantile(q float64) (Entry, error)
	// Majority returns the object holding a strict majority of the total
	// count, if one exists.
	Majority() (Entry, bool, error)
	// Distribution returns the frequency histogram in ascending frequency
	// order.
	Distribution() []FreqCount
	// Summarize returns aggregate statistics of the profile.
	Summarize() Summary
	// Cap returns the number of object slots m.
	Cap() int
	// Total returns the sum of all frequencies.
	Total() int64
}

// Profiler is the full contract: ingestion plus queries. Every profile
// variant in this package satisfies it — *Profile, *Concurrent, *Sharded,
// *Window, *TimeWindow and *Durable — as does anything returned by Build.
type Profiler interface {
	Updater
	Reader
}

// Snapshotter is the optional capability of producing a consistent
// point-in-time copy of the profile as a standalone *Profile, queryable with
// no further locking. Callers that hold a Profiler can test for it:
//
//	if s, ok := p.(sprofile.Snapshotter); ok { snap, err := s.Snapshot() }
type Snapshotter interface {
	Snapshot() (*Profile, error)
}

// DeltaUpdater is the optional capability of applying coalesced batches:
// moving an object by a net delta in one block-boundary walk (cost O(blocks
// crossed) instead of O(|delta|) repeated single steps) and applying a whole
// []Delta batch at once. It is the ingestion fast path for skewed traffic,
// where the same hot objects repeat many times per batch: coalesce the batch
// with a Coalescer, then hand the net deltas to ApplyDeltas.
//
// Strict-mode semantics differ from the per-event path in one documented
// way: the non-negativity check applies to each delta's net result, so a
// batch whose net effect is valid succeeds even if some per-event
// interleaving of it would have failed mid-way. *Profile, *Concurrent,
// *Sharded and *Durable satisfy the capability; the window adapters do not
// (a window must observe every individual tuple to expire it later).
type DeltaUpdater interface {
	// AddN raises the frequency of object x by k (k >= 0) in one step.
	AddN(x int, k int64) error
	// RemoveN lowers the frequency of object x by k (k >= 0) in one step;
	// strict profiles reject a net-negative result.
	RemoveN(x int, k int64) error
	// ApplyDelta applies one coalesced delta, preserving the gross
	// adds/removes counters it records.
	ApplyDelta(d Delta) error
	// ApplyDeltas applies a coalesced batch and reports how many deltas were
	// applied. Implementations may partition the batch across their lock
	// domains; see each implementation for its error semantics.
	ApplyDeltas(deltas []Delta) (int, error)
}

// FrequencyLoader is the optional capability of replacing a profile's whole
// state in one O(m log m) operation: object x ends at frequency freqs[x] and
// the adds/removes counters at the given historical totals. It is the
// restore half of checkpointing — Snapshotter captures an image, a
// FrequencyLoader reinstates one — and is satisfied by *Profile, *Concurrent
// and *Sharded.
type FrequencyLoader interface {
	LoadFrequencies(freqs []int64, adds, removes uint64) error
}

// KeyedProfiler is the key-addressed counterpart of Profiler: the same
// ingestion and query surface, addressed by arbitrary comparable keys
// instead of dense ids. Both Keyed (single-goroutine, global recycling) and
// KeyedConcurrent (lock-striped, per-stripe recycling, safe for concurrent
// use) satisfy it, so callers such as the HTTP server can swap one for the
// other without touching handler code.
type KeyedProfiler[K comparable] interface {
	// Add increments the frequency of key, assigning a dense id if needed
	// and recycling an idle one when the profile is full.
	Add(key K) error
	// Remove decrements the frequency of key; unknown keys are an error.
	Remove(key K) error
	// Apply applies one (key, action) event.
	Apply(key K, action Action) error
	// Track assigns key a dense id without counting anything.
	Track(key K) error

	// Count returns the current frequency of key (zero for unknown keys).
	Count(key K) (int64, error)
	// Mode returns a key with maximum frequency, that frequency, and how
	// many objects share it.
	Mode() (KeyedEntry[K], int, error)
	// Min returns a key with minimum frequency, that frequency, and how
	// many objects share it.
	Min() (KeyedEntry[K], int, error)
	// TopK returns the k most frequent entries.
	TopK(k int) []KeyedEntry[K]
	// BottomK returns the k least frequent entries.
	BottomK(k int) []KeyedEntry[K]
	// KthLargest returns the entry holding the k-th largest frequency.
	KthLargest(k int) (KeyedEntry[K], error)
	// Median returns the lower-median entry of the frequency multiset.
	Median() (KeyedEntry[K], error)
	// Quantile returns the entry at quantile q in [0, 1].
	Quantile(q float64) (KeyedEntry[K], error)
	// Majority returns the key holding a strict majority of the total
	// count, if one exists.
	Majority() (KeyedEntry[K], bool, error)
	// Distribution returns the frequency histogram.
	Distribution() []FreqCount
	// Summarize returns aggregate statistics of the profile.
	Summarize() Summary
	// Cap returns the maximum number of concurrently tracked keys.
	Cap() int
	// Tracked returns the number of keys currently holding a dense id.
	Tracked() int
	// Total returns the sum of all frequencies.
	Total() int64
	// KeyOf resolves a dense id back to its key, when one is assigned.
	KeyOf(id int) (K, bool)
	// QueryKeys answers a composite multi-statistic query atomically; see
	// KeyedQuery and the KeyedQuerier capability.
	QueryKeys(q KeyedQuery[K]) (KeyedQueryResult[K], error)
	// Profile exposes the underlying dense-id profiler for advanced
	// queries as a read-only view; updates through it return ErrReadOnly.
	Profile() Profiler
}

// Compile-time checks that every variant honours the contract.
var (
	_ Profiler = (*Profile)(nil)
	_ Profiler = (*Concurrent)(nil)
	_ Profiler = (*Sharded)(nil)
	_ Profiler = (*Window)(nil)
	_ Profiler = (*TimeWindow)(nil)
	_ Profiler = (*Durable)(nil)
	_ Profiler = (*ReadOnlyProfiler)(nil)
	_ Profiler = (*Async)(nil)

	_ Querier = (*Profile)(nil)
	_ Querier = (*Concurrent)(nil)
	_ Querier = (*Sharded)(nil)
	_ Querier = (*Window)(nil)
	_ Querier = (*TimeWindow)(nil)
	_ Querier = (*Durable)(nil)
	_ Querier = (*ReadOnlyProfiler)(nil)
	_ Querier = (*Async)(nil)

	_ KeyedQuerier[string] = (*Keyed[string])(nil)
	_ KeyedQuerier[string] = (*KeyedConcurrent[string])(nil)

	_ Snapshotter = (*Profile)(nil)
	_ Snapshotter = (*Concurrent)(nil)
	_ Snapshotter = (*Sharded)(nil)

	_ FrequencyLoader = (*Profile)(nil)
	_ FrequencyLoader = (*Concurrent)(nil)
	_ FrequencyLoader = (*Sharded)(nil)

	_ DeltaUpdater = (*Profile)(nil)
	_ DeltaUpdater = (*Concurrent)(nil)
	_ DeltaUpdater = (*Sharded)(nil)
	_ DeltaUpdater = (*Durable)(nil)

	_ KeyedProfiler[string] = (*Keyed[string])(nil)
	_ KeyedProfiler[string] = (*KeyedConcurrent[string])(nil)
	_ KeyedProfiler[string] = (*AsyncKeyed[string])(nil)
	_ KeyedProfiler[int64]  = (*Keyed[int64])(nil)
	_ KeyedProfiler[int64]  = (*KeyedConcurrent[int64])(nil)
	_ KeyedProfiler[int64]  = (*AsyncKeyed[int64])(nil)
)
