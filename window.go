package sprofile

import (
	"time"

	"sprofile/internal/window"
)

// windowReader supplies the Reader half of the Profiler contract for both
// window adapters by delegating every query to the windowed profile, so the
// thirteen-method surface is written once.
type windowReader struct {
	p *Profile
}

// Profile returns the windowed profile for advanced queries (rank lookups,
// snapshots). The common statistics are available on the adapter directly.
func (r windowReader) Profile() *Profile { return r.p }

// Count returns the frequency of object x inside the window.
func (r windowReader) Count(x int) (int64, error) { return r.p.Count(x) }

// Mode returns an object with maximum in-window frequency, that frequency,
// and how many objects share it.
func (r windowReader) Mode() (Entry, int, error) { return r.p.Mode() }

// Min returns an object with minimum in-window frequency, that frequency,
// and how many objects share it.
func (r windowReader) Min() (Entry, int, error) { return r.p.Min() }

// TopK returns the k most frequent in-window entries.
func (r windowReader) TopK(k int) []Entry { return r.p.TopK(k) }

// BottomK returns the k least frequent in-window entries.
func (r windowReader) BottomK(k int) []Entry { return r.p.BottomK(k) }

// KthLargest returns the entry holding the k-th largest in-window frequency.
func (r windowReader) KthLargest(k int) (Entry, error) { return r.p.KthLargest(k) }

// Median returns the lower-median entry of the in-window frequency multiset.
func (r windowReader) Median() (Entry, error) { return r.p.Median() }

// Quantile returns the entry at quantile q in [0, 1] of the in-window
// frequency multiset.
func (r windowReader) Quantile(q float64) (Entry, error) { return r.p.Quantile(q) }

// Majority returns the object holding a strict majority of the in-window
// total, if one exists.
func (r windowReader) Majority() (Entry, bool, error) { return r.p.Majority() }

// Distribution returns the in-window frequency histogram.
func (r windowReader) Distribution() []FreqCount { return r.p.Distribution() }

// Summarize returns aggregate statistics of the windowed profile.
func (r windowReader) Summarize() Summary { return r.p.Summarize() }

// Query answers a composite query in one pass over the windowed profile,
// which reflects exactly the expiry sweep of the newest push: every selected
// statistic describes the same window contents. Window adapters are
// single-goroutine, so no locking is involved; a TimeWindow whose newest
// push is old can run an explicit expiry sweep first via QueryAt.
func (r windowReader) Query(q Query) (QueryResult, error) { return r.p.Query(q) }

// Cap returns the number of object slots.
func (r windowReader) Cap() int { return r.p.Cap() }

// Total returns the sum of all in-window frequencies.
func (r windowReader) Total() int64 { return r.p.Total() }

// Window maintains a count-based sliding window over a log stream on top of a
// Profile, as sketched in §2.3 of the paper: when a tuple falls out of the
// window it is replayed with the opposite action, so the profile always
// reflects exactly the last Size() tuples and every push remains O(1).
type Window struct {
	inner *window.Window
	windowReader
}

// NewWindow returns a sliding window of size tuples over profile p. The
// profile must not be updated directly while the window is in use.
func NewWindow(p *Profile, size int) (*Window, error) {
	if p == nil {
		return nil, errNilProfiler
	}
	w, err := window.New(p, size)
	if err != nil {
		return nil, err
	}
	return &Window{inner: w, windowReader: windowReader{p: p}}, nil
}

// MustNewWindow is NewWindow for callers with known-good arguments; it panics
// on error.
func MustNewWindow(p *Profile, size int) *Window {
	w, err := NewWindow(p, size)
	if err != nil {
		panic(err)
	}
	return w
}

// Push applies one tuple to the window, expiring the oldest tuple first when
// the window is full. On error the window and profile are left unchanged.
func (w *Window) Push(t Tuple) error { return w.inner.Push(t) }

// Add pushes an "add" event for object x.
func (w *Window) Add(x int) error { return w.Push(Tuple{Object: x, Action: ActionAdd}) }

// Remove pushes a "remove" event for object x.
func (w *Window) Remove(x int) error { return w.Push(Tuple{Object: x, Action: ActionRemove}) }

// Apply pushes one log tuple through the window; it is Push under the name
// the Updater interface requires, so a Window can stand in for any Profiler.
func (w *Window) Apply(t Tuple) error { return w.Push(t) }

// ApplyAll pushes tuples in order, stopping at the first error; it returns
// the number of tuples pushed.
func (w *Window) ApplyAll(tuples []Tuple) (int, error) { return w.inner.PushAll(tuples) }

// Size returns the window capacity in tuples.
func (w *Window) Size() int { return w.inner.Size() }

// Len returns the number of tuples currently inside the window.
func (w *Window) Len() int { return w.inner.Len() }

// Full reports whether every new push will expire the oldest tuple.
func (w *Window) Full() bool { return w.inner.Full() }

// Contents returns the tuples currently inside the window, oldest first.
func (w *Window) Contents() []Tuple { return w.inner.Contents() }

// Drain expires every tuple still in the window, returning the profile to an
// all-zero state.
func (w *Window) Drain() error { return w.inner.Drain() }

// Stats returns how many tuples have been pushed and how many have expired.
func (w *Window) Stats() (pushed, expired uint64) { return w.inner.Stats() }

// TimeWindow maintains a duration-based sliding window over a Profile: the
// profile always reflects exactly the tuples whose event times lie within the
// last Span() of logical time (the timestamp of the newest push). Expired
// tuples are replayed with the opposite action (paper §2.3), so the amortised
// cost per push stays O(1).
type TimeWindow struct {
	inner *window.TimeWindow
	windowReader
}

// NewTimeWindow returns a sliding window of the given time span over profile
// p. The profile must not be updated directly while the window is in use.
func NewTimeWindow(p *Profile, span time.Duration) (*TimeWindow, error) {
	if p == nil {
		return nil, errNilProfiler
	}
	w, err := window.NewTime(p, span)
	if err != nil {
		return nil, err
	}
	return &TimeWindow{inner: w, windowReader: windowReader{p: p}}, nil
}

// MustNewTimeWindow is NewTimeWindow for callers with known-good arguments;
// it panics on error.
func MustNewTimeWindow(p *Profile, span time.Duration) *TimeWindow {
	w, err := NewTimeWindow(p, span)
	if err != nil {
		panic(err)
	}
	return w
}

// PushAt applies one tuple stamped with the given event time. Timestamps must
// be non-decreasing.
func (w *TimeWindow) PushAt(t Tuple, at time.Time) error { return w.inner.PushAt(t, at) }

// Push applies one tuple stamped with the current wall-clock time.
func (w *TimeWindow) Push(t Tuple) error { return w.inner.Push(t) }

// AdvanceTo moves the window's logical time forward without adding a tuple,
// expiring everything that falls out of the span.
func (w *TimeWindow) AdvanceTo(now time.Time) error { return w.inner.AdvanceTo(now) }

// Add pushes an "add" event for object x stamped with the current wall-clock
// time. Replaying historical logs should use PushAt instead.
func (w *TimeWindow) Add(x int) error { return w.Push(Tuple{Object: x, Action: ActionAdd}) }

// Remove pushes a "remove" event for object x stamped with the current
// wall-clock time.
func (w *TimeWindow) Remove(x int) error { return w.Push(Tuple{Object: x, Action: ActionRemove}) }

// Apply pushes one log tuple stamped with the current wall-clock time.
func (w *TimeWindow) Apply(t Tuple) error { return w.Push(t) }

// ApplyAll pushes tuples in order stamped with the current wall-clock time,
// stopping at the first error; it returns the number of tuples pushed.
func (w *TimeWindow) ApplyAll(tuples []Tuple) (int, error) {
	for i, t := range tuples {
		if err := w.Push(t); err != nil {
			return i, err
		}
	}
	return len(tuples), nil
}

// QueryAt advances the window's logical time to now — expiring everything
// that falls out of the span, exactly like AdvanceTo — and then answers the
// composite query, so every selected statistic describes the window ending
// at now. It is the "one expiry sweep, then one cut" form of Query for
// callers whose newest push is older than the moment they are asking about.
func (w *TimeWindow) QueryAt(now time.Time, q Query) (QueryResult, error) {
	if err := w.inner.AdvanceTo(now); err != nil {
		return QueryResult{}, err
	}
	return w.windowReader.Query(q)
}

// Span returns the window length.
func (w *TimeWindow) Span() time.Duration { return w.inner.Span() }

// Len returns the number of tuples currently inside the window.
func (w *TimeWindow) Len() int { return w.inner.Len() }

// Stats returns how many tuples have been pushed and how many have expired.
func (w *TimeWindow) Stats() (pushed, expired uint64) { return w.inner.Stats() }
