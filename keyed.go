package sprofile

import (
	"errors"

	"sprofile/internal/core"
	"sprofile/internal/idmap"
)

// KeyedEntry pairs a caller key with its frequency. The JSON form is the one
// the keyed composite-query wire format uses.
type KeyedEntry[K comparable] struct {
	Key       K     `json:"key"`
	Frequency int64 `json:"frequency"`
}

// Keyed profiles objects identified by arbitrary comparable keys (user names,
// URLs, sparse numeric ids). It combines an id mapper with an S-Profile: the
// mapper assigns each live key a dense id, the profile tracks the dense ids,
// and every query is translated back to keys.
//
// Capacity semantics: a Keyed profile can track at most m keys at once. With
// recycling enabled (the default), a key whose frequency returns to zero has
// its dense id released on its next eviction scan, so m bounds the number of
// *currently relevant* objects rather than all objects ever seen. Keyed
// profiles with recycling are always strict non-negative, because a recycled
// id must start from a clean zero frequency.
//
// A Keyed profile wraps any dense-id Profiler — a plain Profile by default
// (NewKeyed), or whatever Build assembled (NewKeyedOver), e.g. a sharded
// profile for lower lock contention. The id mapper itself is not safe for
// concurrent use; serialise Keyed access in the caller even when the inner
// profiler is synchronized, or use BuildKeyed's KeyedConcurrent, which is
// safe for concurrent use end to end.
type Keyed[K comparable] struct {
	keyedQueries[K]
	ids     *idmap.Mapper[K]
	recycle bool
}

// keyedQueries is the read-side shared by Keyed and KeyedConcurrent: every
// statistic is answered by the dense profiler and translated back to keys
// through the resolver. Embedding it keeps the translation logic in one
// place; the ingestion paths (and their locking disciplines) stay with the
// concrete types.
type keyedQueries[K comparable] struct {
	profile  Profiler
	resolver keyResolver[K]
}

// keyResolver resolves a dense id back to its key; both idmap.Mapper and
// idmap.Striped satisfy it.
type keyResolver[K comparable] interface {
	Key(id int) (K, bool)
}

// Cap returns the maximum number of concurrently tracked keys.
func (q *keyedQueries[K]) Cap() int { return q.profile.Cap() }

// Total returns the sum of all frequencies.
func (q *keyedQueries[K]) Total() int64 { return q.profile.Total() }

// entryToKeyed converts a dense-id entry into a keyed entry; slots not bound
// to a key report the zero value of K.
func (q *keyedQueries[K]) entryToKeyed(e Entry) KeyedEntry[K] {
	key, _ := q.resolver.Key(e.Object)
	return KeyedEntry[K]{Key: key, Frequency: e.Frequency}
}

// Mode returns a key with the maximum frequency, the frequency, and the
// number of objects sharing it.
func (q *keyedQueries[K]) Mode() (KeyedEntry[K], int, error) {
	e, ties, err := q.profile.Mode()
	if err != nil {
		return KeyedEntry[K]{}, 0, err
	}
	return q.entryToKeyed(e), ties, nil
}

// Min returns a key with the minimum frequency, the frequency, and the
// number of objects sharing it. Slots not currently bound to a key report
// the zero value of K.
func (q *keyedQueries[K]) Min() (KeyedEntry[K], int, error) {
	e, ties, err := q.profile.Min()
	if err != nil {
		return KeyedEntry[K]{}, 0, err
	}
	return q.entryToKeyed(e), ties, nil
}

// TopK returns the n most frequent entries in non-increasing frequency
// order. Untracked slots (frequency zero, never used) may appear when fewer
// than n keys have been added; their Key field is the zero value.
func (q *keyedQueries[K]) TopK(n int) []KeyedEntry[K] {
	return q.translate(q.profile.TopK(n))
}

// BottomK returns the n least frequent entries in non-decreasing frequency
// order, with the same untracked-slot caveat as TopK.
func (q *keyedQueries[K]) BottomK(n int) []KeyedEntry[K] {
	return q.translate(q.profile.BottomK(n))
}

func (q *keyedQueries[K]) translate(entries []Entry) []KeyedEntry[K] {
	if len(entries) == 0 {
		return nil
	}
	out := make([]KeyedEntry[K], len(entries))
	for i, e := range entries {
		out[i] = q.entryToKeyed(e)
	}
	return out
}

// KthLargest returns the keyed entry holding the k-th largest frequency
// (1-based: k=1 is a mode representative).
func (q *keyedQueries[K]) KthLargest(n int) (KeyedEntry[K], error) {
	e, err := q.profile.KthLargest(n)
	if err != nil {
		return KeyedEntry[K]{}, err
	}
	return q.entryToKeyed(e), nil
}

// Median returns the lower-median keyed entry of the frequency multiset over
// all m slots.
func (q *keyedQueries[K]) Median() (KeyedEntry[K], error) {
	e, err := q.profile.Median()
	if err != nil {
		return KeyedEntry[K]{}, err
	}
	return q.entryToKeyed(e), nil
}

// Quantile returns the keyed entry at quantile q in [0, 1] of the frequency
// multiset over all m slots (nearest-rank definition).
func (q *keyedQueries[K]) Quantile(quant float64) (KeyedEntry[K], error) {
	e, err := q.profile.Quantile(quant)
	if err != nil {
		return KeyedEntry[K]{}, err
	}
	return q.entryToKeyed(e), nil
}

// Majority returns the key holding a strict majority of the total count, if
// one exists.
func (q *keyedQueries[K]) Majority() (KeyedEntry[K], bool, error) {
	e, ok, err := q.profile.Majority()
	if err != nil || !ok {
		return KeyedEntry[K]{}, false, err
	}
	return q.entryToKeyed(e), true, nil
}

// Distribution returns the frequency histogram in ascending frequency order.
func (q *keyedQueries[K]) Distribution() []FreqCount { return q.profile.Distribution() }

// Summarize returns aggregate statistics of the underlying profile.
func (q *keyedQueries[K]) Summarize() Summary { return q.profile.Summarize() }

// Profile exposes the underlying dense-id profiler for advanced queries
// (rank lookups, composite queries, snapshots via the Snapshotter
// capability) as a read-only view: updates through it return ErrReadOnly,
// because mutating the dense profile behind the mapper's back
// desynchronises the key mapping and the recycling bookkeeping. Callers
// that accept that hazard can get the writable profiler back with
// (*ReadOnlyProfiler).Unwrap.
func (q *keyedQueries[K]) Profile() Profiler { return NewReadOnly(q.profile) }

// translateQueryResult resolves every dense id in a composite query answer
// back to its key through the resolver. The caller guarantees the resolver
// cannot change between the statistics and the translation (single
// goroutine for Keyed, a quiesced mapper for KeyedConcurrent).
func (q *keyedQueries[K]) translateQueryResult(dr QueryResult) KeyedQueryResult[K] {
	var out KeyedQueryResult[K]
	if dr.Mode != nil {
		out.Mode = &KeyedExtreme[K]{KeyedEntry: q.entryToKeyed(dr.Mode.Entry), Ties: dr.Mode.Ties}
	}
	if dr.Min != nil {
		out.Min = &KeyedExtreme[K]{KeyedEntry: q.entryToKeyed(dr.Min.Entry), Ties: dr.Min.Ties}
	}
	out.TopK = q.translate(dr.TopK)
	out.BottomK = q.translate(dr.BottomK)
	out.KthLargest = q.translate(dr.KthLargest)
	if dr.Median != nil {
		e := q.entryToKeyed(*dr.Median)
		out.Median = &e
	}
	if len(dr.Quantiles) > 0 {
		out.Quantiles = make([]KeyedQuantile[K], len(dr.Quantiles))
		for i, qe := range dr.Quantiles {
			out.Quantiles[i] = KeyedQuantile[K]{Q: qe.Q, KeyedEntry: q.entryToKeyed(qe.Entry)}
		}
	}
	if dr.Majority != nil {
		out.Majority = &KeyedMajority[K]{Majority: dr.Majority.Majority}
		if dr.Majority.Majority {
			out.Majority.KeyedEntry = q.entryToKeyed(dr.Majority.Entry)
		}
	}
	out.Distribution = dr.Distribution
	out.Summary = dr.Summary
	return out
}

// queryDense answers the dense half of a keyed composite query through the
// inner profiler's own Querier capability when present (it always is for the
// profiles NewKeyed and BuildKeyed construct).
func (q *keyedQueries[K]) queryDense(dq Query) (QueryResult, error) {
	return QueryProfiler(q.profile, dq)
}

// KeyOf resolves a dense id back to its key, when one is assigned.
func (q *keyedQueries[K]) KeyOf(id int) (K, bool) { return q.resolver.Key(id) }

// KeyedOption configures a Keyed profile.
type KeyedOption func(*keyedOptions)

type keyedOptions struct {
	recycle bool
}

// WithoutRecycling keeps a key's dense id assigned even after its frequency
// returns to zero. Use it when the key set is closed (e.g. a fixed catalogue)
// or when negative frequencies are meaningful; without recycling the profile
// follows the paper's default semantics and allows negative frequencies.
func WithoutRecycling() KeyedOption {
	return func(o *keyedOptions) { o.recycle = false }
}

// NewKeyed returns a Keyed profile able to track up to m concurrent keys,
// backed by a plain Profile.
func NewKeyed[K comparable](m int, opts ...KeyedOption) (*Keyed[K], error) {
	o := keyedOptions{recycle: true}
	for _, opt := range opts {
		opt(&o)
	}
	var coreOpts []Option
	if o.recycle {
		coreOpts = append(coreOpts, WithStrictNonNegative())
	}
	p, err := core.New(m, coreOpts...)
	if err != nil {
		return nil, err
	}
	return newKeyedOver[K](p, o)
}

// NewKeyedOver returns a Keyed profile backed by an existing dense-id
// profiler — typically one assembled with Build, so key-addressed callers
// get sharding or durability by swapping the Build options. With recycling
// enabled (the default) the profiler must have been built with
// WithStrictNonNegative, or idle ids cannot be detected reliably. The caller
// must stop using the profiler directly afterwards.
func NewKeyedOver[K comparable](p Profiler, opts ...KeyedOption) (*Keyed[K], error) {
	if p == nil {
		return nil, errNilProfiler
	}
	o := keyedOptions{recycle: true}
	for _, opt := range opts {
		opt(&o)
	}
	return newKeyedOver[K](p, o)
}

func newKeyedOver[K comparable](p Profiler, o keyedOptions) (*Keyed[K], error) {
	ids, err := idmap.New[K](p.Cap())
	if err != nil {
		return nil, err
	}
	return &Keyed[K]{
		keyedQueries: keyedQueries[K]{profile: p, resolver: ids},
		ids:          ids,
		recycle:      o.recycle,
	}, nil
}

// MustNewKeyed is NewKeyed for callers with a known-good capacity; it panics
// on error.
func MustNewKeyed[K comparable](m int, opts ...KeyedOption) *Keyed[K] {
	k, err := NewKeyed[K](m, opts...)
	if err != nil {
		panic(err)
	}
	return k
}

// Tracked returns the number of keys currently holding a dense id.
func (k *Keyed[K]) Tracked() int { return k.ids.Len() }

// Add increments the frequency of key, assigning it a dense id if needed.
// When the profile is full, Add first tries to recycle the id of a key whose
// frequency is zero; if none exists it returns ErrKeyedFull.
func (k *Keyed[K]) Add(key K) error {
	id, isNew, err := k.ids.Acquire(key)
	if errors.Is(err, idmap.ErrFull) && k.recycle {
		if k.evictOneZero() {
			id, isNew, err = k.ids.Acquire(key)
		}
	}
	if err != nil {
		return err
	}
	_ = isNew
	return k.profile.Add(id)
}

// evictOneZero releases the dense id of one key whose frequency is zero,
// returning whether an id was freed. Cost O(1): the profile keeps zero
// frequencies contiguous in its sorted order, so a single rank probe finds a
// candidate.
func (k *Keyed[K]) evictOneZero() bool {
	// The minimum frequency in a strict profile is zero exactly when at least
	// one tracked key is idle (frequency zero).
	entry, _, err := k.profile.Min()
	if err != nil || entry.Frequency != 0 {
		return false
	}
	key, ok := k.ids.Key(entry.Object)
	if !ok {
		// The zero-frequency slot is not bound to any key (never used); it is
		// already available to Acquire.
		return false
	}
	if _, err := k.ids.Release(key); err != nil {
		return false
	}
	return true
}

// Track assigns key a dense id without counting anything, so a catalogue can
// be registered ahead of its events. A tracked key sits at frequency zero
// and, with recycling enabled, remains an eviction candidate until its first
// Add.
func (k *Keyed[K]) Track(key K) error {
	_, _, err := k.ids.Acquire(key)
	if errors.Is(err, idmap.ErrFull) && k.recycle && k.evictOneZero() {
		_, _, err = k.ids.Acquire(key)
	}
	return err
}

// Remove decrements the frequency of key. Removing an unknown key is an
// error: with recycling enabled frequencies cannot go negative, and without
// recycling the key must still be added first to receive an id.
func (k *Keyed[K]) Remove(key K) error {
	id, err := k.ids.DenseID(key)
	if err != nil {
		return err
	}
	return k.profile.Remove(id)
}

// Apply applies one (key, action) event.
func (k *Keyed[K]) Apply(key K, action Action) error {
	switch action {
	case ActionAdd:
		return k.Add(key)
	case ActionRemove:
		return k.Remove(key)
	default:
		return errInvalidAction(action)
	}
}

// QueryKeys answers a keyed composite query: the dense statistics are read
// through the inner profiler's Querier capability, requested per-key counts
// are resolved through the id mapping (unknown keys count as zero, like the
// Count getter), and every dense id in the answer is translated back to its
// key. A Keyed profile is single-goroutine, so the whole sequence is one
// consistent cut by construction.
func (k *Keyed[K]) QueryKeys(q KeyedQuery[K]) (KeyedQueryResult[K], error) {
	dres, err := k.queryDense(q.dense())
	if err != nil {
		return KeyedQueryResult[K]{}, err
	}
	out := k.translateQueryResult(dres)
	if len(q.Count) > 0 {
		out.Counts = make([]KeyedEntry[K], len(q.Count))
		for i, key := range q.Count {
			f, err := k.Count(key)
			if err != nil {
				return KeyedQueryResult[K]{}, err
			}
			out.Counts[i] = KeyedEntry[K]{Key: key, Frequency: f}
		}
	}
	return out, nil
}

// Count returns the current frequency of key (zero for unknown keys).
func (k *Keyed[K]) Count(key K) (int64, error) {
	id, err := k.ids.DenseID(key)
	if err != nil {
		if errors.Is(err, idmap.ErrUnknownKey) {
			return 0, nil
		}
		return 0, err
	}
	return k.profile.Count(id)
}
