package sprofile_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprofile"
)

// TestAsyncStress runs the full plane under the race detector: several
// producers hammering tiny mailboxes (so the block-mode backpressure path
// is exercised constantly), while readers verify one-cut invariants on
// epoch snapshots and other goroutines interleave Flush and Checkpoint.
// Add-only traffic makes the final totals exactly checkable.
func TestAsyncStress(t *testing.T) {
	const (
		producers   = 4
		perProducer = 5_000
		m           = 64
	)
	path := filepath.Join(t.TempDir(), "stress.wal")
	p, err := sprofile.Build(m,
		sprofile.WithSharding(4),
		sprofile.WithWAL(path),
		sprofile.WithAsyncIngest(sprofile.AsyncPolicy{
			MailboxDepth:    8, // tiny: forces the backpressure wait path
			PublishEvents:   64,
			PublishInterval: time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	a := p.(*sprofile.Async)

	var wg sync.WaitGroup
	var readersWg sync.WaitGroup
	stopReaders := make(chan struct{})

	// Readers: every answer must be one consistent cut of SOME epoch —
	// the distribution, the summary and the mode all agree internally even
	// while ingestion runs full tilt.
	readerErr := make(chan error, 8)
	for r := 0; r < 2; r++ {
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				res, err := a.Query(sprofile.Query{Summary: true, Distribution: true, TopK: 1})
				if err != nil {
					readerErr <- fmt.Errorf("Query: %w", err)
					return
				}
				var distTotal int64
				var distMax int64
				for _, fc := range res.Distribution {
					distTotal += fc.Freq * int64(fc.Count)
					if fc.Freq > distMax {
						distMax = fc.Freq
					}
				}
				if distTotal != res.Summary.Total {
					readerErr <- fmt.Errorf("torn epoch: distribution sums to %d, summary total %d", distTotal, res.Summary.Total)
					return
				}
				if distMax != res.Summary.MaxFrequency {
					readerErr <- fmt.Errorf("torn epoch: distribution max %d, summary max %d", distMax, res.Summary.MaxFrequency)
					return
				}
				if len(res.TopK) > 0 && res.TopK[0].Frequency != res.Summary.MaxFrequency {
					readerErr <- fmt.Errorf("torn epoch: top-1 frequency %d, summary max %d", res.TopK[0].Frequency, res.Summary.MaxFrequency)
					return
				}
			}
		}()
	}

	// Flushers and a checkpointer, concurrent with everything.
	var flushErrs atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := a.Flush(); err != nil {
				flushErrs.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := a.Checkpoint(); err != nil {
				readerErr <- fmt.Errorf("Checkpoint: %w", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Producers: dedicated handles, add-only, uniform over all objects.
	prodErr := make(chan error, producers)
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h, err := a.Producer()
			if err != nil {
				prodErr <- err
				return
			}
			defer h.Close()
			for i := 0; i < perProducer; i++ {
				if err := h.Add((seed*31 + i) % m); err != nil {
					prodErr <- fmt.Errorf("producer %d event %d: %w", seed, i, err)
					return
				}
			}
		}(pr)
	}

	// Wait for producers, then stop the readers and join everyone.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-readerErr:
		t.Fatal(err)
	case err := <-prodErr:
		t.Fatal(err)
	case <-time.After(120 * time.Second):
		t.Fatalf("stress run wedged; stats: %+v", a.Stats())
	}
	close(stopReaders)
	readersWg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	if err := a.Flush(); err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	const want = producers * perProducer
	if got := a.Total(); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	st := a.Stats()
	if st.Applied != want || st.Queued != 0 {
		t.Fatalf("Stats = %+v, want %d applied, 0 queued", st, want)
	}
	if flushErrs.Load() != 0 {
		t.Fatalf("%d concurrent flushes returned errors on an add-only stream", flushErrs.Load())
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recovery: the WAL (tail + checkpoints taken mid-flight) must rebuild
	// the exact same profile.
	p2, err := sprofile.Build(m, sprofile.WithSharding(4), sprofile.WithWAL(path))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := p2.Total(); got != want {
		t.Fatalf("restored Total = %d, want %d", got, want)
	}
	for x := 0; x < m; x++ {
		wantC, _ := a.Count(x) // final published epoch
		gotC, _ := p2.Count(x)
		if wantC != gotC {
			t.Fatalf("restored Count(%d) = %d, want %d", x, gotC, wantC)
		}
	}
}

// TestAsyncKeyedStress runs the keyed plane under the race detector:
// producers over a shared key space (stripe routing, id assignment and
// recycling bookkeeping all live), concurrent keyed composite queries,
// Flush/Checkpoint interleaved, then an exact final count per key.
func TestAsyncKeyedStress(t *testing.T) {
	const (
		producers   = 4
		perProducer = 4_000
		keys        = 40
	)
	path := filepath.Join(t.TempDir(), "keyed-stress.wal")
	ak, err := sprofile.BuildKeyedAsync[string](keys, sprofile.AsyncPolicy{
		MailboxDepth:    8,
		PublishEvents:   64,
		PublishInterval: time.Millisecond,
	}, sprofile.WithSharding(4), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var readersWg sync.WaitGroup
	stopReaders := make(chan struct{})
	readerErr := make(chan error, 8)
	readersWg.Add(1)
	go func() {
		defer readersWg.Done()
		for {
			select {
			case <-stopReaders:
				return
			default:
			}
			res, err := ak.QueryKeys(sprofile.KeyedQuery[string]{Summary: true, Distribution: true})
			if err != nil {
				readerErr <- fmt.Errorf("QueryKeys: %w", err)
				return
			}
			var distTotal int64
			for _, fc := range res.Distribution {
				distTotal += fc.Freq * int64(fc.Count)
			}
			if distTotal != res.Summary.Total {
				readerErr <- fmt.Errorf("torn keyed epoch: distribution sums to %d, summary total %d", distTotal, res.Summary.Total)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			ak.Flush()
			if err := ak.Checkpoint(); err != nil {
				readerErr <- fmt.Errorf("Checkpoint: %w", err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	prodErr := make(chan error, producers)
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h, err := ak.Producer()
			if err != nil {
				prodErr <- err
				return
			}
			defer h.Close()
			for i := 0; i < perProducer; i++ {
				if err := h.Add(fmt.Sprintf("key-%d", (seed*17+i)%keys)); err != nil {
					prodErr <- fmt.Errorf("producer %d event %d: %w", seed, i, err)
					return
				}
			}
		}(pr)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-readerErr:
		t.Fatal(err)
	case err := <-prodErr:
		t.Fatal(err)
	case <-time.After(120 * time.Second):
		t.Fatalf("keyed stress run wedged; stats: %+v", ak.Stats())
	}
	close(stopReaders)
	readersWg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	if err := ak.Flush(); err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	const want = producers * perProducer
	if got := ak.Total(); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	// Uniform traffic: every key got exactly want/keys adds.
	for k := 0; k < keys; k++ {
		c, err := ak.Count(fmt.Sprintf("key-%d", k))
		if err != nil || c != want/keys {
			t.Fatalf("Count(key-%d) = %d, %v; want %d, nil", k, c, err, want/keys)
		}
	}
	if err := ak.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestAsyncBackpressureErrorConcurrent verifies the fail-fast mode under
// contention: rejected events are never applied, so the flushed total
// equals successes exactly.
func TestAsyncBackpressureErrorConcurrent(t *testing.T) {
	p, err := sprofile.Build(16, sprofile.WithSharding(2),
		sprofile.WithAsyncIngest(sprofile.AsyncPolicy{
			MailboxDepth: 4,
			Backpressure: sprofile.BackpressureError,
		}))
	if err != nil {
		t.Fatal(err)
	}
	a := p.(*sprofile.Async)
	defer a.Close()

	const producers = 3
	var accepted atomic.Int64
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := a.Producer()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Close()
			for i := 0; i < 20_000; i++ {
				switch err := h.Add(i % 16); {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, sprofile.ErrBackpressure):
					rejected.Add(1)
				default:
					t.Errorf("Add = %v, want nil or ErrBackpressure", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := a.Total(); got != accepted.Load() {
		t.Fatalf("Total = %d, want %d accepted (%d rejected)", got, accepted.Load(), rejected.Load())
	}
	if st := a.Stats(); st.Drops != uint64(rejected.Load()) {
		t.Fatalf("Stats.Drops = %d, want %d", st.Drops, rejected.Load())
	}
}
