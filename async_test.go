package sprofile_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprofile"
	"sprofile/profilertest"
)

// asyncTestPolicy keeps idle appliers quiet during tests; exactness comes
// from Flush, not the cadence.
func asyncTestPolicy() sprofile.AsyncPolicy {
	return sprofile.AsyncPolicy{PublishInterval: 50 * time.Millisecond}
}

// flushedAsync adapts an async profiler to the synchronous semantics the
// conformance battery asserts: every update flushes (surfacing deferred
// apply errors at the call, and restoring read-your-write), every read
// flushes first. It is the documented migration recipe for code that needs
// exactness — what the battery verifies is that enqueue + Flush is
// observationally identical to the synchronous profile.
type flushedAsync struct {
	p     sprofile.Profiler
	flush func() error
}

func (f *flushedAsync) sync(opErr error) error {
	ferr := f.flush()
	if opErr != nil {
		return opErr
	}
	return ferr
}

func (f *flushedAsync) Add(x int) error    { return f.sync(f.p.Add(x)) }
func (f *flushedAsync) Remove(x int) error { return f.sync(f.p.Remove(x)) }
func (f *flushedAsync) Apply(t sprofile.Tuple) error {
	return f.sync(f.p.Apply(t))
}

func (f *flushedAsync) ApplyAll(tuples []sprofile.Tuple) (int, error) {
	n, err := f.p.ApplyAll(tuples)
	return n, f.sync(err)
}

func (f *flushedAsync) Count(x int) (int64, error) {
	f.flush()
	return f.p.Count(x)
}
func (f *flushedAsync) Mode() (sprofile.Entry, int, error) { f.flush(); return f.p.Mode() }
func (f *flushedAsync) Min() (sprofile.Entry, int, error)  { f.flush(); return f.p.Min() }
func (f *flushedAsync) TopK(k int) []sprofile.Entry        { f.flush(); return f.p.TopK(k) }
func (f *flushedAsync) BottomK(k int) []sprofile.Entry     { f.flush(); return f.p.BottomK(k) }
func (f *flushedAsync) KthLargest(k int) (sprofile.Entry, error) {
	f.flush()
	return f.p.KthLargest(k)
}
func (f *flushedAsync) Median() (sprofile.Entry, error) { f.flush(); return f.p.Median() }
func (f *flushedAsync) Quantile(q float64) (sprofile.Entry, error) {
	f.flush()
	return f.p.Quantile(q)
}
func (f *flushedAsync) Majority() (sprofile.Entry, bool, error) { f.flush(); return f.p.Majority() }
func (f *flushedAsync) Distribution() []sprofile.FreqCount      { f.flush(); return f.p.Distribution() }
func (f *flushedAsync) Summarize() sprofile.Summary             { f.flush(); return f.p.Summarize() }
func (f *flushedAsync) Cap() int                                { return f.p.Cap() }
func (f *flushedAsync) Total() int64                            { f.flush(); return f.p.Total() }

// TestAsyncProfilerConformance holds the async ingest plane to the same
// update/query/error semantics as every synchronous variant: enqueue + Flush
// must be observationally identical to a direct apply, across the sharded,
// unsharded, WAL-backed and keyed assemblies.
func TestAsyncProfilerConformance(t *testing.T) {
	newFlushed := func(p sprofile.Profiler, err error) (sprofile.Profiler, error) {
		if err != nil {
			return nil, err
		}
		a := p.(*sprofile.Async)
		t.Cleanup(func() { a.Close() })
		return &flushedAsync{p: a, flush: a.Flush}, nil
	}

	profilertest.Run(t, "Async-Sharded", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		return newFlushed(sprofile.Build(m,
			sprofile.WithSharding(4),
			sprofile.WithAsyncIngest(asyncTestPolicy()),
			sprofile.WithOptions(opts...)))
	})
	profilertest.Run(t, "Async-Unsharded", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		p, err := sprofile.New(m, opts...)
		if err != nil {
			return nil, err
		}
		a, err := sprofile.NewAsync(p, asyncTestPolicy())
		if err != nil {
			return nil, err
		}
		t.Cleanup(func() { a.Close() })
		return &flushedAsync{p: a, flush: a.Flush}, nil
	})

	walDir := t.TempDir()
	walSeq := 0
	profilertest.Run(t, "Async-WAL", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		walSeq++
		path := filepath.Join(walDir, fmt.Sprintf("async-%d.wal", walSeq))
		if err := os.RemoveAll(path); err != nil {
			return nil, err
		}
		return newFlushed(sprofile.Build(m,
			sprofile.WithSharding(3),
			sprofile.WithWAL(path),
			sprofile.WithAsyncIngest(asyncTestPolicy()),
			sprofile.WithOptions(opts...)))
	})

	// The keyed async plane runs through the same battery via the keyed
	// adapter: key→stripe routing, per-stripe appliers and epoch-translated
	// reads must preserve the reference semantics exactly.
	profilertest.Run(t, "AsyncKeyed-4", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		ak, err := sprofile.BuildKeyedAsync[int](m, asyncTestPolicy(),
			sprofile.WithSharding(4),
			sprofile.WithoutKeyRecycling(),
			sprofile.WithOptions(opts...))
		if err != nil {
			return nil, err
		}
		t.Cleanup(func() { ak.Close() })
		adapter, err := newKeyedAdapter(ak, m)
		if err != nil {
			return nil, err
		}
		return &flushedAsync{p: adapter, flush: ak.Flush}, nil
	})
}

// TestAsyncRestoredConformance holds the async Flush→Checkpoint→Close→reopen
// cycle to the full battery: every query is answered by a profile rebuilt
// from the WAL (alternating snapshot-restored and tail-replayed recovery)
// that must agree exactly with the in-memory reference — the "Flush then
// Checkpoint captures the exact cut" contract.
func TestAsyncRestoredConformance(t *testing.T) {
	dir := t.TempDir()
	seq := 0
	profilertest.Run(t, "Async-WAL-Restored", func(m int, opts ...sprofile.Option) (sprofile.Profiler, error) {
		seq++
		path := filepath.Join(dir, fmt.Sprintf("async-restored-%d.wal", seq))
		build := func() (sprofile.Profiler, error) {
			p, err := sprofile.Build(m,
				sprofile.WithSharding(3),
				sprofile.WithWAL(path),
				sprofile.WithAsyncIngest(asyncTestPolicy()),
				sprofile.WithOptions(opts...))
			if err != nil {
				return nil, err
			}
			a := p.(*sprofile.Async)
			return &flushedAsync{p: a, flush: a.Flush}, nil
		}
		cur, err := build()
		if err != nil {
			return nil, err
		}
		return &restoredProfiler{cur: cur, reopen: func(cur sprofile.Profiler, cycle int) (sprofile.Profiler, error) {
			a := cur.(*flushedAsync).p.(*sprofile.Async)
			if err := a.Flush(); err != nil {
				return nil, err
			}
			if cycle%2 == 0 {
				if err := a.Checkpoint(); err != nil {
					return nil, err
				}
			}
			if err := a.Close(); err != nil {
				return nil, err
			}
			return build()
		}}, nil
	})
}

// TestAsyncFlushReadYourWrite verifies the migration contract directly:
// enqueued events may be invisible, Flush makes them visible.
func TestAsyncFlushReadYourWrite(t *testing.T) {
	p, err := sprofile.Build(100, sprofile.WithSharding(4), sprofile.WithAsyncIngest(asyncTestPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	a := p.(*sprofile.Async)
	defer a.Close()
	for i := 0; i < 100; i++ {
		if err := a.Add(i % 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := a.Total(); got != 100 {
		t.Fatalf("Total after Flush = %d, want 100", got)
	}
	for i := 0; i < 10; i++ {
		c, err := a.Count(i)
		if err != nil {
			t.Fatal(err)
		}
		if c != 10 {
			t.Fatalf("Count(%d) = %d, want 10", i, c)
		}
	}
	// Composite query answers from one epoch snapshot.
	res, err := a.Query(sprofile.Query{Summary: true, TopK: 3, Distribution: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary == nil || res.Summary.Total != 100 {
		t.Fatalf("Query summary = %+v, want total 100", res.Summary)
	}
}

// TestAsyncEventualPublish verifies the staleness bound without Flush: an
// enqueued event becomes visible within a few publish intervals.
func TestAsyncEventualPublish(t *testing.T) {
	p, err := sprofile.Build(16, sprofile.WithSharding(2),
		sprofile.WithAsyncIngest(sprofile.AsyncPolicy{PublishInterval: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	a := p.(*sprofile.Async)
	defer a.Close()
	if err := a.Add(3); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c, _ := a.Count(3); c == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("event not published within 5s; stats: %+v", a.Stats())
}

// TestAsyncBackpressureError verifies the fail-fast mode: a full mailbox
// refuses the enqueue with ErrBackpressure, the event is not applied, and
// the drop is counted.
func TestAsyncBackpressureError(t *testing.T) {
	inner, err := sprofile.NewSharded(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sprofile.NewAsync(inner, sprofile.AsyncPolicy{
		MailboxDepth:    2,
		PublishInterval: time.Hour, // applier effectively manual
		Backpressure:    sprofile.BackpressureError,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	prod, err := a.Producer()
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	// Saturate: the applier drains concurrently, so push until a rejection.
	sawBackpressure := false
	for i := 0; i < 1_000_000; i++ {
		if err := prod.Add(i % 8); err != nil {
			if !errors.Is(err, sprofile.ErrBackpressure) {
				t.Fatalf("push error = %v, want ErrBackpressure", err)
			}
			sawBackpressure = true
			break
		}
	}
	if !sawBackpressure {
		t.Skip("applier kept up with 1e6 pushes; backpressure not reachable here")
	}
	if st := a.Stats(); st.Drops == 0 {
		t.Fatalf("Stats.Drops = 0 after ErrBackpressure")
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush after backpressure: %v", err)
	}
}

// TestAsyncClosed verifies that a closed plane refuses producers and
// pushes with an ErrReadOnly-classified error while reads keep answering.
func TestAsyncClosed(t *testing.T) {
	p, err := sprofile.Build(10, sprofile.WithSharding(2), sprofile.WithAsyncIngest(asyncTestPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	a := p.(*sprofile.Async)
	if err := a.Add(5); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := a.Add(1); !errors.Is(err, sprofile.ErrReadOnly) {
		t.Fatalf("Add after Close = %v, want ErrReadOnly", err)
	}
	if _, err := a.Producer(); !errors.Is(err, sprofile.ErrReadOnly) {
		t.Fatalf("Producer after Close = %v, want ErrReadOnly", err)
	}
	// Close drained and published: the pre-close event is visible.
	if c, _ := a.Count(5); c != 1 {
		t.Fatalf("Count(5) after Close = %d, want 1", c)
	}
}

// TestAsyncDeferredStrictError verifies the deferred-error contract: a
// strict violation surfaces on Flush, not at the enqueueing call, and is
// cleared once reported.
func TestAsyncDeferredStrictError(t *testing.T) {
	p, err := sprofile.Build(8, sprofile.WithSharding(2),
		sprofile.WithAsyncIngest(asyncTestPolicy()),
		sprofile.WithOptions(sprofile.WithStrictNonNegative()))
	if err != nil {
		t.Fatal(err)
	}
	a := p.(*sprofile.Async)
	defer a.Close()
	if err := a.Remove(3); err != nil {
		t.Fatalf("Remove enqueue = %v, want nil (error is deferred)", err)
	}
	if err := a.Flush(); !errors.Is(err, sprofile.ErrNegativeFrequency) {
		t.Fatalf("Flush = %v, want ErrNegativeFrequency", err)
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("second Flush = %v, want nil (error cleared)", err)
	}
}

// TestAsyncBuildRejects verifies the config surface: windows cannot be
// async, and BuildKeyed points at BuildKeyedAsync.
func TestAsyncBuildRejects(t *testing.T) {
	if _, err := sprofile.Build(10, sprofile.Windowed(5), sprofile.WithAsyncIngest(sprofile.AsyncPolicy{})); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("Build(Windowed, WithAsyncIngest) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(10, sprofile.TimeWindowed(time.Hour), sprofile.WithAsyncIngest(sprofile.AsyncPolicy{})); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("Build(TimeWindowed, WithAsyncIngest) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.BuildKeyed[string](10, sprofile.WithAsyncIngest(sprofile.AsyncPolicy{})); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("BuildKeyed(WithAsyncIngest) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.NewAsync(nil, sprofile.AsyncPolicy{}); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("NewAsync(nil) = %v, want ErrBuildConfig", err)
	}
}

// TestAsyncKeyedBasics exercises the keyed plane end to end: mixed keys
// across stripes, Flush exactness, deferred unknown-key error, stats.
func TestAsyncKeyedBasics(t *testing.T) {
	ak, err := sprofile.BuildKeyedAsync[string](64, asyncTestPolicy(), sprofile.WithSharding(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ak.Close()
	for i := 0; i < 200; i++ {
		if err := ak.Add(fmt.Sprintf("key-%d", i%20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ak.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := ak.Total(); got != 200 {
		t.Fatalf("Total = %d, want 200", got)
	}
	c, err := ak.Count("key-7")
	if err != nil || c != 10 {
		t.Fatalf("Count(key-7) = %d, %v; want 10, nil", c, err)
	}
	// Unknown-key remove is stream-dependent: enqueue succeeds, Flush
	// reports it.
	if err := ak.Remove("never-seen"); err != nil {
		t.Fatalf("Remove(unknown) enqueue = %v, want nil", err)
	}
	if err := ak.Flush(); !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("Flush = %v, want ErrUnknownKey", err)
	}
	res, err := ak.QueryKeys(sprofile.KeyedQuery[string]{
		Summary: true, TopK: 3, Count: []string{"key-0", "absent"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary == nil || res.Summary.Total != 200 {
		t.Fatalf("QueryKeys summary = %+v, want total 200", res.Summary)
	}
	if len(res.Counts) != 2 || res.Counts[0].Frequency != 10 || res.Counts[1].Frequency != 0 {
		t.Fatalf("QueryKeys counts = %+v, want [10, 0]", res.Counts)
	}
	st := ak.Stats()
	if st.Applied != 201 || st.Queued != 0 {
		t.Fatalf("Stats = %+v, want 201 applied, 0 queued", st)
	}
	if st.Epoch == 0 {
		t.Fatal("Stats.Epoch = 0 after flushes")
	}
}

// TestAsyncKeyedCheckpointRoundTrip verifies the keyed one-cut contract:
// Flush then Checkpoint captures exactly the flushed stream, and a reopen
// restores it bit for bit.
func TestAsyncKeyedCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keyed-async.wal")
	ak, err := sprofile.BuildKeyedAsync[string](32, asyncTestPolicy(),
		sprofile.WithSharding(2), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i%13)
		if err := ak.Add(key); err != nil {
			t.Fatal(err)
		}
		want[key]++
	}
	if err := ak.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ak.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := ak.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	k2, err := sprofile.BuildKeyed[string](32, sprofile.WithSharding(2), sprofile.WithWAL(path))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer k2.Close()
	for key, w := range want {
		c, err := k2.Count(key)
		if err != nil || c != w {
			t.Fatalf("restored Count(%s) = %d, %v; want %d, nil", key, c, err, w)
		}
	}
	if got := k2.Total(); got != 500 {
		t.Fatalf("restored Total = %d, want 500", got)
	}
}

// TestAsyncProducerOrdering verifies per-producer FIFO: a producer's own
// add/remove sequence for one object is applied in order, so the flushed
// frequency is exact.
func TestAsyncProducerOrdering(t *testing.T) {
	p, err := sprofile.Build(4, sprofile.WithSharding(2),
		sprofile.WithAsyncIngest(asyncTestPolicy()),
		sprofile.WithOptions(sprofile.WithStrictNonNegative()))
	if err != nil {
		t.Fatal(err)
	}
	a := p.(*sprofile.Async)
	defer a.Close()
	prod, err := a.Producer()
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	// Strict mode makes any reordering of add-before-remove fatal.
	for i := 0; i < 10_000; i++ {
		if err := prod.Add(1); err != nil {
			t.Fatal(err)
		}
		if err := prod.Remove(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush = %v (reordering under strict mode?)", err)
	}
	if c, _ := a.Count(1); c != 0 {
		t.Fatalf("Count(1) = %d, want 0", c)
	}
}
