package sprofile_test

import (
	"testing"

	"sprofile"
	"sprofile/internal/stream"
)

// BenchmarkApplyDeltasMetrics pins the instrumentation overhead on the
// ingest fast path: the same zipf-skewed coalesce+apply workload as
// BenchmarkApplyDeltas, once with metrics enabled (the default) and once
// with the whole plane gated off via SetMetricsEnabled(false), which turns
// every observation into a single atomic load. Instrumentation on this path
// is batch-granular — a handful of atomic adds per 64k-event batch — so the
// two sub-benchmarks must stay within noise of each other (<5%).
func BenchmarkApplyDeltasMetrics(b *testing.B) {
	const m = 100_000
	const batchSize = 65_536
	pos, err := stream.NewZipf(m, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	neg, err := stream.NewZipf(m, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	w, err := stream.NewGenerator(stream.Config{
		M: m, AddProb: stream.DefaultAddProb, PosPDF: pos, NegPDF: neg, Seed: 7, Name: "zipf-1.5",
	})
	if err != nil {
		b.Fatal(err)
	}
	tuples := stream.Take(w, batchSize)

	run := func(b *testing.B, enabled bool) {
		prev := sprofile.MetricsEnabled()
		sprofile.SetMetricsEnabled(enabled)
		defer sprofile.SetMetricsEnabled(prev)
		p := sprofile.MustNew(m)
		c, err := sprofile.NewCoalescer(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			deltas, err := c.Coalesce(tuples)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.ApplyDeltas(deltas); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/event")
	}
	b.Run("metrics-enabled", func(b *testing.B) { run(b, true) })
	b.Run("metrics-disabled", func(b *testing.B) { run(b, false) })
}
