package sprofile_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprofile"
)

// TestErrorTaxonomy pins the errors.Is relationships of the typed error
// taxonomy: every specific sentinel resolves to its class root.
func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		resolves []error
	}{
		{"ObjectRange", sprofile.ErrObjectRange, []error{sprofile.ErrOutOfRange}},
		{"BadRank", sprofile.ErrBadRank, []error{sprofile.ErrOutOfRange}},
		{"NegativeFrequency", sprofile.ErrNegativeFrequency, []error{sprofile.ErrStrictViolation}},
		{"KeyedFull", sprofile.ErrKeyedFull, []error{sprofile.ErrCapExceeded}},
	}
	for _, c := range cases {
		for _, root := range c.resolves {
			if !errors.Is(c.err, root) {
				t.Errorf("%s: errors.Is(%v, %v) = false", c.name, c.err, root)
			}
		}
	}

	// The classes stay distinct from each other.
	if errors.Is(sprofile.ErrObjectRange, sprofile.ErrStrictViolation) {
		t.Error("ErrObjectRange resolves to ErrStrictViolation")
	}
	if errors.Is(sprofile.ErrKeyedFull, sprofile.ErrOutOfRange) {
		t.Error("ErrKeyedFull resolves to ErrOutOfRange")
	}

	// Live errors carry the taxonomy end to end.
	p := sprofile.MustNew(4, sprofile.WithStrictNonNegative())
	if err := p.Add(99); !errors.Is(err, sprofile.ErrOutOfRange) {
		t.Errorf("Add(99) = %v, want ErrOutOfRange", err)
	}
	if err := p.Remove(1); !errors.Is(err, sprofile.ErrStrictViolation) {
		t.Errorf("strict Remove = %v, want ErrStrictViolation", err)
	}
	if err := p.Apply(sprofile.Tuple{Object: 0, Action: sprofile.Action(9)}); !errors.Is(err, sprofile.ErrInvalidAction) {
		t.Errorf("invalid action = %v, want ErrInvalidAction", err)
	}
	k := sprofile.MustNewKeyed[string](1)
	if err := k.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := k.Add("b"); !errors.Is(err, sprofile.ErrCapExceeded) {
		t.Errorf("keyed overflow = %v, want ErrCapExceeded", err)
	}
	if err := k.Remove("ghost"); !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Errorf("keyed unknown remove = %v, want ErrUnknownKey", err)
	}
}

// TestReadOnlyProfileView pins the Keyed.Profile contract: the view answers
// queries and passes capabilities through, but refuses every update with
// ErrReadOnly, so the Query fallback (or any caller) cannot desynchronise
// the keyed id mapping through it.
func TestReadOnlyProfileView(t *testing.T) {
	k := sprofile.MustNewKeyed[string](8)
	for _, key := range []string{"a", "a", "b"} {
		if err := k.Add(key); err != nil {
			t.Fatal(err)
		}
	}
	view := k.Profile()

	if err := view.Add(0); !errors.Is(err, sprofile.ErrReadOnly) {
		t.Errorf("view.Add = %v, want ErrReadOnly", err)
	}
	if err := view.Remove(0); !errors.Is(err, sprofile.ErrReadOnly) {
		t.Errorf("view.Remove = %v, want ErrReadOnly", err)
	}
	if err := view.Apply(sprofile.Tuple{Object: 0, Action: sprofile.ActionAdd}); !errors.Is(err, sprofile.ErrReadOnly) {
		t.Errorf("view.Apply = %v, want ErrReadOnly", err)
	}
	if n, err := view.ApplyAll([]sprofile.Tuple{{Object: 0, Action: sprofile.ActionAdd}}); n != 0 || !errors.Is(err, sprofile.ErrReadOnly) {
		t.Errorf("view.ApplyAll = (%d, %v), want (0, ErrReadOnly)", n, err)
	}
	if k.Total() != 3 {
		t.Fatalf("refused updates leaked into the profile: total %d", k.Total())
	}

	// Reads and composite queries flow through.
	if total := view.Total(); total != 3 {
		t.Errorf("view.Total = %d, want 3", total)
	}
	res, err := sprofile.QueryProfiler(view, sprofile.Query{Mode: true, Summary: true})
	if err != nil {
		t.Fatalf("view query: %v", err)
	}
	if res.Mode.Frequency != 2 || res.Summary.Total != 3 {
		t.Errorf("view query = %+v", res)
	}

	// The Snapshotter capability passes through, and Unwrap reaches the
	// writable profiler for callers that accept the hazard.
	ro, ok := view.(*sprofile.ReadOnlyProfiler)
	if !ok {
		t.Fatalf("Profile() = %T, want *ReadOnlyProfiler", view)
	}
	if snap, err := ro.Snapshot(); err != nil || snap.Total() != 3 {
		t.Errorf("view.Snapshot = (%v, %v)", snap, err)
	}
	if _, ok := ro.Unwrap().(*sprofile.Profile); !ok {
		t.Errorf("Unwrap = %T, want *sprofile.Profile", ro.Unwrap())
	}
}

// queryInvariants checks the cross-statistic invariants that hold inside ANY
// single consistent cut, whatever the interleaving with concurrent ingest:
// the mode equals the summary's maximum and the top-1 and q=1 entries, the
// min equals the summary's minimum, and the distribution sums to the
// summary's total. Individual getters issued back to back violate these
// under load; an atomic Query must never.
func queryInvariants(t *testing.T, res sprofile.QueryResult) {
	t.Helper()
	if res.Mode.Frequency != res.Summary.MaxFrequency {
		t.Fatalf("torn cut: mode %d != summary max %d", res.Mode.Frequency, res.Summary.MaxFrequency)
	}
	if res.Min.Frequency != res.Summary.MinFrequency {
		t.Fatalf("torn cut: min %d != summary min %d", res.Min.Frequency, res.Summary.MinFrequency)
	}
	if res.TopK[0].Frequency != res.Mode.Frequency {
		t.Fatalf("torn cut: top-1 %d != mode %d", res.TopK[0].Frequency, res.Mode.Frequency)
	}
	if res.Quantiles[0].Frequency != res.Summary.MaxFrequency {
		t.Fatalf("torn cut: q=1 %d != summary max %d", res.Quantiles[0].Frequency, res.Summary.MaxFrequency)
	}
	var total int64
	for _, fc := range res.Distribution {
		total += fc.Freq * int64(fc.Count)
	}
	if total != res.Summary.Total {
		t.Fatalf("torn cut: distribution sums to %d, summary total %d", total, res.Summary.Total)
	}
}

// runAtomicQueryTest hammers p with concurrent single-object adds while a
// reader issues composite queries and checks the one-cut invariants.
func runAtomicQueryTest(t *testing.T, p sprofile.Profiler, queries int) {
	q := sprofile.Query{
		Mode:         true,
		Min:          true,
		TopK:         1,
		Quantiles:    []float64{1},
		Distribution: true,
		Summary:      true,
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	m := p.Cap()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if err := p.Add((i + g) % m); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	qr := p.(sprofile.Querier)
	for i := 0; i < queries; i++ {
		res, err := qr.Query(q)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
		queryInvariants(t, res)
	}
	stop.Store(true)
	wg.Wait()
}

// TestQueryAtomicConcurrent pins that a composite query on Concurrent is one
// cut under concurrent ingest (run with -race).
func TestQueryAtomicConcurrent(t *testing.T) {
	runAtomicQueryTest(t, sprofile.MustNewConcurrent(64), 300)
}

// TestQueryAtomicSharded pins that a composite query on Sharded is one
// merged cut across all shard locks under concurrent ingest.
func TestQueryAtomicSharded(t *testing.T) {
	runAtomicQueryTest(t, sprofile.MustNewSharded(64, 8), 300)
}

// TestQueryAtomicKeyedConcurrent pins that QueryKeys on KeyedConcurrent is
// one quiesced cut under concurrent keyed ingest: beyond the dense
// invariants, a single-writer key's mode must equal the total (only adds of
// tracked keys ever happen), which individual Mode()+Summarize() calls can
// tear.
func TestQueryAtomicKeyedConcurrent(t *testing.T) {
	k := sprofile.MustBuildKeyed[string](64, sprofile.WithSharding(4))
	keys := []string{"alpha", "beta", "gamma", "delta"}
	q := sprofile.KeyedQuery[string]{
		Count:        keys,
		Mode:         true,
		Min:          true,
		TopK:         1,
		Quantiles:    []float64{1},
		Distribution: true,
		Summary:      true,
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if err := k.Add(keys[(i+g)%len(keys)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 300; i++ {
		res, err := k.QueryKeys(q)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
		if res.Mode.Frequency != res.Summary.MaxFrequency {
			t.Fatalf("torn cut: mode %d != summary max %d", res.Mode.Frequency, res.Summary.MaxFrequency)
		}
		if res.TopK[0].Frequency != res.Mode.Frequency {
			t.Fatalf("torn cut: top-1 %d != mode %d", res.TopK[0].Frequency, res.Mode.Frequency)
		}
		if res.Quantiles[0].Frequency != res.Summary.MaxFrequency {
			t.Fatalf("torn cut: q=1 %d != summary max %d", res.Quantiles[0].Frequency, res.Summary.MaxFrequency)
		}
		var total int64
		for _, fc := range res.Distribution {
			total += fc.Freq * int64(fc.Count)
		}
		if total != res.Summary.Total {
			t.Fatalf("torn cut: distribution sums to %d, summary total %d", total, res.Summary.Total)
		}
		// Per-key counts come from the same cut: with adds only, the four
		// counts must sum to exactly the total.
		var keySum int64
		for _, e := range res.Counts {
			keySum += e.Frequency
		}
		if keySum != res.Summary.Total {
			t.Fatalf("torn cut: key counts sum to %d, summary total %d", keySum, res.Summary.Total)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestTimeWindowQueryAt pins that QueryAt runs the expiry sweep before
// answering: events pushed at t0 vanish from a query asked about t0+2·span.
func TestTimeWindowQueryAt(t *testing.T) {
	p := sprofile.MustNew(8)
	w, err := sprofile.NewTimeWindow(p, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		if err := w.PushAt(sprofile.Tuple{Object: 1, Action: sprofile.ActionAdd}, t0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := w.Query(sprofile.Query{Summary: true})
	if err != nil || res.Summary.Total != 5 {
		t.Fatalf("in-window query = (%+v, %v), want total 5", res.Summary, err)
	}
	res, err = w.QueryAt(time.Unix(2000, 0), sprofile.Query{Summary: true})
	if err != nil || res.Summary.Total != 0 {
		t.Fatalf("post-expiry query = (%+v, %v), want total 0", res.Summary, err)
	}
}
