package sprofile_test

import (
	"testing"

	"sprofile"
)

func TestPublicWindowBasics(t *testing.T) {
	p := sprofile.MustNew(10)
	w, err := sprofile.NewWindow(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 || w.Len() != 0 || w.Full() {
		t.Fatalf("fresh window: Size=%d Len=%d Full=%v", w.Size(), w.Len(), w.Full())
	}
	if w.Profile() != p {
		t.Fatalf("Profile() does not return the wrapped profile")
	}

	// Push four adds of object 1 through a window of three: the profile must
	// only remember the last three.
	for i := 0; i < 4; i++ {
		if err := w.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	if f, _ := p.Count(1); f != 3 {
		t.Fatalf("Count(1) = %d, want 3 (window size)", f)
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("window state after 4 pushes: Full=%v Len=%d", w.Full(), w.Len())
	}
	pushed, expired := w.Stats()
	if pushed != 4 || expired != 1 {
		t.Fatalf("Stats = (%d, %d), want (4, 1)", pushed, expired)
	}

	// Mixed actions via Push/Remove, then check contents ordering.
	if err := w.Remove(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Push(sprofile.Tuple{Object: 5, Action: sprofile.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	contents := w.Contents()
	if len(contents) != 3 {
		t.Fatalf("Contents has %d tuples", len(contents))
	}
	last := contents[len(contents)-1]
	if last.Object != 5 || last.Action != sprofile.ActionAdd {
		t.Fatalf("newest tuple = %+v", last)
	}

	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 0 || w.Len() != 0 {
		t.Fatalf("after Drain: Total=%d Len=%d", p.Total(), w.Len())
	}
}

func TestPublicWindowValidation(t *testing.T) {
	p := sprofile.MustNew(4)
	if _, err := sprofile.NewWindow(p, 0); err == nil {
		t.Fatalf("NewWindow accepted size 0")
	}
	if _, err := sprofile.NewWindow(nil, 5); err == nil {
		t.Fatalf("NewWindow accepted nil profile")
	}
	w := sprofile.MustNewWindow(p, 2)
	if err := w.Add(99); err == nil {
		t.Fatalf("Add of out-of-range object succeeded")
	}
}

func TestPublicWindowMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewWindow did not panic")
		}
	}()
	sprofile.MustNewWindow(sprofile.MustNew(1), -1)
}

func TestPublicWindowTrendingScenario(t *testing.T) {
	// The windowed mode must follow recency: object 0 dominates the first
	// phase, object 1 the second; once the window has rolled past the first
	// phase the mode must be object 1.
	p := sprofile.MustNew(2)
	w := sprofile.MustNewWindow(p, 50)
	for i := 0; i < 100; i++ {
		if err := w.Add(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if err := w.Add(1); err != nil {
			t.Fatal(err)
		}
	}
	mode, _, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 1 {
		t.Fatalf("windowed mode = %+v, want object 1", mode)
	}
	if f, _ := p.Count(0); f != 0 {
		t.Fatalf("object 0 still has windowed count %d", f)
	}
}
