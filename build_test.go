package sprofile_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sprofile"
	"sprofile/internal/wal"
)

func TestBuildVariantTypes(t *testing.T) {
	cases := []struct {
		name string
		opts []sprofile.BuildOption
		want string
	}{
		{"plain", nil, "*core.Profile"},
		{"synchronized", []sprofile.BuildOption{sprofile.Synchronized()}, "*sprofile.Concurrent"},
		{"sharded", []sprofile.BuildOption{sprofile.WithSharding(4)}, "*sprofile.Sharded"},
		{"sharded-synchronized", []sprofile.BuildOption{sprofile.WithSharding(4), sprofile.Synchronized()}, "*sprofile.Sharded"},
		{"windowed", []sprofile.BuildOption{sprofile.Windowed(10)}, "*sprofile.Window"},
		{"time-windowed", []sprofile.BuildOption{sprofile.TimeWindowed(time.Hour)}, "*sprofile.TimeWindow"},
	}
	for _, c := range cases {
		p, err := sprofile.Build(16, c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var got string
		switch p.(type) {
		case *sprofile.Profile:
			got = "*core.Profile"
		case *sprofile.Concurrent:
			got = "*sprofile.Concurrent"
		case *sprofile.Sharded:
			got = "*sprofile.Sharded"
		case *sprofile.Window:
			got = "*sprofile.Window"
		case *sprofile.TimeWindow:
			got = "*sprofile.TimeWindow"
		default:
			got = "unknown"
		}
		if got != c.want {
			t.Errorf("%s: Build produced %s, want %s", c.name, got, c.want)
		}
	}
}

func TestBuildRejectsInvalidCombinations(t *testing.T) {
	invalid := [][]sprofile.BuildOption{
		{sprofile.Windowed(10), sprofile.TimeWindowed(time.Hour)},
		{sprofile.Windowed(10), sprofile.Synchronized()},
		{sprofile.Windowed(10), sprofile.WithSharding(4)},
		{sprofile.TimeWindowed(time.Hour), sprofile.WithSharding(4)},
	}
	for i, opts := range invalid {
		if _, err := sprofile.Build(16, opts...); !errors.Is(err, sprofile.ErrBuildConfig) {
			t.Errorf("case %d: Build = %v, want ErrBuildConfig", i, err)
		}
	}
	if _, err := sprofile.Build(-1); !errors.Is(err, sprofile.ErrCapacity) {
		t.Errorf("Build(-1) = %v, want ErrCapacity", err)
	}
	if _, err := sprofile.Build(16, sprofile.Windowed(0)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(Windowed(0)) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(16, sprofile.TimeWindowed(-time.Second)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(TimeWindowed(-1s)) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(16, sprofile.WithSharding(0)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(WithSharding(0)) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(16, sprofile.WithSharding(-3)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(WithSharding(-3)) = %v, want ErrBuildConfig", err)
	}
	// WAL replay cannot restore event timestamps, so durable time windows are
	// rejected rather than silently resurrecting expired events on restart.
	if _, err := sprofile.Build(16, sprofile.TimeWindowed(time.Hour), sprofile.WithWAL(filepath.Join(t.TempDir(), "x.wal"))); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(TimeWindowed, WithWAL) = %v, want ErrBuildConfig", err)
	}
}

func TestBuildStrictOptionPropagates(t *testing.T) {
	for _, opts := range [][]sprofile.BuildOption{
		{sprofile.Strict()},
		{sprofile.Strict(), sprofile.WithSharding(4)},
		{sprofile.Strict(), sprofile.Synchronized()},
		{sprofile.Strict(), sprofile.Windowed(8)},
	} {
		p, err := sprofile.Build(4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Remove(0); !errors.Is(err, sprofile.ErrNegativeFrequency) {
			t.Errorf("strict build %T: Remove at zero = %v, want ErrNegativeFrequency", p, err)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustBuild with invalid config did not panic")
		}
	}()
	sprofile.MustBuild(16, sprofile.Windowed(1), sprofile.TimeWindowed(time.Hour))
}

// TestDurableRecoversAcrossRestart is the durability round trip: ingest
// through a WAL-wrapped profiler, close it, rebuild from the same path, and
// require the recovered profile to answer identically.
func TestDurableRecoversAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")

	p1, err := sprofile.Build(32, sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d1, ok := p1.(*sprofile.Durable)
	if !ok {
		t.Fatalf("Build with WithWAL produced %T, want *sprofile.Durable", p1)
	}
	if d1.Replayed() != 0 {
		t.Fatalf("fresh WAL replayed %d records", d1.Replayed())
	}
	tuples := []sprofile.Tuple{
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 7, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionRemove},
		{Object: 11, Action: sprofile.ActionAdd},
	}
	if n, err := d1.ApplyAll(tuples); err != nil || n != len(tuples) {
		t.Fatalf("ApplyAll = (%d, %v)", n, err)
	}
	if err := d1.Add(7); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := sprofile.Build(32, sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d2 := p2.(*sprofile.Durable)
	defer d2.Close()
	if d2.Replayed() != len(tuples)+1 {
		t.Fatalf("Replayed = %d, want %d", d2.Replayed(), len(tuples)+1)
	}
	for _, c := range []struct {
		object int
		want   int64
	}{{3, 1}, {7, 2}, {11, 1}, {0, 0}} {
		got, err := d2.Count(c.object)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("recovered Count(%d) = %d, want %d", c.object, got, c.want)
		}
	}
	if got := d2.Total(); got != 4 {
		t.Errorf("recovered Total = %d, want 4", got)
	}
	mode, _, err := d2.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 7 || mode.Frequency != 2 {
		t.Errorf("recovered Mode = %+v, want object 7 frequency 2", mode)
	}
}

// TestDurableComposesWithSharding checks that WAL journaling wraps whatever
// representation the other options selected.
func TestDurableComposesWithSharding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sharded.wal")
	p, err := sprofile.Build(64, sprofile.WithSharding(8), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*sprofile.Durable)
	if _, ok := d.Unwrap().(*sprofile.Sharded); !ok {
		t.Fatalf("Unwrap() = %T, want *sprofile.Sharded", d.Unwrap())
	}
	for i := 0; i < 64; i++ {
		if err := d.Add(i % 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := sprofile.Build(64, sprofile.WithSharding(8), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.(*sprofile.Durable).Close()
	if got := p2.Total(); got != 64 {
		t.Fatalf("recovered sharded Total = %d, want 64", got)
	}
}

// TestDurableCheckpointRoundTrip: checkpoint a dense durable profile, append
// a tail, and require recovery to restore the snapshot and replay only the
// tail — with the historical event counters intact.
func TestDurableCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	opts := []sprofile.BuildOption{sprofile.WithSharding(3), sprofile.WithWAL(path)}

	p1, err := sprofile.Build(32, opts...)
	if err != nil {
		t.Fatal(err)
	}
	d1 := p1.(*sprofile.Durable)
	for _, x := range []int{3, 3, 7, 11} {
		if err := d1.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.Remove(11); err != nil {
		t.Fatal(err)
	}
	if err := d1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, x := range []int{7, 19} {
		if err := d1.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := sprofile.Build(32, opts...)
	if err != nil {
		t.Fatal(err)
	}
	d2 := p2.(*sprofile.Durable)
	defer d2.Close()
	if d2.Replayed() != 2 {
		t.Fatalf("Replayed = %d, want 2 (only the post-checkpoint tail)", d2.Replayed())
	}
	rec := d2.Recovery()
	if rec.SnapshotSeq != 1 || rec.SnapshotEvents != 5 || rec.TailRecords != 2 {
		t.Fatalf("Recovery = %+v, want snapshot 1 covering 5 events plus 2 tail records", rec)
	}
	for _, c := range []struct {
		object int
		want   int64
	}{{3, 2}, {7, 2}, {11, 0}, {19, 1}} {
		if got, _ := d2.Count(c.object); got != c.want {
			t.Errorf("recovered Count(%d) = %d, want %d", c.object, got, c.want)
		}
	}
	sum := d2.Summarize()
	if sum.Adds != 6 || sum.Removes != 1 {
		t.Errorf("recovered adds/removes = %d/%d, want 6/1", sum.Adds, sum.Removes)
	}

	// A second checkpoint covering the whole state leaves nothing to replay.
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	p3, err := sprofile.Build(32, opts...)
	if err != nil {
		t.Fatal(err)
	}
	d3 := p3.(*sprofile.Durable)
	defer d3.Close()
	if d3.Replayed() != 0 {
		t.Fatalf("after full checkpoint, Replayed = %d, want 0", d3.Replayed())
	}
	if got := d3.Total(); got != 5 {
		t.Fatalf("recovered Total = %d, want 5", got)
	}
}

// TestDurableLegacyWALMigration: a single-file log written by the previous
// layout must open, replay, and keep accepting appends under the new
// directory layout.
func TestDurableLegacyWALMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.wal")
	log, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"1", "2", "1"} {
		if err := log.Append(wal.Record{Key: key, Action: sprofile.ActionAdd}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	p, err := sprofile.Build(8, sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*sprofile.Durable)
	if d.Replayed() != 3 {
		t.Fatalf("migrated log replayed %d records, want 3", d.Replayed())
	}
	if got, _ := d.Count(1); got != 2 {
		t.Fatalf("Count(1) = %d, want 2", got)
	}
	if err := d.Add(5); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := sprofile.Build(8, sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d2 := p2.(*sprofile.Durable)
	defer d2.Close()
	if d2.Replayed() != 0 || d2.Total() != 4 {
		t.Fatalf("post-migration checkpoint recovery: replayed=%d total=%d, want 0/4", d2.Replayed(), d2.Total())
	}
}

func TestWithCheckpointsConfigErrors(t *testing.T) {
	policy := sprofile.CheckpointPolicy{Every: time.Minute}
	if _, err := sprofile.Build(8, sprofile.WithCheckpoints(policy)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("WithCheckpoints without WithWAL = %v, want ErrBuildConfig", err)
	}
	path := filepath.Join(t.TempDir(), "w.wal")
	if _, err := sprofile.Build(8, sprofile.Windowed(4), sprofile.WithWAL(path),
		sprofile.WithCheckpoints(policy)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("WithCheckpoints with Windowed = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.BuildKeyed[string](8, sprofile.WithCheckpoints(policy)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Fatalf("BuildKeyed WithCheckpoints without WithWAL = %v, want ErrBuildConfig", err)
	}
	// A count-window WAL profile still builds, but cannot be checkpointed.
	p, err := sprofile.Build(8, sprofile.Windowed(4), sprofile.WithWAL(filepath.Join(t.TempDir(), "win.wal")))
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*sprofile.Durable)
	defer d.Close()
	if err := d.Checkpoint(); err == nil {
		t.Fatalf("checkpointing a windowed profile succeeded; a frequency snapshot cannot capture the window ring")
	}
}

// TestDurableCheckpointTimeTrigger exercises the interval-based background
// checkpointer end to end on a dense durable profile.
func TestDurableCheckpointTimeTrigger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")
	p, err := sprofile.Build(8, sprofile.WithSharding(2), sprofile.WithWAL(path),
		sprofile.WithCheckpoints(sprofile.CheckpointPolicy{Every: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*sprofile.Durable)
	defer d.Close()
	for x := 0; x < 8; x++ {
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := d.CheckpointError(); err != nil {
			t.Fatalf("background checkpoint failed: %v", err)
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".sks") {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background checkpoint after 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := sprofile.Build(8, sprofile.WithSharding(2), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d2 := p2.(*sprofile.Durable)
	defer d2.Close()
	if d2.Recovery().SnapshotSeq == 0 {
		t.Fatalf("recovery loaded no snapshot: %+v", d2.Recovery())
	}
	if got := d2.Total(); got != 8 {
		t.Fatalf("recovered Total = %d, want 8", got)
	}
}
