package sprofile_test

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"sprofile"
)

func TestBuildVariantTypes(t *testing.T) {
	cases := []struct {
		name string
		opts []sprofile.BuildOption
		want string
	}{
		{"plain", nil, "*core.Profile"},
		{"synchronized", []sprofile.BuildOption{sprofile.Synchronized()}, "*sprofile.Concurrent"},
		{"sharded", []sprofile.BuildOption{sprofile.WithSharding(4)}, "*sprofile.Sharded"},
		{"sharded-synchronized", []sprofile.BuildOption{sprofile.WithSharding(4), sprofile.Synchronized()}, "*sprofile.Sharded"},
		{"windowed", []sprofile.BuildOption{sprofile.Windowed(10)}, "*sprofile.Window"},
		{"time-windowed", []sprofile.BuildOption{sprofile.TimeWindowed(time.Hour)}, "*sprofile.TimeWindow"},
	}
	for _, c := range cases {
		p, err := sprofile.Build(16, c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var got string
		switch p.(type) {
		case *sprofile.Profile:
			got = "*core.Profile"
		case *sprofile.Concurrent:
			got = "*sprofile.Concurrent"
		case *sprofile.Sharded:
			got = "*sprofile.Sharded"
		case *sprofile.Window:
			got = "*sprofile.Window"
		case *sprofile.TimeWindow:
			got = "*sprofile.TimeWindow"
		default:
			got = "unknown"
		}
		if got != c.want {
			t.Errorf("%s: Build produced %s, want %s", c.name, got, c.want)
		}
	}
}

func TestBuildRejectsInvalidCombinations(t *testing.T) {
	invalid := [][]sprofile.BuildOption{
		{sprofile.Windowed(10), sprofile.TimeWindowed(time.Hour)},
		{sprofile.Windowed(10), sprofile.Synchronized()},
		{sprofile.Windowed(10), sprofile.WithSharding(4)},
		{sprofile.TimeWindowed(time.Hour), sprofile.WithSharding(4)},
	}
	for i, opts := range invalid {
		if _, err := sprofile.Build(16, opts...); !errors.Is(err, sprofile.ErrBuildConfig) {
			t.Errorf("case %d: Build = %v, want ErrBuildConfig", i, err)
		}
	}
	if _, err := sprofile.Build(-1); !errors.Is(err, sprofile.ErrCapacity) {
		t.Errorf("Build(-1) = %v, want ErrCapacity", err)
	}
	if _, err := sprofile.Build(16, sprofile.Windowed(0)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(Windowed(0)) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(16, sprofile.TimeWindowed(-time.Second)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(TimeWindowed(-1s)) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(16, sprofile.WithSharding(0)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(WithSharding(0)) = %v, want ErrBuildConfig", err)
	}
	if _, err := sprofile.Build(16, sprofile.WithSharding(-3)); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(WithSharding(-3)) = %v, want ErrBuildConfig", err)
	}
	// WAL replay cannot restore event timestamps, so durable time windows are
	// rejected rather than silently resurrecting expired events on restart.
	if _, err := sprofile.Build(16, sprofile.TimeWindowed(time.Hour), sprofile.WithWAL(filepath.Join(t.TempDir(), "x.wal"))); !errors.Is(err, sprofile.ErrBuildConfig) {
		t.Errorf("Build(TimeWindowed, WithWAL) = %v, want ErrBuildConfig", err)
	}
}

func TestBuildStrictOptionPropagates(t *testing.T) {
	for _, opts := range [][]sprofile.BuildOption{
		{sprofile.Strict()},
		{sprofile.Strict(), sprofile.WithSharding(4)},
		{sprofile.Strict(), sprofile.Synchronized()},
		{sprofile.Strict(), sprofile.Windowed(8)},
	} {
		p, err := sprofile.Build(4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Remove(0); !errors.Is(err, sprofile.ErrNegativeFrequency) {
			t.Errorf("strict build %T: Remove at zero = %v, want ErrNegativeFrequency", p, err)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustBuild with invalid config did not panic")
		}
	}()
	sprofile.MustBuild(16, sprofile.Windowed(1), sprofile.TimeWindowed(time.Hour))
}

// TestDurableRecoversAcrossRestart is the durability round trip: ingest
// through a WAL-wrapped profiler, close it, rebuild from the same path, and
// require the recovered profile to answer identically.
func TestDurableRecoversAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.wal")

	p1, err := sprofile.Build(32, sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d1, ok := p1.(*sprofile.Durable)
	if !ok {
		t.Fatalf("Build with WithWAL produced %T, want *sprofile.Durable", p1)
	}
	if d1.Replayed() != 0 {
		t.Fatalf("fresh WAL replayed %d records", d1.Replayed())
	}
	tuples := []sprofile.Tuple{
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionAdd},
		{Object: 7, Action: sprofile.ActionAdd},
		{Object: 3, Action: sprofile.ActionRemove},
		{Object: 11, Action: sprofile.ActionAdd},
	}
	if n, err := d1.ApplyAll(tuples); err != nil || n != len(tuples) {
		t.Fatalf("ApplyAll = (%d, %v)", n, err)
	}
	if err := d1.Add(7); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := sprofile.Build(32, sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d2 := p2.(*sprofile.Durable)
	defer d2.Close()
	if d2.Replayed() != len(tuples)+1 {
		t.Fatalf("Replayed = %d, want %d", d2.Replayed(), len(tuples)+1)
	}
	for _, c := range []struct {
		object int
		want   int64
	}{{3, 1}, {7, 2}, {11, 1}, {0, 0}} {
		got, err := d2.Count(c.object)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("recovered Count(%d) = %d, want %d", c.object, got, c.want)
		}
	}
	if got := d2.Total(); got != 4 {
		t.Errorf("recovered Total = %d, want 4", got)
	}
	mode, _, err := d2.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 7 || mode.Frequency != 2 {
		t.Errorf("recovered Mode = %+v, want object 7 frequency 2", mode)
	}
}

// TestDurableComposesWithSharding checks that WAL journaling wraps whatever
// representation the other options selected.
func TestDurableComposesWithSharding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sharded.wal")
	p, err := sprofile.Build(64, sprofile.WithSharding(8), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*sprofile.Durable)
	if _, ok := d.Unwrap().(*sprofile.Sharded); !ok {
		t.Fatalf("Unwrap() = %T, want *sprofile.Sharded", d.Unwrap())
	}
	for i := 0; i < 64; i++ {
		if err := d.Add(i % 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := sprofile.Build(64, sprofile.WithSharding(8), sprofile.WithWAL(path))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.(*sprofile.Durable).Close()
	if got := p2.Total(); got != 64 {
		t.Fatalf("recovered sharded Total = %d, want 64", got)
	}
}
