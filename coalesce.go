package sprofile

// coalesceFallbackNum/Den encode the dedup threshold below which coalescing
// stops paying: when a batch folds to more than 9/10 of its tuple count the
// traffic is effectively uniform (nearly every delta is ±1 on a distinct
// object) and the delta path's block-boundary walks cost more than the
// per-event path's direct increments — the 0.53–0.59x uniform-dense
// regression BENCH_batch.json recorded against PR 4. ApplyCoalesced detects
// that shape after coalescing, before anything is applied, and routes the
// original tuples through ApplyAll instead.
const (
	coalesceFallbackNum = 9
	coalesceFallbackDen = 10
)

// coalesceSample bounds the cost of the path decision on large batches: the
// dedup ratio is estimated from this many leading tuples, so a uniform
// batch pays one small sample pass instead of a full wasted Coalesce before
// falling back to ApplyAll.
const coalesceSample = 512

// coalesceWorthIt reports whether a batch of tuples that folded into deltas
// deduplicated enough for the delta path to win.
func coalesceWorthIt(deltas, tuples int) bool {
	return deltas*coalesceFallbackDen <= tuples*coalesceFallbackNum
}

// ApplyCoalesced ingests a batch of tuples through whichever path is faster
// for its shape: it coalesces the batch with c, and
//
//   - if the batch deduplicated (skewed traffic: hot objects repeat, net
//     deltas ≪ tuples) the deltas go through p's DeltaUpdater capability —
//     one block walk per distinct object, one WAL record and one fsync for
//     the whole batch on a *Durable;
//   - if coalescing barely shrank the batch (uniform traffic: nearly one
//     delta per tuple) or p has no DeltaUpdater capability, the original
//     tuples go through p.ApplyAll, whose direct ±1 updates beat
//     block-boundary walks on that shape.
//
// It returns the number of events whose effect is in the profile and the
// first error. The ApplyAll path keeps exact stop-at-first-error prefix
// semantics; the delta path keeps the documented delta-batch semantics
// (net-effect strictness, shard-independent partial application), with the
// event count reconstructed from the gross counts of the applied deltas.
func ApplyCoalesced(p Profiler, c *Coalescer, tuples []Tuple) (int, error) {
	if len(tuples) == 0 {
		return 0, nil
	}
	du, ok := p.(DeltaUpdater)
	if !ok {
		return p.ApplyAll(tuples)
	}
	if len(tuples) > coalesceSample {
		// Estimate the dedup ratio from a prefix sample before paying for a
		// full coalescing pass. A batch whose hot repeats only show up past
		// the sample is misrouted to ApplyAll — a performance heuristic
		// only; results are identical either way.
		sample, err := c.Coalesce(tuples[:coalesceSample])
		if err != nil || !coalesceWorthIt(len(sample), coalesceSample) {
			return p.ApplyAll(tuples)
		}
	}
	deltas, err := c.Coalesce(tuples)
	if err != nil {
		// Coalesce validates without applying; fall back to ApplyAll for its
		// exact prefix count and per-event error position.
		return p.ApplyAll(tuples)
	}
	if !coalesceWorthIt(len(deltas), len(tuples)) {
		return p.ApplyAll(tuples)
	}
	n, err := du.ApplyDeltas(deltas)
	if err == nil {
		return len(tuples), nil
	}
	events := 0
	for _, d := range deltas[:n] {
		adds, removes := d.Gross()
		events += int(adds + removes)
	}
	return events, err
}
