package sprofile

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sprofile/internal/core"
)

// Sharded splits the object-id space across several independently locked
// S-Profiles so that concurrent producers on different id ranges do not
// contend on a single mutex (the bottleneck of Concurrent at high ingest
// rates).
//
// Updates touch exactly one shard: O(1) work under that shard's lock.
// Extreme queries (Mode, Min) combine the shards' O(1) answers. Rank queries
// (KthLargest, Median, Quantile) and Distribution merge the shards' frequency
// histograms, costing O(total number of distinct frequencies) — still far
// below O(m), but no longer constant; take a Snapshot first if many rank
// queries must be answered against one consistent state.
type Sharded struct {
	shards    []shardedShard
	shardSize int
	m         int

	// batches recycles the per-shard partition scratch of ApplyDeltas, so
	// steady-state batch ingestion allocates nothing.
	batches sync.Pool
}

// shardedBatch is the reusable partition scratch of one ApplyDeltas call.
type shardedBatch struct {
	groups  [][]core.Delta
	touched []int
	counts  []int
	errs    []error
}

type shardedShard struct {
	mu sync.RWMutex
	p  *core.Profile
	// base is the global id of the shard's local object 0.
	base int
}

// NewSharded returns a sharded profile over m dense object ids split across
// numShards shards. Object x lives in shard x / ceil(m/numShards).
func NewSharded(m, numShards int, opts ...Option) (*Sharded, error) {
	if m < 0 {
		return nil, fmt.Errorf("%w: %d", ErrCapacity, m)
	}
	if numShards <= 0 {
		return nil, fmt.Errorf("%w: number of shards must be positive, got %d", ErrCapacity, numShards)
	}
	if numShards > m {
		numShards = m
	}
	if numShards == 0 {
		numShards = 1
	}
	shardSize := (m + numShards - 1) / numShards
	if shardSize == 0 {
		shardSize = 1
	}
	s := &Sharded{shardSize: shardSize, m: m}
	for base := 0; base < m || (m == 0 && base == 0); base += shardSize {
		size := shardSize
		if base+size > m {
			size = m - base
		}
		p, err := core.New(size, opts...)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, shardedShard{p: p, base: base})
		if m == 0 {
			break
		}
	}
	return s, nil
}

// MustNewSharded is NewSharded for callers with known-good arguments; it
// panics on error.
func MustNewSharded(m, numShards int, opts ...Option) *Sharded {
	s, err := NewSharded(m, numShards, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Cap returns the number of object slots.
func (s *Sharded) Cap() int { return s.m }

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// locate returns the shard holding object x and x's local id within it.
func (s *Sharded) locate(x int) (*shardedShard, int, error) {
	if x < 0 || x >= s.m {
		return nil, 0, fmt.Errorf("%w: id %d, capacity %d", ErrObjectRange, x, s.m)
	}
	idx := x / s.shardSize
	return &s.shards[idx], x - s.shards[idx].base, nil
}

// Add increments the frequency of object x.
func (s *Sharded) Add(x int) error {
	sh, local, err := s.locate(x)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p.Add(local)
}

// Remove decrements the frequency of object x.
func (s *Sharded) Remove(x int) error {
	sh, local, err := s.locate(x)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p.Remove(local)
}

// Apply applies one log tuple.
func (s *Sharded) Apply(t Tuple) error {
	switch t.Action {
	case ActionAdd:
		return s.Add(t.Object)
	case ActionRemove:
		return s.Remove(t.Object)
	default:
		return errInvalidAction(t.Action)
	}
}

// ApplyAll applies tuples in order, stopping at the first error; it returns
// the number of tuples applied. Runs of consecutive tuples that land in the
// same shard are applied under a single lock acquisition, so batches with
// locality pay far fewer lock round-trips than per-event ingestion while the
// stream-order stop-at-first-error semantics of Profile.ApplyAll are kept.
func (s *Sharded) ApplyAll(tuples []Tuple) (int, error) {
	i := 0
	for i < len(tuples) {
		t := tuples[i]
		if !t.Action.Valid() {
			return i, errInvalidAction(t.Action)
		}
		sh, _, err := s.locate(t.Object)
		if err != nil {
			return i, err
		}
		// Extend the run while the following tuples stay in this shard.
		end := i + 1
		for end < len(tuples) {
			nt := tuples[end]
			if !nt.Action.Valid() {
				break
			}
			nsh, _, nerr := s.locate(nt.Object)
			if nerr != nil || nsh != sh {
				break
			}
			end++
		}
		sh.mu.Lock()
		for ; i < end; i++ {
			t := tuples[i]
			local := t.Object - sh.base
			var err error
			if t.Action == ActionAdd {
				err = sh.p.Add(local)
			} else {
				err = sh.p.Remove(local)
			}
			if err != nil {
				sh.mu.Unlock()
				return i, err
			}
		}
		sh.mu.Unlock()
	}
	return len(tuples), nil
}

// AddN raises the frequency of object x by k in one step under its shard's
// lock.
func (s *Sharded) AddN(x int, k int64) error {
	sh, local, err := s.locate(x)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p.AddN(local, k)
}

// RemoveN lowers the frequency of object x by k in one step under its
// shard's lock.
func (s *Sharded) RemoveN(x int, k int64) error {
	sh, local, err := s.locate(x)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p.RemoveN(local, k)
}

// ApplyDelta applies one coalesced delta under its shard's lock.
func (s *Sharded) ApplyDelta(d Delta) error {
	sh, local, err := s.locate(d.Object)
	if err != nil {
		return err
	}
	d.Object = local
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p.ApplyDelta(d)
}

// ApplyDeltas partitions a coalesced batch by shard and applies each shard's
// share under a single lock acquisition — on multi-core hosts the touched
// shards run in parallel. It returns how many deltas were applied in total.
//
// Error semantics: deltas for different shards are independent, so on an
// error (an out-of-range object, a strict-mode violation) every *other*
// shard's share is still attempted; within the failing shard the deltas
// before the bad one are applied. The first error encountered is returned.
// This mirrors the partial application the per-event path has always had, at
// shard granularity.
func (s *Sharded) ApplyDeltas(deltas []Delta) (int, error) {
	switch len(deltas) {
	case 0:
		return 0, nil
	case 1:
		// Fast path for the single-object batches keyed ingestion issues.
		if err := s.ApplyDelta(deltas[0]); err != nil {
			return 0, err
		}
		return 1, nil
	}

	b, _ := s.batches.Get().(*shardedBatch)
	if b == nil {
		b = &shardedBatch{groups: make([][]core.Delta, len(s.shards))}
	}
	defer func() {
		for _, idx := range b.touched {
			b.groups[idx] = b.groups[idx][:0]
		}
		b.touched = b.touched[:0]
		s.batches.Put(b)
	}()

	applied := 0
	var firstErr error
	for _, d := range deltas {
		if d.Object < 0 || d.Object >= s.m {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: id %d, capacity %d", ErrObjectRange, d.Object, s.m)
			}
			continue
		}
		idx := d.Object / s.shardSize
		d.Object -= s.shards[idx].base
		if len(b.groups[idx]) == 0 {
			b.touched = append(b.touched, idx)
		}
		b.groups[idx] = append(b.groups[idx], d)
	}

	// Parallel application must buy more than the goroutine spawns and the
	// WaitGroup barrier cost; small batches take the sequential loop below.
	const parallelMin = 256
	if len(b.touched) > 1 && len(deltas) >= parallelMin && runtime.GOMAXPROCS(0) > 1 {
		if cap(b.counts) < len(b.touched) {
			b.counts = make([]int, len(b.touched))
			b.errs = make([]error, len(b.touched))
		}
		counts := b.counts[:len(b.touched)]
		errs := b.errs[:len(b.touched)]
		clear(counts)
		clear(errs)
		var wg sync.WaitGroup
		for i, idx := range b.touched {
			wg.Add(1)
			go func(i, idx int) {
				defer wg.Done()
				sh := &s.shards[idx]
				sh.mu.Lock()
				counts[i], errs[i] = sh.p.ApplyDeltas(b.groups[idx])
				sh.mu.Unlock()
			}(i, idx)
		}
		wg.Wait()
		for i := range b.touched {
			applied += counts[i]
			if errs[i] != nil && firstErr == nil {
				firstErr = errs[i]
			}
		}
		return applied, firstErr
	}

	for _, idx := range b.touched {
		sh := &s.shards[idx]
		sh.mu.Lock()
		n, err := sh.p.ApplyDeltas(b.groups[idx])
		sh.mu.Unlock()
		applied += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return applied, firstErr
}

// Count returns the current frequency of object x.
func (s *Sharded) Count(x int) (int64, error) {
	sh, local, err := s.locate(x)
	if err != nil {
		return 0, err
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.p.Count(local)
}

// Total returns the sum of all frequencies.
func (s *Sharded) Total() int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.p.Total()
		sh.mu.RUnlock()
	}
	return total
}

// lockAll takes every shard's read lock (in index order) so that a global
// query sees one consistent state; the returned function releases them.
func (s *Sharded) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.RUnlock()
		}
	}
}

// Mode returns an object with the maximum frequency, that frequency, and how
// many objects share it, by combining each shard's O(1) answer.
func (s *Sharded) Mode() (Entry, int, error) {
	if s.m == 0 {
		return Entry{}, 0, ErrEmptyProfile
	}
	unlock := s.lockAll()
	defer unlock()
	return s.modeLocked()
}

func (s *Sharded) modeLocked() (Entry, int, error) {
	var best Entry
	ties := 0
	found := false
	for i := range s.shards {
		sh := &s.shards[i]
		e, shardTies, err := sh.p.Mode()
		if err != nil {
			continue
		}
		globalEntry := Entry{Object: e.Object + sh.base, Frequency: e.Frequency}
		switch {
		case !found || globalEntry.Frequency > best.Frequency:
			best = globalEntry
			ties = shardTies
			found = true
		case globalEntry.Frequency == best.Frequency:
			ties += shardTies
		}
	}
	if !found {
		return Entry{}, 0, ErrEmptyProfile
	}
	return best, ties, nil
}

// Min returns an object with the minimum frequency, that frequency, and how
// many objects share it.
func (s *Sharded) Min() (Entry, int, error) {
	if s.m == 0 {
		return Entry{}, 0, ErrEmptyProfile
	}
	unlock := s.lockAll()
	defer unlock()
	return s.minLocked()
}

func (s *Sharded) minLocked() (Entry, int, error) {
	var best Entry
	ties := 0
	found := false
	for i := range s.shards {
		sh := &s.shards[i]
		e, shardTies, err := sh.p.Min()
		if err != nil {
			continue
		}
		globalEntry := Entry{Object: e.Object + sh.base, Frequency: e.Frequency}
		switch {
		case !found || globalEntry.Frequency < best.Frequency:
			best = globalEntry
			ties = shardTies
			found = true
		case globalEntry.Frequency == best.Frequency:
			ties += shardTies
		}
	}
	if !found {
		return Entry{}, 0, ErrEmptyProfile
	}
	return best, ties, nil
}

// Distribution returns the global frequency histogram in ascending frequency
// order, merging the shards' histograms. Cost O(total distinct frequencies).
func (s *Sharded) Distribution() []FreqCount {
	unlock := s.lockAll()
	defer unlock()
	return s.distributionLocked()
}

func (s *Sharded) distributionLocked() []FreqCount {
	merged := make(map[int64]int)
	for i := range s.shards {
		for _, fc := range s.shards[i].p.Distribution() {
			merged[fc.Freq] += fc.Count
		}
	}
	out := make([]FreqCount, 0, len(merged))
	for f, c := range merged {
		out = append(out, FreqCount{Freq: f, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Freq < out[j].Freq })
	return out
}

// AtRank returns the entry at 0-based rank r of the global ascending-sorted
// frequency array (rank 0 is a minimum-frequency object, rank m-1 a
// maximum-frequency object). Cost O(total distinct frequencies).
func (s *Sharded) AtRank(r int) (Entry, error) {
	if r < 0 || r >= s.m {
		return Entry{}, fmt.Errorf("%w: k %d, capacity %d", ErrBadRank, r, s.m)
	}
	unlock := s.lockAll()
	defer unlock()
	return s.atRankLocked(r, s.distributionLocked())
}

// atRankLocked answers a rank lookup from an already-merged distribution, so
// a composite query resolving many ranks (median, several quantiles, several
// k-th largest) merges the shard histograms once and shares the result.
func (s *Sharded) atRankLocked(r int, dist []FreqCount) (Entry, error) {
	// Find the frequency occupying global rank r.
	remaining := r
	var targetFreq int64
	for _, fc := range dist {
		if remaining < fc.Count {
			targetFreq = fc.Freq
			break
		}
		remaining -= fc.Count
	}
	// Find a shard holding an object with that frequency and return one
	// representative from it.
	for i := range s.shards {
		sh := &s.shards[i]
		below := sh.p.Cap() - sh.p.CountWithFrequencyAtLeast(targetFreq)
		if below >= sh.p.Cap() {
			continue // no object in this shard has frequency >= target
		}
		e, err := sh.p.KthSmallest(below + 1)
		if err != nil || e.Frequency != targetFreq {
			continue
		}
		return Entry{Object: e.Object + sh.base, Frequency: e.Frequency}, nil
	}
	// An impossible state (ranks were counted from the same locked shards
	// this walk reads): deliberately NOT part of the wire taxonomy, so it
	// surfaces as a 500, not as a client-addressable error class.
	return Entry{}, fmt.Errorf("sprofile: internal error: no shard holds rank %d", r) //lint:allow errtaxonomy
}

// KthLargest returns an object holding the k-th largest frequency (1-based).
func (s *Sharded) KthLargest(k int) (Entry, error) {
	if k < 1 || k > s.m {
		return Entry{}, fmt.Errorf("%w: k %d, capacity %d", ErrBadRank, k, s.m)
	}
	return s.AtRank(s.m - k)
}

// Median returns the lower-median entry of the global frequency multiset.
func (s *Sharded) Median() (Entry, error) {
	if s.m == 0 {
		return Entry{}, ErrEmptyProfile
	}
	return s.AtRank((s.m - 1) / 2)
}

// Quantile returns the entry at quantile q in [0, 1] of the global frequency
// multiset. The rank is computed by core.QuantileRank, the same nearest-rank
// mapping Profile.Quantile uses, so a sharded profile and a plain profile
// over the same stream always answer identically. Finite q outside [0, 1] is
// clamped; NaN is an error.
func (s *Sharded) Quantile(q float64) (Entry, error) {
	if s.m == 0 {
		return Entry{}, ErrEmptyProfile
	}
	if err := core.CheckQuantile(q); err != nil {
		return Entry{}, err
	}
	return s.AtRank(core.QuantileRank(q, s.m))
}

// Majority returns the object holding a strict majority of the total count,
// if one exists. The mode and the total are read under one global read lock
// so the comparison sees a single consistent state.
func (s *Sharded) Majority() (Entry, bool, error) {
	if s.m == 0 {
		return Entry{}, false, ErrEmptyProfile
	}
	unlock := s.lockAll()
	defer unlock()
	return s.majorityLocked()
}

func (s *Sharded) majorityLocked() (Entry, bool, error) {
	var best Entry
	var total int64
	found := false
	for i := range s.shards {
		sh := &s.shards[i]
		total += sh.p.Total()
		e, _, err := sh.p.Mode()
		if err != nil {
			continue
		}
		if !found || e.Frequency > best.Frequency {
			best = Entry{Object: e.Object + sh.base, Frequency: e.Frequency}
			found = true
		}
	}
	if !found {
		return Entry{}, false, ErrEmptyProfile
	}
	if total > 0 && best.Frequency*2 > total {
		return best, true, nil
	}
	return Entry{}, false, nil
}

// Summarize returns aggregate statistics of the whole profile, merging every
// shard's summary under one global read lock.
func (s *Sharded) Summarize() Summary {
	unlock := s.lockAll()
	defer unlock()
	return s.summarizeLocked(s.distributionLocked())
}

// summarizeLocked merges the shard summaries against an already-merged
// distribution (needed only for the distinct-frequency count).
func (s *Sharded) summarizeLocked(dist []FreqCount) Summary {
	sum := Summary{Capacity: s.m}
	for i := range s.shards {
		shardSum := s.shards[i].p.Summarize()
		sum.Total += shardSum.Total
		sum.Active += shardSum.Active
		sum.Negative += shardSum.Negative
		sum.Adds += shardSum.Adds
		sum.Removes += shardSum.Removes
		if i == 0 || shardSum.MaxFrequency > sum.MaxFrequency {
			sum.MaxFrequency = shardSum.MaxFrequency
		}
		if i == 0 || shardSum.MinFrequency < sum.MinFrequency {
			sum.MinFrequency = shardSum.MinFrequency
		}
	}
	// Distinct frequencies must be counted globally: two shards holding the
	// same frequency contribute one distinct value, not two.
	sum.DistinctFrequencies = len(dist)
	return sum
}

// TopK returns the k globally most frequent entries in non-increasing
// frequency order, merging each shard's top-k list. Cost O(shards·k).
func (s *Sharded) TopK(k int) []Entry {
	if k <= 0 || s.m == 0 {
		return nil
	}
	unlock := s.lockAll()
	defer unlock()
	return s.topKLocked(k)
}

func (s *Sharded) topKLocked(k int) []Entry {
	if k <= 0 || s.m == 0 {
		return nil
	}
	if k > s.m {
		k = s.m
	}
	candidates := make([]Entry, 0, k*len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		for _, e := range sh.p.TopK(k) {
			candidates = append(candidates, Entry{Object: e.Object + sh.base, Frequency: e.Frequency})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Frequency != candidates[j].Frequency {
			return candidates[i].Frequency > candidates[j].Frequency
		}
		return candidates[i].Object < candidates[j].Object
	})
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}

// BottomK returns the k globally least frequent entries in non-decreasing
// frequency order, merging each shard's bottom-k list. Cost O(shards·k).
func (s *Sharded) BottomK(k int) []Entry {
	if k <= 0 || s.m == 0 {
		return nil
	}
	unlock := s.lockAll()
	defer unlock()
	return s.bottomKLocked(k)
}

func (s *Sharded) bottomKLocked(k int) []Entry {
	if k <= 0 || s.m == 0 {
		return nil
	}
	if k > s.m {
		k = s.m
	}
	candidates := make([]Entry, 0, k*len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		for _, e := range sh.p.BottomK(k) {
			candidates = append(candidates, Entry{Object: e.Object + sh.base, Frequency: e.Frequency})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Frequency != candidates[j].Frequency {
			return candidates[i].Frequency < candidates[j].Frequency
		}
		return candidates[i].Object < candidates[j].Object
	})
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}

// Query answers a composite query atomically from one merged cut: every
// shard's read lock is held once across the whole evaluation, and every rank
// statistic the query selects — median, quantiles, k-th largest, the
// distribution itself, the summary's distinct-frequency count — is answered
// from ONE merged frequency histogram instead of re-merging per call. A
// composite with R rank statistics therefore costs one lock round-trip and
// one O(total distinct frequencies) merge, where R individual getters cost R
// of each.
func (s *Sharded) Query(q Query) (QueryResult, error) {
	var res QueryResult
	if err := q.Validate(s.m); err != nil {
		return res, err
	}
	unlock := s.lockAll()
	defer unlock()

	var dist []FreqCount
	if q.NeedsDistribution() {
		dist = s.distributionLocked()
	}
	if len(q.Count) > 0 {
		res.Counts = make([]Entry, len(q.Count))
		for i, x := range q.Count {
			// Validate range-checked x, so locate cannot fail.
			sh, local, err := s.locate(x)
			if err != nil {
				return QueryResult{}, err
			}
			f, err := sh.p.Count(local)
			if err != nil {
				return QueryResult{}, err
			}
			res.Counts[i] = Entry{Object: x, Frequency: f}
		}
	}
	if q.Mode {
		e, ties, err := s.modeLocked()
		if err != nil {
			return QueryResult{}, err
		}
		res.Mode = &Extreme{Entry: e, Ties: ties}
	}
	if q.Min {
		e, ties, err := s.minLocked()
		if err != nil {
			return QueryResult{}, err
		}
		res.Min = &Extreme{Entry: e, Ties: ties}
	}
	if q.TopK > 0 {
		res.TopK = s.topKLocked(q.TopK)
	}
	if q.BottomK > 0 {
		res.BottomK = s.bottomKLocked(q.BottomK)
	}
	if len(q.KthLargest) > 0 {
		res.KthLargest = make([]Entry, len(q.KthLargest))
		for i, k := range q.KthLargest {
			e, err := s.atRankLocked(s.m-k, dist)
			if err != nil {
				return QueryResult{}, err
			}
			res.KthLargest[i] = e
		}
	}
	if q.Median {
		e, err := s.atRankLocked((s.m-1)/2, dist)
		if err != nil {
			return QueryResult{}, err
		}
		res.Median = &e
	}
	if len(q.Quantiles) > 0 {
		res.Quantiles = make([]QuantileEntry, len(q.Quantiles))
		for i, qq := range q.Quantiles {
			e, err := s.atRankLocked(core.QuantileRank(qq, s.m), dist)
			if err != nil {
				return QueryResult{}, err
			}
			res.Quantiles[i] = QuantileEntry{Q: qq, Entry: e}
		}
	}
	if q.Majority {
		e, ok, err := s.majorityLocked()
		if err != nil {
			return QueryResult{}, err
		}
		res.Majority = &MajorityEntry{Entry: e, Majority: ok}
	}
	if q.Distribution {
		res.Distribution = dist
	}
	if q.Summary {
		sum := s.summarizeLocked(dist)
		res.Summary = &sum
	}
	return res, nil
}

// Snapshot merges every shard into one consistent standalone Profile (cost
// O(m log m)); use it when a burst of rank queries must see a single state.
// The snapshot preserves the true adds/removes counters and the strict-mode
// flag, so it is also a faithful checkpoint image, not just a query view.
func (s *Sharded) Snapshot() (*Profile, error) {
	unlock := s.lockAll()
	defer unlock()

	freqs := make([]int64, s.m)
	var adds, removes uint64
	for i := range s.shards {
		sh := &s.shards[i]
		local := sh.p.Frequencies(nil)
		copy(freqs[sh.base:sh.base+len(local)], local)
		a, r := sh.p.Events()
		adds += a
		removes += r
	}
	var opts []Option
	if s.shards[0].p.StrictNonNegative() {
		opts = append(opts, WithStrictNonNegative())
	}
	p, err := core.New(s.m, opts...)
	if err != nil {
		return nil, err
	}
	if err := p.LoadFrequencies(freqs, adds, removes); err != nil {
		return nil, err
	}
	return p, nil
}

// cloneShard returns a deep copy of shard idx, taken under that shard's read
// lock alone — the async ingest plane's per-shard snapshot primitive. Cost is
// O(shard size) and blocks only writers of that one shard, unlike Snapshot's
// global O(m log m) merge under all shard locks.
func (s *Sharded) cloneShard(idx int) *core.Profile {
	sh := &s.shards[idx]
	sh.mu.RLock()
	c := sh.p.Clone()
	sh.mu.RUnlock()
	return c
}

// newShardedView assembles a *Sharded over already-captured per-shard
// snapshot profiles, mirroring template's geometry. The view's shard mutexes
// are fresh and never contended by writers (the snapshots are immutable by
// convention), so every query on it — including composite Query — runs
// without blocking or being blocked by ingestion; the async plane installs
// one per publish epoch.
func newShardedView(template *Sharded, snaps []*core.Profile) *Sharded {
	v := &Sharded{shardSize: template.shardSize, m: template.m}
	v.shards = make([]shardedShard, len(snaps))
	for i := range snaps {
		v.shards[i].p = snaps[i]
		v.shards[i].base = template.shards[i].base
	}
	return v
}

// shardOf returns the shard index holding object x; the caller guarantees x
// is in range.
func (s *Sharded) shardOf(x int) int { return x / s.shardSize }

// lockAllWrite takes every shard's write lock (in index order); the returned
// function releases them.
func (s *Sharded) lockAllWrite() func() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}
}

// LoadFrequencies replaces the whole sharded state: object x ends at
// frequency freqs[x] and the global adds/removes counters at the given
// totals. Each shard receives its id range plus the minimal event counts
// that produce it; the surplus of the historical counters over that minimum
// is attributed to shard 0, so Summarize sums back to exactly the totals
// given. Validation runs before any shard is mutated.
func (s *Sharded) LoadFrequencies(freqs []int64, adds, removes uint64) error {
	if len(freqs) != s.m {
		return fmt.Errorf("%w: %d frequencies for capacity %d", core.ErrBadSnapshot, len(freqs), s.m)
	}
	strict := s.shards[0].p.StrictNonNegative()
	synthAdds := make([]uint64, len(s.shards))
	synthRemoves := make([]uint64, len(s.shards))
	var totalAdds, totalRemoves uint64
	for i := range s.shards {
		sh := &s.shards[i]
		for x, f := range freqs[sh.base : sh.base+sh.p.Cap()] {
			switch {
			case f > 0:
				synthAdds[i] += uint64(f)
			case f < 0:
				if strict {
					return fmt.Errorf("%w: object %d has frequency %d", core.ErrNegativeFrequency, sh.base+x, f)
				}
				synthRemoves[i] += uint64(-f)
			}
		}
		totalAdds += synthAdds[i]
		totalRemoves += synthRemoves[i]
	}
	// Historical counters can only exceed the minimal ones (extra add/remove
	// pairs that cancelled out), and must net to the same total.
	if adds < totalAdds || removes < totalRemoves || adds-totalAdds != removes-totalRemoves {
		return fmt.Errorf("%w: %d adds - %d removes does not produce the loaded frequencies",
			core.ErrBadSnapshot, adds, removes)
	}
	unlock := s.lockAllWrite()
	defer unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		a, r := synthAdds[i], synthRemoves[i]
		if i == 0 {
			a += adds - totalAdds
			r += removes - totalRemoves
		}
		if err := sh.p.LoadFrequencies(freqs[sh.base:sh.base+sh.p.Cap()], a, r); err != nil {
			return err
		}
	}
	return nil
}
