package sprofile

import (
	"sprofile/internal/core"
)

// Query selects any subset of the profile's statistics — Count, Mode, Min,
// TopK, BottomK, KthLargest, Median, Quantiles, Majority, Distribution,
// Summary — to be answered together from ONE consistent cut of the frequency
// multiset. It is the unit of the query plane: a dashboard that needs
// Mode+TopK+Quantile issues one Query and pays one lock acquisition (or one
// merged distribution) instead of three, and can never observe the three
// statistics from three different states under concurrent ingest.
//
// Arguments are validated before anything is evaluated: a composite query
// fails whole (wrapping ErrInvalidQuery plus the offending argument's
// taxonomy class) or succeeds whole. The JSON form of Query/QueryResult is
// the wire format of the server's POST /v1/query endpoint (keyed servers use
// KeyedQuery/KeyedQueryResult, identical but key-addressed).
type Query = core.Query

// QueryResult carries the answers to exactly the statistics the Query
// selected; unrequested fields stay nil.
type QueryResult = core.QueryResult

// Extreme is a Mode or Min answer inside a QueryResult: the representative
// entry plus how many objects tie with it.
type Extreme = core.Extreme

// QuantileEntry is one Quantiles answer inside a QueryResult.
type QuantileEntry = core.QuantileEntry

// MajorityEntry is the Majority answer inside a QueryResult.
type MajorityEntry = core.MajorityEntry

// Querier is the capability of answering a composite Query atomically.
// Every variant in this package implements it, each pinning the cut its own
// way:
//
//   - *Profile evaluates in one pass (single-goroutine);
//   - *Concurrent holds its read lock once across the whole evaluation;
//   - *Sharded holds all shard read locks once and answers every rank
//     statistic from one merged distribution;
//   - *Window and *TimeWindow answer from the windowed profile, which
//     reflects the expiry sweep of the newest push;
//   - *Durable delegates to its inner profiler's Querier;
//   - the keyed variants answer KeyedQuery through QueryKeys (Keyed
//     single-goroutine, KeyedConcurrent from one quiesced cut).
//
// For a Profiler of unknown concrete type, use QueryProfiler, which falls
// back to a Snapshotter-based consistent cut when the capability is absent.
type Querier interface {
	Query(q Query) (QueryResult, error)
}

// KeyedQuery is the key-addressed counterpart of Query: the same statistic
// selection, with Count listing caller keys instead of dense ids. Unknown
// keys count as frequency zero, mirroring the keyed Count getter.
type KeyedQuery[K comparable] struct {
	Count        []K       `json:"count,omitempty"`
	Mode         bool      `json:"mode,omitempty"`
	Min          bool      `json:"min,omitempty"`
	TopK         int       `json:"top_k,omitempty"`
	BottomK      int       `json:"bottom_k,omitempty"`
	KthLargest   []int     `json:"kth_largest,omitempty"`
	Median       bool      `json:"median,omitempty"`
	Quantiles    []float64 `json:"quantiles,omitempty"`
	Majority     bool      `json:"majority,omitempty"`
	Distribution bool      `json:"distribution,omitempty"`
	Summary      bool      `json:"summary,omitempty"`
}

// dense translates the selection onto the underlying dense-id profile.
// Count is handled separately by the keyed implementations (ids must be
// resolved under the same cut).
func (q KeyedQuery[K]) dense() Query {
	return Query{
		Mode:         q.Mode,
		Min:          q.Min,
		TopK:         q.TopK,
		BottomK:      q.BottomK,
		KthLargest:   q.KthLargest,
		Median:       q.Median,
		Quantiles:    q.Quantiles,
		Majority:     q.Majority,
		Distribution: q.Distribution,
		Summary:      q.Summary,
	}
}

// KeyedExtreme is a Mode or Min answer inside a KeyedQueryResult.
type KeyedExtreme[K comparable] struct {
	KeyedEntry[K]
	Ties int `json:"ties"`
}

// KeyedQuantile is one Quantiles answer inside a KeyedQueryResult.
type KeyedQuantile[K comparable] struct {
	Q float64 `json:"q"`
	KeyedEntry[K]
}

// KeyedMajority is the Majority answer inside a KeyedQueryResult.
type KeyedMajority[K comparable] struct {
	KeyedEntry[K]
	Majority bool `json:"majority"`
}

// KeyedQueryResult is the key-addressed counterpart of QueryResult: every
// entry's dense id has been resolved back to its key under the same cut the
// statistics were read from.
type KeyedQueryResult[K comparable] struct {
	Counts       []KeyedEntry[K]    `json:"counts,omitempty"`
	Mode         *KeyedExtreme[K]   `json:"mode,omitempty"`
	Min          *KeyedExtreme[K]   `json:"min,omitempty"`
	TopK         []KeyedEntry[K]    `json:"top_k,omitempty"`
	BottomK      []KeyedEntry[K]    `json:"bottom_k,omitempty"`
	KthLargest   []KeyedEntry[K]    `json:"kth_largest,omitempty"`
	Median       *KeyedEntry[K]     `json:"median,omitempty"`
	Quantiles    []KeyedQuantile[K] `json:"quantiles,omitempty"`
	Majority     *KeyedMajority[K]  `json:"majority,omitempty"`
	Distribution []FreqCount        `json:"distribution,omitempty"`
	Summary      *Summary           `json:"summary,omitempty"`

	// Replication, when the query was answered by a replicated server,
	// carries the staleness watermark of the node that answered: the WAL
	// position it had applied and a wall-clock bound on how far behind the
	// leader the answer may be. Nil outside a replicated deployment.
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

// KeyedQuerier is the keyed counterpart of the Querier capability; both
// Keyed and KeyedConcurrent satisfy it (and the KeyedProfiler interface
// includes it).
type KeyedQuerier[K comparable] interface {
	QueryKeys(q KeyedQuery[K]) (KeyedQueryResult[K], error)
}

// QueryProfiler answers a composite query against any Profiler. When p
// offers the Querier capability (every variant in this package does), the
// query is answered atomically by it; otherwise, when p offers Snapshotter,
// the query is answered from one point-in-time snapshot — still a consistent
// cut, at O(m) copy cost; as a last resort the getters are called one by
// one, which is only consistent if nothing updates p concurrently.
func QueryProfiler(p Profiler, q Query) (QueryResult, error) {
	if qr, ok := p.(Querier); ok {
		return qr.Query(q)
	}
	if s, ok := p.(Snapshotter); ok {
		// Validate against the live profile first so argument errors do not
		// pay for a snapshot.
		if err := q.Validate(p.Cap()); err != nil {
			return QueryResult{}, err
		}
		snap, err := s.Snapshot()
		if err != nil {
			return QueryResult{}, err
		}
		return snap.Query(q)
	}
	return core.EvalQuery(p, q)
}

// ReadOnlyProfiler is a Profiler view that answers every query but refuses
// every update with ErrReadOnly. Keyed.Profile and KeyedConcurrent.Profile
// return one, so the dense profile backing a keyed mapping can be inspected
// (rank lookups, snapshots, composite queries) but not driven out of sync
// with the key table. Snapshotter and Querier capabilities of the underlying
// profiler pass through.
type ReadOnlyProfiler struct {
	p Profiler
}

// NewReadOnly wraps p in a read-only view.
func NewReadOnly(p Profiler) *ReadOnlyProfiler { return &ReadOnlyProfiler{p: p} }

// Unwrap returns the underlying writable profiler. It is the explicit escape
// hatch for callers that genuinely need to mutate (and accept the
// desynchronisation hazard the read-only view exists to prevent).
func (r *ReadOnlyProfiler) Unwrap() Profiler { return r.p }

// Add refuses the update with ErrReadOnly.
func (r *ReadOnlyProfiler) Add(x int) error { return ErrReadOnly }

// Remove refuses the update with ErrReadOnly.
func (r *ReadOnlyProfiler) Remove(x int) error { return ErrReadOnly }

// Apply refuses the update with ErrReadOnly.
func (r *ReadOnlyProfiler) Apply(t Tuple) error { return ErrReadOnly }

// ApplyAll refuses the update with ErrReadOnly.
func (r *ReadOnlyProfiler) ApplyAll(tuples []Tuple) (int, error) { return 0, ErrReadOnly }

// Count returns the current frequency of object x.
func (r *ReadOnlyProfiler) Count(x int) (int64, error) { return r.p.Count(x) }

// Mode returns an object with maximum frequency, that frequency, and how
// many objects share it.
func (r *ReadOnlyProfiler) Mode() (Entry, int, error) { return r.p.Mode() }

// Min returns an object with minimum frequency, that frequency, and how many
// objects share it.
func (r *ReadOnlyProfiler) Min() (Entry, int, error) { return r.p.Min() }

// TopK returns the k most frequent entries.
func (r *ReadOnlyProfiler) TopK(k int) []Entry { return r.p.TopK(k) }

// BottomK returns the k least frequent entries.
func (r *ReadOnlyProfiler) BottomK(k int) []Entry { return r.p.BottomK(k) }

// KthLargest returns the entry holding the k-th largest frequency.
func (r *ReadOnlyProfiler) KthLargest(k int) (Entry, error) { return r.p.KthLargest(k) }

// Median returns the lower-median entry of the frequency multiset.
func (r *ReadOnlyProfiler) Median() (Entry, error) { return r.p.Median() }

// Quantile returns the entry at quantile q in [0, 1].
func (r *ReadOnlyProfiler) Quantile(q float64) (Entry, error) { return r.p.Quantile(q) }

// Majority returns the object holding a strict majority of the total count,
// if one exists.
func (r *ReadOnlyProfiler) Majority() (Entry, bool, error) { return r.p.Majority() }

// Distribution returns the frequency histogram.
func (r *ReadOnlyProfiler) Distribution() []FreqCount { return r.p.Distribution() }

// Summarize returns aggregate statistics of the profile.
func (r *ReadOnlyProfiler) Summarize() Summary { return r.p.Summarize() }

// Cap returns the number of object slots.
func (r *ReadOnlyProfiler) Cap() int { return r.p.Cap() }

// Total returns the sum of all frequencies.
func (r *ReadOnlyProfiler) Total() int64 { return r.p.Total() }

// Query answers a composite query through the underlying profiler's own
// cut-pinning (see QueryProfiler).
func (r *ReadOnlyProfiler) Query(q Query) (QueryResult, error) { return QueryProfiler(r.p, q) }

// Snapshot returns a point-in-time copy when the underlying profiler offers
// the Snapshotter capability, and ErrReadOnly otherwise (the view cannot
// fabricate one without replaying updates).
func (r *ReadOnlyProfiler) Snapshot() (*Profile, error) {
	if s, ok := r.p.(Snapshotter); ok {
		return s.Snapshot()
	}
	return nil, ErrReadOnly
}
