package sprofile_test

import (
	"sync"
	"testing"

	"sprofile"
	"sprofile/internal/stream"
)

func TestConcurrentBasicOperations(t *testing.T) {
	c := sprofile.MustNewConcurrent(8)
	c.Add(1)
	c.Add(1)
	c.Remove(2)
	if f, _ := c.Count(1); f != 2 {
		t.Fatalf("Count(1) = %d", f)
	}
	mode, _, err := c.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 1 || mode.Frequency != 2 {
		t.Fatalf("Mode = %+v", mode)
	}
	if _, _, err := c.Min(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Median(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Quantile(0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := c.KthLargest(1); err != nil {
		t.Fatal(err)
	}
	if maj, ok, _ := c.Majority(); !ok || maj.Object != 1 {
		t.Fatalf("Majority = %+v ok=%v, want object 1", maj, ok)
	}
	if len(c.TopK(3)) != 3 {
		t.Fatalf("TopK(3) length wrong")
	}
	if len(c.Distribution()) == 0 {
		t.Fatalf("Distribution empty")
	}
	if c.Cap() != 8 || c.Total() != 1 {
		t.Fatalf("Cap=%d Total=%d", c.Cap(), c.Total())
	}
	if c.Summarize().Capacity != 8 {
		t.Fatalf("Summarize capacity wrong")
	}
}

func TestConcurrentInvalidCapacity(t *testing.T) {
	if _, err := sprofile.NewConcurrent(-1); err == nil {
		t.Fatalf("NewConcurrent(-1) succeeded")
	}
}

func TestConcurrentParallelUpdatesAndQueries(t *testing.T) {
	const m = 64
	const workers = 8
	const opsPerWorker = 5000
	c := sprofile.MustNewConcurrent(m)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stream.NewRNG(seed)
			for i := 0; i < opsPerWorker; i++ {
				x := rng.Intn(m)
				if rng.Bernoulli(0.7) {
					_ = c.Add(x)
				} else {
					_ = c.Remove(x)
				}
				if i%100 == 0 {
					c.Mode()
					c.Median()
					c.TopK(5)
				}
			}
		}(uint64(w + 1))
	}
	// A concurrent reader taking snapshots while writers are active.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			snap, err := c.Snapshot()
			if err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			if err := snap.CheckInvariants(); err != nil {
				t.Errorf("snapshot invariants: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// After all writers finish, the profile must be internally consistent and
	// its event counters must match the number of operations issued.
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	adds, removes := snap.Events()
	if adds+removes != workers*opsPerWorker {
		t.Fatalf("events %d, want %d", adds+removes, workers*opsPerWorker)
	}
}

func TestConcurrentApplyAllAndWrap(t *testing.T) {
	p := sprofile.MustNew(4)
	c := sprofile.WrapConcurrent(p)
	tuples := []sprofile.Tuple{
		{Object: 0, Action: sprofile.ActionAdd},
		{Object: 1, Action: sprofile.ActionAdd},
		{Object: 0, Action: sprofile.ActionAdd},
	}
	n, err := c.ApplyAll(tuples)
	if err != nil || n != 3 {
		t.Fatalf("ApplyAll = %d, %v", n, err)
	}
	if err := c.Apply(sprofile.Tuple{Object: 2, Action: sprofile.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d, want 4", c.Total())
	}
}
