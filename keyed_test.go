package sprofile_test

import (
	"errors"
	"testing"

	"sprofile"
)

func TestKeyedBasicFlow(t *testing.T) {
	k := sprofile.MustNewKeyed[string](8)
	events := []struct {
		key    string
		action sprofile.Action
	}{
		{"alice", sprofile.ActionAdd},
		{"bob", sprofile.ActionAdd},
		{"alice", sprofile.ActionAdd},
		{"carol", sprofile.ActionAdd},
		{"bob", sprofile.ActionRemove},
	}
	for _, e := range events {
		if err := k.Apply(e.key, e.action); err != nil {
			t.Fatalf("Apply(%q, %v): %v", e.key, e.action, err)
		}
	}
	mode, _, err := k.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Key != "alice" || mode.Frequency != 2 {
		t.Fatalf("Mode = %+v", mode)
	}
	if f, err := k.Count("bob"); err != nil || f != 0 {
		t.Fatalf("Count(bob) = %d, %v", f, err)
	}
	if f, err := k.Count("never-seen"); err != nil || f != 0 {
		t.Fatalf("Count(never-seen) = %d, %v", f, err)
	}
	if k.Tracked() != 3 {
		t.Fatalf("Tracked() = %d, want 3", k.Tracked())
	}
	if k.Total() != 3 {
		t.Fatalf("Total() = %d, want 3", k.Total())
	}
	if k.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", k.Cap())
	}
}

func TestKeyedTopK(t *testing.T) {
	k := sprofile.MustNewKeyed[string](4)
	for i := 0; i < 3; i++ {
		k.Add("x")
	}
	for i := 0; i < 2; i++ {
		k.Add("y")
	}
	k.Add("z")
	top := k.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d entries", len(top))
	}
	if top[0].Key != "x" || top[0].Frequency != 3 {
		t.Fatalf("TopK[0] = %+v", top[0])
	}
	if top[1].Key != "y" || top[1].Frequency != 2 {
		t.Fatalf("TopK[1] = %+v", top[1])
	}
	if top[2].Key != "z" || top[2].Frequency != 1 {
		t.Fatalf("TopK[2] = %+v", top[2])
	}
}

func TestKeyedRemoveUnknownKey(t *testing.T) {
	k := sprofile.MustNewKeyed[string](4)
	if err := k.Remove("ghost"); !errors.Is(err, sprofile.ErrUnknownKey) {
		t.Fatalf("Remove(ghost) error %v", err)
	}
}

func TestKeyedStrictUnderflow(t *testing.T) {
	k := sprofile.MustNewKeyed[string](4)
	k.Add("a")
	if err := k.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := k.Remove("a"); !errors.Is(err, sprofile.ErrNegativeFrequency) {
		t.Fatalf("second Remove error %v, want ErrNegativeFrequency", err)
	}
}

func TestKeyedRecyclingEvictsIdleKeys(t *testing.T) {
	k := sprofile.MustNewKeyed[string](2)
	k.Add("a")
	k.Add("b")
	// Both slots used; "a" goes idle, so adding "c" must recycle a's id.
	if err := k.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := k.Add("c"); err != nil {
		t.Fatalf("Add(c) with an idle key available: %v", err)
	}
	if k.Tracked() != 2 {
		t.Fatalf("Tracked() = %d, want 2", k.Tracked())
	}
	if f, _ := k.Count("c"); f != 1 {
		t.Fatalf("Count(c) = %d, want 1", f)
	}
	// With both keys active, a third key cannot be admitted.
	if err := k.Add("d"); !errors.Is(err, sprofile.ErrKeyedFull) {
		t.Fatalf("Add(d) error %v, want ErrKeyedFull", err)
	}
}

func TestKeyedWithoutRecyclingAllowsNegative(t *testing.T) {
	k := sprofile.MustNewKeyed[string](2, sprofile.WithoutRecycling())
	k.Add("a")
	k.Add("b")
	if err := k.Remove("a"); err != nil {
		t.Fatal(err)
	}
	// "a" is idle but recycling is off: a new key must be rejected.
	if err := k.Add("c"); !errors.Is(err, sprofile.ErrKeyedFull) {
		t.Fatalf("Add(c) error %v, want ErrKeyedFull", err)
	}
	// And frequencies may go negative.
	if err := k.Remove("a"); err != nil {
		t.Fatalf("Remove below zero without recycling: %v", err)
	}
	if f, _ := k.Count("a"); f != -1 {
		t.Fatalf("Count(a) = %d, want -1", f)
	}
}

func TestKeyedMedianMajorityDistribution(t *testing.T) {
	k := sprofile.MustNewKeyed[int](3)
	for i := 0; i < 5; i++ {
		k.Add(42)
	}
	k.Add(7)
	med, err := k.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med.Frequency != 1 {
		t.Fatalf("Median frequency %d, want 1", med.Frequency)
	}
	maj, ok, err := k.Majority()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || maj.Key != 42 {
		t.Fatalf("Majority = %+v ok=%v", maj, ok)
	}
	dist := k.Distribution()
	if len(dist) != 3 {
		t.Fatalf("Distribution = %+v", dist)
	}
	sum := k.Summarize()
	if sum.Total != 6 || sum.MaxFrequency != 5 {
		t.Fatalf("Summarize = %+v", sum)
	}
	if k.Profile() == nil {
		t.Fatalf("Profile() returned nil")
	}
	// Profile() is a read-only view; the writable inner profiler of a
	// NewKeyed profile is a plain Profile, and advanced per-object queries
	// like Rank stay reachable through the explicit Unwrap escape hatch.
	view, ok := k.Profile().(*sprofile.ReadOnlyProfiler)
	if !ok {
		t.Fatalf("Profile() = %T, want *sprofile.ReadOnlyProfiler", k.Profile())
	}
	inner, ok := view.Unwrap().(*sprofile.Profile)
	if !ok {
		t.Fatalf("Profile().Unwrap() = %T, want *sprofile.Profile", view.Unwrap())
	}
	id, err := inner.Rank(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	if key, ok := k.KeyOf(0); !ok || (key != 42 && key != 7) {
		t.Fatalf("KeyOf(0) = %v ok=%v", key, ok)
	}
}

func TestKeyedInvalidAction(t *testing.T) {
	k := sprofile.MustNewKeyed[string](2)
	if err := k.Apply("a", sprofile.Action(0)); err == nil {
		t.Fatalf("Apply with invalid action succeeded")
	}
}

func TestKeyedInvalidCapacity(t *testing.T) {
	if _, err := sprofile.NewKeyed[string](-1); err == nil {
		t.Fatalf("NewKeyed(-1) succeeded")
	}
}
