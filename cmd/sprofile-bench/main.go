// Command sprofile-bench regenerates the paper's evaluation figures and the
// harness's additional ablation studies, printing one text table per figure
// panel and, optionally, writing CSV files for plotting.
//
// Usage:
//
//	sprofile-bench                       # every experiment, laptop scale
//	sprofile-bench -experiment figure6   # one experiment
//	sprofile-bench -full                 # paper-scale axes (slow, needs RAM)
//	sprofile-bench -csv results/         # also write one CSV per panel
//	sprofile-bench -json results.json    # machine-readable record of the run
//
// The experiment identifiers are listed with -list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"sprofile/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sprofile-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sprofile-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id or \"all\" (see -list)")
		full       = fs.Bool("full", false, "run the paper-scale sweep (n, m up to 1e8; slow)")
		csvDir     = fs.String("csv", "", "directory to write one CSV file per result panel")
		jsonPath   = fs.String("json", "", "file to write every result panel of the run as JSON")
		list       = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(bench.ExperimentIDs(), "\n"))
		return nil
	}

	scale := bench.DefaultScale()
	if *full {
		scale = bench.FullScale()
	}

	ids := bench.ExperimentIDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	var all []*bench.Result
	for _, id := range ids {
		results, err := bench.Run(id, scale)
		if err != nil {
			return err
		}
		all = append(all, results...)
		for _, r := range results {
			fmt.Fprintln(stdout, r.Table())
			if len(r.Methods) == 2 {
				min, max := r.Speedup(r.Methods[0], r.Methods[1])
				fmt.Fprintf(stdout, "speedup %s/%s: %.2fx to %.2fx\n\n", r.Methods[0], r.Methods[1], min, max)
			} else {
				fmt.Fprintln(stdout)
			}
			if *csvDir != "" {
				path := filepath.Join(*csvDir, r.ID+".csv")
				if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "wrote %s\n\n", path)
			}
		}
	}
	if *jsonPath != "" {
		doc := jsonDoc{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Full:       *full,
			Results:    all,
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	return nil
}

// jsonDoc is the machine-readable record -json writes: the host that
// produced the numbers plus every result panel of the run, so later PRs can
// diff throughput against a committed baseline.
type jsonDoc struct {
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	CPUs       int             `json:"cpus"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Full       bool            `json:"full"`
	Results    []*bench.Result `json:"results"`
}
