package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "figure3") || !strings.Contains(out.String(), "figure6") {
		t.Fatalf("-list output missing figures:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "figure99"}, &out); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

// TestRunSingleExperimentWithCSV exercises the full path (experiment run,
// table rendering, speedup line, CSV output) on the smallest real experiment.
// It uses the default scale, so keep the experiment cheap: the block-hint
// ablation runs a single method.
func TestRunSingleExperimentWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) measurement sweep")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-experiment", "sliding-window", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "sliding-window") {
		t.Fatalf("output missing experiment id:\n%s", text)
	}
	if !strings.Contains(text, "speedup") {
		t.Fatalf("output missing speedup summary:\n%s", text)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no CSV files written")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,") {
		t.Fatalf("CSV missing header: %q", string(data)[:20])
	}
}
