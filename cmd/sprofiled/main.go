// Command sprofiled runs the HTTP ingest/query server: producers POST
// (object, action) events and consumers GET the statistics of the profiled
// stream (mode, top-K, quantiles, distribution) at any time.
//
// Usage:
//
//	sprofiled -addr :8080 -capacity 1000000
//
// See internal/server for the API surface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	// Registers the profiling handlers on http.DefaultServeMux, which only
	// the optional -pprof listener serves; the API mux stays clean.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sprofile"
	"sprofile/internal/failpoint"
	"sprofile/internal/server"
)

// newLogger builds the process logger from the -log-format / -log-level
// flags. JSON output is what log shippers want; text is for humans at a
// terminal. An unknown level or format falls back to info/text with a
// warning rather than refusing to start.
func newLogger(format, level string) *slog.Logger {
	var lvl slog.Level
	badLevel := false
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
		badLevel = true
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	badFormat := false
	switch strings.ToLower(format) {
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	default:
		h = slog.NewTextHandler(os.Stderr, opts)
		badFormat = true
	}
	logger := slog.New(h)
	if badLevel {
		logger.Warn("unknown -log-level, using info", "level", level)
	}
	if badFormat {
		logger.Warn("unknown -log-format, using text", "format", format)
	}
	return logger
}

func main() {
	fs := flag.NewFlagSet("sprofiled", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		capacity    = fs.Int("capacity", 1_000_000, "maximum number of concurrently tracked objects")
		shards      = fs.Int("shards", 0, "split the profile across this many lock shards (0 = one per CPU)")
		maxBatch    = fs.Int("max-batch", 10_000, "maximum number of events per POST")
		walPath     = fs.String("wal", "", "write-ahead log directory; state is recovered from it on startup (a legacy single-file log at this path is migrated automatically)")
		walSync     = fs.Int("wal-sync-every", 0, "fsync the WAL after this many events (0 = once per batch)")
		ckptEvery   = fs.Duration("checkpoint-every", 0, "snapshot the profile and truncate the WAL on this cadence (0 = disabled; requires -wal)")
		ckptBytes   = fs.Int64("checkpoint-bytes", 0, "additionally checkpoint once the WAL tail exceeds this many bytes (0 = disabled; requires -wal)")
		follow      = fs.String("follow", "", "run as a read-only follower of the leader at this base URL; -wal names the local mirror directory (required). Writes are refused with the leader's address until POST /v1/admin/promote")
		pollWait    = fs.Duration("follow-poll", 0, "long-poll wait per WAL tail fetch in follower mode (0 = 20s default)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) on a listener separate from the API, so hot-path regressions can be profiled in production; empty disables")
		asyncIngest = fs.Bool("async-ingest", false, "route ingestion through the shared-nothing async plane: per-shard mailboxes, one applier per shard, epoch-snapshot reads (bounded staleness; POST /v1/admin/flush forces read-your-write). Full mailboxes return 429")
		asyncFlush  = fs.Duration("async-flush-us", 0, "snapshot publish cadence (the read staleness bound) with -async-ingest; 0 = 2ms default")
		asyncDepth  = fs.Int("async-mailbox-depth", 0, "per-producer per-shard mailbox capacity with -async-ingest; 0 = 1024 default")
		logFormat   = fs.String("log-format", "text", "log output format: text or json")
		logLevel    = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		maxInFlight = fs.Int("max-in-flight", 0, "shed requests beyond this many in flight with 503 (0 = 1024 default, negative disables; /healthz and /metrics are exempt)")
		reqTimeout  = fs.Duration("request-timeout", 0, "per-route response deadline; lapsed requests answer 503 code \"deadline\" (0 = 15s default, negative disables; streaming routes are never bounded)")
		debugFaults = fs.Bool("debug-failpoints", false, "register POST /v1/admin/failpoint for runtime fault injection (chaos rigs and tests only; NEVER in production)")
		drainWait   = fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests to drain before the data plane is settled (flush, final checkpoint, WAL close)")
	)
	fs.Parse(os.Args[1:])

	logger := newLogger(*logFormat, *logLevel)
	slog.SetDefault(logger)
	logger.Info("starting", "version", sprofile.Version, "commit", sprofile.Commit)

	// Failpoints armed from the environment work in any build, debug surface
	// or not — the chaos harness and crash-recovery rigs start faulty
	// processes this way.
	if env := os.Getenv(failpoint.EnvVar); env != "" {
		if err := failpoint.ParseEnv(env); err != nil {
			logger.Error("invalid "+failpoint.EnvVar, "err", err)
			os.Exit(1)
		}
		logger.Warn("failpoints armed from environment", "spec", env)
	}

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			// DefaultServeMux carries only the net/http/pprof handlers; a
			// failure here (port in use, say) must not take the API down.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
	}

	srv, err := server.New(server.Config{
		Capacity:           *capacity,
		Shards:             *shards,
		MaxBatch:           *maxBatch,
		WALPath:            *walPath,
		WALSyncEvery:       *walSync,
		CheckpointEvery:    *ckptEvery,
		CheckpointBytes:    *ckptBytes,
		Follow:             *follow,
		FollowPoll:         *pollWait,
		AsyncIngest:        *asyncIngest,
		AsyncFlushInterval: *asyncFlush,
		AsyncMailboxDepth:  *asyncDepth,
		MaxInFlight:        *maxInFlight,
		RequestTimeout:     *reqTimeout,
		DebugFailpoints:    *debugFaults,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if *follow != "" {
		logger.Info("following leader; writes are refused until promoted",
			"leader", *follow, "mirror", *walPath)
	} else if *walPath != "" {
		rec := srv.Recovery()
		if rec.SnapshotSeq > 0 {
			logger.Info("recovered from checkpoint",
				"wal", *walPath,
				"snapshot_seq", rec.SnapshotSeq,
				"snapshot_objects", rec.SnapshotObjects,
				"snapshot_events", rec.SnapshotEvents,
				"tail_records", rec.TailRecords,
				"tail_segments", rec.TailSegments)
		} else {
			logger.Info("replayed WAL", "wal", *walPath, "events", srv.Replayed())
		}
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "capacity", *capacity)
		errCh <- httpServer.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Drain-ordered shutdown: stop accepting and drain in-flight
		// requests (with a bound, so a stuck client cannot hold the process
		// hostage), then settle the data plane — flush the async ingest
		// plane, take a final checkpoint, close the WAL. Order matters: the
		// final checkpoint must cover everything the drained requests
		// acknowledged.
		logger.Info("draining", "timeout", *drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			logger.Error("drain incomplete; settling the data plane anyway", "err", err)
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		logger.Info("stopped")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			if cerr := srv.Close(); cerr != nil {
				logger.Error("closing WAL", "err", cerr)
			}
			os.Exit(1)
		}
	}
	fmt.Println()
}
