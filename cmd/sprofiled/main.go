// Command sprofiled runs the HTTP ingest/query server: producers POST
// (object, action) events and consumers GET the statistics of the profiled
// stream (mode, top-K, quantiles, distribution) at any time.
//
// Usage:
//
//	sprofiled -addr :8080 -capacity 1000000
//
// See internal/server for the API surface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	// Registers the profiling handlers on http.DefaultServeMux, which only
	// the optional -pprof listener serves; the API mux stays clean.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sprofile/internal/server"
)

func main() {
	fs := flag.NewFlagSet("sprofiled", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		capacity    = fs.Int("capacity", 1_000_000, "maximum number of concurrently tracked objects")
		shards      = fs.Int("shards", 0, "split the profile across this many lock shards (0 = one per CPU)")
		maxBatch    = fs.Int("max-batch", 10_000, "maximum number of events per POST")
		walPath     = fs.String("wal", "", "write-ahead log directory; state is recovered from it on startup (a legacy single-file log at this path is migrated automatically)")
		walSync     = fs.Int("wal-sync-every", 0, "fsync the WAL after this many events (0 = once per batch)")
		ckptEvery   = fs.Duration("checkpoint-every", 0, "snapshot the profile and truncate the WAL on this cadence (0 = disabled; requires -wal)")
		ckptBytes   = fs.Int64("checkpoint-bytes", 0, "additionally checkpoint once the WAL tail exceeds this many bytes (0 = disabled; requires -wal)")
		follow      = fs.String("follow", "", "run as a read-only follower of the leader at this base URL; -wal names the local mirror directory (required). Writes are refused with the leader's address until POST /v1/admin/promote")
		pollWait    = fs.Duration("follow-poll", 0, "long-poll wait per WAL tail fetch in follower mode (0 = 20s default)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) on a listener separate from the API, so hot-path regressions can be profiled in production; empty disables")
		asyncIngest = fs.Bool("async-ingest", false, "route ingestion through the shared-nothing async plane: per-shard mailboxes, one applier per shard, epoch-snapshot reads (bounded staleness; POST /v1/admin/flush forces read-your-write). Full mailboxes return 429")
		asyncFlush  = fs.Duration("async-flush-us", 0, "snapshot publish cadence (the read staleness bound) with -async-ingest; 0 = 2ms default")
		asyncDepth  = fs.Int("async-mailbox-depth", 0, "per-producer per-shard mailbox capacity with -async-ingest; 0 = 1024 default")
	)
	fs.Parse(os.Args[1:])

	if *pprofAddr != "" {
		go func() {
			log.Printf("sprofiled: pprof listening on %s", *pprofAddr)
			// DefaultServeMux carries only the net/http/pprof handlers; a
			// failure here (port in use, say) must not take the API down.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("sprofiled: pprof listener: %v", err)
			}
		}()
	}

	srv, err := server.New(server.Config{
		Capacity:           *capacity,
		Shards:             *shards,
		MaxBatch:           *maxBatch,
		WALPath:            *walPath,
		WALSyncEvery:       *walSync,
		CheckpointEvery:    *ckptEvery,
		CheckpointBytes:    *ckptBytes,
		Follow:             *follow,
		FollowPoll:         *pollWait,
		AsyncIngest:        *asyncIngest,
		AsyncFlushInterval: *asyncFlush,
		AsyncMailboxDepth:  *asyncDepth,
	})
	if err != nil {
		log.Fatalf("sprofiled: %v", err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("sprofiled: closing WAL: %v", err)
		}
	}()
	if *follow != "" {
		log.Printf("sprofiled: following %s (mirror %s); writes are refused until promoted", *follow, *walPath)
	} else if *walPath != "" {
		rec := srv.Recovery()
		if rec.SnapshotSeq > 0 {
			log.Printf("sprofiled: restored %d objects (%d events) from snapshot %d, replayed %d tail events from %d segments in %s",
				rec.SnapshotObjects, rec.SnapshotEvents, rec.SnapshotSeq, rec.TailRecords, rec.TailSegments, *walPath)
		} else {
			log.Printf("sprofiled: replayed %d events from %s", srv.Replayed(), *walPath)
		}
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("sprofiled: listening on %s (capacity %d)", *addr, *capacity)
		errCh <- httpServer.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("sprofiled: shutdown: %v", err)
		}
		log.Println("sprofiled: stopped")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sprofiled: %v", err)
		}
	}
	fmt.Println()
}
