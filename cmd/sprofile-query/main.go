// Command sprofile-query runs composite, atomic multi-statistic queries
// against a running sprofiled server through the typed client SDK: one
// invocation is ONE POST /v1/query, so every printed statistic comes from
// the same consistent cut of the server's profile.
//
// Usage:
//
//	sprofile-query -addr http://localhost:8080 -mode -top 10 -quantiles 0.5,0.99 -summary
//	sprofile-query -count alice,bob -majority
//	sprofile-query -mode -summary -json
//
// With no statistic flags it asks for mode, top 10 and the summary — the
// dashboard staples. -json prints the raw KeyedQueryResult document instead
// of the human-readable report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sprofile"
	"sprofile/client"
)

func main() {
	fs := flag.NewFlagSet("sprofile-query", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://localhost:8080", "base URL of the sprofiled server")
		timeout   = fs.Duration("timeout", 10*time.Second, "request timeout")
		asJSON    = fs.Bool("json", false, "print the raw JSON result document")
		mode      = fs.Bool("mode", false, "most frequent object")
		minStat   = fs.Bool("min", false, "least frequent slot")
		top       = fs.Int("top", 0, "top-K objects")
		bottom    = fs.Int("bottom", 0, "bottom-K slots")
		kth       = fs.String("kth", "", "comma-separated 1-based ranks, e.g. 1,2,10")
		median    = fs.Bool("median", false, "median frequency")
		quantiles = fs.String("quantiles", "", "comma-separated quantiles in [0,1], e.g. 0.5,0.99")
		majority  = fs.Bool("majority", false, "strict-majority object, if any")
		dist      = fs.Bool("distribution", false, "full frequency histogram")
		summary   = fs.Bool("summary", false, "aggregate counters")
		count     = fs.String("count", "", "comma-separated object keys to count")
	)
	fs.Parse(os.Args[1:])

	q := sprofile.KeyedQuery[string]{
		Mode:         *mode,
		Min:          *minStat,
		TopK:         *top,
		BottomK:      *bottom,
		Median:       *median,
		Majority:     *majority,
		Distribution: *dist,
		Summary:      *summary,
	}
	if *count != "" {
		q.Count = strings.Split(*count, ",")
	}
	if *kth != "" {
		for _, s := range strings.Split(*kth, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("sprofile-query: bad -kth entry %q: %v", s, err)
			}
			q.KthLargest = append(q.KthLargest, k)
		}
	}
	if *quantiles != "" {
		for _, s := range strings.Split(*quantiles, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				log.Fatalf("sprofile-query: bad -quantiles entry %q: %v", s, err)
			}
			q.Quantiles = append(q.Quantiles, v)
		}
	}
	// No statistic selected: ask for the dashboard staples.
	if !q.Mode && !q.Min && q.TopK == 0 && q.BottomK == 0 && len(q.KthLargest) == 0 &&
		!q.Median && len(q.Quantiles) == 0 && !q.Majority && !q.Distribution && !q.Summary &&
		len(q.Count) == 0 {
		q.Mode, q.TopK, q.Summary = true, 10, true
	}

	c, err := client.New(*addr)
	if err != nil {
		log.Fatalf("sprofile-query: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := c.Query(ctx, q)
	if err != nil {
		log.Fatalf("sprofile-query: %v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	printResult(res)
}

func printResult(res sprofile.KeyedQueryResult[string]) {
	if len(res.Counts) > 0 {
		fmt.Println("counts:")
		for _, e := range res.Counts {
			fmt.Printf("  %-24q %d\n", e.Key, e.Frequency)
		}
	}
	if res.Mode != nil {
		fmt.Printf("mode:       %q frequency %d (%d tied)\n", res.Mode.Key, res.Mode.Frequency, res.Mode.Ties)
	}
	if res.Min != nil {
		fmt.Printf("min:        %q frequency %d (%d tied)\n", res.Min.Key, res.Min.Frequency, res.Min.Ties)
	}
	printEntries := func(label string, entries []sprofile.KeyedEntry[string]) {
		if len(entries) == 0 {
			return
		}
		fmt.Printf("%s:\n", label)
		for i, e := range entries {
			fmt.Printf("  #%-3d %-24q %d\n", i+1, e.Key, e.Frequency)
		}
	}
	printEntries("top", res.TopK)
	printEntries("bottom", res.BottomK)
	printEntries("kth-largest", res.KthLargest)
	if res.Median != nil {
		fmt.Printf("median:     frequency %d (%q)\n", res.Median.Frequency, res.Median.Key)
	}
	for _, qe := range res.Quantiles {
		fmt.Printf("q=%-6g    frequency %d (%q)\n", qe.Q, qe.Frequency, qe.Key)
	}
	if res.Majority != nil {
		if res.Majority.Majority {
			fmt.Printf("majority:   %q with frequency %d\n", res.Majority.Key, res.Majority.Frequency)
		} else {
			fmt.Println("majority:   none")
		}
	}
	if len(res.Distribution) > 0 {
		fmt.Println("distribution (freq: objects):")
		for _, fc := range res.Distribution {
			fmt.Printf("  %8d: %d\n", fc.Freq, fc.Count)
		}
	}
	if res.Summary != nil {
		s := res.Summary
		fmt.Printf("summary:    capacity=%d total=%d active=%d distinct-freqs=%d max=%d min=%d adds=%d removes=%d\n",
			s.Capacity, s.Total, s.Active, s.DistinctFrequencies, s.MaxFrequency, s.MinFrequency, s.Adds, s.Removes)
	}
}
