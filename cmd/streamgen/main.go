// Command streamgen generates synthetic log streams — the paper's Stream1/2/3
// and the additional workloads used by the ablation benchmarks — and writes
// them to a file in the binary or CSV stream format understood by the other
// tools in this repository.
//
// Usage:
//
//	streamgen -workload stream1 -m 1000000 -n 10000000 -o stream1.bin
//	streamgen -workload zipf -m 100000 -n 1000000 -format csv -o zipf.csv
//
// The available workloads are listed with -list.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sprofile/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("streamgen", flag.ContinueOnError)
	var (
		workload = fs.String("workload", "stream1", "workload name (see -list)")
		m        = fs.Int("m", 1_000_000, "number of distinct object ids")
		n        = fs.Int("n", 1_000_000, "number of tuples to generate")
		seed     = fs.Uint64("seed", 1, "random seed")
		format   = fs.String("format", "binary", "output format: binary or csv")
		out      = fs.String("o", "", "output file (defaults to <workload>.<ext>)")
		list     = fs.Bool("list", false, "list available workloads and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(stream.WorkloadNames(), "\n"))
		return nil
	}
	if *n <= 0 || *m <= 0 {
		return fmt.Errorf("n and m must be positive (n=%d, m=%d)", *n, *m)
	}

	w, err := stream.NamedWorkload(*workload, *m, *seed)
	if err != nil {
		return err
	}

	path := *out
	if path == "" {
		ext := "bin"
		if *format == "csv" {
			ext = "csv"
		}
		path = fmt.Sprintf("%s.%s", *workload, ext)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	switch *format {
	case "binary":
		bw, err := stream.NewBinaryWriter(f, *m)
		if err != nil {
			return err
		}
		for i := 0; i < *n; i++ {
			if err := bw.Write(w.Next()); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	case "csv":
		tuples := stream.Take(w, *n)
		if err := stream.EncodeCSV(f, *m, tuples); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want binary or csv)", *format)
	}
	fmt.Fprintf(stdout, "wrote %d tuples of %s (m=%d) to %s\n", *n, *workload, *m, path)
	return nil
}
