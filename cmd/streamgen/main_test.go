package main

import (
	"os"
	"path/filepath"
	"testing"

	"sprofile/internal/stream"
)

func TestRunGeneratesBinaryStream(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "s1.bin")
	err := run([]string{"-workload", "stream1", "-m", "100", "-n", "500", "-o", out}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, tuples, err := stream.DecodeBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if m != 100 || len(tuples) != 500 {
		t.Fatalf("decoded m=%d, %d tuples", m, len(tuples))
	}
}

func TestRunGeneratesCSVStream(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "z.csv")
	err := run([]string{"-workload", "zipf", "-m", "50", "-n", "200", "-format", "csv", "-o", out}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, tuples, err := stream.DecodeCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if m != 50 || len(tuples) != 200 {
		t.Fatalf("decoded m=%d, %d tuples", m, len(tuples))
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-n", "0"}, os.Stdout); err == nil {
		t.Fatalf("accepted n=0")
	}
	if err := run([]string{"-workload", "nope"}, os.Stdout); err == nil {
		t.Fatalf("accepted unknown workload")
	}
	if err := run([]string{"-format", "xml", "-n", "10", "-m", "10", "-o", filepath.Join(t.TempDir(), "x")}, os.Stdout); err == nil {
		t.Fatalf("accepted unknown format")
	}
}
