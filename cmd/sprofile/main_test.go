package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprofile/internal/core"
	"sprofile/internal/stream"
)

func writeBinaryStream(t *testing.T, path string, m int, tuples []core.Tuple) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := stream.EncodeBinary(f, m, tuples); err != nil {
		t.Fatal(err)
	}
}

func TestRunGeneratedWorkloadText(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "stream1", "-m", "200", "-n", "5000", "-stats", "mode,median,top,summary", "-top", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"processed 5000 tuples", "mode:", "median:", "top objects:", "summary:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunGeneratedWorkloadJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-workload", "stream2", "-m", "100", "-n", "2000", "-json", "-stats", "mode,min,distribution"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var doc outputDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
	}
	if doc.Tuples != 2000 || doc.Capacity != 100 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Mode == nil || doc.Min == nil || len(doc.Distribution) == 0 {
		t.Fatalf("missing requested sections: %+v", doc)
	}
	if doc.Median != nil {
		t.Fatalf("median present although not requested")
	}
}

func TestRunBinaryInputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.bin")
	tuples := []core.Tuple{
		{Object: 0, Action: core.ActionAdd},
		{Object: 0, Action: core.ActionAdd},
		{Object: 1, Action: core.ActionAdd},
		{Object: 2, Action: core.ActionRemove},
	}
	writeBinaryStream(t, path, 5, tuples)

	var out bytes.Buffer
	if err := run([]string{"-input", path, "-json", "-stats", "mode,summary"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc outputDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Tuples != 4 || doc.Mode == nil || doc.Mode.Object != 0 || doc.Mode.Frequency != 2 {
		t.Fatalf("doc = %+v mode %+v", doc, doc.Mode)
	}
}

func TestRunCSVInputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	content := "# m=3\n0,add\n0,add\n1,add\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-input", path, "-json", "-stats", "mode"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc outputDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Tuples != 3 || doc.Mode == nil || doc.Mode.Frequency != 2 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestRunStrictModeRejectsUnderflow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bin")
	writeBinaryStream(t, path, 3, []core.Tuple{{Object: 1, Action: core.ActionRemove}})
	var out bytes.Buffer
	if err := run([]string{"-input", path, "-strict"}, &out); err == nil {
		t.Fatalf("strict replay of a remove-first stream succeeded")
	}
	// The same stream is fine without -strict.
	if err := run([]string{"-input", path}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workload", "unknown"}, &out); err == nil {
		t.Fatalf("unknown workload accepted")
	}
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Fatalf("n=0 accepted")
	}
	if err := run([]string{"-input", "/does/not/exist.bin"}, &out); err == nil {
		t.Fatalf("missing input file accepted")
	}
}
