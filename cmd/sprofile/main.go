// Command sprofile replays a log stream through the S-Profile data structure
// and prints the requested statistics. The stream either comes from a file
// written by streamgen (binary or CSV) or is generated on the fly from one of
// the named workloads.
//
// Usage:
//
//	sprofile -input stream1.bin -top 10
//	sprofile -workload stream2 -m 100000 -n 1000000 -stats mode,median,distribution
//	sprofile -workload stream1 -shards 16           # sharded representation
//	sprofile -workload stream1 -window 100000       # only the last 100k tuples
//
// The profile representation is assembled with sprofile.Build, so -shards and
// -window swap in a sharded or sliding-window profile without changing any of
// the replay or query code.
//
// After replaying the stream the tool prints one section per requested
// statistic; -json switches the output to a single JSON document.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sprofile"
	"sprofile/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sprofile:", err)
		os.Exit(1)
	}
}

type outputDoc struct {
	Tuples       uint64               `json:"tuples"`
	Capacity     int                  `json:"capacity"`
	Mode         *entryDoc            `json:"mode,omitempty"`
	Min          *entryDoc            `json:"min,omitempty"`
	Median       *entryDoc            `json:"median,omitempty"`
	Top          []entryDoc           `json:"top,omitempty"`
	Distribution []sprofile.FreqCount `json:"distribution,omitempty"`
	Summary      *sprofile.Summary    `json:"summary,omitempty"`
}

type entryDoc struct {
	Object    int   `json:"object"`
	Frequency int64 `json:"frequency"`
	Ties      int   `json:"ties,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sprofile", flag.ContinueOnError)
	var (
		input    = fs.String("input", "", "stream file produced by streamgen (binary or CSV)")
		workload = fs.String("workload", "stream1", "generated workload when no -input is given")
		m        = fs.Int("m", 100_000, "number of distinct object ids for generated workloads")
		n        = fs.Int("n", 1_000_000, "number of tuples for generated workloads")
		seed     = fs.Uint64("seed", 1, "random seed for generated workloads")
		topK     = fs.Int("top", 10, "number of entries for the top statistic")
		stats    = fs.String("stats", "mode,top,median,summary", "comma-separated statistics: mode,min,median,top,distribution,summary")
		strict   = fs.Bool("strict", false, "reject removals that would drive a frequency below zero")
		shards   = fs.Int("shards", 0, "split the profile across this many lock shards (0 = unsharded)")
		window   = fs.Int("window", 0, "profile only the last N tuples through a sliding window (0 = whole stream)")
		asJSON   = fs.Bool("json", false, "emit a single JSON document instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := buildOptions(*strict, *shards, *window)
	var (
		profile sprofile.Profiler
		applied uint64
		err     error
	)
	if *input != "" {
		profile, applied, err = replayFile(*input, opts)
	} else {
		profile, applied, err = replayGenerated(*workload, *m, *n, *seed, opts)
	}
	if err != nil {
		return err
	}

	requested := map[string]bool{}
	for _, s := range strings.Split(*stats, ",") {
		requested[strings.TrimSpace(s)] = true
	}

	doc := outputDoc{Tuples: applied, Capacity: profile.Cap()}
	if requested["mode"] {
		if e, ties, err := profile.Mode(); err == nil {
			doc.Mode = &entryDoc{Object: e.Object, Frequency: e.Frequency, Ties: ties}
		}
	}
	if requested["min"] {
		if e, ties, err := profile.Min(); err == nil {
			doc.Min = &entryDoc{Object: e.Object, Frequency: e.Frequency, Ties: ties}
		}
	}
	if requested["median"] {
		if e, err := profile.Median(); err == nil {
			doc.Median = &entryDoc{Object: e.Object, Frequency: e.Frequency}
		}
	}
	if requested["top"] {
		for _, e := range profile.TopK(*topK) {
			doc.Top = append(doc.Top, entryDoc{Object: e.Object, Frequency: e.Frequency})
		}
	}
	if requested["distribution"] {
		doc.Distribution = profile.Distribution()
	}
	if requested["summary"] {
		s := profile.Summarize()
		doc.Summary = &s
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return writeText(stdout, doc)
}

func writeText(w io.Writer, doc outputDoc) error {
	fmt.Fprintf(w, "processed %d tuples over %d object slots\n", doc.Tuples, doc.Capacity)
	if doc.Mode != nil {
		fmt.Fprintf(w, "mode:    object %d with frequency %d (%d object(s) tie)\n",
			doc.Mode.Object, doc.Mode.Frequency, doc.Mode.Ties)
	}
	if doc.Min != nil {
		fmt.Fprintf(w, "min:     object %d with frequency %d (%d object(s) tie)\n",
			doc.Min.Object, doc.Min.Frequency, doc.Min.Ties)
	}
	if doc.Median != nil {
		fmt.Fprintf(w, "median:  frequency %d (object %d)\n", doc.Median.Frequency, doc.Median.Object)
	}
	if len(doc.Top) > 0 {
		fmt.Fprintln(w, "top objects:")
		for i, e := range doc.Top {
			fmt.Fprintf(w, "  %2d. object %-10d frequency %d\n", i+1, e.Object, e.Frequency)
		}
	}
	if len(doc.Distribution) > 0 {
		fmt.Fprintln(w, "frequency distribution (ascending):")
		for _, fc := range doc.Distribution {
			fmt.Fprintf(w, "  frequency %-10d objects %d\n", fc.Freq, fc.Count)
		}
	}
	if doc.Summary != nil {
		s := doc.Summary
		fmt.Fprintf(w, "summary: total=%d active=%d negative=%d distinct-frequencies=%d max=%d min=%d adds=%d removes=%d\n",
			s.Total, s.Active, s.Negative, s.DistinctFrequencies, s.MaxFrequency, s.MinFrequency, s.Adds, s.Removes)
	}
	return nil
}

// buildOptions translates the CLI flags into builder capabilities; the rest
// of the tool only ever sees the sprofile.Profiler interface.
func buildOptions(strict bool, shards, window int) []sprofile.BuildOption {
	var opts []sprofile.BuildOption
	if strict {
		opts = append(opts, sprofile.Strict())
	}
	if shards != 0 {
		opts = append(opts, sprofile.WithSharding(shards))
	}
	if window != 0 {
		opts = append(opts, sprofile.Windowed(window))
	}
	return opts
}

// replayFile loads a stream file and applies every tuple to a fresh profile.
func replayFile(path string, opts []sprofile.BuildOption) (sprofile.Profiler, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	if strings.HasSuffix(path, ".csv") {
		m, tuples, err := stream.DecodeCSV(f)
		if err != nil {
			return nil, 0, err
		}
		p, err := sprofile.Build(m, opts...)
		if err != nil {
			return nil, 0, err
		}
		applied, err := p.ApplyAll(tuples)
		return p, uint64(applied), err
	}

	br, err := stream.NewBinaryReader(f)
	if err != nil {
		return nil, 0, err
	}
	p, err := sprofile.Build(br.M(), opts...)
	if err != nil {
		return nil, 0, err
	}
	var applied uint64
	for {
		t, err := br.Read()
		if errors.Is(err, io.EOF) {
			return p, applied, nil
		}
		if err != nil {
			return nil, applied, err
		}
		if err := p.Apply(t); err != nil {
			return nil, applied, err
		}
		applied++
	}
}

// replayGenerated generates n tuples of the named workload and applies them.
func replayGenerated(workload string, m, n int, seed uint64, opts []sprofile.BuildOption) (sprofile.Profiler, uint64, error) {
	if n <= 0 || m <= 0 {
		return nil, 0, fmt.Errorf("n and m must be positive (n=%d, m=%d)", n, m)
	}
	w, err := stream.NamedWorkload(workload, m, seed)
	if err != nil {
		return nil, 0, err
	}
	p, err := sprofile.Build(m, opts...)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < n; i++ {
		if err := p.Apply(w.Next()); err != nil {
			return nil, uint64(i), err
		}
	}
	return p, uint64(n), nil
}
