// Command sprofile-lint is the module's invariant checker: a multichecker
// running the custom analyzers in internal/lint over the packages named on
// the command line. It exits 0 when the tree is clean, 1 when any analyzer
// reports a finding, and 2 when analysis itself fails.
//
// Usage:
//
//	sprofile-lint [flags] [packages]
//
//	sprofile-lint ./...                   # whole module (the CI gate)
//	sprofile-lint -analyzers locksafe .   # one analyzer, one package
//	sprofile-lint -C /path/to/module ./...
//
// Findings can be suppressed line-by-line with an audited comment naming
// the analyzer:
//
//	//lint:allow locksafe — audited: bounded buffered write under appendMu
//
// See the README's "Static analysis & invariants" section for each
// analyzer's contract and the escape policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sprofile/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir       = flag.String("C", ".", "change to this directory (module root or below) before analyzing")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		readme    = flag.String("readme", "", "document that must list every failpoint site (default: the module root's README.md)")
		list      = flag.Bool("help-analyzers", false, "print the analyzers and their invariants, then exit")
	)
	flag.Parse()

	all := lint.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *analyzers != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*analyzers, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sprofile-lint: unknown analyzer %q (see -help-analyzers)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	lint.FailpointReadme = *readme
	if lint.FailpointReadme == "" {
		if root, err := moduleRoot(*dir); err == nil {
			candidate := filepath.Join(root, "README.md")
			if _, err := os.Stat(candidate); err == nil {
				lint.FailpointReadme = candidate
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sprofile-lint: %v\n", err)
		return 2
	}

	suite := &lint.Suite{Analyzers: selected}
	diags, err := suite.Run(pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sprofile-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sprofile-lint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// moduleRoot resolves the root directory of the module containing dir.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("no module found from %s", dir)
	}
	return filepath.Dir(gomod), nil
}
