package mailbox

import (
	"runtime"
	"sync"
	"testing"
)

func TestPushPopOrder(t *testing.T) {
	r := New[int](8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) on non-full ring failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("Push on full ring succeeded")
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	dst := make([]int, 3)
	got := 0
	for {
		n := r.Pop(dst)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if dst[i] != got {
				t.Fatalf("popped %d, want %d", dst[i], got)
			}
			got++
		}
	}
	if got != 8 {
		t.Fatalf("popped %d elements, want 8", got)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", r.Len())
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	} {
		if got := New[int](tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestWrapAround pushes far past the capacity so the masked indices wrap
// many times, interleaving partial pops.
func TestWrapAround(t *testing.T) {
	r := New[int](4)
	dst := make([]int, 3)
	next := 0
	popped := 0
	for i := 0; i < 1000; i++ {
		for r.Push(next) {
			next++
		}
		n := r.Pop(dst)
		for j := 0; j < n; j++ {
			if dst[j] != popped {
				t.Fatalf("popped %d, want %d", dst[j], popped)
			}
			popped++
		}
	}
	if r.Pushed() != uint64(next) {
		t.Fatalf("Pushed = %d, want %d", r.Pushed(), next)
	}
}

// TestConcurrentSPSC hammers one producer against one consumer under the
// race detector: every pushed value must come out exactly once, in order.
func TestConcurrentSPSC(t *testing.T) {
	const total = 200_000
	r := New[uint64](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Push(i) {
				i++
			} else {
				// Yield so the consumer makes progress on a single CPU.
				runtime.Gosched()
			}
		}
	}()
	dst := make([]uint64, 64)
	want := uint64(0)
	for want < total {
		n := r.Pop(dst)
		if n == 0 {
			runtime.Gosched()
		}
		for i := 0; i < n; i++ {
			if dst[i] != want {
				t.Fatalf("popped %d, want %d", dst[i], want)
			}
			want++
		}
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", r.Len())
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := New[int](1024)
	dst := make([]int, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Push(i) {
			r.Pop(dst)
			r.Push(i)
		}
	}
}

// TestHoldsPointers pins the clearing decision: pointer-free element types
// skip slot zeroing, pointer-bearing ones must not.
func TestHoldsPointers(t *testing.T) {
	type dense struct{ A, B int64 }
	type keyed struct {
		K string
		A int64
	}
	type nested struct{ D [4]dense }
	if HoldsPointers[dense]() || HoldsPointers[int]() || HoldsPointers[nested]() {
		t.Fatal("pointer-free types reported as holding pointers")
	}
	if !HoldsPointers[keyed]() || !HoldsPointers[*int]() || !HoldsPointers[[]byte]() {
		t.Fatal("pointer-bearing types reported as pointer-free")
	}
	if New[dense](4).clearSlots {
		t.Fatal("dense ring clears slots")
	}
	if !New[keyed](4).clearSlots {
		t.Fatal("keyed ring does not clear slots")
	}
}

// TestPopClearsPointerSlots verifies consumed slots of a pointer-bearing ring
// are zeroed so the ring does not pin element memory past consumption.
func TestPopClearsPointerSlots(t *testing.T) {
	r := New[string](4)
	for i := 0; i < 3; i++ {
		r.Push("pinned")
	}
	dst := make([]string, 4)
	if n := r.Pop(dst); n != 3 {
		t.Fatalf("Pop = %d, want 3", n)
	}
	for i, s := range r.buf {
		if s != "" {
			t.Fatalf("buf[%d] = %q, want cleared", i, s)
		}
	}
}
