// Package mailbox provides the cache-line-padded single-producer
// single-consumer ring buffer underneath the async ingest plane: each
// producer goroutine owns one Ring per shard applier, so the hot enqueue
// path is two atomic loads, one store of the element and one atomic store —
// no locks, no compare-and-swap loops, no contended cache lines.
//
// The design is the classic bounded SPSC queue with free-running indices:
//
//   - capacity is a power of two; head and tail are uint64 counters that
//     only ever increase and are masked (& (cap-1)) for slot addressing, so
//     full/empty never needs a wasted slot and wrap-around is free;
//   - the producer owns tail (plain read, atomic Release store) and keeps a
//     cached copy of head, refreshing it from the consumer side only when
//     the ring looks full; the consumer mirrors this with tail. In steady
//     state neither side touches the other's cache line;
//   - head and tail live on separate padded cache lines so producer and
//     consumer never false-share.
//
// A Ring is safe for exactly one concurrent producer and one concurrent
// consumer; the async plane enforces that pairing structurally (one ring per
// producer×shard, one applier goroutine per shard).
package mailbox

import (
	"fmt"
	"reflect"
	"sync/atomic"
)

// cacheLine is the amd64/arm64 cache-line size the pads below assume;
// over-padding on other architectures is harmless.
const cacheLine = 64

// Ring is a bounded lock-free SPSC queue of T.
type Ring[T any] struct {
	buf  []T
	mask uint64
	// clearSlots is set when T holds pointers: consumed slots must then be
	// zeroed so the ring does not pin element memory (keyed tuples hold key
	// strings) past consumption. Pointer-free elements skip the extra pass.
	clearSlots bool

	_    [cacheLine]byte
	head atomic.Uint64 // next slot to pop; owned by the consumer
	// cachedTail is the consumer's last observed tail; consumer-private.
	cachedTail uint64

	_    [cacheLine]byte
	tail atomic.Uint64 // next slot to push; owned by the producer
	// cachedHead is the producer's last observed head; producer-private.
	cachedHead uint64

	_ [cacheLine]byte
}

// New returns a ring holding up to capacity elements. Capacity is rounded up
// to the next power of two; the minimum is 2.
func New[T any](capacity int) *Ring[T] {
	if capacity < 2 {
		capacity = 2
	}
	capacity = ceilPow2(capacity)
	return &Ring[T]{
		buf:        make([]T, capacity),
		mask:       uint64(capacity - 1),
		clearSlots: HoldsPointers[T](),
	}
}

// HoldsPointers reports whether values of T contain pointers (directly or in
// a nested field), i.e. whether buffered copies of T can keep other memory
// alive. The async plane uses it to decide whether drained batches need
// zeroing.
func HoldsPointers[T any]() bool {
	return typeHoldsPointers(reflect.TypeFor[T]())
}

func typeHoldsPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return t.Len() > 0 && typeHoldsPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if typeHoldsPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		// String, Slice, Map, Chan, Func, Interface, Pointer, UnsafePointer —
		// and anything unanticipated errs on the safe side.
		return true
	}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
		if p <= 0 {
			panic(fmt.Sprintf("mailbox: capacity %d overflows", n))
		}
	}
	return p
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of buffered elements. It is exact for the two
// owning goroutines and a point-in-time estimate for anyone else (the health
// endpoint reading queue depths).
func (r *Ring[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h { // torn read by a third-party observer
		return 0
	}
	return int(t - h)
}

// Push enqueues v. It returns false when the ring is full — the producer
// then applies its backpressure policy (block and retry, or surface
// ErrBackpressure). Only the owning producer may call Push.
func (r *Ring[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.buf)) {
		// Looks full against the stale head; refresh from the consumer.
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1) // release: publishes buf[t] to the consumer
	return true
}

// Pop dequeues up to len(dst) elements into dst and returns how many it
// moved. Batched consumption is the applier's amortisation lever: one pair
// of atomic operations covers the whole run. Only the owning consumer may
// call Pop.
func (r *Ring[T]) Pop(dst []T) int {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return 0
		}
	}
	n := int(r.cachedTail - h)
	if n > len(dst) {
		n = len(dst)
	}
	// The occupied run is contiguous modulo the mask: at most two memmoves
	// instead of a per-element loop.
	lo := int(h & r.mask)
	first := len(r.buf) - lo
	if first > n {
		first = n
	}
	copy(dst[:first], r.buf[lo:lo+first])
	copy(dst[first:n], r.buf[:n-first])
	if r.clearSlots {
		clear(r.buf[lo : lo+first])
		clear(r.buf[:n-first])
	}
	r.head.Store(h + uint64(n)) // release: frees the slots to the producer
	return n
}

// Pushed returns the total number of elements ever pushed — the producer's
// free-running tail counter. The async plane's Flush compares it against the
// applied counter it keeps per ring.
func (r *Ring[T]) Pushed() uint64 { return r.tail.Load() }
