package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sprofile"
)

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, sprofile.KeyedQueryResult[string], errorResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res sprofile.KeyedQueryResult[string]
	var errRes errorResponse
	var decodeErr error
	if resp.StatusCode == http.StatusOK {
		decodeErr = json.NewDecoder(resp.Body).Decode(&res)
	} else {
		decodeErr = json.NewDecoder(resp.Body).Decode(&errRes)
	}
	if decodeErr != nil {
		t.Fatalf("decoding /v1/query response: %v", decodeErr)
	}
	return resp, res, errRes
}

// TestQueryEndpoint drives one composite query through POST /v1/query and
// checks every requested statistic against the individual endpoints' truth.
func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t, 10)
	for _, body := range []string{
		`[{"object":"a","action":"add"},{"object":"a","action":"add"},{"object":"a","action":"add"}]`,
		`[{"object":"b","action":"add"},{"object":"b","action":"add"}]`,
		`[{"object":"c","action":"add"}]`,
	} {
		resp, out := postEvents(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding events: %d %+v", resp.StatusCode, out)
		}
	}

	resp, res, _ := postQuery(t, ts, `{
		"count": ["a", "ghost"],
		"mode": true,
		"min": true,
		"top_k": 2,
		"median": true,
		"quantiles": [0, 1],
		"majority": true,
		"distribution": true,
		"summary": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if len(res.Counts) != 2 || res.Counts[0].Key != "a" || res.Counts[0].Frequency != 3 {
		t.Fatalf("counts = %+v", res.Counts)
	}
	if res.Counts[1].Key != "ghost" || res.Counts[1].Frequency != 0 {
		t.Fatalf("unknown key count = %+v, want frequency 0", res.Counts[1])
	}
	if res.Mode == nil || res.Mode.Key != "a" || res.Mode.Frequency != 3 || res.Mode.Ties != 1 {
		t.Fatalf("mode = %+v", res.Mode)
	}
	if res.Min == nil || res.Min.Frequency != 0 {
		t.Fatalf("min = %+v", res.Min)
	}
	if len(res.TopK) != 2 || res.TopK[0].Key != "a" || res.TopK[1].Key != "b" {
		t.Fatalf("top_k = %+v", res.TopK)
	}
	if len(res.Quantiles) != 2 || res.Quantiles[0].Q != 0 || res.Quantiles[1].Frequency != 3 {
		t.Fatalf("quantiles = %+v", res.Quantiles)
	}
	if res.Majority == nil || res.Majority.Majority {
		t.Fatalf("majority = %+v, want present and false", res.Majority)
	}
	if res.Median == nil || len(res.Distribution) == 0 || res.Summary == nil {
		t.Fatalf("median/distribution/summary missing: %+v", res)
	}
	if res.Summary.Total != 6 {
		t.Fatalf("summary total = %d, want 6", res.Summary.Total)
	}
	// The distribution and the summary must describe the same cut.
	var total int64
	for _, fc := range res.Distribution {
		total += fc.Freq * int64(fc.Count)
	}
	if total != res.Summary.Total {
		t.Fatalf("distribution sums to %d but summary total is %d", total, res.Summary.Total)
	}
}

// TestQueryEndpointErrors pins the taxonomy → status code mapping of the
// query endpoint and its neighbours.
func TestQueryEndpointErrors(t *testing.T) {
	ts := newTestServer(t, 4)

	// Malformed JSON and unknown fields are plain bad requests.
	resp, _, errRes := postQuery(t, ts, `{"modes": true}`)
	if resp.StatusCode != http.StatusBadRequest || errRes.Code != "bad_request" {
		t.Fatalf("unknown field: %d %+v", resp.StatusCode, errRes)
	}

	// A malformed selection is invalid_query.
	resp, _, errRes = postQuery(t, ts, `{"top_k": -1}`)
	if resp.StatusCode != http.StatusBadRequest || errRes.Code != "invalid_query" {
		t.Fatalf("negative top_k: %d %+v", resp.StatusCode, errRes)
	}
	resp, _, errRes = postQuery(t, ts, `{"kth_largest": [99]}`)
	if resp.StatusCode != http.StatusBadRequest || errRes.Code != "invalid_query" {
		t.Fatalf("kth_largest out of range: %d %+v", resp.StatusCode, errRes)
	}

	// GET is not allowed.
	getResp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status %d", getResp.StatusCode)
	}

	// Strict violation: removing a known key at frequency zero is 409.
	for _, body := range []string{
		`[{"object":"a","action":"add"}]`,
		`[{"object":"a","action":"remove"}]`,
		`[{"object":"a","action":"remove"}]`,
	} {
		resp, out := postEvents(t, ts, body)
		if out.Error != "" && resp.StatusCode != http.StatusConflict {
			t.Fatalf("expected 409 strict violation, got %d %+v", resp.StatusCode, out)
		}
		if resp.StatusCode == http.StatusConflict && out.Code != "strict_violation" {
			t.Fatalf("conflict code = %q, want strict_violation", out.Code)
		}
	}
}

// TestQueryEndpointAtomicUnderIngest hammers the server with concurrent
// ingest while issuing composite queries, and requires every answer to be
// internally consistent — invariants that only hold when all statistics come
// from one cut.
func TestQueryEndpointAtomicUnderIngest(t *testing.T) {
	ts := newTestServer(t, 64)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := []string{"w", "x", "y", "z"}
			for i := 0; !stop.Load(); i++ {
				key := keys[(i+g)%len(keys)]
				resp, err := http.Post(ts.URL+"/v1/events", "application/json",
					strings.NewReader(`{"object":"`+key+`","action":"add"}`))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		resp, res, errRes := postQuery(t, ts, `{"mode":true,"min":true,"top_k":1,"quantiles":[1],"distribution":true,"summary":true}`)
		if resp.StatusCode != http.StatusOK {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("query status %d: %+v", resp.StatusCode, errRes)
		}
		if res.Mode.Frequency != res.Summary.MaxFrequency {
			t.Errorf("mode %d != summary max %d (different cuts)", res.Mode.Frequency, res.Summary.MaxFrequency)
		}
		if res.TopK[0].Frequency != res.Mode.Frequency {
			t.Errorf("top_k[0] %d != mode %d", res.TopK[0].Frequency, res.Mode.Frequency)
		}
		if res.Quantiles[0].Frequency != res.Summary.MaxFrequency {
			t.Errorf("q=1 %d != summary max %d", res.Quantiles[0].Frequency, res.Summary.MaxFrequency)
		}
		var total int64
		for _, fc := range res.Distribution {
			total += fc.Freq * int64(fc.Count)
		}
		if total != res.Summary.Total {
			t.Errorf("distribution sums to %d but summary total is %d", total, res.Summary.Total)
		}
	}
	stop.Store(true)
	wg.Wait()
}
