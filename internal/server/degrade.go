package server

import (
	"net/http"
	"time"

	"sprofile"
	"sprofile/internal/metrics"
)

// Degraded read-only mode.
//
// A WAL that hits a persistent I/O failure (failed fsync, ENOSPC, a torn
// write) poisons itself: every further append and sync returns the sticky
// error, so without intervention each write request would burn a full apply
// just to fail with 500 wal_append. Instead the server flips into degraded
// read-only mode: writes are refused up front with 503 code "degraded" and a
// Retry-After, reads keep serving from the intact in-memory profile, and a
// background probe tries to roll the log onto a fresh segment. The roll
// writes and fsyncs a new segment header, so its success is proof the disk
// accepts durable writes again — at which point the server restores write
// service. Unsynced (never-acknowledged) records are dropped by the roll;
// acknowledged ones are exactly the synced prefix the roll preserves.
var mDegraded = metrics.Default().Gauge("sprofile_degraded",
	"1 while the node refuses writes because of a write-ahead log I/O failure, 0 otherwise.")

const (
	// degradeProbeEvery is the recovery probe cadence. Each probe on a
	// degraded node attempts one WAL roll (one small create+fsync), so the
	// interval trades recovery latency against hammering a sick disk; a
	// quarter second recovers well inside the advertised 5s bound.
	degradeProbeEvery = 250 * time.Millisecond
	// degradeRetryAfter is the Retry-After hint on degraded rejections,
	// matching the probe cadence rounded up to the header's 1s granularity.
	degradeRetryAfter = "1"
)

// startDegradeWatcher launches the probe loop on WAL-backed servers (and on
// followers, whose mirror becomes an appending WAL after promote).
func (s *Server) startDegradeWatcher() {
	if s.walPath == "" {
		return
	}
	s.degradeStop = make(chan struct{})
	s.degradeDone = make(chan struct{})
	go s.degradeWatch()
}

// stopDegradeWatcher stops the probe loop and waits for it; idempotent and a
// no-op when no watcher was started.
func (s *Server) stopDegradeWatcher() {
	if s.degradeStop == nil {
		return
	}
	s.degradeStopOnce.Do(func() { close(s.degradeStop) })
	<-s.degradeDone
}

func (s *Server) degradeWatch() {
	defer close(s.degradeDone)
	ticker := time.NewTicker(degradeProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.degradeStop:
			return
		case <-ticker.C:
		}
		// Resolve the profile per tick: in follower mode it swaps on
		// rebootstrap and promote.
		p := s.prof()
		if p.WALError() == nil {
			// Healthy (or the poisoned profile was swapped away); make sure
			// the flag agrees.
			s.setDegraded(false)
			continue
		}
		s.setDegraded(true)
		// Recovery probe: roll the log onto a fresh segment. Creating the
		// segment fsyncs its header, so success proves the disk is taking
		// durable writes again; failure leaves the log poisoned and we try
		// again next tick.
		if err := p.RollWAL(); err == nil && p.WALError() == nil {
			s.setDegraded(false)
		}
	}
}

// setDegraded flips the degraded flag and its gauge, exactly once per
// transition.
func (s *Server) setDegraded(on bool) {
	if on {
		if s.degraded.CompareAndSwap(false, true) {
			mDegraded.Set(1)
		}
	} else {
		if s.degraded.CompareAndSwap(true, false) {
			mDegraded.Set(0)
		}
	}
}

// degradedNow reports whether writes must be refused as degraded. The flag is
// authoritative once set; before the watcher's next tick the WAL's own sticky
// error is consulted so the very first request after a poisoning is already
// rejected with the right code (one uncontended mutex acquisition).
func (s *Server) degradedNow() bool {
	if s.degraded.Load() {
		return true
	}
	if s.walPath == "" {
		return false
	}
	if s.prof().WALError() != nil {
		s.setDegraded(true)
		return true
	}
	return false
}

// rejectDegraded refuses a write while the node is degraded: 503 with wire
// code "degraded" and a Retry-After, with nothing applied. Reads never pass
// through here.
func (s *Server) rejectDegraded(w http.ResponseWriter) bool {
	if !s.degradedNow() {
		return false
	}
	w.Header().Set("Retry-After", degradeRetryAfter)
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error: sprofile.ErrDegraded.Error(),
		Code:  "degraded",
	})
	return true
}
