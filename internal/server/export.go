package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"sprofile"
)

// exportEntry is the wire form of one tracked object in an export document.
type exportEntry struct {
	Object    string `json:"object"`
	Frequency int64  `json:"frequency"`
}

// exportDoc is the full state document produced by GET /v1/export and
// consumed by POST /v1/import.
type exportDoc struct {
	Capacity int           `json:"capacity"`
	Objects  []exportEntry `json:"objects"`
}

// rankResponse answers GET /v1/stats/rank.
type rankResponse struct {
	Object     string  `json:"object"`
	Frequency  int64   `json:"frequency"`
	Rank       int     `json:"rank"`       // 1 = most frequent
	Percentile float64 `json:"percentile"` // fraction of slots with frequency <= this object's
}

// registerExportRoutes adds the export/import/rank endpoints; called from
// routes().
func (s *Server) registerExportRoutes() {
	// Export and import stream whole-profile NDJSON bodies, so neither is
	// deadline-wrapped (http.TimeoutHandler would buffer the export).
	s.mux.HandleFunc("/v1/export", s.handleExport)
	s.mux.HandleFunc("/v1/import", s.handleImport)
	s.mux.Handle("/v1/stats/rank", s.deadlineFunc(s.handleRank))
}

// handleExport dumps every tracked object and its frequency. The document can
// be re-imported into a fresh server to warm-start it after a restart. The
// frequencies come from one consistent point-in-time snapshot of the sharded
// profile; the id→key translation happens afterwards, so an object recycled
// mid-export can (rarely) be skipped — re-export during a quiet moment for
// an exact backup.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	doc := exportDoc{Capacity: s.keyed().Cap()}
	var p sprofile.Reader = s.keyed().Profile()
	if snapper, ok := p.(sprofile.Snapshotter); ok {
		snap, err := snapper.Snapshot()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "snapshotting profile: %v", err)
			return
		}
		p = snap
	}
	// Walk ranks from the most frequent downwards; stop once frequencies hit
	// zero (idle and unused slots contribute nothing to the export).
	for rank := 1; rank <= p.Cap(); rank++ {
		entry, err := p.KthLargest(rank)
		if err != nil || entry.Frequency <= 0 {
			break
		}
		key, tracked := s.keyed().KeyOf(entry.Object)
		if !tracked {
			continue
		}
		doc.Objects = append(doc.Objects, exportEntry{Object: key, Frequency: entry.Frequency})
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleImport replays an export document into the server's profile. Existing
// state is kept; imported counts add on top of it, so import into a fresh
// server for an exact restore.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.rejectReadOnly(w) || s.rejectDegraded(w) {
		return
	}
	var doc exportDoc
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, "invalid import document: %v", err)
		return
	}
	imported := 0
	for _, e := range doc.Objects {
		if e.Object == "" {
			writeError(w, http.StatusBadRequest, "import entry %d has an empty object", imported)
			return
		}
		if e.Frequency < 0 {
			writeError(w, http.StatusBadRequest, "import entry %q has negative frequency %d", e.Object, e.Frequency)
			return
		}
		for i := int64(0); i < e.Frequency; i++ {
			if err := s.keyed().Add(e.Object); err != nil {
				writeProfileError(w, fmt.Errorf("importing %q: %w", e.Object, err))
				return
			}
		}
		imported++
	}
	if s.async != nil {
		// An import must report capacity exhaustion synchronously, so drain
		// the plane and surface any deferred apply error here rather than on
		// a later flush.
		if err := s.async.Flush(); err != nil {
			writeProfileError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"imported": imported})
}

// handleRank reports where one object sits in the popularity order: its rank
// among all slots (1 = most frequent) and the fraction of slots at or below
// its frequency.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	object := r.URL.Query().Get("object")
	if object == "" {
		writeError(w, http.StatusBadRequest, "missing object parameter")
		return
	}
	m := s.keyed().Cap()
	if m == 0 {
		// Unreachable today (server.New rejects Capacity <= 0), but kept on
		// the taxonomy funnel so the contract holds if that ever changes.
		writeProfileError(w, sprofile.ErrEmptyProfile)
		return
	}
	f, err := s.keyed().Count(object)
	if err != nil {
		writeProfileError(w, err)
		return
	}
	// The histogram walk costs O(#distinct frequencies) but works against any
	// sprofile.Profiler representation, sharded included.
	atLeast := 0
	for _, fc := range s.keyed().Distribution() {
		if fc.Freq >= f {
			atLeast += fc.Count
		}
	}
	writeJSON(w, http.StatusOK, rankResponse{
		Object:     object,
		Frequency:  f,
		Rank:       atLeast,
		Percentile: float64(m-atLeast) / float64(m),
	})
}
