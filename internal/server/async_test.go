package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sprofile"
)

// newAsyncTestServer builds a server in async-ingest mode. The publish
// interval is kept short so tests that only read (without flushing) still
// converge quickly.
func newAsyncTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.AsyncIngest = true
	if cfg.AsyncFlushInterval == 0 {
		cfg.AsyncFlushInterval = time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postFlush(t *testing.T, ts *httptest.Server) (*http.Response, errorResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/admin/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out errorResponse
	decodeBody(t, resp, &out)
	return resp, out
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncServerIngestFlushRead pins the async read-your-write contract over
// HTTP: events POSTed, a flush barrier, then exact statistics.
func TestAsyncServerIngestFlushRead(t *testing.T) {
	_, ts := newAsyncTestServer(t, Config{Capacity: 100, Shards: 4})
	resp, out := postEvents(t, ts, `[
		{"object":"a","action":"add"},
		{"object":"a","action":"add"},
		{"object":"b","action":"add"}
	]`)
	if resp.StatusCode != http.StatusOK || out.Applied != 3 {
		t.Fatalf("events = %d %+v", resp.StatusCode, out)
	}
	if resp, ferr := postFlush(t, ts); resp.StatusCode != http.StatusOK || ferr.Error != "" {
		t.Fatalf("flush = %d %+v", resp.StatusCode, ferr)
	}
	var count entryResponse
	if resp := getJSON(t, ts, "/v1/stats/count?object=a", &count); resp.StatusCode != http.StatusOK {
		t.Fatalf("count status = %d", resp.StatusCode)
	}
	if count.Frequency != 2 {
		t.Fatalf("count(a) = %d, want 2", count.Frequency)
	}
	var mode entryResponse
	getJSON(t, ts, "/v1/stats/mode", &mode)
	if mode.Object != "a" || mode.Frequency != 2 {
		t.Fatalf("mode = %+v, want a@2", mode)
	}
}

// TestAsyncServerBulk drives the NDJSON fast path through the async plane.
func TestAsyncServerBulk(t *testing.T) {
	_, ts := newAsyncTestServer(t, Config{Capacity: 64, Shards: 2, MaxBatch: 16})
	var b strings.Builder
	for i := 0; i < 100; i++ {
		b.WriteString(`{"object":"k`)
		b.WriteString(string(rune('a' + i%8)))
		b.WriteString(`","action":"add"}` + "\n")
	}
	resp, err := http.Post(ts.URL+"/v1/events/bulk", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var out eventsResponse
	decodeBody(t, resp, &out)
	if resp.StatusCode != http.StatusOK || out.Applied != 100 {
		t.Fatalf("bulk = %d %+v", resp.StatusCode, out)
	}
	postFlush(t, ts)
	var summary map[string]any
	getJSON(t, ts, "/v1/stats/summary", &summary)
	if got := summary["total"].(float64); got != 100 {
		t.Fatalf("total = %v, want 100", got)
	}
}

// TestAsyncServerDeferredErrorOnFlush pins where stream-dependent errors
// surface in async mode: the enqueue is acknowledged, the flush reports the
// taxonomy class.
func TestAsyncServerDeferredErrorOnFlush(t *testing.T) {
	_, ts := newAsyncTestServer(t, Config{Capacity: 16, AsyncFlushInterval: time.Hour})
	resp, out := postEvents(t, ts, `{"object":"ghost","action":"remove"}`)
	if resp.StatusCode != http.StatusOK || out.Applied != 1 {
		t.Fatalf("async remove enqueue = %d %+v, want accepted", resp.StatusCode, out)
	}
	fresp, ferr := postFlush(t, ts)
	if fresp.StatusCode != http.StatusNotFound || ferr.Code != "unknown_key" {
		t.Fatalf("flush = %d %+v, want 404 unknown_key", fresp.StatusCode, ferr)
	}
	// The error was consumed; the next flush is clean.
	if fresp, ferr := postFlush(t, ts); fresp.StatusCode != http.StatusOK || ferr.Error != "" {
		t.Fatalf("second flush = %d %+v, want clean", fresp.StatusCode, ferr)
	}
}

// TestAsyncServerHealthAndCheckpoint verifies the async health section and
// that a checkpoint taken through HTTP covers everything acknowledged before
// it (flush-before-snapshot), surviving a restart.
func TestAsyncServerHealthAndCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	srv, ts := newAsyncTestServer(t, Config{Capacity: 32, Shards: 2, WALPath: dir})
	for i := 0; i < 3; i++ {
		postEvents(t, ts, `{"object":"x","action":"add"}`)
	}
	var health healthResponse
	getJSON(t, ts, "/healthz", &health)
	if health.Async == nil {
		t.Fatalf("healthz has no async section: %+v", health)
	}
	if health.Async.Shards != 2 {
		t.Fatalf("async shards = %d, want 2", health.Async.Shards)
	}
	resp, err := http.Post(ts.URL+"/v1/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status = %d", resp.StatusCode)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := New(Config{Capacity: 32, Shards: 2, WALPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	ts2 := httptest.NewServer(reopened)
	defer ts2.Close()
	var count entryResponse
	getJSON(t, ts2, "/v1/stats/count?object=x", &count)
	if count.Frequency != 3 {
		t.Fatalf("restored count(x) = %d, want 3", count.Frequency)
	}
}

// TestAsyncServerConcurrentIngest hammers the async server from several HTTP
// clients and checks the exact total after a flush — the plane's ordering
// and the 429 taxonomy are both live.
func TestAsyncServerConcurrentIngest(t *testing.T) {
	_, ts := newAsyncTestServer(t, Config{Capacity: 64, Shards: 4})
	const clients, perClient = 4, 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/events", "application/json",
					strings.NewReader(`{"object":"obj","action":"add"}`))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					accepted++
					mu.Unlock()
				case http.StatusTooManyRequests:
					// Backpressure: rejected events are never applied.
				default:
					t.Errorf("status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	postFlush(t, ts)
	var count entryResponse
	getJSON(t, ts, "/v1/stats/count?object=obj", &count)
	if int(count.Frequency) != accepted {
		t.Fatalf("count = %d, want %d accepted", count.Frequency, accepted)
	}
}

// TestAsyncServerRejectsFollower pins the config validation: a follower
// ingests nothing locally, so async ingest is refused.
func TestAsyncServerRejectsFollower(t *testing.T) {
	_, err := New(Config{Capacity: 8, AsyncIngest: true, Follow: "http://localhost:1", WALPath: t.TempDir()})
	if err == nil {
		t.Fatal("New accepted AsyncIngest + Follow")
	}
}

// TestFlushOnSyncServer: without async ingest the endpoint degrades to a WAL
// sync and still reports flushed.
func TestFlushOnSyncServer(t *testing.T) {
	ts := newTestServer(t, 8)
	resp, out := postFlush(t, ts)
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Fatalf("flush on sync server = %d %+v", resp.StatusCode, out)
	}
}

// TestBackpressureWire pins the ErrBackpressure wire mapping without having
// to win a race against the appliers: status, code, and the Retry-After hint.
func TestBackpressureWire(t *testing.T) {
	status, code := errorCode(sprofile.ErrBackpressure)
	if status != http.StatusTooManyRequests || code != "backpressure" {
		t.Fatalf("errorCode(ErrBackpressure) = %d %q, want 429 backpressure", status, code)
	}
	rec := httptest.NewRecorder()
	writeProfileError(rec, sprofile.ErrBackpressure)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("writeProfileError status = %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", rec.Header().Get("Retry-After"))
	}
}
