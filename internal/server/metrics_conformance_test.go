package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The conformance test scrapes /metrics while ingest and queries run
// concurrently, parses every line of the exposition against the text-format
// grammar, and checks the invariants a real Prometheus server relies on:
// counters never go backwards between scrapes, histogram buckets are
// cumulative, and the +Inf bucket agrees with _count. It doubles as the
// naming lint: every family is sprofile_*, counters end in _total, and
// time/byte families carry their unit suffix.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type scrapedFamily struct {
	help    string
	typ     string
	samples map[string]float64 // rendered series (name{labels}) -> value
}

// parseExposition validates the whole body line by line and groups samples
// under their # TYPE family.
func parseExposition(t *testing.T, body string) map[string]*scrapedFamily {
	t.Helper()
	fams := make(map[string]*scrapedFamily)
	fam := func(name string) *scrapedFamily {
		f, ok := fams[name]
		if !ok {
			f = &scrapedFamily{samples: make(map[string]float64)}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !metricNameRe.MatchString(rest[0]) {
				t.Fatalf("line %d: bad HELP name %q", ln+1, rest[0])
			}
			fam(rest[0]).help = line
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(rest) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if !metricNameRe.MatchString(rest[0]) {
				t.Fatalf("line %d: bad TYPE name %q", ln+1, rest[0])
			}
			switch rest[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, rest[1])
			}
			fam(rest[0]).typ = rest[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		series, value, ok := strings.Cut(line, " ")
		// Label values in this repo never contain spaces, so the first space
		// separates series from value; a second one is a grammar violation.
		if !ok || strings.Contains(value, " ") {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, value, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unbalanced label braces in %q", ln+1, series)
			}
			name = series[:i]
			parseLabels(t, ln+1, series[i+1:len(series)-1])
		}
		if !metricNameRe.MatchString(name) {
			t.Fatalf("line %d: bad sample name %q", ln+1, name)
		}
		// _bucket/_sum/_count samples belong to the histogram family that
		// declared the base name.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f, ok := fams[base]
		if !ok || f.typ == "" || f.help == "" {
			t.Fatalf("line %d: sample %q before its # HELP/# TYPE header", ln+1, name)
		}
		if _, dup := f.samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		f.samples[series] = v
	}
	return fams
}

// parseLabels checks the name="value" grammar, including \\, \" and \n
// escapes inside values.
func parseLabels(t *testing.T, ln int, s string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			t.Fatalf("line %d: malformed label pair in %q", ln, s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			t.Fatalf("line %d: bad label name %q", ln, name)
		}
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				t.Fatalf("line %d: unterminated label value in %q", ln, s)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					t.Fatalf("line %d: dangling escape in %q", ln, s)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
					val.WriteByte(rest[i+1])
				default:
					t.Fatalf("line %d: unknown escape \\%c in %q", ln, rest[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		s = rest[i+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			t.Fatalf("line %d: missing comma between label pairs in %q", ln, s)
		}
	}
	return out
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]*scrapedFamily {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// requiredFamilies must appear in every scrape: one or more per plane, plus
// the runtime and build-info families. All planes' families register at
// package init, so even idle planes export zero-valued series.
var requiredFamilies = []string{
	// HTTP plane.
	"sprofile_http_requests_total", "sprofile_http_request_seconds",
	// Query plane.
	"sprofile_query_seconds", "sprofile_query_statistics_total",
	// Ingest plane.
	"sprofile_ingest_events_total", "sprofile_ingest_batch_events",
	"sprofile_ingest_applied_deltas_total", "sprofile_ingest_coalesce_events_total",
	// Async plane.
	"sprofile_async_applied_events_total", "sprofile_async_mailbox_depth",
	"sprofile_async_backpressure_waits_total", "sprofile_async_publish_lag_seconds",
	// WAL / checkpoint plane.
	"sprofile_wal_appends_total", "sprofile_wal_fsync_seconds",
	"sprofile_checkpoints_total", "sprofile_checkpoint_seconds",
	// Replication plane.
	"sprofile_replication_fetches_total", "sprofile_replication_lag_bytes",
	"sprofile_replication_staleness_seconds",
	// Runtime and build info.
	"sprofile_go_goroutines", "sprofile_go_heap_alloc_bytes",
	"sprofile_go_gc_pause_seconds_total", "sprofile_process_uptime_seconds",
	"sprofile_build_info",
}

func checkNaming(t *testing.T, fams map[string]*scrapedFamily) {
	t.Helper()
	for name, f := range fams {
		if !strings.HasPrefix(name, "sprofile_") {
			t.Errorf("family %q does not carry the sprofile_ prefix", name)
		}
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter %q does not end in _total", name)
		}
		if f.typ != "counter" && strings.HasSuffix(name, "_total") {
			t.Errorf("%s %q misuses the _total suffix", f.typ, name)
		}
		base := strings.TrimSuffix(name, "_total")
		if strings.Contains(base, "second") && !strings.HasSuffix(base, "_seconds") &&
			!strings.HasSuffix(base, "_unix_seconds") {
			t.Errorf("time family %q does not end in _seconds", name)
		}
		if strings.Contains(base, "bytes") && !strings.HasSuffix(base, "_bytes") {
			t.Errorf("byte family %q does not end in _bytes", name)
		}
	}
}

func checkHistograms(t *testing.T, fams map[string]*scrapedFamily) {
	t.Helper()
	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		// Group bucket/sum/count samples by their non-le label set.
		type hist struct {
			buckets map[float64]float64
			sum     float64
			count   float64
		}
		hists := make(map[string]*hist)
		get := func(key string) *hist {
			h, ok := hists[key]
			if !ok {
				h = &hist{buckets: make(map[float64]float64)}
				hists[key] = h
			}
			return h
		}
		for series, v := range f.samples {
			labels := ""
			sname := series
			if i := strings.IndexByte(series, '{'); i >= 0 {
				sname, labels = series[:i], series[i+1:len(series)-1]
			}
			switch {
			case sname == name+"_sum":
				get(labels).sum = v
			case sname == name+"_count":
				get(labels).count = v
			case sname == name+"_bucket":
				pairs := parseLabels(t, 0, labels)
				le, err := strconv.ParseFloat(pairs["le"], 64)
				if err != nil {
					t.Fatalf("%s: bad le label %q", series, pairs["le"])
				}
				delete(pairs, "le")
				var rest []string
				for k, v := range pairs {
					rest = append(rest, fmt.Sprintf("%s=%q", k, v))
				}
				sort.Strings(rest)
				get(strings.Join(rest, ",")).buckets[le] = v
			default:
				t.Fatalf("histogram %s has stray sample %q", name, series)
			}
		}
		for key, h := range hists {
			var les []float64
			for le := range h.buckets {
				les = append(les, le)
			}
			sort.Float64s(les)
			if len(les) == 0 || !math.IsInf(les[len(les)-1], +1) {
				t.Fatalf("%s{%s}: no +Inf bucket", name, key)
			}
			prev := -1.0
			for _, le := range les {
				if c := h.buckets[le]; c < prev {
					t.Fatalf("%s{%s}: bucket le=%g count %g < previous %g (not cumulative)", name, key, le, c, prev)
				} else {
					prev = c
				}
			}
			if inf := h.buckets[math.Inf(1)]; inf != h.count {
				t.Fatalf("%s{%s}: +Inf bucket %g != _count %g", name, key, inf, h.count)
			}
			if h.count > 0 && h.sum < 0 {
				t.Fatalf("%s{%s}: negative _sum %g with count %g", name, key, h.sum, h.count)
			}
		}
	}
}

func TestMetricsConformanceUnderConcurrentIngest(t *testing.T) {
	ts := newTestServer(t, 10_000)

	first := scrapeMetrics(t, ts)
	for _, name := range requiredFamilies {
		f, ok := first[name]
		if !ok {
			t.Errorf("required family %q missing from scrape", name)
			continue
		}
		if f.typ == "" || f.help == "" {
			t.Errorf("family %q missing # HELP/# TYPE headers", name)
		}
	}
	checkNaming(t, first)

	// Hammer ingest and queries from several goroutines while scraping, so a
	// race between instrumentation and rendering would trip -race, then take
	// a final quiesced scrape for the monotonicity comparison.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body := fmt.Sprintf(`[{"object":"obj-%d-%d","action":"add"},{"object":"obj-%d-%d","action":"add"}]`, g, i, g, i)
				resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Post(ts.URL+"/v1/query", "application/json",
					strings.NewReader(`{"mode":true,"top_k":3}`))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(g)
	}
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scraperDone

	second := scrapeMetrics(t, ts)
	checkNaming(t, second)
	checkHistograms(t, second)

	// Counters must be monotonic between the two scrapes, series by series.
	for name, f := range first {
		sf, ok := second[name]
		if !ok {
			t.Errorf("family %q vanished between scrapes", name)
			continue
		}
		if f.typ != "counter" && f.typ != "histogram" {
			continue
		}
		for series, v := range f.samples {
			if f.typ == "histogram" && !strings.Contains(series, "_bucket") &&
				!strings.HasPrefix(series, name+"_count") {
				continue // _sum is float-accumulated; only counts are integral
			}
			if after, ok := sf.samples[series]; ok && after < v {
				t.Errorf("series %q went backwards: %g -> %g", series, v, after)
			}
		}
	}

	// The workload above must actually have moved the ingest and HTTP planes.
	sumFamily := func(fams map[string]*scrapedFamily, name string) float64 {
		var total float64
		if f, ok := fams[name]; ok {
			for _, v := range f.samples {
				total += v
			}
		}
		return total
	}
	if sumFamily(second, "sprofile_ingest_events_total") <= sumFamily(first, "sprofile_ingest_events_total") {
		t.Errorf("ingest counters did not advance under load")
	}
	if sumFamily(second, "sprofile_http_requests_total") <= sumFamily(first, "sprofile_http_requests_total") {
		t.Errorf("HTTP counters did not advance under load")
	}
	if sumFamily(second, "sprofile_query_statistics_total") <= sumFamily(first, "sprofile_query_statistics_total") {
		t.Errorf("query statistic counters did not advance under load")
	}
}
