package server

import (
	"net/http"

	"sprofile"
)

// registerReplicationRoutes mounts the leader-side replication feed and the
// follower-side promote endpoint; called from routes(). Both resolve the
// node's role per request, because it changes at runtime: a follower starts
// serving the feed the moment it is promoted (its mirror becomes the log it
// appends to), without any re-routing.
func (s *Server) registerReplicationRoutes() {
	// The snapshot transfer streams a whole checkpoint and must not be
	// response-buffered by a deadline wrapper; the WAL feed long-polls, so
	// its deadline is the long-poll window plus slack.
	s.mux.HandleFunc("/v1/replication/snapshot", s.handleReplicationSnapshot)
	s.mux.Handle("/v1/replication/wal",
		s.withDeadline(s.replicationWALDeadline(), http.HandlerFunc(s.handleReplicationWAL)))
	s.mux.Handle("/v1/admin/promote", s.deadlineFunc(s.handlePromote))
}

// replicationHandler resolves the current profile's replication feed, or nil
// when this node has nothing to serve (no WAL, or an unpromoted follower —
// chained replication off a follower's mirror is not supported).
func (s *Server) replicationHandler() *replicationFeed {
	if s.readOnly() {
		return nil
	}
	h := s.prof().ReplicationHandler()
	if h == nil {
		return nil
	}
	return &replicationFeed{h}
}

// replicationFeed narrows the internal handler to the two methods the routes
// need, keeping the server package's dependency surface explicit.
type replicationFeed struct {
	h interface {
		ServeSnapshot(w http.ResponseWriter, r *http.Request)
		ServeWAL(w http.ResponseWriter, r *http.Request)
	}
}

func (s *Server) handleReplicationSnapshot(w http.ResponseWriter, r *http.Request) {
	feed := s.replicationHandler()
	if feed == nil {
		writeError(w, http.StatusNotFound, "this node does not serve replication (no WAL, or it is itself a follower)")
		return
	}
	feed.h.ServeSnapshot(w, r)
}

func (s *Server) handleReplicationWAL(w http.ResponseWriter, r *http.Request) {
	feed := s.replicationHandler()
	if feed == nil {
		writeError(w, http.StatusNotFound, "this node does not serve replication (no WAL, or it is itself a follower)")
		return
	}
	feed.h.ServeWAL(w, r)
}

// promoteResponse answers POST /v1/admin/promote.
type promoteResponse struct {
	Promoted bool   `json:"promoted"`
	Role     string `json:"role"`
}

// handlePromote turns a follower into a leader: replication stops, the mirror
// is closed cleanly, and the profile is rebuilt over it through the ordinary
// recovery path with an append head — every byte the follower had durably
// mirrored survives. Idempotent: promoting a leader (or twice) reports the
// current role without error, so an orchestrator can fire-and-retry.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.follower == nil {
		writeJSON(w, http.StatusOK, promoteResponse{Promoted: false, Role: s.role()})
		return
	}
	already := s.follower.Promoted()
	if _, err := s.follower.Promote(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{
			Error: "promote failed: " + err.Error(),
			Code:  "internal",
		})
		return
	}
	writeJSON(w, http.StatusOK, promoteResponse{Promoted: !already, Role: "leader"})
}

// Promote is the programmatic form of POST /v1/admin/promote, for embedders
// and tests. It is a no-op returning false on a non-follower.
func (s *Server) Promote() (bool, error) {
	if s.follower == nil {
		return false, nil
	}
	already := s.follower.Promoted()
	if _, err := s.follower.Promote(); err != nil {
		return false, err
	}
	return !already, nil
}

// Follower exposes the underlying replica (nil in leader mode) so embedders
// can inspect its status; the HTTP surface reports the same through /healthz.
func (s *Server) Follower() *sprofile.KeyedFollower { return s.follower }
