package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestServerWALRecovery(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "events.wal")

	// First server lifetime: ingest a handful of events.
	s1, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	resp, out := postEvents(t, ts1, `[
		{"object":"video-1","action":"add"},
		{"object":"video-1","action":"add"},
		{"object":"video-2","action":"add"},
		{"object":"video-2","action":"remove"}
	]`)
	if resp.StatusCode != http.StatusOK || out.Applied != 4 {
		t.Fatalf("ingest = %d %+v", resp.StatusCode, out)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if s1.Replayed() != 0 {
		t.Fatalf("first lifetime replayed %d records", s1.Replayed())
	}

	// Second lifetime: the profile must be rebuilt from the log.
	s2, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Replayed() != 4 {
		t.Fatalf("second lifetime replayed %d records, want 4", s2.Replayed())
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	var mode entryResponse
	getJSON(t, ts2, "/v1/stats/mode", &mode)
	if mode.Object != "video-1" || mode.Frequency != 2 {
		t.Fatalf("mode after recovery = %+v", mode)
	}
	var count entryResponse
	getJSON(t, ts2, "/v1/stats/count?object=video-2", &count)
	if count.Frequency != 0 {
		t.Fatalf("count(video-2) after recovery = %+v", count)
	}

	// New events after recovery keep appending to the same log.
	postEvents(t, ts2, `[{"object":"video-3","action":"add"}]`)
	ts2.Close()
	s2.Close()

	s3, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Replayed() != 5 {
		t.Fatalf("third lifetime replayed %d records, want 5", s3.Replayed())
	}
}

func TestServerWALRejectedEventsNotLogged(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "events.wal")
	s, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	// The remove of an unknown object is rejected; the preceding add in the
	// same batch is applied and must be logged.
	postEvents(t, ts, `[
		{"object":"kept","action":"add"},
		{"object":"ghost","action":"remove"}
	]`)
	ts.Close()
	s.Close()

	s2, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Replayed() != 1 {
		t.Fatalf("replayed %d records, want 1 (only the accepted event)", s2.Replayed())
	}
}

func TestServerWithoutWALHasNoLog(t *testing.T) {
	s, err := New(Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Replayed() != 0 {
		t.Fatalf("Replayed() = %d without a WAL", s.Replayed())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close without WAL: %v", err)
	}
}

func TestServerWALCorruptLogFailsStartup(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "corrupt.wal")
	if err := os.WriteFile(walPath, []byte("not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Capacity: 10, WALPath: walPath}); err == nil {
		t.Fatalf("startup succeeded with a corrupt WAL")
	}
}

// TestServerCheckpointEndpoint drives the admin checkpoint across a restart:
// after POST /v1/admin/checkpoint, a new server lifetime must restore from
// the snapshot and replay only the events ingested after it.
func TestServerCheckpointEndpoint(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "events.wal")

	s1, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	if resp, out := postEvents(t, ts1, `[
		{"object":"video-1","action":"add"},
		{"object":"video-1","action":"add"},
		{"object":"video-2","action":"add"}
	]`); resp.StatusCode != http.StatusOK || out.Applied != 3 {
		t.Fatalf("ingest = %d %+v", resp.StatusCode, out)
	}

	resp, err := http.Post(ts1.URL+"/v1/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status = %d", resp.StatusCode)
	}
	// GET must be rejected.
	getResp, err := http.Get(ts1.URL + "/v1/admin/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET checkpoint status = %d, want 405", getResp.StatusCode)
	}

	if resp, out := postEvents(t, ts1, `{"object":"video-3","action":"add"}`); resp.StatusCode != http.StatusOK || out.Applied != 1 {
		t.Fatalf("tail ingest = %d %+v", resp.StatusCode, out)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Replayed() != 1 {
		t.Fatalf("second lifetime replayed %d records, want 1 (only video-3)", s2.Replayed())
	}
	rec := s2.Recovery()
	if rec.SnapshotSeq != 1 || rec.SnapshotObjects != 2 || rec.SnapshotEvents != 3 {
		t.Fatalf("Recovery = %+v, want snapshot 1 with 2 objects / 3 events", rec)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var count entryResponse
	if resp := getJSON(t, ts2, "/v1/stats/count?object=video-1", &count); resp.StatusCode != http.StatusOK {
		t.Fatalf("count status = %d", resp.StatusCode)
	}
	if count.Frequency != 2 {
		t.Fatalf("recovered count(video-1) = %d, want 2", count.Frequency)
	}
	var summary map[string]any
	getJSON(t, ts2, "/v1/stats/summary", &summary)
	if got := summary["total"].(float64); got != 4 {
		t.Fatalf("recovered total = %v, want 4", got)
	}
}

// TestServerCheckpointConfigValidation: checkpoint cadences without a WAL
// must be rejected at construction.
func TestServerCheckpointConfigValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 10, CheckpointEvery: time.Minute}); err == nil {
		t.Fatal("CheckpointEvery without WALPath accepted")
	}
	if _, err := New(Config{Capacity: 10, CheckpointBytes: 1024}); err == nil {
		t.Fatal("CheckpointBytes without WALPath accepted")
	}
	s, err := New(Config{
		Capacity:        10,
		WALPath:         filepath.Join(t.TempDir(), "w.wal"),
		CheckpointEvery: time.Minute,
		CheckpointBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerCheckpointWithoutWAL: the admin endpoint on a WAL-less server
// reports a client error instead of crashing.
func TestServerCheckpointWithoutWAL(t *testing.T) {
	s, err := New(Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("checkpoint without WAL status = %d, want 422", resp.StatusCode)
	}
}
