package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestServerWALRecovery(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "events.wal")

	// First server lifetime: ingest a handful of events.
	s1, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	resp, out := postEvents(t, ts1, `[
		{"object":"video-1","action":"add"},
		{"object":"video-1","action":"add"},
		{"object":"video-2","action":"add"},
		{"object":"video-2","action":"remove"}
	]`)
	if resp.StatusCode != http.StatusOK || out.Applied != 4 {
		t.Fatalf("ingest = %d %+v", resp.StatusCode, out)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if s1.Replayed() != 0 {
		t.Fatalf("first lifetime replayed %d records", s1.Replayed())
	}

	// Second lifetime: the profile must be rebuilt from the log.
	s2, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Replayed() != 4 {
		t.Fatalf("second lifetime replayed %d records, want 4", s2.Replayed())
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	var mode entryResponse
	getJSON(t, ts2, "/v1/stats/mode", &mode)
	if mode.Object != "video-1" || mode.Frequency != 2 {
		t.Fatalf("mode after recovery = %+v", mode)
	}
	var count entryResponse
	getJSON(t, ts2, "/v1/stats/count?object=video-2", &count)
	if count.Frequency != 0 {
		t.Fatalf("count(video-2) after recovery = %+v", count)
	}

	// New events after recovery keep appending to the same log.
	postEvents(t, ts2, `[{"object":"video-3","action":"add"}]`)
	ts2.Close()
	s2.Close()

	s3, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Replayed() != 5 {
		t.Fatalf("third lifetime replayed %d records, want 5", s3.Replayed())
	}
}

func TestServerWALRejectedEventsNotLogged(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "events.wal")
	s, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	// The remove of an unknown object is rejected; the preceding add in the
	// same batch is applied and must be logged.
	postEvents(t, ts, `[
		{"object":"kept","action":"add"},
		{"object":"ghost","action":"remove"}
	]`)
	ts.Close()
	s.Close()

	s2, err := New(Config{Capacity: 100, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Replayed() != 1 {
		t.Fatalf("replayed %d records, want 1 (only the accepted event)", s2.Replayed())
	}
}

func TestServerWithoutWALHasNoLog(t *testing.T) {
	s, err := New(Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Replayed() != 0 {
		t.Fatalf("Replayed() = %d without a WAL", s.Replayed())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close without WAL: %v", err)
	}
}

func TestServerWALCorruptLogFailsStartup(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "corrupt.wal")
	if err := os.WriteFile(walPath, []byte("not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Capacity: 10, WALPath: walPath}); err == nil {
		t.Fatalf("startup succeeded with a corrupt WAL")
	}
}
