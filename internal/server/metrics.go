package server

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"sprofile"
	"sprofile/internal/metrics"
)

// serverStart anchors /healthz's uptime_seconds.
var serverStart = time.Now()

// HTTP and query plane families. Requests are labeled by the routing table's
// own patterns (an unknown path renders as "other", so path cardinality is
// bounded by the API surface); the query histogram is labeled by the set of
// statistics the composite query selected, bounded by the vec's cardinality
// cap.
var (
	mHTTPRequests = metrics.Default().CounterVec("sprofile_http_requests_total",
		"HTTP requests served, by method, route and status class.",
		"method", "route", "status")
	mHTTPSeconds = metrics.Default().HistogramVec("sprofile_http_request_seconds",
		"End-to-end request latency by route.", metrics.LatencyBuckets(), "route")
	mQuerySeconds = metrics.Default().HistogramVec("sprofile_query_seconds",
		"Composite query evaluation latency, labeled by the selected statistic set.",
		metrics.LatencyBuckets(), "stats")
	mQueryStatistics = metrics.Default().CounterVec("sprofile_query_statistics_total",
		"How often each statistic was selected across composite queries.", "stat")
)

// knownRoutes is the closed set of route labels; it must track routes().
var knownRoutes = map[string]bool{
	"/healthz": true, "/metrics": true,
	"/v1/events": true, "/v1/events/bulk": true, "/v1/query": true,
	"/v1/admin/checkpoint": true, "/v1/admin/flush": true, "/v1/admin/promote": true,
	"/v1/admin/failpoint": true,
	"/v1/stats/mode":      true, "/v1/stats/top": true, "/v1/stats/min": true,
	"/v1/stats/bottom": true, "/v1/stats/count": true, "/v1/stats/median": true,
	"/v1/stats/quantile": true, "/v1/stats/majority": true,
	"/v1/stats/distribution": true, "/v1/stats/summary": true,
	"/v1/stats/rank": true, "/v1/export": true, "/v1/import": true,
	"/v1/replication/snapshot": true, "/v1/replication/wal": true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	return "other"
}

// statusRecorder captures the status a handler wrote (200 when it only wrote
// a body, net/http's implicit default).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// instrument wraps the routed mux: one counter bump and one latency
// observation per request, labeled by the routing table's pattern.
func (s *Server) instrument(next http.Handler, w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r.URL.Path)
	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	next.ServeHTTP(rec, r)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	mHTTPRequests.With(r.Method, route, strconv.Itoa(rec.status)).Inc()
	mHTTPSeconds.With(route).ObserveSince(start)
}

// queryStatNames lists which statistics q selects, in a canonical order, for
// the per-statistic counters and the statistic-set histogram label.
func queryStatNames(q sprofile.KeyedQuery[string]) []string {
	var names []string
	if len(q.Count) > 0 {
		names = append(names, "count")
	}
	if q.Mode {
		names = append(names, "mode")
	}
	if q.Min {
		names = append(names, "min")
	}
	if q.TopK > 0 {
		names = append(names, "top_k")
	}
	if q.BottomK > 0 {
		names = append(names, "bottom_k")
	}
	if len(q.KthLargest) > 0 {
		names = append(names, "kth_largest")
	}
	if q.Median {
		names = append(names, "median")
	}
	if len(q.Quantiles) > 0 {
		names = append(names, "quantiles")
	}
	if q.Majority {
		names = append(names, "majority")
	}
	if q.Distribution {
		names = append(names, "distribution")
	}
	if q.Summary {
		names = append(names, "summary")
	}
	sort.Strings(names)
	return names
}

// observeQuery records one composite query evaluation.
func observeQuery(q sprofile.KeyedQuery[string], start time.Time) {
	names := queryStatNames(q)
	for _, n := range names {
		mQueryStatistics.With(n).Inc()
	}
	label := "none"
	if len(names) > 0 {
		label = strings.Join(names, "+")
	}
	mQuerySeconds.With(label).ObserveSince(start)
}
