package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	ts := newTestServer(t, 100)
	postEvents(t, ts, `[
		{"object":"a","action":"add"},
		{"object":"a","action":"add"},
		{"object":"a","action":"add"},
		{"object":"b","action":"add"},
		{"object":"b","action":"add"},
		{"object":"c","action":"add"},
		{"object":"c","action":"remove"}
	]`)

	var doc exportDoc
	resp := getJSON(t, ts, "/v1/export", &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d", resp.StatusCode)
	}
	if doc.Capacity != 100 {
		t.Fatalf("export capacity = %d", doc.Capacity)
	}
	// Only objects with positive frequency appear, most frequent first.
	if len(doc.Objects) != 2 {
		t.Fatalf("export objects = %+v", doc.Objects)
	}
	if doc.Objects[0].Object != "a" || doc.Objects[0].Frequency != 3 {
		t.Fatalf("export[0] = %+v", doc.Objects[0])
	}
	if doc.Objects[1].Object != "b" || doc.Objects[1].Frequency != 2 {
		t.Fatalf("export[1] = %+v", doc.Objects[1])
	}

	// Import the document into a fresh server and verify the state matches.
	fresh := newTestServer(t, 100)
	body, _ := json.Marshal(doc)
	importResp, err := http.Post(fresh.URL+"/v1/import", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer importResp.Body.Close()
	if importResp.StatusCode != http.StatusOK {
		t.Fatalf("import = %d", importResp.StatusCode)
	}
	var mode entryResponse
	getJSON(t, fresh, "/v1/stats/mode", &mode)
	if mode.Object != "a" || mode.Frequency != 3 {
		t.Fatalf("mode after import = %+v", mode)
	}
	var count entryResponse
	getJSON(t, fresh, "/v1/stats/count?object=b", &count)
	if count.Frequency != 2 {
		t.Fatalf("count(b) after import = %+v", count)
	}
}

func TestImportValidation(t *testing.T) {
	ts := newTestServer(t, 10)
	cases := map[string]string{
		"not json":           `nope`,
		"empty object":       `{"objects":[{"object":"","frequency":1}]}`,
		"negative frequency": `{"objects":[{"object":"x","frequency":-2}]}`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/import", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: import = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestImportOverCapacity(t *testing.T) {
	ts := newTestServer(t, 2)
	body := `{"objects":[
		{"object":"a","frequency":1},
		{"object":"b","frequency":1},
		{"object":"c","frequency":1}
	]}`
	resp, err := http.Post(ts.URL+"/v1/import", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-capacity import = %d, want 507", resp.StatusCode)
	}
}

func TestRankEndpoint(t *testing.T) {
	ts := newTestServer(t, 10)
	postEvents(t, ts, `[
		{"object":"popular","action":"add"},
		{"object":"popular","action":"add"},
		{"object":"popular","action":"add"},
		{"object":"niche","action":"add"}
	]`)

	var rank rankResponse
	resp := getJSON(t, ts, "/v1/stats/rank?object=popular", &rank)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank = %d", resp.StatusCode)
	}
	if rank.Frequency != 3 || rank.Rank != 1 {
		t.Fatalf("rank(popular) = %+v", rank)
	}
	getJSON(t, ts, "/v1/stats/rank?object=niche", &rank)
	if rank.Frequency != 1 || rank.Rank != 2 {
		t.Fatalf("rank(niche) = %+v", rank)
	}
	// Unknown objects count as frequency zero and rank behind every active one.
	getJSON(t, ts, "/v1/stats/rank?object=ghost", &rank)
	if rank.Frequency != 0 || rank.Rank != 10 {
		t.Fatalf("rank(ghost) = %+v", rank)
	}

	// Validation.
	resp, err := http.Get(ts.URL + "/v1/stats/rank")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rank without object = %d", resp.StatusCode)
	}
}

func TestExportImportMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, 10)
	resp, err := http.Post(ts.URL+"/v1/export", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/export = %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/import")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/import = %d", getResp.StatusCode)
	}
	rankResp, err := http.Post(ts.URL+"/v1/stats/rank", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	rankResp.Body.Close()
	if rankResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats/rank = %d", rankResp.StatusCode)
	}
}

// httptest server reuse guard: ensure the new routes do not shadow existing
// ones (mux registration panics on duplicates, so constructing a server is
// enough, but exercise one old and one new route together for good measure).
func TestRoutesCoexist(t *testing.T) {
	s, err := New(Config{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export on fresh server = %d", resp.StatusCode)
	}
}
