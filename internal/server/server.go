// Package server exposes a keyed S-Profile over HTTP, realising the paper's
// claim that the profiler "can be plugged into most of log streams in many
// systems": producers POST (object, action) events as they happen, and
// dashboards or alerting jobs GET the statistics — mode, top-K, quantiles,
// the whole frequency distribution — at any time, each answered in constant
// time from the maintained profile.
//
// The API is deliberately small and JSON-only:
//
//	POST /v1/events              one event or a batch of events
//	GET  /v1/stats/mode          most frequent object
//	GET  /v1/stats/top?k=10      top-K objects
//	GET  /v1/stats/count?object= frequency of one object
//	GET  /v1/stats/median        median frequency
//	GET  /v1/stats/quantile?q=   frequency quantile, q in [0,1]
//	GET  /v1/stats/distribution  full frequency histogram
//	GET  /v1/stats/summary       aggregate counters
//	GET  /healthz                liveness probe
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"sprofile"
	"sprofile/internal/wal"
)

// Config parameterises a Server.
type Config struct {
	// Capacity is the maximum number of concurrently tracked objects.
	Capacity int
	// Shards, when > 1, splits the dense-id space across that many
	// independently locked profile shards (see sprofile.WithSharding). The
	// HTTP layer still serialises updates through one mutex because the key
	// mapper is shared; sharding pays off once ingestion moves off that
	// mutex, and is accepted here so deployments can opt in ahead of that.
	Shards int
	// MaxBatch bounds how many events one POST may carry; zero selects the
	// default of 10 000.
	MaxBatch int
	// WALPath, when non-empty, makes ingested events durable: they are
	// appended to a write-ahead log at this path and replayed into the
	// profile when the server starts.
	WALPath string
	// WALSyncEvery fsyncs the log after this many events; zero syncs once
	// per accepted batch.
	WALSyncEvery int
}

// Server is the HTTP facade over a keyed profile. It is safe for concurrent
// use; a single mutex serialises profile access (updates are O(1), so the
// critical sections are tiny).
type Server struct {
	mu       sync.Mutex
	profile  *sprofile.Keyed[string]
	maxBatch int
	mux      *http.ServeMux
	log      *wal.Log
	replayed int
}

// New returns a Server with the given configuration. When Config.WALPath is
// set, any events already in the log are replayed into the profile before the
// server starts accepting requests.
func New(cfg Config) (*Server, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("server: capacity must be positive, got %d", cfg.Capacity)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 10_000
	}
	// Recycling keyed profiles require strict non-negative counts; the rest of
	// the representation (sharded or not) is declared through Build.
	buildOpts := []sprofile.BuildOption{sprofile.Strict()}
	if cfg.Shards > 1 {
		buildOpts = append(buildOpts, sprofile.WithSharding(cfg.Shards))
	}
	inner, err := sprofile.Build(cfg.Capacity, buildOpts...)
	if err != nil {
		return nil, err
	}
	keyed, err := sprofile.NewKeyedOver[string](inner)
	if err != nil {
		return nil, err
	}
	s := &Server{
		profile:  keyed,
		maxBatch: maxBatch,
		mux:      http.NewServeMux(),
	}
	if cfg.WALPath != "" {
		replayed, err := wal.Replay(cfg.WALPath, func(rec wal.Record) error {
			return keyed.Apply(rec.Key, rec.Action)
		})
		if err != nil {
			return nil, fmt.Errorf("server: replaying WAL %s: %w", cfg.WALPath, err)
		}
		s.replayed = replayed
		log, err := wal.Open(cfg.WALPath, wal.Options{SyncEvery: cfg.WALSyncEvery})
		if err != nil {
			return nil, fmt.Errorf("server: opening WAL %s: %w", cfg.WALPath, err)
		}
		s.log = log
	}
	s.routes()
	return s, nil
}

// Replayed returns the number of WAL records replayed at startup.
func (s *Server) Replayed() int { return s.replayed }

// Close flushes and closes the write-ahead log, if one is configured.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/events", s.handleEvents)
	s.mux.HandleFunc("/v1/stats/mode", s.handleMode)
	s.mux.HandleFunc("/v1/stats/top", s.handleTop)
	s.mux.HandleFunc("/v1/stats/count", s.handleCount)
	s.mux.HandleFunc("/v1/stats/median", s.handleMedian)
	s.mux.HandleFunc("/v1/stats/quantile", s.handleQuantile)
	s.mux.HandleFunc("/v1/stats/distribution", s.handleDistribution)
	s.mux.HandleFunc("/v1/stats/summary", s.handleSummary)
	s.registerExportRoutes()
}

// Event is the JSON wire form of one log tuple.
type Event struct {
	Object string `json:"object"`
	Action string `json:"action"`
}

// eventsResponse reports how a POST /v1/events batch was processed.
type eventsResponse struct {
	Applied int    `json:"applied"`
	Error   string `json:"error,omitempty"`
}

// entryResponse is the wire form of a single statistics answer.
type entryResponse struct {
	Object    string `json:"object"`
	Frequency int64  `json:"frequency"`
	Ties      int    `json:"ties,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by the
	// http server; the status code is already on the wire.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decodeEvents accepts either a single event object or an array of events.
func decodeEvents(r *http.Request, maxBatch int) ([]Event, error) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var batch []Event
	if err := dec.Decode(&batch); err == nil {
		if len(batch) > maxBatch {
			return nil, fmt.Errorf("batch of %d events exceeds limit %d", len(batch), maxBatch)
		}
		return batch, nil
	}
	// Retry as a single object; the body has been consumed, so re-decode from
	// the buffered remainder is not possible — decode errors on arrays fall
	// back by asking the client to resend. To keep the API simple we decode
	// the single-object form directly on a fresh decoder chained to the
	// original decoder's buffered data.
	return nil, errors.New("body must be a JSON array of {object, action} events")
}

func parseAction(s string) (sprofile.Action, error) {
	switch s {
	case "add", "+", "1":
		return sprofile.ActionAdd, nil
	case "remove", "-", "-1":
		return sprofile.ActionRemove, nil
	default:
		return 0, fmt.Errorf("unknown action %q (want \"add\" or \"remove\")", s)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	events, err := decodeEvents(r, s.maxBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	applied := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		if e.Object == "" {
			writeJSON(w, http.StatusBadRequest, eventsResponse{Applied: applied, Error: "event with empty object"})
			return
		}
		action, err := parseAction(e.Action)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, eventsResponse{Applied: applied, Error: err.Error()})
			return
		}
		if err := s.profile.Apply(e.Object, action); err != nil {
			status := http.StatusUnprocessableEntity
			if errors.Is(err, sprofile.ErrKeyedFull) {
				status = http.StatusInsufficientStorage
			}
			writeJSON(w, status, eventsResponse{Applied: applied, Error: err.Error()})
			return
		}
		if s.log != nil {
			if err := s.log.Append(wal.Record{Key: e.Object, Action: action}); err != nil {
				writeJSON(w, http.StatusInternalServerError, eventsResponse{
					Applied: applied + 1,
					Error:   fmt.Sprintf("event applied but not logged: %v", err),
				})
				return
			}
		}
		applied++
	}
	if s.log != nil {
		if err := s.log.Sync(); err != nil {
			writeJSON(w, http.StatusInternalServerError, eventsResponse{
				Applied: applied,
				Error:   fmt.Sprintf("events applied but log sync failed: %v", err),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Applied: applied})
}

func (s *Server) handleMode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	entry, ties, err := s.profile.Mode()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: entry.Key, Frequency: entry.Frequency, Ties: ties})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "k must be a positive integer, got %q", raw)
			return
		}
		k = v
	}
	s.mu.Lock()
	entries := s.profile.TopK(k)
	s.mu.Unlock()
	out := make([]entryResponse, len(entries))
	for i, e := range entries {
		out[i] = entryResponse{Object: e.Key, Frequency: e.Frequency}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	object := r.URL.Query().Get("object")
	if object == "" {
		writeError(w, http.StatusBadRequest, "missing object parameter")
		return
	}
	s.mu.Lock()
	f, err := s.profile.Count(object)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: object, Frequency: f})
}

func (s *Server) handleMedian(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	entry, err := s.profile.Median()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: entry.Key, Frequency: entry.Frequency})
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	raw := r.URL.Query().Get("q")
	q, err := strconv.ParseFloat(raw, 64)
	if err != nil || q < 0 || q > 1 {
		writeError(w, http.StatusBadRequest, "q must be a number in [0,1], got %q", raw)
		return
	}
	s.mu.Lock()
	entry, err := s.profile.Quantile(q)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: entry.Key, Frequency: entry.Frequency})
}

func (s *Server) handleDistribution(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	dist := s.profile.Distribution()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, dist)
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	summary := s.profile.Summarize()
	tracked := s.profile.Tracked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity":             summary.Capacity,
		"tracked":              tracked,
		"total":                summary.Total,
		"active":               summary.Active,
		"distinct_frequencies": summary.DistinctFrequencies,
		"max_frequency":        summary.MaxFrequency,
		"min_frequency":        summary.MinFrequency,
		"adds":                 summary.Adds,
		"removes":              summary.Removes,
	})
}
