// Package server exposes a keyed S-Profile over HTTP, realising the paper's
// claim that the profiler "can be plugged into most of log streams in many
// systems": producers POST (object, action) events as they happen, and
// dashboards or alerting jobs GET the statistics — mode, top-K, quantiles,
// the whole frequency distribution — at any time, each answered in constant
// time from the maintained profile.
//
// The API is deliberately small and JSON-only:
//
//	POST /v1/events              one event or a batch of events
//	POST /v1/events/bulk         NDJSON stream of events (batch fast path)
//	POST /v1/query               one composite multi-statistic query,
//	                             answered atomically from one cut
//	POST /v1/admin/checkpoint    snapshot the profile and truncate the WAL
//	POST /v1/admin/flush         drain the async ingest plane (visibility +
//	                             durability barrier; WAL sync when sync)
//	GET  /v1/stats/mode          most frequent object
//	GET  /v1/stats/top?k=10      top-K objects
//	GET  /v1/stats/min           least frequent slot
//	GET  /v1/stats/bottom?k=10   bottom-K slots
//	GET  /v1/stats/count?object= frequency of one object
//	GET  /v1/stats/median        median frequency
//	GET  /v1/stats/quantile?q=   frequency quantile, q in [0,1]
//	GET  /v1/stats/majority      strict-majority object, if any
//	GET  /v1/stats/distribution  full frequency histogram
//	GET  /v1/stats/summary       aggregate counters
//	GET  /healthz                liveness probe
//
// Concurrency: the server holds no lock of its own. Handlers call a
// sprofile.KeyedConcurrent directly — ingestion synchronises on the event
// key's stripe plus its profile shard, queries on the shards they read — so
// requests for different keys proceed in parallel and readers are never
// blocked behind a writer's fsync. Events inside one POST batch are applied
// one by one; a concurrent reader may observe a batch partially applied
// (each individual statistic is still internally consistent).
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sprofile"
	"sprofile/internal/replication"
	"sprofile/internal/wal"
)

// Config parameterises a Server.
type Config struct {
	// Capacity is the maximum number of concurrently tracked objects.
	Capacity int
	// Shards sets how many independently locked profile shards (and id-mapper
	// stripes, kept aligned with them) the dense-id space is split across.
	// Zero selects one shard per CPU — the right default now that ingestion
	// runs concurrently; use 1 to force a single lock domain.
	Shards int
	// MaxBatch bounds how many events one POST may carry; zero selects the
	// default of 10 000.
	MaxBatch int
	// WALPath, when non-empty, makes ingested events durable: they are
	// appended to a write-ahead log directory at this path and replayed
	// into the profile when the server starts. A legacy single-file log at
	// the same path is migrated into the directory layout automatically.
	WALPath string
	// WALSyncEvery fsyncs the log after this many events; zero syncs once
	// per accepted batch.
	WALSyncEvery int
	// CheckpointEvery, when positive, checkpoints the profile on that
	// cadence: a snapshot is written into the WAL directory and the log
	// segments it covers are deleted, bounding restart time and disk use.
	// Requires WALPath. Zero disables time-triggered checkpoints; manual
	// ones via POST /v1/admin/checkpoint always work.
	CheckpointEvery time.Duration
	// CheckpointBytes, when positive, additionally checkpoints whenever the
	// WAL tail grows past this many bytes. Requires WALPath.
	CheckpointBytes int64
	// Follow, when non-empty, starts the server as a read-only follower of
	// the leader at this base URL: WALPath becomes the local mirror directory
	// (bootstrapped from the leader's snapshot, then tailed continuously),
	// reads are served locally with a staleness watermark, and writes are
	// refused with 503 + a leader hint until POST /v1/admin/promote turns the
	// replica into a leader. Requires WALPath.
	Follow string
	// FollowPoll is the long-poll wait asked of the leader per tail fetch;
	// zero selects the sprofile default (20s).
	FollowPoll time.Duration
	// AsyncIngest routes ingestion through the shared-nothing async plane:
	// events are enqueued to per-shard SPSC mailboxes and applied by one
	// goroutine per shard, and reads answer from epoch-published snapshots
	// (bounded staleness; POST /v1/admin/flush forces read-your-write).
	// Full mailboxes are reported as 429 backpressure with a Retry-After
	// hint. Incompatible with Follow (a follower ingests nothing locally).
	AsyncIngest bool
	// AsyncFlushInterval is the snapshot publish cadence (the staleness
	// bound) in async mode; zero selects the sprofile default (2ms).
	AsyncFlushInterval time.Duration
	// AsyncMailboxDepth is the per-producer, per-shard mailbox capacity in
	// async mode; zero selects the sprofile default (1024).
	AsyncMailboxDepth int
	// MaxInFlight bounds concurrently served requests; excess requests are
	// shed at admission with 503 code "shed" and a Retry-After instead of
	// queueing. Zero selects the default (1024); negative disables the gate.
	// /healthz and /metrics are exempt so probes and scrapes still answer
	// under overload.
	MaxInFlight int
	// RequestTimeout is the per-route response deadline; a lapsed route
	// answers 503 code "deadline". Zero selects the default (15s); negative
	// disables deadlines. Streaming routes (bulk ingest, export/import,
	// replication transfers) are never bounded, and the replication
	// long-poll route gets the long-poll window plus slack.
	RequestTimeout time.Duration
	// DebugFailpoints registers POST /v1/admin/failpoint, the runtime
	// fault-injection surface. For chaos rigs and tests only — never enable
	// it on a production node.
	DebugFailpoints bool
}

// Server is the HTTP facade over a concurrent keyed profile. It is safe for
// concurrent use with no server-level mutex: all synchronisation lives in
// the profile's stripe and shard locks, so the ingest and query hot paths
// never serialise on each other.
type Server struct {
	profile  *sprofile.KeyedConcurrent[string]
	async    *sprofile.AsyncKeyed[string] // non-nil with Config.AsyncIngest
	follower *sprofile.KeyedFollower      // non-nil in follower mode (stays set after promote)
	leader   string                       // leader base URL (follower mode)
	walPath  string
	maxBatch int
	mux      *http.ServeMux

	// Request-plane guard rails (middleware.go).
	inflight        chan struct{} // admission gate; nil disables shedding
	requestTimeout  time.Duration // per-route deadline; <= 0 disables
	debugFailpoints bool          // register /v1/admin/failpoint

	// Degraded read-only mode (degrade.go).
	degraded        atomic.Bool
	degradeStop     chan struct{}
	degradeDone     chan struct{}
	degradeStopOnce sync.Once
}

// initGuards sizes the admission gate and deadlines from cfg; shared by the
// leader and follower constructors.
func (s *Server) initGuards(cfg Config) {
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = defaultMaxInFlight
	}
	if maxInFlight > 0 {
		s.inflight = make(chan struct{}, maxInFlight)
	}
	s.requestTimeout = cfg.RequestTimeout
	if s.requestTimeout == 0 {
		s.requestTimeout = defaultRequestTimeout
	}
	s.debugFailpoints = cfg.DebugFailpoints
}

// prof resolves the profile serving this request. In leader mode it is fixed;
// in follower mode it is the replica behind an atomic pointer, which swaps on
// rebootstrap and on promote — handlers therefore resolve it per request and
// never cache it across requests.
func (s *Server) prof() *sprofile.KeyedConcurrent[string] {
	if s.follower != nil {
		return s.follower.Profile()
	}
	return s.profile
}

// keyed resolves the profiler surface handlers read and write through: the
// async plane when configured (lock-free enqueues, epoch-snapshot reads),
// otherwise the synchronous profile itself.
func (s *Server) keyed() sprofile.KeyedProfiler[string] {
	if s.async != nil {
		return s.async
	}
	return s.prof()
}

// applyBatch routes one decoded bulk chunk through whichever batch path is
// configured.
func (s *Server) applyBatch(events []sprofile.KeyedTuple[string]) (int, error) {
	if s.async != nil {
		return s.async.ApplyBatch(events)
	}
	return s.prof().ApplyBatch(events)
}

// readOnly reports whether this server must refuse writes (an unpromoted
// follower: its profile is driven by the leader's WAL, and a local write
// would silently diverge from it).
func (s *Server) readOnly() bool {
	return s.follower != nil && !s.follower.Promoted()
}

// errConfig is the package's construction-time sentinel: every invalid
// Config combination New refuses wraps it, so embedders can errors.Is for
// the whole class. It never crosses the wire — by the time the server
// serves, the configuration was valid.
var errConfig = errors.New("server: invalid configuration")

// New returns a Server with the given configuration. When Config.WALPath is
// set, any events already in the log are replayed into the profile before the
// server starts accepting requests.
func New(cfg Config) (*Server, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("%w: capacity must be positive, got %d", errConfig, cfg.Capacity)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 10_000
	}
	// BuildKeyed enforces strict non-negative counts (recycling keyed
	// profiles require them) and aligns the mapper stripes with the shards;
	// its default when WithSharding is absent is one shard per CPU, which is
	// exactly what Config.Shards <= 0 selects.
	var buildOpts []sprofile.BuildOption
	if cfg.Shards > 0 {
		buildOpts = append(buildOpts, sprofile.WithSharding(cfg.Shards))
	}
	if cfg.Follow != "" {
		if cfg.AsyncIngest {
			return nil, fmt.Errorf("%w: async ingest is incompatible with follower mode (a follower ingests nothing locally)", errConfig)
		}
		return newFollowerServer(cfg, buildOpts, maxBatch)
	}
	if cfg.WALPath != "" {
		buildOpts = append(buildOpts,
			sprofile.WithWAL(cfg.WALPath),
			sprofile.WithWALSyncEvery(cfg.WALSyncEvery))
	}
	if cfg.CheckpointEvery > 0 || cfg.CheckpointBytes > 0 {
		if cfg.WALPath == "" {
			return nil, fmt.Errorf("%w: checkpointing requires a WAL path", errConfig)
		}
		buildOpts = append(buildOpts, sprofile.WithCheckpoints(sprofile.CheckpointPolicy{
			Every:      cfg.CheckpointEvery,
			EveryBytes: cfg.CheckpointBytes,
		}))
	}
	keyed, err := sprofile.BuildKeyed[string](cfg.Capacity, buildOpts...)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		profile:  keyed,
		walPath:  cfg.WALPath,
		maxBatch: maxBatch,
		mux:      http.NewServeMux(),
	}
	if cfg.AsyncIngest {
		// Error-mode backpressure: a full mailbox becomes a 429 the caller
		// can retry, instead of a handler goroutine blocking inside the
		// profile while holding the connection.
		async, err := sprofile.NewAsyncKeyed(keyed, sprofile.AsyncPolicy{
			MailboxDepth:    cfg.AsyncMailboxDepth,
			PublishInterval: cfg.AsyncFlushInterval,
			Backpressure:    sprofile.BackpressureError,
		})
		if err != nil {
			keyed.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.async = async
	}
	s.initGuards(cfg)
	s.routes()
	s.startDegradeWatcher()
	return s, nil
}

// newFollowerServer builds the read-only replica variant of New: the profile
// is a KeyedFollower continuously mirroring cfg.Follow into cfg.WALPath.
func newFollowerServer(cfg Config, buildOpts []sprofile.BuildOption, maxBatch int) (*Server, error) {
	if cfg.WALPath == "" {
		return nil, fmt.Errorf("%w: follower mode requires a WAL path for the local mirror", errConfig)
	}
	// Checkpoint and sync-cadence options only make sense on a leader; they
	// take effect when (if) this follower is promoted.
	promoteOpts := []sprofile.BuildOption{sprofile.WithWALSyncEvery(cfg.WALSyncEvery)}
	if cfg.CheckpointEvery > 0 || cfg.CheckpointBytes > 0 {
		promoteOpts = append(promoteOpts, sprofile.WithCheckpoints(sprofile.CheckpointPolicy{
			Every:      cfg.CheckpointEvery,
			EveryBytes: cfg.CheckpointBytes,
		}))
	}
	kf, err := sprofile.NewKeyedFollower(sprofile.FollowerConfig{
		Capacity: cfg.Capacity,
		Leader:   cfg.Follow,
		Dir:      cfg.WALPath,
		LongPoll: cfg.FollowPoll,
		Build:    buildOpts,
		Promote:  promoteOpts,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	kf.Start()
	s := &Server{
		follower: kf,
		leader:   cfg.Follow,
		walPath:  cfg.WALPath,
		maxBatch: maxBatch,
		mux:      http.NewServeMux(),
	}
	s.initGuards(cfg)
	s.routes()
	s.startDegradeWatcher()
	return s, nil
}

// Replayed returns the number of WAL tail records replayed at startup —
// with checkpointing, only the records after the last snapshot.
func (s *Server) Replayed() int { return s.prof().Replayed() }

// Recovery returns the startup recovery breakdown: how much state the
// checkpoint snapshot restored outright and how much log tail was replayed.
func (s *Server) Recovery() sprofile.RecoveryStats { return s.prof().Recovery() }

// Close stops background checkpointing and closes the write-ahead log, if
// one is configured. In follower mode it stops the replication loop and
// closes the mirror.
func (s *Server) Close() error {
	s.stopDegradeWatcher()
	if s.follower != nil {
		return s.follower.Close()
	}
	if s.async != nil {
		// Drains the mailboxes, stops the appliers, then closes the wrapped
		// keyed profile (WAL flush + checkpointer stop).
		return s.async.Close()
	}
	return s.prof().Close()
}

// Shutdown is the drain-ordered stop. The listener half — stop accepting,
// drain in-flight requests with a timeout — belongs to the http.Server
// wrapping this handler (call its Shutdown first); this half then settles
// the data plane in order: flush the async ingest plane so every
// acknowledged event is applied, take a final checkpoint so the next start
// replays (almost) nothing, and close the WAL. The final checkpoint is
// skipped when ctx is already done or the node is degraded (the checkpoint
// would only fail against the sick disk); every later step still runs. The
// first error is returned, but an error never short-circuits the close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopDegradeWatcher()
	if s.follower != nil {
		return s.follower.Close()
	}
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.async != nil {
		record(s.async.Flush())
	}
	if _, ok := s.prof().WALStats(); ok && ctx.Err() == nil && !s.degradedNow() {
		record(s.prof().Checkpoint())
	}
	record(s.Close())
	return firstErr
}

// Flush drains the async ingest plane and republishes the read snapshots,
// returning the first deferred apply error; a no-op without async ingest.
func (s *Server) Flush() error {
	if s.async == nil {
		return nil
	}
	return s.async.Flush()
}

// HeaderMaxStaleness is the request header a reader sets to demand freshness:
// a follower whose staleness watermark exceeds this many milliseconds refuses
// the read with 503 stale_read instead of answering from stale state. Leaders
// always satisfy any bound.
const HeaderMaxStaleness = "X-Sprofile-Max-Staleness-Ms"

// ServeHTTP implements http.Handler. Every request passes through the metrics
// middleware (request counter + latency histogram by route, outermost so shed
// and timed-out requests are still observed), then the admission gate and
// panic recovery (middleware.go); a max-staleness demand is enforced before
// routing, so it guards every read endpoint uniformly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.instrument(http.HandlerFunc(s.serveAdmitted), w, r)
}

func (s *Server) serveRouted(w http.ResponseWriter, r *http.Request) {
	if raw := r.Header.Get(HeaderMaxStaleness); raw != "" {
		bound, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || bound < 0 {
			writeError(w, http.StatusBadRequest, "%s must be a non-negative integer, got %q", HeaderMaxStaleness, raw)
			return
		}
		if s.readOnly() {
			if st := s.follower.Status(); st.StalenessMs > bound {
				w.Header().Set("Retry-After", "1")
				w.Header().Set(replication.HeaderLeader, s.leader)
				writeJSON(w, http.StatusServiceUnavailable, errorResponse{
					Error: fmt.Sprintf("%v: %dms behind, caller demands %dms", sprofile.ErrStaleRead, st.StalenessMs, bound),
					Code:  "stale_read",
				})
				return
			}
		}
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.Handle("/metrics", sprofile.MetricsHandler())
	s.mux.Handle("/v1/events", s.deadlineFunc(s.handleEvents))
	// Bulk ingest streams an unbounded NDJSON body; a deadline would also
	// buffer the (tiny) response, and legitimate loads can run long.
	s.mux.HandleFunc("/v1/events/bulk", s.handleBulk)
	s.mux.Handle("/v1/query", s.deadlineFunc(s.handleQuery))
	s.mux.Handle("/v1/admin/checkpoint", s.deadlineFunc(s.handleCheckpoint))
	s.mux.Handle("/v1/admin/flush", s.deadlineFunc(s.handleFlush))
	if s.debugFailpoints {
		s.mux.Handle("/v1/admin/failpoint", s.deadlineFunc(s.handleFailpoint))
	}
	s.mux.Handle("/v1/stats/mode", s.deadlineFunc(s.handleMode))
	s.mux.Handle("/v1/stats/top", s.deadlineFunc(s.handleTop))
	s.mux.Handle("/v1/stats/min", s.deadlineFunc(s.handleMin))
	s.mux.Handle("/v1/stats/bottom", s.deadlineFunc(s.handleBottom))
	s.mux.Handle("/v1/stats/count", s.deadlineFunc(s.handleCount))
	s.mux.Handle("/v1/stats/median", s.deadlineFunc(s.handleMedian))
	s.mux.Handle("/v1/stats/quantile", s.deadlineFunc(s.handleQuantile))
	s.mux.Handle("/v1/stats/majority", s.deadlineFunc(s.handleMajority))
	s.mux.Handle("/v1/stats/distribution", s.deadlineFunc(s.handleDistribution))
	s.mux.Handle("/v1/stats/summary", s.deadlineFunc(s.handleSummary))
	s.registerExportRoutes()
	s.registerReplicationRoutes()
}

// Event is the JSON wire form of one log tuple.
type Event struct {
	Object string `json:"object"`
	Action string `json:"action"`
}

// eventsResponse reports how a POST /v1/events batch was processed.
type eventsResponse struct {
	Applied int    `json:"applied"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
}

// entryResponse is the wire form of a single statistics answer.
type entryResponse struct {
	Object    string `json:"object"`
	Frequency int64  `json:"frequency"`
	Ties      int    `json:"ties,omitempty"`
}

// majorityResponse answers GET /v1/stats/majority; Object and Frequency are
// meaningful only when Majority is true.
type majorityResponse struct {
	Object    string `json:"object,omitempty"`
	Frequency int64  `json:"frequency,omitempty"`
	Majority  bool   `json:"majority"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable error class; see errorCode for the
	// closed set. The Go client SDK maps it back onto the sprofile error
	// taxonomy, so errors.Is works across the wire.
	Code string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by the
	// http server; the status code is already on the wire.
	_ = json.NewEncoder(w).Encode(v)
}

// errorCode maps an error returned by the profile onto the HTTP status and
// the wire error code of its taxonomy class. Every handler funnels profile
// errors through this one mapping, so the same errors.Is class always yields
// the same status:
//
//	invalid_query, invalid_action, out_of_range → 400 Bad Request
//	unknown_key                                 → 404 Not Found
//	strict_violation                            → 409 Conflict
//	empty_profile                               → 422 Unprocessable Entity
//	cap_exceeded                                → 507 Insufficient Storage
//	wal_append (applied but not journaled)      → 500 Internal Server Error
//	read_only, stale_read (replication)         → 503 Service Unavailable
//	degraded (WAL I/O failure, writes refused)  → 503 Service Unavailable
//	shed (admission gate at max in-flight)      → 503 Service Unavailable
//	backpressure (async mailbox full)           → 429 Too Many Requests
func errorCode(err error) (int, string) {
	switch {
	case errors.Is(err, sprofile.ErrBackpressure):
		return http.StatusTooManyRequests, "backpressure"
	case errors.Is(err, sprofile.ErrDegraded):
		return http.StatusServiceUnavailable, "degraded"
	case errors.Is(err, sprofile.ErrShed):
		return http.StatusServiceUnavailable, "shed"
	case errors.Is(err, sprofile.ErrReadOnly):
		return http.StatusServiceUnavailable, "read_only"
	case errors.Is(err, sprofile.ErrStaleRead):
		return http.StatusServiceUnavailable, "stale_read"
	case errors.Is(err, sprofile.ErrWALAppend):
		return http.StatusInternalServerError, "wal_append"
	case errors.Is(err, sprofile.ErrCapExceeded):
		return http.StatusInsufficientStorage, "cap_exceeded"
	case errors.Is(err, sprofile.ErrUnknownKey):
		return http.StatusNotFound, "unknown_key"
	case errors.Is(err, sprofile.ErrInvalidQuery):
		return http.StatusBadRequest, "invalid_query"
	case errors.Is(err, sprofile.ErrInvalidAction):
		return http.StatusBadRequest, "invalid_action"
	case errors.Is(err, sprofile.ErrOutOfRange):
		return http.StatusBadRequest, "out_of_range"
	case errors.Is(err, sprofile.ErrStrictViolation):
		return http.StatusConflict, "strict_violation"
	case errors.Is(err, sprofile.ErrEmptyProfile):
		return http.StatusUnprocessableEntity, "empty_profile"
	default:
		return http.StatusUnprocessableEntity, "unprocessable"
	}
}

// statusCode names the request-level (non-taxonomy) error classes by status.
func statusCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "unprocessable"
	}
}

// writeError reports a request-level failure (malformed body, bad parameter,
// wrong method) whose class is implied by the status code.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: statusCode(status)})
}

// setRetryHint attaches a Retry-After to transient rejections: async
// backpressure clears as soon as the appliers drain a mailbox slot, shedding
// as soon as an in-flight request finishes, and degradation as soon as the
// recovery probe rolls the log — all within the header's minimum expressible
// hint (one second).
func setRetryHint(w http.ResponseWriter, err error) {
	if errors.Is(err, sprofile.ErrBackpressure) ||
		errors.Is(err, sprofile.ErrDegraded) ||
		errors.Is(err, sprofile.ErrShed) {
		w.Header().Set("Retry-After", "1")
	}
}

// writeProfileError reports a profile operation failure through the taxonomy
// mapping of errorCode.
func writeProfileError(w http.ResponseWriter, err error) {
	status, code := errorCode(err)
	setRetryHint(w, err)
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}

// rejectReadOnly refuses a write on an unpromoted follower: 503 with a
// Retry-After and the leader's URL in X-Sprofile-Leader, so a client can fail
// over immediately instead of waiting out the retry.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if !s.readOnly() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set(replication.HeaderLeader, s.leader)
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error: fmt.Sprintf("%v; this is a follower of %s", sprofile.ErrReadOnly, s.leader),
		Code:  "read_only",
	})
	return true
}

// role names what this node currently is: "standalone" (no WAL), "leader"
// (WAL-backed, writable), or "follower" (read-only replica).
func (s *Server) role() string {
	if s.readOnly() {
		return "follower"
	}
	if _, ok := s.prof().WALStats(); ok {
		return "leader"
	}
	return "standalone"
}

// replicationStatus returns the staleness watermark this node attaches to
// answers, or nil when it is standalone.
func (s *Server) replicationStatus() *sprofile.ReplicationStatus {
	if s.follower != nil {
		st := s.follower.Status()
		return &st
	}
	if st, ok := s.prof().LeaderReplicationStatus(); ok {
		return &st
	}
	return nil
}

// healthWAL is the wal object inside the /healthz document.
type healthWAL struct {
	Segment             uint64 `json:"segment"`
	Offset              int64  `json:"offset"`
	Segments            int    `json:"segments"`
	Fsyncs              uint64 `json:"fsyncs"`
	TailBytes           int64  `json:"tail_bytes"`
	SnapshotSeq         uint64 `json:"snapshot_seq"`
	LastCheckpointAgeMs int64  `json:"last_checkpoint_age_ms"` // -1 = never checkpointed
}

// healthResponse is the full /healthz document; see the README for the
// schema. WAL and Replication are omitted on nodes that have neither.
type healthResponse struct {
	Status          string                      `json:"status"`
	Role            string                      `json:"role"`
	UptimeSeconds   float64                     `json:"uptime_seconds"`
	Version         string                      `json:"version"`
	Commit          string                      `json:"commit"`
	Degraded        bool                        `json:"degraded"`
	WALError        string                      `json:"wal_error,omitempty"`
	CheckpointError string                      `json:"checkpoint_error,omitempty"`
	ReplicationErr  string                      `json:"replication_error,omitempty"`
	WAL             *healthWAL                  `json:"wal,omitempty"`
	Replication     *sprofile.ReplicationStatus `json:"replication,omitempty"`
	Async           *sprofile.AsyncStats        `json:"async,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := healthResponse{
		Status:        "ok",
		Role:          s.role(),
		UptimeSeconds: time.Since(serverStart).Seconds(),
		Version:       sprofile.Version,
		Commit:        sprofile.Commit,
	}
	p := s.prof()
	if s.degradedNow() {
		// Writes are refused (503 degraded) while the recovery probe tries
		// to roll the log; reads keep serving, so the node stays "live" for
		// probes but the status names the impairment.
		resp.Status = "degraded"
		resp.Degraded = true
	}
	if err := p.WALError(); err != nil {
		resp.WALError = err.Error()
	}
	if err := p.CheckpointError(); err != nil {
		// The server keeps serving — the profile and the unreclaimed log
		// tail are intact — but the operator should know the last background
		// checkpoint failed (e.g. a full disk).
		resp.CheckpointError = err.Error()
	}
	if s.follower != nil {
		if err := s.follower.LastError(); err != nil {
			resp.ReplicationErr = err.Error()
		}
	}
	if ws, ok := p.WALStats(); ok {
		hw := &healthWAL{
			Segment:             ws.Segment,
			Offset:              ws.Offset,
			Segments:            ws.Segments,
			Fsyncs:              ws.Fsyncs,
			TailBytes:           ws.TailBytes,
			SnapshotSeq:         ws.SnapshotSeq,
			LastCheckpointAgeMs: -1,
		}
		if !ws.LastCheckpoint.IsZero() {
			hw.LastCheckpointAgeMs = time.Since(ws.LastCheckpoint).Milliseconds()
		}
		resp.WAL = hw
	}
	resp.Replication = s.replicationStatus()
	if s.async != nil {
		st := s.async.Stats()
		resp.Async = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint snapshots the profile into the WAL directory and deletes
// the log segments the snapshot covers. Readers are never blocked; writers
// pause only while the in-memory state is captured.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.rejectReadOnly(w) || s.rejectDegraded(w) {
		// Degraded: the checkpoint would rotate onto the failed log and
		// report the WAL fault as its own; 503 degraded + Retry-After names
		// the real condition instead of a misleading checkpoint error.
		return
	}
	if s.async != nil {
		// Drain the mailboxes first so the snapshot covers everything the
		// server has acknowledged, not just what the appliers got to.
		if err := s.async.Flush(); err != nil {
			writeProfileError(w, err)
			return
		}
	}
	if err := s.prof().Checkpoint(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "checkpoint failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"checkpointed": true})
}

// handleFlush drains the async ingest plane: every event acknowledged before
// the POST is applied and visible to reads when it returns, and any deferred
// apply error (unknown key on remove, capacity exhaustion, strict violation)
// is reported here through the usual taxonomy. Without async ingest it
// degrades to a WAL sync, so callers can use it unconditionally as a
// durability+visibility barrier.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.rejectReadOnly(w) || s.rejectDegraded(w) {
		// Degraded: the sync would just re-report the sticky WAL fault as a
		// 500 wal_append; 503 degraded + Retry-After is the actionable truth.
		return
	}
	if s.async != nil {
		if err := s.async.Flush(); err != nil {
			writeProfileError(w, err)
			return
		}
	} else if err := s.prof().Sync(); err != nil {
		writeProfileError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"flushed": true})
}

// decodeEvents accepts either a single {object, action} event or a JSON
// array of them, as the package doc promises. The body is buffered first so
// the two forms can be distinguished by their leading token.
func decodeEvents(r *http.Request, maxBatch int) ([]Event, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var batch []Event
		if err := strictDecode(trimmed, &batch); err != nil {
			return nil, fmt.Errorf("invalid event array: %w", err)
		}
		if len(batch) > maxBatch {
			return nil, fmt.Errorf("%w: batch of %d events exceeds limit %d", sprofile.ErrOutOfRange, len(batch), maxBatch)
		}
		return batch, nil
	}
	var single Event
	if err := strictDecode(trimmed, &single); err != nil {
		return nil, fmt.Errorf("body must be one {object, action} event or a JSON array of them: %w", err)
	}
	return []Event{single}, nil
}

// strictDecode unmarshals data into v, rejecting unknown fields.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func parseAction(s string) (sprofile.Action, error) {
	switch s {
	case "add", "+", "1":
		return sprofile.ActionAdd, nil
	case "remove", "-", "-1":
		return sprofile.ActionRemove, nil
	default:
		return 0, fmt.Errorf("%w: unknown action %q (want \"add\" or \"remove\")", sprofile.ErrInvalidAction, s)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.rejectReadOnly(w) || s.rejectDegraded(w) {
		return
	}
	events, err := decodeEvents(r, s.maxBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	applied := 0
	for _, e := range events {
		if err := checkObject(e.Object); err != nil {
			writeJSON(w, http.StatusBadRequest, eventsResponse{Applied: applied, Error: err.Error(), Code: "bad_request"})
			return
		}
		action, err := parseAction(e.Action)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, eventsResponse{Applied: applied, Error: err.Error(), Code: "invalid_action"})
			return
		}
		if err := s.keyed().Apply(e.Object, action); err != nil {
			status, code := errorCode(err)
			resp := eventsResponse{Applied: applied, Error: err.Error(), Code: code}
			if errors.Is(err, sprofile.ErrWALAppend) {
				// The update is in the profile but not in the log.
				resp.Applied++
			}
			setRetryHint(w, err)
			writeJSON(w, status, resp)
			return
		}
		applied++
	}
	// In async mode Applied means accepted-and-enqueued: the appliers fsync
	// per drained batch, and stream-dependent errors surface on
	// POST /v1/admin/flush instead of here.
	if s.async == nil {
		if err := s.prof().Sync(); err != nil {
			writeJSON(w, http.StatusInternalServerError, eventsResponse{
				Applied: applied,
				Error:   fmt.Sprintf("events applied but log sync failed: %v", err),
				Code:    "wal_append",
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Applied: applied})
}

// bulkScratch is the pooled per-request buffer set of the bulk endpoint:
// the line scanner's initial buffer and the event chunk handed to
// ApplyBatch. Pooling keeps the streaming decode free of per-event
// allocations (the decoded key strings themselves are the only per-event
// cost, and only new keys are retained by the profile).
type bulkScratch struct {
	line   []byte
	events []sprofile.KeyedTuple[string]
}

var bulkPool = sync.Pool{
	New: func() any { return &bulkScratch{line: make([]byte, 64<<10)} },
}

// maxBulkLine bounds one NDJSON line. It is deliberately larger than the
// per-object limit so an oversized key is reported as a per-line 400 (with
// its line number) instead of an opaque scanner failure; checkObject
// enforces the real bound.
const maxBulkLine = 4 << 20

// checkObject rejects object keys the write-ahead log could not journal —
// appending one would fail after the in-memory update and report a
// divergence, so the front door refuses it outright (whether or not a WAL
// is configured, for consistency).
func checkObject(object string) error {
	if object == "" {
		return fmt.Errorf("%w: event with empty object", sprofile.ErrOutOfRange)
	}
	if len(object) > wal.MaxKeyLen {
		return fmt.Errorf("object of %d bytes exceeds the %d-byte limit: %w", len(object), wal.MaxKeyLen, sprofile.ErrOutOfRange)
	}
	return nil
}

// handleBulk ingests an NDJSON stream — one {"object", "action"} event per
// line — through the profile's delta-batched fast path: events are decoded
// into chunks of at most MaxBatch, each chunk is coalesced into net
// per-key deltas, applied with one stripe-lock acquisition per stripe and
// one block walk per distinct key, and (with a WAL) journaled as one batch
// record per stripe with one group-commit fsync per chunk. Blank lines are
// skipped. The response reports how many events were applied; on a decode
// error it also names the failing line. A bad line rejects its own pending
// chunk (those events are never applied), while chunks flushed earlier in
// the stream stay applied — the Applied count is always accurate.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.rejectReadOnly(w) || s.rejectDegraded(w) {
		return
	}
	sc := bulkPool.Get().(*bulkScratch)
	defer func() {
		// Zero the full backing array, not just the live prefix — flush()
		// truncates after each chunk, so the pooled capacity would otherwise
		// keep pinning the last flushed chunk's key strings.
		clear(sc.events[:cap(sc.events)])
		sc.events = sc.events[:0]
		bulkPool.Put(sc)
	}()
	scanner := bufio.NewScanner(r.Body)
	scanner.Buffer(sc.line, maxBulkLine)

	applied := 0
	lineNo := 0
	flush := func() error {
		n, err := s.applyBatch(sc.events)
		applied += n
		sc.events = sc.events[:0]
		return err
	}
	fail := func(status int, format string, args ...any) {
		writeJSON(w, status, eventsResponse{Applied: applied, Error: fmt.Sprintf(format, args...), Code: statusCode(status)})
	}
	for scanner.Scan() {
		lineNo++
		data := bytes.TrimSpace(scanner.Bytes())
		if len(data) == 0 {
			continue
		}
		var e Event
		if err := strictDecode(data, &e); err != nil {
			fail(http.StatusBadRequest, "line %d: %v", lineNo, err)
			return
		}
		if err := checkObject(e.Object); err != nil {
			fail(http.StatusBadRequest, "line %d: %v", lineNo, err)
			return
		}
		action, err := parseAction(e.Action)
		if err != nil {
			fail(http.StatusBadRequest, "line %d: %v", lineNo, err)
			return
		}
		sc.events = append(sc.events, sprofile.KeyedTuple[string]{Key: e.Object, Action: action})
		if len(sc.events) >= s.maxBatch {
			if err := flush(); err != nil {
				s.writeBulkApplyError(w, applied, err)
				return
			}
		}
	}
	if err := scanner.Err(); err != nil {
		// Apply nothing further: the partial chunk may be mid-stream garbage.
		fail(http.StatusBadRequest, "reading stream at line %d: %v", lineNo, err)
		return
	}
	if err := flush(); err != nil {
		s.writeBulkApplyError(w, applied, err)
		return
	}
	writeJSON(w, http.StatusOK, eventsResponse{Applied: applied})
}

// writeBulkApplyError maps an ApplyBatch failure onto the same taxonomy
// statuses and codes the per-event endpoint uses.
func (s *Server) writeBulkApplyError(w http.ResponseWriter, applied int, err error) {
	status, code := errorCode(err)
	setRetryHint(w, err)
	writeJSON(w, status, eventsResponse{Applied: applied, Error: err.Error(), Code: code})
}

func (s *Server) handleMode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	entry, ties, err := s.keyed().Mode()
	if err != nil {
		writeProfileError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: entry.Key, Frequency: entry.Frequency, Ties: ties})
}

func (s *Server) handleMin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	entry, ties, err := s.keyed().Min()
	if err != nil {
		writeProfileError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: entry.Key, Frequency: entry.Frequency, Ties: ties})
}

// parseK reads the ?k= parameter shared by the top and bottom handlers,
// defaulting to 10. The bool reports whether the value was valid (an error
// has been written otherwise).
func parseK(w http.ResponseWriter, r *http.Request) (int, bool) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, "k must be a positive integer, got %q", raw)
			return 0, false
		}
		k = v
	}
	return k, true
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	k, ok := parseK(w, r)
	if !ok {
		return
	}
	entries := s.keyed().TopK(k)
	out := make([]entryResponse, len(entries))
	for i, e := range entries {
		out[i] = entryResponse{Object: e.Key, Frequency: e.Frequency}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBottom(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	k, ok := parseK(w, r)
	if !ok {
		return
	}
	entries := s.keyed().BottomK(k)
	out := make([]entryResponse, len(entries))
	for i, e := range entries {
		out[i] = entryResponse{Object: e.Key, Frequency: e.Frequency}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	object := r.URL.Query().Get("object")
	if object == "" {
		writeError(w, http.StatusBadRequest, "missing object parameter")
		return
	}
	f, err := s.keyed().Count(object)
	if err != nil {
		writeProfileError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: object, Frequency: f})
}

func (s *Server) handleMedian(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	entry, err := s.keyed().Median()
	if err != nil {
		writeProfileError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: entry.Key, Frequency: entry.Frequency})
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	raw := r.URL.Query().Get("q")
	q, err := strconv.ParseFloat(raw, 64)
	if err != nil || q < 0 || q > 1 {
		writeError(w, http.StatusBadRequest, "q must be a number in [0,1], got %q", raw)
		return
	}
	entry, err := s.keyed().Quantile(q)
	if err != nil {
		writeProfileError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, entryResponse{Object: entry.Key, Frequency: entry.Frequency})
}

func (s *Server) handleMajority(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	entry, ok, err := s.keyed().Majority()
	if err != nil {
		writeProfileError(w, err)
		return
	}
	if !ok {
		writeJSON(w, http.StatusOK, majorityResponse{Majority: false})
		return
	}
	writeJSON(w, http.StatusOK, majorityResponse{Object: entry.Key, Frequency: entry.Frequency, Majority: true})
}

func (s *Server) handleDistribution(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.keyed().Distribution())
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	summary := s.keyed().Summarize()
	tracked := s.keyed().Tracked()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity":             summary.Capacity,
		"tracked":              tracked,
		"total":                summary.Total,
		"active":               summary.Active,
		"distinct_frequencies": summary.DistinctFrequencies,
		"max_frequency":        summary.MaxFrequency,
		"min_frequency":        summary.MinFrequency,
		"adds":                 summary.Adds,
		"removes":              summary.Removes,
	})
}
