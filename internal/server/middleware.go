package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"sprofile"
	"sprofile/internal/failpoint"
	"sprofile/internal/metrics"
	"sprofile/internal/replication"
)

// Request-plane guard rails: a max-in-flight admission gate (load shedding),
// panic recovery, and per-route deadlines. All three sit between the metrics
// middleware (outermost, so shed and timed-out requests are still counted and
// timed) and the router.
var (
	mShed = metrics.Default().Counter("sprofile_http_shed_total",
		"Requests refused at admission because the server was at its in-flight limit.")
	mPanics = metrics.Default().Counter("sprofile_http_panics_total",
		"Handler panics recovered by the middleware (each one is a bug).")
)

const (
	// defaultMaxInFlight bounds concurrently served requests when
	// Config.MaxInFlight is zero. Far above any sane handler concurrency, so
	// it only engages under pile-up (slow disk, stalled clients): shedding
	// the excess keeps memory bounded and latency honest instead of queueing
	// toward a timeout.
	defaultMaxInFlight = 1024
	// defaultRequestTimeout is the per-route deadline when
	// Config.RequestTimeout is zero. Statistics are answered in constant
	// time, so anything near it means a stuck disk or a lost client.
	defaultRequestTimeout = 15 * time.Second
)

// deadlineBody is the fixed 503 body http.TimeoutHandler writes when a
// deadline lapses; the code mirrors the taxonomy style ("deadline" is
// request-level, like "shed", not a profile error class).
const deadlineBody = `{"error":"request deadline exceeded","code":"deadline"}` + "\n"

// admissionExempt lists paths that bypass the in-flight gate: liveness and
// scraping must answer exactly when the server is overloaded, and both are
// read-only and allocation-light.
func admissionExempt(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// serveAdmitted runs the shed gate and panic recovery, then routes. The
// ResponseWriter is the statusRecorder installed by instrument, which is how
// the panic path knows whether a status already went out on the wire.
func (s *Server) serveAdmitted(w http.ResponseWriter, r *http.Request) {
	defer s.recoverPanic(w, r)
	if s.inflight != nil && !admissionExempt(r.URL.Path) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			mShed.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error: sprofile.ErrShed.Error(),
				Code:  "shed",
			})
			return
		}
	}
	s.serveRouted(w, r)
}

// recoverPanic converts a handler panic into a 500 (when no status has been
// written yet) instead of tearing down the connection, and counts it.
// http.ErrAbortHandler is the sanctioned way to abort a response and is
// re-panicked; http.TimeoutHandler transfers inner-handler panics onto this
// goroutine, so deadline-wrapped routes are covered too.
func (s *Server) recoverPanic(w http.ResponseWriter, r *http.Request) {
	v := recover()
	if v == nil {
		return
	}
	if v == http.ErrAbortHandler {
		panic(v)
	}
	mPanics.Inc()
	slog.Error("handler panic",
		"path", r.URL.Path,
		"method", r.Method,
		"panic", fmt.Sprint(v),
		"stack", string(debug.Stack()))
	if rec, ok := w.(*statusRecorder); !ok || rec.status == 0 {
		writeError(w, http.StatusInternalServerError, "internal error")
	}
}

// withDeadline wraps h with a hard response deadline d. Zero d leaves the
// route unbounded (the streaming routes: http.TimeoutHandler buffers the
// whole response, so bounding an export would also buffer it); deadlines are
// globally disabled by Config.RequestTimeout < 0.
func (s *Server) withDeadline(d time.Duration, h http.Handler) http.Handler {
	if s.requestTimeout <= 0 || d <= 0 {
		return h
	}
	return http.TimeoutHandler(h, d, deadlineBody)
}

// deadlineFunc is withDeadline over a HandlerFunc at the default deadline.
func (s *Server) deadlineFunc(h http.HandlerFunc) http.Handler {
	return s.withDeadline(s.requestTimeout, h)
}

// replicationWALDeadline allows the full long-poll wait plus transfer slack;
// the default deadline would cut every quiet-leader poll short.
func (s *Server) replicationWALDeadline() time.Duration {
	d := replication.MaxWait + 15*time.Second
	if s.requestTimeout > d {
		d = s.requestTimeout
	}
	return d
}

// failpointRequest is the POST /v1/admin/failpoint body: arm Site with Spec
// (failpoint grammar), or disarm it with an empty/"off" Spec.
type failpointRequest struct {
	Site string `json:"site"`
	Spec string `json:"spec"`
}

// handleFailpoint is the runtime fault-injection surface, registered only
// when Config.DebugFailpoints is set (chaos rigs and tests; never production
// defaults). GET lists armed sites with trigger counts, POST arms or disarms
// one site, DELETE disarms everything.
func (s *Server) handleFailpoint(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		sites := failpoint.List()
		if sites == nil {
			sites = []failpoint.Status{}
		}
		writeJSON(w, http.StatusOK, sites)
	case http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading request body: %v", err)
			return
		}
		var req failpointRequest
		if err := strictDecode(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid failpoint request: %v", err)
			return
		}
		if req.Site == "" {
			writeError(w, http.StatusBadRequest, "missing site")
			return
		}
		if req.Spec == "" || req.Spec == "off" {
			failpoint.Disable(req.Site)
			writeJSON(w, http.StatusOK, map[string]any{"site": req.Site, "armed": false})
			return
		}
		if err := failpoint.Enable(req.Site, req.Spec); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"site": req.Site, "armed": true, "spec": req.Spec})
	case http.MethodDelete:
		failpoint.DisableAll()
		writeJSON(w, http.StatusOK, map[string]any{"armed": false})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET, POST or DELETE")
	}
}
