package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sprofile/internal/failpoint"
)

// newWALServer builds a leader with a WAL in a temp dir; the caller owns
// Close (some tests Shutdown instead).
func newWALServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Capacity == 0 {
		cfg.Capacity = 64
	}
	if cfg.WALPath == "" {
		cfg.WALPath = t.TempDir() + "/wal"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp, out
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDegradedModeEntryAndRecovery drives the full state machine: healthy →
// (persistent fsync failure) → degraded read-only → (disk recovers) →
// healthy, asserting the wire contract at every step.
func TestDegradedModeEntryAndRecovery(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	s, ts := newWALServer(t, Config{})
	defer s.Close()

	// Healthy baseline.
	if resp, out := postJSON(t, ts.URL+"/v1/events", `{"object":"a","action":"add"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy write = %d %+v", resp.StatusCode, out)
	}

	// The disk goes bad: every fsync fails until further notice.
	if err := failpoint.Enable("wal.sync", "error(enospc)"); err != nil {
		t.Fatal(err)
	}
	// The write that hits the failing fsync reports the append failure (the
	// event reached memory but not the log).
	if resp, _ := postJSON(t, ts.URL+"/v1/events", `{"object":"b","action":"add"}`); resp.StatusCode == http.StatusOK {
		t.Fatalf("write over failing fsync reported success")
	}

	// Every subsequent write is refused up front: 503, code degraded,
	// Retry-After, nothing applied.
	resp, out := postJSON(t, ts.URL+"/v1/events", `{"object":"c","action":"add"}`)
	if resp.StatusCode != http.StatusServiceUnavailable || out["code"] != "degraded" {
		t.Fatalf("degraded write = %d %+v, want 503 code=degraded", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded rejection missing Retry-After")
	}

	// Satellite: admin flush and checkpoint report the degradation, not a
	// misleading wal_append/checkpoint error.
	for _, path := range []string{"/v1/admin/flush", "/v1/admin/checkpoint"} {
		resp, out := postJSON(t, ts.URL+path, "")
		if resp.StatusCode != http.StatusServiceUnavailable || out["code"] != "degraded" {
			t.Fatalf("%s while degraded = %d %+v, want 503 code=degraded", path, resp.StatusCode, out)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s while degraded missing Retry-After", path)
		}
	}

	// Reads keep serving from the intact in-memory profile.
	var summary map[string]any
	if resp := getJSON(t, ts, "/v1/stats/summary", &summary); resp.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded = %d", resp.StatusCode)
	}

	// /healthz and the gauge report the impairment.
	var health map[string]any
	getJSON(t, ts, "/healthz", &health)
	if health["status"] != "degraded" || health["degraded"] != true {
		t.Fatalf("healthz while degraded = %+v", health)
	}
	if health["wal_error"] == nil {
		t.Fatalf("healthz while degraded missing wal_error: %+v", health)
	}
	if !strings.Contains(scrape(t, ts), "sprofile_degraded 1") {
		t.Fatalf("metrics do not report sprofile_degraded 1 while degraded")
	}

	// The disk recovers; the probe must roll the log and restore write
	// service well within the advertised 5s bound.
	failpoint.DisableAll()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out := postJSON(t, ts.URL+"/v1/events", `{"object":"d","action":"add"}`)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes still refused 5s after the fault cleared: %d %+v", resp.StatusCode, out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	getJSON(t, ts, "/healthz", &health)
	if health["status"] != "ok" || health["degraded"] != false {
		t.Fatalf("healthz after recovery = %+v", health)
	}
	if !strings.Contains(scrape(t, ts), "sprofile_degraded 0") {
		t.Fatalf("metrics do not report sprofile_degraded 0 after recovery")
	}
}

// TestShedGate fills the admission gate with a request that is parked on a
// held-open bulk body and asserts the next request is shed — while /healthz
// stays exempt.
func TestShedGate(t *testing.T) {
	s, err := New(Config{Capacity: 16, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/events/bulk", "application/x-ndjson", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait for the parked request to occupy the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("parked request never occupied the in-flight slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/stats/summary")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || out["code"] != "shed" {
		t.Fatalf("request at capacity = %d %+v, want 503 code=shed", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed rejection missing Retry-After")
	}

	// Liveness and scraping bypass the gate.
	for _, path := range []string{"/healthz", "/metrics"} {
		r2, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("%s while at capacity = %d, want 200", path, r2.StatusCode)
		}
	}

	// Release the parked request; the slot frees and service resumes.
	pw.Close()
	<-done
	r3, err := http.Get(ts.URL + "/v1/stats/summary")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("request after release = %d, want 200", r3.StatusCode)
	}
}

// TestPanicRecovery mounts a panicking route behind the full middleware chain
// and asserts the client sees a clean 500 instead of a torn connection.
func TestPanicRecovery(t *testing.T) {
	s, err := New(Config{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	before := mPanics.Value()
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || out["code"] != "internal" {
		t.Fatalf("panicking route = %d %+v, want 500 code=internal", resp.StatusCode, out)
	}
	if got := mPanics.Value(); got != before+1 {
		t.Fatalf("sprofile_http_panics_total = %v, want %v", got, before+1)
	}

	// The server survives: the next request is served normally.
	r2, err := http.Get(ts.URL + "/v1/stats/summary")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("request after panic = %d, want 200", r2.StatusCode)
	}
}

// TestWithDeadline pins the deadline wrapper's wire shape: a lapsed route
// answers 503 with code "deadline".
func TestWithDeadline(t *testing.T) {
	s, err := New(Config{Capacity: 16, RequestTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	slow := s.withDeadline(s.requestTimeout, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	rec := httptest.NewRecorder()
	slow.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/slow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("lapsed route status = %d, want 503", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("lapsed route body %q: %v", rec.Body.String(), err)
	}
	if out["code"] != "deadline" {
		t.Fatalf("lapsed route code = %v, want deadline", out["code"])
	}

	// Negative RequestTimeout disables deadlines: the same slow handler,
	// wrapped through a disabled server, runs to completion.
	s2, err := New(Config{Capacity: 16, RequestTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	unbounded := s2.withDeadline(10*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	rec2 := httptest.NewRecorder()
	unbounded.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/slow", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("disabled deadline still timed out: %d", rec2.Code)
	}
}

// TestFailpointAdminEndpoint exercises the debug-gated runtime injection
// surface, and that the route does not exist without the gate.
func TestFailpointAdminEndpoint(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	s, ts := newWALServer(t, Config{DebugFailpoints: true})
	defer s.Close()

	// Arm a site over the wire.
	resp, out := postJSON(t, ts.URL+"/v1/admin/failpoint", `{"site":"wal.sync","spec":"error(eio):count=1"}`)
	if resp.StatusCode != http.StatusOK || out["armed"] != true {
		t.Fatalf("arming failpoint = %d %+v", resp.StatusCode, out)
	}

	// The armed site is listed.
	var sites []map[string]any
	getJSON(t, ts, "/v1/admin/failpoint", &sites)
	if len(sites) != 1 || sites[0]["site"] != "wal.sync" {
		t.Fatalf("failpoint list = %+v", sites)
	}

	// It fires: the next write's fsync fails once, degrading the node; the
	// probe then recovers it without operator action.
	if resp, _ := postJSON(t, ts.URL+"/v1/events", `{"object":"a","action":"add"}`); resp.StatusCode == http.StatusOK {
		t.Fatalf("write over armed failpoint succeeded")
	}

	// A malformed spec is a 400, not a 500.
	if resp, _ := postJSON(t, ts.URL+"/v1/admin/failpoint", `{"site":"x","spec":"nonsense(spec"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", resp.StatusCode)
	}

	// DELETE disarms everything.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/failpoint", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE failpoints = %d", dresp.StatusCode)
	}
	if got := failpoint.List(); len(got) != 0 {
		t.Fatalf("failpoints after DELETE: %+v", got)
	}

	// Without the gate the route does not exist.
	s2, ts2 := newWALServer(t, Config{})
	defer s2.Close()
	r2, err := http.Get(ts2.URL + "/v1/admin/failpoint")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("failpoint route without DebugFailpoints = %d, want 404", r2.StatusCode)
	}
}

// TestShutdownDrainOrder proves Shutdown settles the data plane: the async
// mailboxes are flushed, a final checkpoint is taken, and a restart replays
// (nearly) nothing while reproducing every acknowledged event.
func TestShutdownDrainOrder(t *testing.T) {
	dir := t.TempDir() + "/wal"
	s, ts := newWALServer(t, Config{WALPath: dir, AsyncIngest: true})
	for i := 0; i < 3; i++ {
		if resp, out := postJSON(t, ts.URL+"/v1/events", `{"object":"k","action":"add"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("write = %d %+v", resp.StatusCode, out)
		}
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2, err := New(Config{Capacity: 64, WALPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if replayed := s2.Replayed(); replayed != 0 {
		t.Fatalf("replayed %d records after a drained shutdown, want 0 (final checkpoint covers the log)", replayed)
	}
	f, err := s2.prof().Count("k")
	if err != nil || f != 3 {
		t.Fatalf("Count(k) after restart = %d, %v; want 3", f, err)
	}
}
