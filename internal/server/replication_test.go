package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sprofile"
)

// waitForCaughtUp polls the follower's watermark until it reports caught-up
// at the given leader position (or the deadline passes).
func waitForCaughtUp(t *testing.T, fs *Server, leaderSeg uint64, leaderOff int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := fs.Follower().Status()
		if st.CaughtUp && st.Segment == leaderSeg && st.Offset == leaderOff {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to %d:%d: %+v", leaderSeg, leaderOff, fs.Follower().Status())
}

// leaderPosition reads the leader's append position from its /healthz.
func leaderPosition(t *testing.T, ts *httptest.Server) (uint64, int64) {
	t.Helper()
	var h healthResponse
	getJSON(t, ts, "/healthz", &h)
	if h.WAL == nil {
		t.Fatalf("leader /healthz has no wal section: %+v", h)
	}
	return h.WAL.Segment, h.WAL.Offset
}

// TestServerReplicationFailover is the end-to-end story the replication
// subsystem exists for: a follower bootstraps from a live leader, converges,
// answers composite queries with a correct staleness watermark, refuses
// writes with a leader hint, survives the leader's death, and — after
// promotion — serves every write the dead leader ever acknowledged, plus new
// ones.
func TestServerReplicationFailover(t *testing.T) {
	leaderDir := t.TempDir() + "/leader-wal"
	followerDir := t.TempDir() + "/follower-wal"

	leader, err := New(Config{Capacity: 256, WALPath: leaderDir})
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(leader)

	// Acked writes before the checkpoint...
	want := map[string]int64{}
	ingest := func(ts *httptest.Server, keys ...string) {
		t.Helper()
		var sb strings.Builder
		sb.WriteString("[")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, `{"object":%q,"action":"add"}`, k)
			want[k]++
		}
		sb.WriteString("]")
		resp, out := postEvents(t, ts, sb.String())
		if resp.StatusCode != http.StatusOK || out.Applied != len(keys) {
			t.Fatalf("ingest = %d %+v", resp.StatusCode, out)
		}
	}
	ingest(lts, "alpha", "beta", "alpha", "gamma")

	// ...a snapshot for the follower to bootstrap from...
	resp, err := http.Post(lts.URL+"/v1/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint = %d", resp.StatusCode)
	}

	// ...and more acked writes in the tail after it.
	ingest(lts, "delta", "alpha", "delta")

	follower, err := New(Config{
		Capacity:   256,
		WALPath:    followerDir,
		Follow:     lts.URL,
		FollowPoll: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(follower)
	defer fts.Close()
	defer follower.Close()

	seg, off := leaderPosition(t, lts)
	waitForCaughtUp(t, follower, seg, off)

	// A composite query on the follower answers from the replica and carries
	// the follower's watermark.
	qresp, err := http.Post(fts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"count":["alpha","beta","gamma","delta"],"mode":true,"summary":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var qres sprofile.KeyedQueryResult[string]
	if err := json.NewDecoder(qresp.Body).Decode(&qres); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("follower query = %d", qresp.StatusCode)
	}
	for _, c := range qres.Counts {
		if c.Frequency != want[c.Key] {
			t.Fatalf("follower count(%s) = %d, want %d", c.Key, c.Frequency, want[c.Key])
		}
	}
	if qres.Mode == nil || qres.Mode.Key != "alpha" || qres.Mode.Frequency != 3 {
		t.Fatalf("follower mode = %+v", qres.Mode)
	}
	if qres.Replication == nil {
		t.Fatalf("follower query result has no replication watermark")
	}
	if qres.Replication.Role != "follower" || !qres.Replication.CaughtUp {
		t.Fatalf("follower watermark = %+v", qres.Replication)
	}
	if qres.Replication.Segment != seg || qres.Replication.Offset != off {
		t.Fatalf("follower watermark position = %d:%d, want %d:%d",
			qres.Replication.Segment, qres.Replication.Offset, seg, off)
	}
	if qres.Replication.Leader != lts.URL {
		t.Fatalf("follower watermark leader = %q, want %q", qres.Replication.Leader, lts.URL)
	}

	// The leader's own answers carry a leader watermark.
	var lq sprofile.KeyedQueryResult[string]
	lresp, err := http.Post(lts.URL+"/v1/query", "application/json", strings.NewReader(`{"mode":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(lresp.Body).Decode(&lq); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lq.Replication == nil || lq.Replication.Role != "leader" || lq.Replication.StalenessMs != 0 {
		t.Fatalf("leader watermark = %+v", lq.Replication)
	}

	// Writes to the follower are refused with the leader's address.
	wresp, wout := postEvents(t, fts, `[{"object":"nope","action":"add"}]`)
	if wresp.StatusCode != http.StatusServiceUnavailable || wout.Code != "read_only" {
		t.Fatalf("follower write = %d %+v", wresp.StatusCode, wout)
	}
	if wresp.Header.Get("Retry-After") == "" || wresp.Header.Get("X-Sprofile-Leader") != lts.URL {
		t.Fatalf("follower write rejection headers = %v", wresp.Header)
	}

	// A caught-up follower satisfies a generous staleness demand.
	req, _ := http.NewRequest(http.MethodGet, fts.URL+"/v1/stats/mode", nil)
	req.Header.Set(HeaderMaxStaleness, "60000")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("fresh follower with 60s budget = %d", sresp.StatusCode)
	}

	// Health reflects the roles.
	var fh healthResponse
	getJSON(t, fts, "/healthz", &fh)
	if fh.Role != "follower" || fh.Replication == nil || !fh.Replication.CaughtUp {
		t.Fatalf("follower /healthz = %+v", fh)
	}
	var lh healthResponse
	getJSON(t, lts, "/healthz", &lh)
	if lh.Role != "leader" || lh.WAL == nil || lh.WAL.Fsyncs == 0 || lh.WAL.SnapshotSeq != 1 {
		t.Fatalf("leader /healthz = %+v (wal %+v)", lh, lh.WAL)
	}

	// Kill the leader. Every write above was acked (200 after fsync), and the
	// follower proved it held them all (caught-up at the leader's position).
	lts.Close()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	// With the leader gone the staleness watermark grows without bound; a
	// zero-tolerance read must now be refused.
	time.Sleep(10 * time.Millisecond)
	req, _ = http.NewRequest(http.MethodGet, fts.URL+"/v1/stats/mode", nil)
	req.Header.Set(HeaderMaxStaleness, "0")
	sresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var serr errorResponse
	json.NewDecoder(sresp.Body).Decode(&serr)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusServiceUnavailable || serr.Code != "stale_read" {
		t.Fatalf("zero-tolerance read on orphaned follower = %d %+v", sresp.StatusCode, serr)
	}

	// Promote. The response and the health document flip to leader.
	presp, err := http.Post(fts.URL+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pout promoteResponse
	if err := json.NewDecoder(presp.Body).Decode(&pout); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || !pout.Promoted || pout.Role != "leader" {
		t.Fatalf("promote = %d %+v", presp.StatusCode, pout)
	}
	getJSON(t, fts, "/healthz", &fh)
	if fh.Role != "leader" || fh.WAL == nil {
		t.Fatalf("promoted /healthz = %+v", fh)
	}

	// Zero acked writes lost: every count the dead leader acknowledged is
	// still answered, now by the promoted leader.
	for k, v := range want {
		var c entryResponse
		getJSON(t, fts, "/v1/stats/count?object="+k, &c)
		if c.Frequency != v {
			t.Fatalf("after promote count(%s) = %d, want %d", k, c.Frequency, v)
		}
	}

	// The promoted node accepts writes (appending to the very log it
	// mirrored) and satisfies any staleness bound.
	ingest(fts, "epsilon", "alpha")
	var c entryResponse
	getJSON(t, fts, "/v1/stats/count?object=alpha", &c)
	if c.Frequency != want["alpha"] {
		t.Fatalf("after promote+write count(alpha) = %d, want %d", c.Frequency, want["alpha"])
	}
	req, _ = http.NewRequest(http.MethodGet, fts.URL+"/v1/stats/mode", nil)
	req.Header.Set(HeaderMaxStaleness, "0")
	sresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("zero-tolerance read on promoted leader = %d", sresp.StatusCode)
	}

	// A promoted leader survives a restart over the same directory as an
	// ordinary durable server — the mirror was a real log all along.
	fts.Close()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	reborn, err := New(Config{Capacity: 256, WALPath: followerDir})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	rts := httptest.NewServer(reborn)
	defer rts.Close()
	for k, v := range want {
		var c entryResponse
		getJSON(t, rts, "/v1/stats/count?object="+k, &c)
		if c.Frequency != v {
			t.Fatalf("after restart count(%s) = %d, want %d", k, c.Frequency, v)
		}
	}
}

// TestFollowerModeRequiresWAL pins the config contract.
func TestFollowerModeRequiresWAL(t *testing.T) {
	if _, err := New(Config{Capacity: 16, Follow: "http://localhost:1"}); err == nil {
		t.Fatal("follower mode without a WAL path was accepted")
	}
}

// TestReplicationFeedAbsentWithoutWAL pins that a memory-only server refuses
// to serve replication instead of panicking.
func TestReplicationFeedAbsentWithoutWAL(t *testing.T) {
	ts := newTestServer(t, 16)
	resp, err := http.Get(ts.URL + "/v1/replication/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("replication on memory-only server = %d", resp.StatusCode)
	}
}
