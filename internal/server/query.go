package server

import (
	"encoding/json"
	"net/http"
	"time"

	"sprofile"
)

// queryLimit bounds the per-request list arguments of a composite query so a
// single POST cannot ask for an unbounded amount of work; it reuses the
// server's batch bound.
func (s *Server) queryLimit() int { return s.maxBatch }

// handleQuery answers POST /v1/query: ONE composite, atomic multi-statistic
// query per request. The body is a sprofile.KeyedQuery in JSON — any subset
// of count/mode/min/top_k/bottom_k/kth_largest/median/quantiles/majority/
// distribution/summary — and the response is the matching
// sprofile.KeyedQueryResult, every statistic answered from one quiesced cut
// of the profile (see KeyedConcurrent.QueryKeys). A dashboard that used to
// issue N GETs — and could observe N different profiles under concurrent
// ingest — issues one POST and gets one consistent answer.
//
// Errors follow the taxonomy mapping of errorCode: a malformed selection is
// 400 invalid_query, an unanswerable statistic on an empty profile is 422
// empty_profile.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var q sprofile.KeyedQuery[string]
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "invalid query document: %v", err)
		return
	}
	if limit := s.queryLimit(); len(q.Count) > limit || len(q.Quantiles) > limit || len(q.KthLargest) > limit {
		writeError(w, http.StatusBadRequest, "query lists are bounded to %d entries each", limit)
		return
	}
	start := time.Now()
	res, err := s.keyed().QueryKeys(q)
	if err != nil {
		writeProfileError(w, err)
		return
	}
	observeQuery(q, start)
	// On replicated deployments the answer carries the staleness watermark of
	// the node that produced it, so the caller can judge it against a
	// freshness budget after the fact (or demand one upfront via the
	// X-Sprofile-Max-Staleness-Ms header).
	res.Replication = s.replicationStatus()
	writeJSON(w, http.StatusOK, res)
}
