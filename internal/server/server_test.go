package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, capacity int) *httptest.Server {
	t.Helper()
	s, err := New(Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func postEvents(t *testing.T, ts *httptest.Server, body string) (*http.Response, eventsResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out eventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Fatalf("New accepted zero capacity")
	}
	if _, err := New(Config{Capacity: -5}); err == nil {
		t.Fatalf("New accepted negative capacity")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, 10)
	var out map[string]any
	resp := getJSON(t, ts, "/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, out)
	}
	if _, ok := out["uptime_seconds"].(float64); !ok {
		t.Fatalf("healthz missing uptime_seconds: %+v", out)
	}
	if v, ok := out["version"].(string); !ok || v == "" {
		t.Fatalf("healthz missing version: %+v", out)
	}
}

func TestIngestAndStats(t *testing.T) {
	ts := newTestServer(t, 100)
	events := `[
		{"object":"video-1","action":"add"},
		{"object":"video-1","action":"add"},
		{"object":"video-1","action":"add"},
		{"object":"video-2","action":"add"},
		{"object":"video-2","action":"add"},
		{"object":"video-3","action":"add"},
		{"object":"video-3","action":"remove"}
	]`
	resp, out := postEvents(t, ts, events)
	if resp.StatusCode != http.StatusOK || out.Applied != 7 {
		t.Fatalf("events: %d, %+v", resp.StatusCode, out)
	}

	var mode entryResponse
	resp = getJSON(t, ts, "/v1/stats/mode", &mode)
	if resp.StatusCode != http.StatusOK || mode.Object != "video-1" || mode.Frequency != 3 {
		t.Fatalf("mode = %d %+v", resp.StatusCode, mode)
	}

	var top []entryResponse
	resp = getJSON(t, ts, "/v1/stats/top?k=2", &top)
	if resp.StatusCode != http.StatusOK || len(top) != 2 {
		t.Fatalf("top = %d %+v", resp.StatusCode, top)
	}
	if top[0].Object != "video-1" || top[0].Frequency != 3 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Object != "video-2" || top[1].Frequency != 2 {
		t.Fatalf("top[1] = %+v", top[1])
	}

	var count entryResponse
	resp = getJSON(t, ts, "/v1/stats/count?object=video-2", &count)
	if resp.StatusCode != http.StatusOK || count.Frequency != 2 {
		t.Fatalf("count = %d %+v", resp.StatusCode, count)
	}
	resp = getJSON(t, ts, "/v1/stats/count?object=never-seen", &count)
	if resp.StatusCode != http.StatusOK || count.Frequency != 0 {
		t.Fatalf("count of unknown object = %d %+v", resp.StatusCode, count)
	}

	var median entryResponse
	resp = getJSON(t, ts, "/v1/stats/median", &median)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("median = %d", resp.StatusCode)
	}

	var quantile entryResponse
	resp = getJSON(t, ts, "/v1/stats/quantile?q=1", &quantile)
	if resp.StatusCode != http.StatusOK || quantile.Frequency != 3 {
		t.Fatalf("quantile(1) = %d %+v", resp.StatusCode, quantile)
	}

	var dist []map[string]any
	resp = getJSON(t, ts, "/v1/stats/distribution", &dist)
	if resp.StatusCode != http.StatusOK || len(dist) == 0 {
		t.Fatalf("distribution = %d %+v", resp.StatusCode, dist)
	}

	var summary map[string]any
	resp = getJSON(t, ts, "/v1/stats/summary", &summary)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary = %d", resp.StatusCode)
	}
	if summary["tracked"].(float64) != 3 {
		t.Fatalf("summary tracked = %v, want 3", summary["tracked"])
	}
	if summary["total"].(float64) != 5 {
		t.Fatalf("summary total = %v, want 5", summary["total"])
	}
}

func TestIngestValidation(t *testing.T) {
	ts := newTestServer(t, 10)

	resp, _ := postEvents(t, ts, `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid JSON accepted: %d", resp.StatusCode)
	}

	resp, out := postEvents(t, ts, `[{"object":"","action":"add"}]`)
	if resp.StatusCode != http.StatusBadRequest || out.Applied != 0 {
		t.Fatalf("empty object accepted: %d %+v", resp.StatusCode, out)
	}

	resp, out = postEvents(t, ts, `[{"object":"a","action":"maybe"}]`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad action accepted: %d %+v", resp.StatusCode, out)
	}

	// Removing an object that was never added resolves to ErrUnknownKey:
	// 404 with the unknown_key taxonomy code.
	resp, out = postEvents(t, ts, `[{"object":"ghost","action":"remove"}]`)
	if resp.StatusCode != http.StatusNotFound || out.Code != "unknown_key" {
		t.Fatalf("remove of unknown object: %d %+v", resp.StatusCode, out)
	}

	// Partial batches report how many events were applied before the error.
	resp, out = postEvents(t, ts, `[
		{"object":"a","action":"add"},
		{"object":"b","action":"add"},
		{"object":"c","action":"nope"}
	]`)
	if resp.StatusCode != http.StatusBadRequest || out.Applied != 2 {
		t.Fatalf("partial batch: %d %+v", resp.StatusCode, out)
	}
}

func TestSingleEventForm(t *testing.T) {
	ts := newTestServer(t, 10)
	// The package doc promises "one event or a batch": the single-object
	// form must be accepted, not bounced with a misleading array error.
	resp, out := postEvents(t, ts, `{"object":"solo","action":"add"}`)
	if resp.StatusCode != http.StatusOK || out.Applied != 1 {
		t.Fatalf("single event = %d %+v", resp.StatusCode, out)
	}
	resp, out = postEvents(t, ts, `[{"object":"solo","action":"add"}]`)
	if resp.StatusCode != http.StatusOK || out.Applied != 1 {
		t.Fatalf("array event = %d %+v", resp.StatusCode, out)
	}
	var count entryResponse
	getJSON(t, ts, "/v1/stats/count?object=solo", &count)
	if count.Frequency != 2 {
		t.Fatalf("count after both forms = %+v", count)
	}
	// A single malformed object is still rejected.
	resp, _ = postEvents(t, ts, `{"object":"solo","action":"add","extra":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
	resp, _ = postEvents(t, ts, `{"object":"solo"`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated object accepted: %d", resp.StatusCode)
	}
}

func TestMinBottomMajority(t *testing.T) {
	ts := newTestServer(t, 4)
	resp, out := postEvents(t, ts, `[
		{"object":"a","action":"add"},
		{"object":"a","action":"add"},
		{"object":"a","action":"add"},
		{"object":"b","action":"add"}
	]`)
	if resp.StatusCode != http.StatusOK || out.Applied != 4 {
		t.Fatalf("ingest = %d %+v", resp.StatusCode, out)
	}

	// Two of four slots are untracked, so the minimum frequency is zero with
	// two ties.
	var min entryResponse
	if resp := getJSON(t, ts, "/v1/stats/min", &min); resp.StatusCode != http.StatusOK {
		t.Fatalf("min = %d", resp.StatusCode)
	}
	if min.Frequency != 0 || min.Ties != 2 {
		t.Fatalf("min = %+v, want frequency 0 with 2 ties", min)
	}

	var bottom []entryResponse
	if resp := getJSON(t, ts, "/v1/stats/bottom?k=3", &bottom); resp.StatusCode != http.StatusOK {
		t.Fatalf("bottom = %d", resp.StatusCode)
	}
	if len(bottom) != 3 || bottom[0].Frequency != 0 || bottom[2].Frequency != 1 {
		t.Fatalf("bottom = %+v", bottom)
	}
	if resp, err := http.Get(ts.URL + "/v1/stats/bottom?k=0"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bottom with k=0 = %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// a holds 3 of 4 counts: a strict majority.
	var maj majorityResponse
	if resp := getJSON(t, ts, "/v1/stats/majority", &maj); resp.StatusCode != http.StatusOK {
		t.Fatalf("majority = %d", resp.StatusCode)
	}
	if !maj.Majority || maj.Object != "a" || maj.Frequency != 3 {
		t.Fatalf("majority = %+v", maj)
	}

	// Level the counts: no strict majority any more.
	postEvents(t, ts, `[{"object":"b","action":"add"},{"object":"b","action":"add"}]`)
	if resp := getJSON(t, ts, "/v1/stats/majority", &maj); resp.StatusCode != http.StatusOK {
		t.Fatalf("majority after levelling = %d", resp.StatusCode)
	}
	if maj.Majority {
		t.Fatalf("majority after levelling = %+v, want none", maj)
	}
}

// TestParallelIngestAndQuery hammers the mutex-free hot path from many
// goroutines — writers on disjoint keys, readers across every stats route —
// and then verifies no update was lost. With -race this doubles as the
// server-layer concurrency conformance test.
func TestParallelIngestAndQuery(t *testing.T) {
	ts := newTestServer(t, 1000)
	const writers = 8
	const readers = 4
	const perWriter = 60
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				body := fmt.Sprintf(`{"object":"w%d-%d","action":"add"}`, w, i%10)
				resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("writer %d: status %d", w, resp.StatusCode)
					return
				}
			}
			errCh <- nil
		}(w)
	}
	routes := []string{
		"/v1/stats/mode", "/v1/stats/min", "/v1/stats/top?k=5", "/v1/stats/bottom?k=5",
		"/v1/stats/median", "/v1/stats/quantile?q=0.9", "/v1/stats/majority",
		"/v1/stats/distribution", "/v1/stats/summary", "/v1/export",
	}
	for rdr := 0; rdr < readers; rdr++ {
		go func(rdr int) {
			for i := 0; i < 40; i++ {
				resp, err := http.Get(ts.URL + routes[(rdr+i)%len(routes)])
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("reader: %s -> %d", routes[(rdr+i)%len(routes)], resp.StatusCode)
					return
				}
			}
			errCh <- nil
		}(rdr)
	}
	for i := 0; i < writers+readers; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	var summary map[string]any
	getJSON(t, ts, "/v1/stats/summary", &summary)
	if got := summary["adds"].(float64); got != writers*perWriter {
		t.Fatalf("adds = %v, want %d", got, writers*perWriter)
	}
	if got := summary["total"].(float64); got != writers*perWriter {
		t.Fatalf("total = %v, want %d", got, writers*perWriter)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	ts := newTestServer(t, 2)
	postEvents(t, ts, `[{"object":"a","action":"add"},{"object":"b","action":"add"}]`)
	resp, out := postEvents(t, ts, `[{"object":"c","action":"add"}]`)
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-capacity add: %d %+v", resp.StatusCode, out)
	}
}

func TestBatchLimit(t *testing.T) {
	s, err := New(Config{Capacity: 10, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := `[
		{"object":"a","action":"add"},
		{"object":"b","action":"add"},
		{"object":"c","action":"add"}
	]`
	resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch accepted: %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, 10)
	paths := []string{
		"/v1/stats/mode", "/v1/stats/top", "/v1/stats/min", "/v1/stats/bottom",
		"/v1/stats/majority", "/v1/stats/count", "/v1/stats/median",
		"/v1/stats/quantile", "/v1/stats/distribution", "/v1/stats/summary", "/healthz",
	}
	for _, path := range paths {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/events = %d, want 405", resp.StatusCode)
	}
}

func TestQueryParamValidation(t *testing.T) {
	ts := newTestServer(t, 10)
	postEvents(t, ts, `[{"object":"a","action":"add"}]`)
	for _, path := range []string{
		"/v1/stats/top?k=0",
		"/v1/stats/top?k=-1",
		"/v1/stats/top?k=abc",
		"/v1/stats/count",
		"/v1/stats/quantile?q=2",
		"/v1/stats/quantile?q=abc",
		"/v1/stats/quantile",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t, 1000)
	const clients = 8
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(id int) {
			for i := 0; i < 50; i++ {
				body := fmt.Sprintf(`[{"object":"user-%d-%d","action":"add"}]`, id, i%20)
				resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if i%10 == 0 {
					r, err := http.Get(ts.URL + "/v1/stats/mode")
					if err != nil {
						errCh <- err
						return
					}
					r.Body.Close()
				}
			}
			errCh <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	var summary map[string]any
	getJSON(t, ts, "/v1/stats/summary", &summary)
	if got := summary["adds"].(float64); got != clients*50 {
		t.Fatalf("adds = %v, want %d", got, clients*50)
	}
}
