package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func postBulk(t *testing.T, ts *httptest.Server, body string) (*http.Response, eventsResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/events/bulk", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out eventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, out
}

func TestBulkIngestsNDJSON(t *testing.T) {
	ts := newTestServer(t, 100)
	body := strings.Join([]string{
		`{"object":"alice","action":"add"}`,
		``, // blank lines are skipped
		`{"object":"bob","action":"add"}`,
		`{"object":"alice","action":"add"}`,
		`{"object":"alice","action":"add"}`,
		`{"object":"bob","action":"remove"}`,
	}, "\n")
	resp, out := postBulk(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out.Error)
	}
	if out.Applied != 5 {
		t.Fatalf("applied %d events, want 5", out.Applied)
	}
	var entry entryResponse
	getJSON(t, ts, "/v1/stats/count?object=alice", &entry)
	if entry.Frequency != 3 {
		t.Fatalf("alice at %d, want 3", entry.Frequency)
	}
	getJSON(t, ts, "/v1/stats/count?object=bob", &entry)
	if entry.Frequency != 0 {
		t.Fatalf("bob at %d, want 0", entry.Frequency)
	}
}

func TestBulkChunksLargeStreams(t *testing.T) {
	// MaxBatch 8 forces several ApplyBatch chunks inside one request.
	s, err := New(Config{Capacity: 100, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var sb strings.Builder
	const n = 100
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `{"object":"hot","action":"add"}`+"\n")
	}
	resp, out := postBulk(t, ts, sb.String())
	if resp.StatusCode != http.StatusOK || out.Applied != n {
		t.Fatalf("status %d applied %d (%s), want %d", resp.StatusCode, out.Applied, out.Error, n)
	}
	var entry entryResponse
	getJSON(t, ts, "/v1/stats/count?object=hot", &entry)
	if entry.Frequency != n {
		t.Fatalf("hot at %d, want %d", entry.Frequency, n)
	}
}

func TestBulkRejectsBadLines(t *testing.T) {
	ts := newTestServer(t, 100)
	for _, tc := range []struct {
		name, body, wantErr string
		wantApplied         int
	}{
		// The valid first line sits in the same (never-flushed) chunk as the
		// bad line, so it is not applied: decode errors reject the pending
		// chunk whole.
		{"bad json", `{"object":"a","action":"add"}` + "\n" + `{nope}`, "line 2", 0},
		{"unknown field", `{"object":"a","wat":1}`, "line 1", 0},
		{"empty object", `{"object":"","action":"add"}`, "empty object", 0},
		{"bad action", `{"object":"a","action":"sideways"}`, "unknown action", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := postBulk(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if !strings.Contains(out.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", out.Error, tc.wantErr)
			}
			if out.Applied != tc.wantApplied {
				t.Fatalf("applied %d, want %d", out.Applied, tc.wantApplied)
			}
		})
	}
	// An object key the WAL could not journal is refused up front with its
	// line number, instead of poisoning a configured log.
	huge := strings.Repeat("k", (1<<20)+1)
	resp2, out2 := postBulk(t, ts, `{"object":"`+huge+`","action":"add"}`)
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(out2.Error, "exceeds") {
		t.Fatalf("oversized key: status %d error %q", resp2.StatusCode, out2.Error)
	}
	// The same bound applies to the per-event endpoint.
	resp3, out3 := postEvents(t, ts, `{"object":"`+huge+`","action":"add"}`)
	if resp3.StatusCode != http.StatusBadRequest || !strings.Contains(out3.Error, "exceeds") {
		t.Fatalf("oversized key per-event: status %d error %q", resp3.StatusCode, out3.Error)
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/events/bulk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestBulkRemoveUnknownKey(t *testing.T) {
	ts := newTestServer(t, 100)
	resp, out := postBulk(t, ts, `{"object":"ghost","action":"remove"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%s)", resp.StatusCode, out.Error)
	}
}

// TestBulkDurable round-trips a bulk ingest through a WAL restart.
func TestBulkDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := New(Config{Capacity: 100, WALPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	body := strings.Join([]string{
		`{"object":"alice","action":"add"}`,
		`{"object":"alice","action":"add"}`,
		`{"object":"bob","action":"add"}`,
	}, "\n")
	resp, out := postBulk(t, ts, body)
	if resp.StatusCode != http.StatusOK || out.Applied != 3 {
		t.Fatalf("status %d applied %d (%s)", resp.StatusCode, out.Applied, out.Error)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Capacity: 100, WALPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	var entry entryResponse
	getJSON(t, ts2, "/v1/stats/count?object=alice", &entry)
	if entry.Frequency != 2 {
		t.Fatalf("alice recovered at %d, want 2", entry.Frequency)
	}
}
