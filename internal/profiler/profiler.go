// Package profiler defines the interface shared by the S-Profile core and
// the baseline implementations it is evaluated against (indexed heap,
// order-statistic balanced trees, bucket scan, Fenwick index). Benchmarks,
// property tests and the experiment harness talk to this interface so every
// implementation answers exactly the same queries on exactly the same
// streams.
//
// This is deliberately the evaluation subset: baselines only answer what
// their data structure supports (ErrUnsupported otherwise). The supported
// public contract — the full query surface plus batch ingestion — is the
// root package's sprofile.Updater/Reader/Profiler, which every shipped
// variant satisfies and the profilertest suite enforces.
package profiler

import (
	"errors"

	"sprofile/internal/core"
)

// ErrUnsupported is returned by implementations that cannot answer a given
// query (for example a max-heap cannot report the minimum or the median).
var ErrUnsupported = errors.New("profiler: query not supported by this implementation")

// Profiler is the query surface used by the evaluation. All object ids are
// dense integers in [0, Cap()).
type Profiler interface {
	// Add applies an "add" event (frequency +1) for object x.
	Add(x int) error
	// Remove applies a "remove" event (frequency -1) for object x.
	Remove(x int) error
	// Count returns the current frequency of object x.
	Count(x int) (int64, error)
	// Mode returns an object with maximum frequency, that frequency, and
	// how many objects share it.
	Mode() (core.Entry, int, error)
	// Min returns an object with minimum frequency, that frequency, and how
	// many objects share it.
	Min() (core.Entry, int, error)
	// KthLargest returns the object holding the k-th largest frequency
	// (1-based).
	KthLargest(k int) (core.Entry, error)
	// Median returns the lower-median entry of the frequency multiset.
	Median() (core.Entry, error)
	// Cap returns the number of object slots m.
	Cap() int
	// Total returns the sum of all frequencies.
	Total() int64
}

// Apply feeds one tuple to any Profiler.
func Apply(p Profiler, t core.Tuple) error {
	switch t.Action {
	case core.ActionAdd:
		return p.Add(t.Object)
	case core.ActionRemove:
		return p.Remove(t.Object)
	default:
		return errors.New("profiler: invalid action")
	}
}

// Compile-time check that the core implementation satisfies the interface.
var _ Profiler = (*core.Profile)(nil)
