// Package profiler_test cross-checks every profiler implementation in the
// repository against the bucket-scan oracle on the paper's three evaluation
// streams and on adversarial workloads. This is the integration test that
// ties the core data structure and all baselines together: they must agree
// on every supported query after every prefix of the same log stream.
package profiler_test

import (
	"errors"
	"testing"
	"testing/quick"

	"sprofile/internal/baseline/bstprof"
	"sprofile/internal/baseline/bucketprof"
	"sprofile/internal/baseline/fenwickprof"
	"sprofile/internal/baseline/heapprof"
	"sprofile/internal/core"
	"sprofile/internal/profiler"
	"sprofile/internal/stream"
)

// implementations returns one instance of every Profiler implementation with
// m object slots, keyed by a label used in failure messages.
func implementations(m int) map[string]profiler.Profiler {
	return map[string]profiler.Profiler{
		"s-profile":      core.MustNew(m),
		"heap-max":       heapprof.MustNew(m, heapprof.MaxHeap),
		"heap-min":       heapprof.MustNew(m, heapprof.MinHeap),
		"tree-treap":     bstprof.MustNew(m, bstprof.Treap),
		"tree-red-black": bstprof.MustNew(m, bstprof.RedBlack),
		"skip-list":      bstprof.MustNew(m, bstprof.SkipList),
		"fenwick":        fenwickprof.MustNew(m),
	}
}

// checkAgainstOracle compares every supported query of p against the oracle.
// Unsupported queries (profiler.ErrUnsupported) are skipped; any other error
// or mismatch fails the test.
func checkAgainstOracle(t *testing.T, label string, p profiler.Profiler, oracle *bucketprof.Profiler, step int) {
	t.Helper()
	m := oracle.Cap()

	if got, want := p.Total(), oracle.Total(); got != want {
		t.Fatalf("%s step %d: Total %d, oracle %d", label, step, got, want)
	}
	for _, x := range []int{0, m / 2, m - 1} {
		got, err := p.Count(x)
		if err != nil {
			t.Fatalf("%s step %d: Count(%d): %v", label, step, x, err)
		}
		want, _ := oracle.Count(x)
		if got != want {
			t.Fatalf("%s step %d: Count(%d) = %d, oracle %d", label, step, x, got, want)
		}
	}

	if mode, _, err := p.Mode(); err == nil {
		want, _, _ := oracle.Mode()
		if mode.Frequency != want.Frequency {
			t.Fatalf("%s step %d: Mode frequency %d, oracle %d", label, step, mode.Frequency, want.Frequency)
		}
		// The reported representative must actually hold the reported frequency.
		if f, _ := oracle.Count(mode.Object); f != mode.Frequency {
			t.Fatalf("%s step %d: Mode representative %d has frequency %d, reported %d",
				label, step, mode.Object, f, mode.Frequency)
		}
	} else if !errors.Is(err, profiler.ErrUnsupported) {
		t.Fatalf("%s step %d: Mode: %v", label, step, err)
	}

	if min, _, err := p.Min(); err == nil {
		want, _, _ := oracle.Min()
		if min.Frequency != want.Frequency {
			t.Fatalf("%s step %d: Min frequency %d, oracle %d", label, step, min.Frequency, want.Frequency)
		}
		if f, _ := oracle.Count(min.Object); f != min.Frequency {
			t.Fatalf("%s step %d: Min representative %d has frequency %d, reported %d",
				label, step, min.Object, f, min.Frequency)
		}
	} else if !errors.Is(err, profiler.ErrUnsupported) {
		t.Fatalf("%s step %d: Min: %v", label, step, err)
	}

	if med, err := p.Median(); err == nil {
		want, _ := oracle.Median()
		if med.Frequency != want.Frequency {
			t.Fatalf("%s step %d: Median frequency %d, oracle %d", label, step, med.Frequency, want.Frequency)
		}
	} else if !errors.Is(err, profiler.ErrUnsupported) {
		t.Fatalf("%s step %d: Median: %v", label, step, err)
	}

	for _, k := range []int{1, m / 4, m/2 + 1, m} {
		if k < 1 || k > m {
			continue
		}
		got, err := p.KthLargest(k)
		if errors.Is(err, profiler.ErrUnsupported) {
			break
		}
		if err != nil {
			t.Fatalf("%s step %d: KthLargest(%d): %v", label, step, k, err)
		}
		want, _ := oracle.KthLargest(k)
		if got.Frequency != want.Frequency {
			t.Fatalf("%s step %d: KthLargest(%d) frequency %d, oracle %d",
				label, step, k, got.Frequency, want.Frequency)
		}
	}
}

func TestAllImplementationsAgreeOnPaperStreams(t *testing.T) {
	const m = 48
	const n = 2500
	for streamIdx := 1; streamIdx <= 3; streamIdx++ {
		impls := implementations(m)
		oracle := bucketprof.MustNew(m)
		g, err := stream.PaperStream(streamIdx, m, uint64(streamIdx)*101)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			op := g.Next()
			if err := profiler.Apply(oracle, op); err != nil {
				t.Fatal(err)
			}
			for label, p := range impls {
				if err := profiler.Apply(p, op); err != nil {
					t.Fatalf("%s stream%d step %d: %v", label, streamIdx, i, err)
				}
			}
			if i%83 == 0 || i == n-1 {
				for label, p := range impls {
					checkAgainstOracle(t, label, p, oracle, i)
				}
			}
		}
	}
}

func TestAllImplementationsAgreeOnAdversarialWorkloads(t *testing.T) {
	const m = 32
	const n = 2000
	for _, name := range []string{"zipf", "burst", "sawtooth", "drain", "roundrobin"} {
		w, err := stream.NamedWorkload(name, m, 5)
		if err != nil {
			t.Fatal(err)
		}
		impls := implementations(m)
		oracle := bucketprof.MustNew(m)
		for i := 0; i < n; i++ {
			op := w.Next()
			if err := profiler.Apply(oracle, op); err != nil {
				t.Fatal(err)
			}
			for label, p := range impls {
				if err := profiler.Apply(p, op); err != nil {
					t.Fatalf("%s %s step %d: %v", label, name, i, err)
				}
			}
			if i%59 == 0 || i == n-1 {
				for label, p := range impls {
					checkAgainstOracle(t, label, p, oracle, i)
				}
			}
		}
	}
}

func TestApplyRejectsInvalidAction(t *testing.T) {
	p := core.MustNew(4)
	if err := profiler.Apply(p, core.Tuple{Object: 1, Action: 0}); err == nil {
		t.Fatalf("Apply accepted an invalid action")
	}
}

func TestPropertyRandomOpSequencesAgree(t *testing.T) {
	f := func(seed uint64, rawM uint8, rawN uint16) bool {
		m := int(rawM)%30 + 2
		n := int(rawN) % 400
		rng := stream.NewRNG(seed)
		impls := implementations(m)
		oracle := bucketprof.MustNew(m)
		for i := 0; i < n; i++ {
			x := rng.Intn(m)
			action := core.ActionAdd
			if rng.Bernoulli(0.45) {
				action = core.ActionRemove
			}
			op := core.Tuple{Object: x, Action: action}
			if profiler.Apply(oracle, op) != nil {
				return false
			}
			for _, p := range impls {
				if profiler.Apply(p, op) != nil {
					return false
				}
			}
		}
		wantMode, _, _ := oracle.Mode()
		wantMed, _ := oracle.Median()
		for label, p := range impls {
			if mode, _, err := p.Mode(); err == nil {
				if mode.Frequency != wantMode.Frequency {
					return false
				}
			} else if !errors.Is(err, profiler.ErrUnsupported) {
				return false
			}
			if med, err := p.Median(); err == nil {
				if med.Frequency != wantMed.Frequency {
					return false
				}
			} else if !errors.Is(err, profiler.ErrUnsupported) {
				return false
			}
			_ = label
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
