// Package idmap maps arbitrary object identifiers (user names, URLs, sparse
// 64-bit ids, ...) onto the dense integer ids in [0, m) that the S-Profile
// core requires.
//
// The paper assumes "for any m distinct objects, we can map them into the
// integers from 1 to m as ids"; this package is that mapping. It supports
// recycling: when an object is known to be dead (for example its frequency
// returned to zero and it left the sliding window) its dense id can be
// released and reused by a later object, so the profile capacity m bounds the
// number of *concurrently tracked* objects rather than the total number of
// distinct objects ever seen.
//
// Two implementations: Mapper is the single-goroutine original; Striped is
// its concurrent counterpart, hash-striped so acquires and releases on
// different stripes never share a lock.
package idmap

import (
	"errors"
	"fmt"

	"sprofile/internal/core"
)

// ErrFull is returned by Acquire when every dense id is in use. It resolves
// to the taxonomy root core.ErrCapExceeded via errors.Is.
var ErrFull = core.Tagged(core.ErrCapExceeded, "idmap: all dense ids are in use")

// ErrUnknownKey is returned by Release and DenseID when the key has no
// mapping.
var ErrUnknownKey = errors.New("idmap: key has no dense id")

// Mapper assigns dense ids in [0, cap) to keys of type K. The zero value is
// not usable; call New. A Mapper is not safe for concurrent use.
type Mapper[K comparable] struct {
	capacity int
	toDense  map[K]int
	toKey    []K
	inUse    []bool
	freeIDs  []int
	nextID   int
}

// New returns a Mapper that can hold up to capacity concurrent keys.
func New[K comparable](capacity int) (*Mapper[K], error) {
	if capacity < 0 {
		return nil, fmt.Errorf("idmap: negative capacity %d", capacity)
	}
	return &Mapper[K]{
		capacity: capacity,
		toDense:  make(map[K]int),
		toKey:    make([]K, capacity),
		inUse:    make([]bool, capacity),
	}, nil
}

// MustNew is New for callers with a known-good capacity; it panics on error.
func MustNew[K comparable](capacity int) *Mapper[K] {
	m, err := New[K](capacity)
	if err != nil {
		panic(err)
	}
	return m
}

// Cap returns the maximum number of concurrently mapped keys.
func (m *Mapper[K]) Cap() int { return m.capacity }

// Len returns the number of keys currently mapped.
func (m *Mapper[K]) Len() int { return len(m.toDense) }

// Acquire returns the dense id for key, assigning a new one if the key is not
// yet mapped. isNew reports whether the id was freshly assigned. When every
// id is taken, Acquire returns ErrFull.
func (m *Mapper[K]) Acquire(key K) (id int, isNew bool, err error) {
	if id, ok := m.toDense[key]; ok {
		return id, false, nil
	}
	switch {
	case len(m.freeIDs) > 0:
		id = m.freeIDs[len(m.freeIDs)-1]
		m.freeIDs = m.freeIDs[:len(m.freeIDs)-1]
	case m.nextID < m.capacity:
		id = m.nextID
		m.nextID++
	default:
		return 0, false, fmt.Errorf("%w: capacity %d", ErrFull, m.capacity)
	}
	m.toDense[key] = id
	m.toKey[id] = key
	m.inUse[id] = true
	return id, true, nil
}

// DenseID returns the dense id of key without assigning one.
func (m *Mapper[K]) DenseID(key K) (int, error) {
	id, ok := m.toDense[key]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownKey, key)
	}
	return id, nil
}

// Contains reports whether key currently has a dense id.
func (m *Mapper[K]) Contains(key K) bool {
	_, ok := m.toDense[key]
	return ok
}

// Key returns the key mapped to the dense id.
func (m *Mapper[K]) Key(id int) (K, bool) {
	var zero K
	if id < 0 || id >= m.capacity || !m.inUse[id] {
		return zero, false
	}
	return m.toKey[id], true
}

// Release frees the dense id held by key so it can be reused. Callers must
// ensure the corresponding profile frequency is back to its neutral value
// before releasing, otherwise the recycled id inherits the old frequency.
func (m *Mapper[K]) Release(key K) (int, error) {
	id, ok := m.toDense[key]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownKey, key)
	}
	delete(m.toDense, key)
	var zero K
	m.toKey[id] = zero
	m.inUse[id] = false
	m.freeIDs = append(m.freeIDs, id)
	return id, nil
}

// Keys returns every currently mapped key; the order is unspecified.
func (m *Mapper[K]) Keys() []K {
	out := make([]K, 0, len(m.toDense))
	for k := range m.toDense {
		out = append(out, k)
	}
	return out
}

// Range calls fn for every (key, dense id) pair until fn returns false.
func (m *Mapper[K]) Range(fn func(key K, id int) bool) {
	for k, id := range m.toDense {
		if !fn(k, id) {
			return
		}
	}
}
