package idmap

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestStripedBasics(t *testing.T) {
	s := MustNewStriped[string](8, 4)
	if s.Cap() != 8 || s.Len() != 0 || s.NumStripes() != 4 {
		t.Fatalf("fresh mapper: cap=%d len=%d stripes=%d", s.Cap(), s.Len(), s.NumStripes())
	}

	ids := map[int]string{}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		id, isNew, err := s.Acquire(key)
		if err != nil || !isNew {
			t.Fatalf("Acquire(%q) = (%d, %v, %v)", key, id, isNew, err)
		}
		if id < 0 || id >= 8 {
			t.Fatalf("Acquire(%q) returned out-of-range id %d", key, id)
		}
		if prev, dup := ids[id]; dup {
			t.Fatalf("id %d assigned to both %q and %q", id, prev, key)
		}
		ids[id] = key
	}
	if s.Len() != 8 {
		t.Fatalf("Len after 8 acquires = %d", s.Len())
	}

	// Re-acquiring returns the existing id.
	id, isNew, err := s.Acquire("key-3")
	if err != nil || isNew {
		t.Fatalf("re-Acquire = (%d, %v, %v)", id, isNew, err)
	}
	if got, _ := s.DenseID("key-3"); got != id {
		t.Fatalf("DenseID = %d, want %d", got, id)
	}
	if key, ok := s.Key(id); !ok || key != "key-3" {
		t.Fatalf("Key(%d) = (%q, %v)", id, key, ok)
	}

	// Full: the ninth distinct key must fail even though keys hash unevenly,
	// because allocation borrows across stripes before giving up.
	if _, _, err := s.Acquire("overflow"); !errors.Is(err, ErrFull) {
		t.Fatalf("Acquire at capacity = %v, want ErrFull", err)
	}

	// Release recycles the id for the next acquire.
	released, err := s.Release("key-5")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Key(released); ok {
		t.Fatalf("Key(%d) still resolves after release", released)
	}
	if _, _, err := s.Acquire("replacement"); err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	if s.Len() != 8 {
		t.Fatalf("Len after release+reacquire = %d", s.Len())
	}

	if _, err := s.Release("never-mapped"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("Release of unknown key = %v, want ErrUnknownKey", err)
	}
	if _, err := s.DenseID("never-mapped"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("DenseID of unknown key = %v, want ErrUnknownKey", err)
	}
	if s.Contains("never-mapped") || !s.Contains("key-3") {
		t.Fatalf("Contains answers wrong")
	}
}

func TestStripedGeometryMatchesSharding(t *testing.T) {
	// Stripe ranges must tile [0, cap) exactly like a sharded profile's
	// shards: ceil(cap/stripes)-sized contiguous blocks.
	for _, tc := range []struct{ capacity, stripes int }{
		{8, 4}, {10, 3}, {1, 4}, {7, 7}, {100, 16},
	} {
		s := MustNewStriped[int](tc.capacity, tc.stripes)
		clamped := tc.stripes
		if clamped > tc.capacity {
			clamped = tc.capacity
		}
		stripeSize := (tc.capacity + clamped - 1) / clamped
		want := (tc.capacity + stripeSize - 1) / stripeSize
		if s.NumStripes() != want {
			t.Fatalf("cap=%d stripes=%d: NumStripes=%d, want %d", tc.capacity, tc.stripes, s.NumStripes(), want)
		}
		covered := 0
		for i := 0; i < s.NumStripes(); i++ {
			base, size := s.StripeRange(i)
			if base != i*stripeSize {
				t.Fatalf("cap=%d stripes=%d: stripe %d base=%d, want %d", tc.capacity, tc.stripes, i, base, i*stripeSize)
			}
			covered += size
		}
		if covered != tc.capacity {
			t.Fatalf("cap=%d stripes=%d: ranges cover %d ids", tc.capacity, tc.stripes, covered)
		}
	}
}

func TestStripedHomeStripeAllocation(t *testing.T) {
	// With plenty of headroom, a key's id must come from its own stripe's
	// range — the property shard-aligned keyed profiles rely on.
	s := MustNewStriped[int](64, 4)
	for key := 0; key < 16; key++ {
		id, _, err := s.Acquire(key)
		if err != nil {
			t.Fatal(err)
		}
		base, size := s.StripeRange(s.StripeOf(key))
		if id < base || id >= base+size {
			t.Fatalf("key %d (stripe %d) got id %d outside [%d, %d)", key, s.StripeOf(key), id, base, base+size)
		}
	}
}

func TestStripedAcquireFuncRollback(t *testing.T) {
	s := MustNewStriped[string](4, 2)
	boom := errors.New("boom")
	_, _, err := s.AcquireFunc("k", nil, func(id int, isNew bool) error {
		if !isNew {
			t.Fatalf("expected fresh assignment")
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("AcquireFunc = %v, want boom", err)
	}
	if s.Contains("k") || s.Len() != 0 {
		t.Fatalf("failed acquire left the mapping behind")
	}
	// The rolled-back id must be reusable.
	for i := 0; i < 4; i++ {
		if _, _, err := s.Acquire(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStripedEvictCallback(t *testing.T) {
	s := MustNewStriped[string](2, 1)
	idA, _, _ := s.Acquire("a")
	s.MustAcquire(t, "b")
	// Evict "a" to make room for "c"; the victim's id must transfer.
	id, isNew, err := s.AcquireFunc("c", func(stripe int) (string, bool) { return "a", true }, nil)
	if err != nil || !isNew {
		t.Fatalf("AcquireFunc with evict = (%d, %v, %v)", id, isNew, err)
	}
	if id != idA {
		t.Fatalf("evicting acquire got id %d, want the victim's id %d", id, idA)
	}
	if s.Contains("a") {
		t.Fatalf("victim still mapped after eviction")
	}
	if key, ok := s.Key(id); !ok || key != "c" {
		t.Fatalf("Key(%d) = (%q, %v) after eviction", id, key, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after eviction = %d, want 2", s.Len())
	}

	// An evict callback that declines leaves ErrFull in place.
	if _, _, err := s.AcquireFunc("d", func(stripe int) (string, bool) { return "", false }, nil); !errors.Is(err, ErrFull) {
		t.Fatalf("declined eviction = %v, want ErrFull", err)
	}
}

// MustAcquire is a test helper; it fails t on error.
func (s *Striped[K]) MustAcquire(t *testing.T, key K) int {
	t.Helper()
	id, _, err := s.Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStripedZeroCapacity(t *testing.T) {
	s := MustNewStriped[string](0, 8)
	if _, _, err := s.Acquire("x"); !errors.Is(err, ErrFull) {
		t.Fatalf("Acquire on zero-capacity mapper = %v, want ErrFull", err)
	}
	if _, ok := s.Key(0); ok {
		t.Fatalf("Key(0) resolved on zero-capacity mapper")
	}
}

func TestStripedKeysAndRange(t *testing.T) {
	s := MustNewStriped[int](16, 4)
	want := map[int]bool{}
	for i := 0; i < 10; i++ {
		s.MustAcquire(t, i)
		want[i] = true
	}
	keys := s.Keys()
	if len(keys) != 10 {
		t.Fatalf("Keys returned %d entries", len(keys))
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("Keys returned unexpected key %d", k)
		}
	}
	seen := 0
	s.Range(func(key, id int) bool {
		if got, _ := s.DenseIDUnlockedForTest(key); got != id {
			t.Fatalf("Range pair (%d, %d) disagrees with DenseID %d", key, id, got)
		}
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("Range visited %d pairs after early stop, want 5", seen)
	}
}

// DenseIDUnlockedForTest reads the mapping without taking the stripe lock;
// Range holds it already, so the normal DenseID would self-deadlock.
func (s *Striped[K]) DenseIDUnlockedForTest(key K) (int, bool) {
	id, ok := s.stripes[s.StripeOf(key)].toDense[key]
	return id, ok
}

func TestStripedConcurrentChurn(t *testing.T) {
	const capacity = 64
	const workers = 8
	const iters = 2000
	s := MustNewStriped[int](capacity, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := w*1000 + i%32
				id, _, err := s.Acquire(key)
				if err != nil {
					if errors.Is(err, ErrFull) {
						continue
					}
					t.Error(err)
					return
				}
				if got, err := s.DenseID(key); err != nil || got != id {
					t.Errorf("DenseID(%d) = (%d, %v), want %d", key, got, err, id)
					return
				}
				s.Key(id)
				if _, err := s.Release(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("Len after churn = %d, want 0", s.Len())
	}
	// Every id must be free again.
	for i := 0; i < capacity; i++ {
		if _, _, err := s.Acquire(100_000 + i); err != nil {
			t.Fatalf("Acquire after churn: %v", err)
		}
	}
}

// TestQuiesceSeesConsistentMapping: RangeLocked inside Quiesce must visit
// every mapped pair exactly once, while concurrent writers are held off (the
// race detector guards the exclusion claim).
func TestQuiesceSeesConsistentMapping(t *testing.T) {
	s := MustNewStriped[int](128, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := w*32 + i%32
				if _, _, err := s.Acquire(key); err != nil {
					t.Errorf("Acquire(%d): %v", key, err)
					return
				}
				if i%3 == 0 {
					s.Release(key)
				}
			}
		}(w)
	}
	for round := 0; round < 50; round++ {
		s.Quiesce(func() {
			seen := make(map[int]bool)
			ids := make(map[int]bool)
			s.RangeLocked(func(key, id int) bool {
				if seen[key] {
					t.Errorf("key %d visited twice", key)
				}
				if ids[id] {
					t.Errorf("id %d bound to two keys", id)
				}
				seen[key] = true
				ids[id] = true
				return true
			})
			if len(seen) != s.Len() {
				t.Errorf("RangeLocked saw %d pairs, Len reports %d", len(seen), s.Len())
			}
		})
	}
	close(stop)
	wg.Wait()
}
