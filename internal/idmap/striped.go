package idmap

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Striped is a concurrent Mapper: the key space is partitioned across
// hash-selected stripes, each guarded by its own mutex, so Acquire, DenseID,
// Release and Key from different stripes proceed in parallel instead of
// serialising on one lock.
//
// Each stripe owns a contiguous dense-id range with its own free list, sized
// exactly like the shard ranges of a sharded profile with the same count
// (ceil(cap/stripes) ids per stripe). A key acquired through stripe i is
// therefore normally assigned an id from stripe i's range — pairing a Striped
// mapper with an equally-sized sharded profile makes one keyed update touch
// one stripe lock plus one shard lock. Only when a stripe's range is
// exhausted does Acquire borrow an id from another stripe's free range, so
// the full capacity is always usable regardless of how keys hash.
//
// The *Func variants run a caller callback while the key's stripe lock is
// held. They exist so a caller layering extra per-key state on top of the
// mapping (a keyed profile pairing ids with frequencies, say) can mutate the
// mapping and its own state as one atomic step; the callback must not call
// back into the same Striped or it will self-deadlock.
type Striped[K comparable] struct {
	seed       maphash.Seed
	capacity   int
	stripeSize int
	stripes    []mapStripe[K]
	allocs     []allocStripe
	// toKey and inUse are indexed by dense id; entry i is guarded by the
	// alloc-stripe lock owning id i's range.
	toKey  []K
	inUse  []bool
	length atomic.Int64
}

// mapStripe holds the key→id entries of the keys hashing to one stripe.
type mapStripe[K comparable] struct {
	mu      sync.Mutex
	toDense map[K]int
}

// allocStripe hands out the dense ids of one contiguous range.
type allocStripe struct {
	mu      sync.Mutex
	base    int
	size    int
	freeIDs []int
	nextID  int // next never-used id, relative offset from base
}

// NewStriped returns a concurrent mapper over capacity dense ids split across
// up to stripes lock stripes. The stripe count is clamped to [1, capacity]
// (one stripe minimum, never more stripes than ids), mirroring how a sharded
// profile clamps its shard count, so equal requested counts yield identical
// id-range geometry.
func NewStriped[K comparable](capacity, stripes int) (*Striped[K], error) {
	if capacity < 0 {
		return nil, fmt.Errorf("idmap: negative capacity %d", capacity)
	}
	if stripes <= 0 {
		return nil, fmt.Errorf("idmap: stripe count must be positive, got %d", stripes)
	}
	if stripes > capacity {
		stripes = capacity
	}
	if stripes == 0 {
		stripes = 1
	}
	stripeSize := (capacity + stripes - 1) / stripes
	if stripeSize == 0 {
		stripeSize = 1
	}
	// A ceil-sized final range can make the last requested stripe empty (for
	// example capacity 100 over 16 stripes of 7); a sharded profile materialises
	// only the non-empty shards, so mirror that to keep the geometries equal.
	if stripes = (capacity + stripeSize - 1) / stripeSize; stripes == 0 {
		stripes = 1
	}
	s := &Striped[K]{
		seed:       maphash.MakeSeed(),
		capacity:   capacity,
		stripeSize: stripeSize,
		stripes:    make([]mapStripe[K], stripes),
		allocs:     make([]allocStripe, stripes),
		toKey:      make([]K, capacity),
		inUse:      make([]bool, capacity),
	}
	for i := range s.stripes {
		s.stripes[i].toDense = make(map[K]int)
		base := i * stripeSize
		size := stripeSize
		if base+size > capacity {
			size = capacity - base
		}
		s.allocs[i] = allocStripe{base: base, size: size}
	}
	return s, nil
}

// MustNewStriped is NewStriped for callers with known-good arguments; it
// panics on error.
func MustNewStriped[K comparable](capacity, stripes int) *Striped[K] {
	s, err := NewStriped[K](capacity, stripes)
	if err != nil {
		panic(err)
	}
	return s
}

// Cap returns the maximum number of concurrently mapped keys.
func (s *Striped[K]) Cap() int { return s.capacity }

// Len returns the number of keys currently mapped.
func (s *Striped[K]) Len() int { return int(s.length.Load()) }

// NumStripes returns the number of lock stripes.
func (s *Striped[K]) NumStripes() int { return len(s.stripes) }

// Hash returns the 64-bit hash of key under this mapper's per-process seed.
// StripeOf is Hash modulo the stripe count, so a caller that already holds
// the hash (a batch coalescer deduplicating keys, say) can derive the stripe
// without hashing twice.
func (s *Striped[K]) Hash(key K) uint64 {
	return maphash.Comparable(s.seed, key)
}

// StripeOf returns the stripe index key hashes to. All operations on key
// synchronise on this stripe's lock.
func (s *Striped[K]) StripeOf(key K) int {
	if len(s.stripes) == 1 {
		return 0
	}
	return int(maphash.Comparable(s.seed, key) % uint64(len(s.stripes)))
}

// StripeRange returns the dense-id range [base, base+size) stripe i prefers
// to allocate from — the range to align with shard i of an equally-sharded
// profile.
func (s *Striped[K]) StripeRange(i int) (base, size int) {
	a := &s.allocs[i]
	return a.base, a.size
}

// allocate hands out a free id, preferring the home stripe's range and
// falling back to the other stripes' ranges in ring order.
func (s *Striped[K]) allocate(home int, key K) (int, bool) {
	n := len(s.allocs)
	for off := 0; off < n; off++ {
		a := &s.allocs[(home+off)%n]
		a.mu.Lock()
		var id int
		switch {
		case len(a.freeIDs) > 0:
			id = a.freeIDs[len(a.freeIDs)-1]
			a.freeIDs = a.freeIDs[:len(a.freeIDs)-1]
		case a.nextID < a.size:
			id = a.base + a.nextID
			a.nextID++
		default:
			a.mu.Unlock()
			continue
		}
		s.toKey[id] = key
		s.inUse[id] = true
		a.mu.Unlock()
		return id, true
	}
	return 0, false
}

// allocOf returns the alloc stripe owning id's range.
func (s *Striped[K]) allocOf(id int) *allocStripe {
	return &s.allocs[id/s.stripeSize]
}

// free returns id to its owning range's free list.
func (s *Striped[K]) free(id int) {
	a := s.allocOf(id)
	a.mu.Lock()
	var zero K
	s.toKey[id] = zero
	s.inUse[id] = false
	a.freeIDs = append(a.freeIDs, id)
	a.mu.Unlock()
}

// reassign hands victim's id straight to key without a free-list round trip,
// so no other goroutine can claim it in between.
func (s *Striped[K]) reassign(id int, key K) {
	a := s.allocOf(id)
	a.mu.Lock()
	s.toKey[id] = key
	a.mu.Unlock()
}

// Acquire returns the dense id for key, assigning a new one if the key is
// not yet mapped. isNew reports whether the id was freshly assigned. When
// every id across all stripes is taken, Acquire returns ErrFull.
func (s *Striped[K]) Acquire(key K) (id int, isNew bool, err error) {
	return s.AcquireFunc(key, nil, nil)
}

// AcquireFunc is Acquire with two extension points that run while the key's
// stripe lock is held:
//
//   - evict, consulted only when every dense id is in use, may name a victim
//     key in the same stripe (callers typically track idle keys per stripe);
//     the victim's mapping is removed and its id handed to key atomically.
//   - fn runs after the id is resolved, still under the stripe lock. If fn
//     returns an error on a freshly assigned id, the assignment is rolled
//     back before the error is returned; on an existing id the mapping is
//     left untouched.
//
// Either callback may be nil.
//
// The body intentionally duplicates StripeTxn.Acquire/Rollback inline: this
// is the per-event hot path, and routing it through BatchFunc's closure
// costs a measurable ~7% per Add. Any change to the acquire/evict/rollback
// protocol must be mirrored there.
func (s *Striped[K]) AcquireFunc(key K, evict func(stripe int) (K, bool), fn func(id int, isNew bool) error) (int, bool, error) {
	si := s.StripeOf(key)
	ms := &s.stripes[si]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if id, ok := ms.toDense[key]; ok {
		if fn != nil {
			if err := fn(id, false); err != nil {
				return 0, false, err
			}
		}
		return id, false, nil
	}
	id, ok := s.allocate(si, key)
	if !ok && evict != nil {
		if victim, vok := evict(si); vok {
			if vid, mapped := ms.toDense[victim]; mapped {
				delete(ms.toDense, victim)
				s.length.Add(-1)
				s.reassign(vid, key)
				id, ok = vid, true
			}
		}
	}
	if !ok {
		return 0, false, fmt.Errorf("%w: capacity %d", ErrFull, s.capacity)
	}
	ms.toDense[key] = id
	s.length.Add(1)
	if fn != nil {
		if err := fn(id, true); err != nil {
			delete(ms.toDense, key)
			s.free(id)
			s.length.Add(-1)
			return 0, false, err
		}
	}
	return id, true, nil
}

// StripeTxn is the view of one locked stripe handed to a BatchFunc callback.
// Every method assumes the stripe's lock is held by the enclosing BatchFunc
// and must only be used on keys hashing to that stripe (StripeOf).
type StripeTxn[K comparable] struct {
	s  *Striped[K]
	si int
}

// BatchFunc locks stripe si once, runs fn with a transaction view of it, and
// unlocks. It is the batched counterpart of AcquireFunc/DenseIDFunc: a batch
// of keys grouped by stripe resolves them all — lookups, acquisitions,
// evictions, rollbacks and any caller state guarded by the stripe — under a
// single lock acquisition, amortising the striping overhead the per-key
// paths pay once per event. fn must not call back into the Striped except
// through the transaction, or it will self-deadlock.
func (s *Striped[K]) BatchFunc(si int, fn func(t StripeTxn[K]) error) error {
	ms := &s.stripes[si]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return fn(StripeTxn[K]{s: s, si: si})
}

// Get returns the dense id of key without assigning one.
func (t StripeTxn[K]) Get(key K) (int, bool) {
	id, ok := t.s.stripes[t.si].toDense[key]
	return id, ok
}

// Acquire returns the dense id for key, assigning a new one if the key is
// not yet mapped, with the same eviction fallback AcquireFunc offers. isNew
// reports a fresh assignment; use Rollback to undo it if the caller's own
// state update fails. The acquire/evict protocol here is mirrored inline in
// AcquireFunc (kept separate for hot-path speed); change both together.
func (t StripeTxn[K]) Acquire(key K, evict func(stripe int) (K, bool)) (id int, isNew bool, err error) {
	s, si := t.s, t.si
	ms := &s.stripes[si]
	if id, ok := ms.toDense[key]; ok {
		return id, false, nil
	}
	id, ok := s.allocate(si, key)
	if !ok && evict != nil {
		if victim, vok := evict(si); vok {
			if vid, mapped := ms.toDense[victim]; mapped {
				delete(ms.toDense, victim)
				s.length.Add(-1)
				s.reassign(vid, key)
				id, ok = vid, true
			}
		}
	}
	if !ok {
		return 0, false, fmt.Errorf("%w: capacity %d", ErrFull, s.capacity)
	}
	ms.toDense[key] = id
	s.length.Add(1)
	return id, true, nil
}

// Rollback undoes a fresh Acquire: the mapping is removed and the id freed.
// Only valid for the (key, id) pair of an Acquire that reported isNew within
// the same transaction.
func (t StripeTxn[K]) Rollback(key K, id int) {
	delete(t.s.stripes[t.si].toDense, key)
	t.s.free(id)
	t.s.length.Add(-1)
}

// DenseID returns the dense id of key without assigning one.
func (s *Striped[K]) DenseID(key K) (int, error) {
	return s.DenseIDFunc(key, nil)
}

// DenseIDFunc is DenseID with a callback that runs while the key's stripe
// lock is held, so the caller can read or mutate per-key state consistent
// with the mapping. fn's error is returned alongside the id.
func (s *Striped[K]) DenseIDFunc(key K, fn func(id int) error) (int, error) {
	si := s.StripeOf(key)
	ms := &s.stripes[si]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	id, ok := ms.toDense[key]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownKey, key)
	}
	if fn != nil {
		return id, fn(id)
	}
	return id, nil
}

// Contains reports whether key currently has a dense id.
func (s *Striped[K]) Contains(key K) bool {
	si := s.StripeOf(key)
	ms := &s.stripes[si]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	_, ok := ms.toDense[key]
	return ok
}

// Key returns the key mapped to the dense id. Under concurrent mutation the
// answer is a point-in-time snapshot: the id may be released or reassigned
// the moment the call returns.
func (s *Striped[K]) Key(id int) (K, bool) {
	var zero K
	if id < 0 || id >= s.capacity {
		return zero, false
	}
	a := s.allocOf(id)
	a.mu.Lock()
	defer a.mu.Unlock()
	if !s.inUse[id] {
		return zero, false
	}
	return s.toKey[id], true
}

// Release frees the dense id held by key so it can be reused. Callers must
// ensure any state keyed by the id (a profile frequency, say) is back to its
// neutral value first, otherwise the recycled id inherits it.
func (s *Striped[K]) Release(key K) (int, error) {
	si := s.StripeOf(key)
	ms := &s.stripes[si]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	id, ok := ms.toDense[key]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownKey, key)
	}
	delete(ms.toDense, key)
	s.length.Add(-1)
	s.free(id)
	return id, nil
}

// Keys returns every currently mapped key. Each stripe is read atomically
// but the stripes are visited one after another, so under concurrent
// mutation the result is a per-stripe-consistent sample, not a global
// snapshot.
func (s *Striped[K]) Keys() []K {
	out := make([]K, 0, s.Len())
	for i := range s.stripes {
		ms := &s.stripes[i]
		ms.mu.Lock()
		for k := range ms.toDense {
			out = append(out, k)
		}
		ms.mu.Unlock()
	}
	return out
}

// Reserve pre-sizes each stripe's key table for about n upcoming keys, so a
// bulk load (snapshot restore) does not pay repeated map growth. Stripes
// already holding keys are left alone.
func (s *Striped[K]) Reserve(n int) {
	per := n/len(s.stripes) + 1
	for i := range s.stripes {
		ms := &s.stripes[i]
		ms.mu.Lock()
		if len(ms.toDense) == 0 {
			ms.toDense = make(map[K]int, per)
		}
		ms.mu.Unlock()
	}
}

// Quiesce acquires every map-stripe lock (in index order), runs fn, and
// releases them. While fn runs, no Acquire, DenseID, Release, Contains,
// Keys, Range or *Func call can make progress, so fn observes — and can let
// a caller capture — a globally consistent mapping together with any
// per-stripe state layered on top of it. fn must not call back into the
// Striped except through RangeLocked, or it will self-deadlock.
//
// This is the write-exclusion barrier checkpointing uses: queries against
// other structures proceed, while every keyed update (all of which take a
// stripe lock first) waits for fn to finish.
func (s *Striped[K]) Quiesce(fn func()) {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	defer func() {
		for i := range s.stripes {
			s.stripes[i].mu.Unlock()
		}
	}()
	fn()
}

// LookupLocked is DenseID for callers already inside Quiesce: it resolves
// key without taking any map-stripe lock. Calling it anywhere else is a data
// race.
func (s *Striped[K]) LookupLocked(key K) (int, bool) {
	id, ok := s.stripes[s.StripeOf(key)].toDense[key]
	return id, ok
}

// RangeLocked is Range for callers already inside Quiesce: it visits every
// (key, dense id) pair without taking any locks. Calling it anywhere else is
// a data race.
func (s *Striped[K]) RangeLocked(fn func(key K, id int) bool) {
	for i := range s.stripes {
		for k, id := range s.stripes[i].toDense {
			if !fn(k, id) {
				return
			}
		}
	}
}

// Range calls fn for every (key, dense id) pair until fn returns false, with
// the same per-stripe consistency as Keys. fn runs with the current stripe's
// lock held and must not call back into the Striped.
func (s *Striped[K]) Range(fn func(key K, id int) bool) {
	for i := range s.stripes {
		ms := &s.stripes[i]
		ms.mu.Lock()
		for k, id := range ms.toDense {
			if !fn(k, id) {
				ms.mu.Unlock()
				return
			}
		}
		ms.mu.Unlock()
	}
}
