package idmap

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAcquireAssignsDistinctIDs(t *testing.T) {
	m := MustNew[string](3)
	ids := map[int]bool{}
	for _, key := range []string{"a", "b", "c"} {
		id, isNew, err := m.Acquire(key)
		if err != nil {
			t.Fatal(err)
		}
		if !isNew {
			t.Fatalf("Acquire(%q) not reported as new", key)
		}
		if id < 0 || id >= 3 || ids[id] {
			t.Fatalf("Acquire(%q) returned duplicate or out-of-range id %d", key, id)
		}
		ids[id] = true
	}
	if m.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", m.Len())
	}
}

func TestAcquireIsIdempotent(t *testing.T) {
	m := MustNew[string](2)
	id1, _, _ := m.Acquire("x")
	id2, isNew, err := m.Acquire("x")
	if err != nil {
		t.Fatal(err)
	}
	if isNew {
		t.Fatalf("second Acquire reported new")
	}
	if id1 != id2 {
		t.Fatalf("second Acquire returned %d, want %d", id2, id1)
	}
}

func TestAcquireFull(t *testing.T) {
	m := MustNew[int](2)
	m.Acquire(10)
	m.Acquire(20)
	if _, _, err := m.Acquire(30); !errors.Is(err, ErrFull) {
		t.Fatalf("Acquire on full mapper: %v", err)
	}
	// An existing key still resolves when the mapper is full.
	if _, _, err := m.Acquire(10); err != nil {
		t.Fatalf("Acquire of existing key on full mapper failed: %v", err)
	}
}

func TestReleaseRecyclesIDs(t *testing.T) {
	m := MustNew[string](2)
	idA, _, _ := m.Acquire("a")
	m.Acquire("b")
	released, err := m.Release("a")
	if err != nil {
		t.Fatal(err)
	}
	if released != idA {
		t.Fatalf("Release returned id %d, want %d", released, idA)
	}
	if m.Contains("a") {
		t.Fatalf("released key still contained")
	}
	idC, isNew, err := m.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	if !isNew || idC != idA {
		t.Fatalf("Acquire after release returned id %d (new=%v), want recycled %d", idC, isNew, idA)
	}
}

func TestReleaseUnknownKey(t *testing.T) {
	m := MustNew[string](2)
	if _, err := m.Release("ghost"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("Release of unknown key: %v", err)
	}
}

func TestDenseIDAndKey(t *testing.T) {
	m := MustNew[string](3)
	id, _, _ := m.Acquire("hello")
	got, err := m.DenseID("hello")
	if err != nil || got != id {
		t.Fatalf("DenseID = %d, %v; want %d", got, err, id)
	}
	if _, err := m.DenseID("absent"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("DenseID of absent key: %v", err)
	}
	key, ok := m.Key(id)
	if !ok || key != "hello" {
		t.Fatalf("Key(%d) = %q, %v", id, key, ok)
	}
	if _, ok := m.Key(99); ok {
		t.Fatalf("Key(99) reported ok")
	}
	if _, ok := m.Key(-1); ok {
		t.Fatalf("Key(-1) reported ok")
	}
	m.Release("hello")
	if _, ok := m.Key(id); ok {
		t.Fatalf("Key of released id reported ok")
	}
}

func TestKeysAndRange(t *testing.T) {
	m := MustNew[int](4)
	for _, k := range []int{100, 200, 300} {
		m.Acquire(k)
	}
	keys := m.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys() returned %d keys, want 3", len(keys))
	}
	visited := 0
	m.Range(func(key int, id int) bool {
		got, err := m.DenseID(key)
		if err != nil || got != id {
			t.Fatalf("Range pair (%d,%d) inconsistent with DenseID", key, id)
		}
		visited++
		return true
	})
	if visited != 3 {
		t.Fatalf("Range visited %d pairs, want 3", visited)
	}
	// Early termination.
	visited = 0
	m.Range(func(int, int) bool { visited++; return false })
	if visited != 1 {
		t.Fatalf("Range with early stop visited %d pairs, want 1", visited)
	}
}

func TestNewRejectsNegativeCapacity(t *testing.T) {
	if _, err := New[string](-1); err == nil {
		t.Fatalf("New(-1) succeeded")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew(-1) did not panic")
		}
	}()
	MustNew[string](-1)
}

func TestZeroCapacityMapper(t *testing.T) {
	m := MustNew[string](0)
	if _, _, err := m.Acquire("a"); !errors.Is(err, ErrFull) {
		t.Fatalf("Acquire on zero-capacity mapper: %v", err)
	}
	if m.Cap() != 0 || m.Len() != 0 {
		t.Fatalf("zero-capacity mapper reports Cap=%d Len=%d", m.Cap(), m.Len())
	}
}

func TestPropertyNeverExceedsCapacityAndStaysConsistent(t *testing.T) {
	f := func(ops []uint16, rawCap uint8) bool {
		capacity := int(rawCap)%16 + 1
		m := MustNew[uint16](capacity)
		live := map[uint16]int{}
		for _, op := range ops {
			key := op % 64
			if _, ok := live[key]; ok && op%3 == 0 {
				id, err := m.Release(key)
				if err != nil || id != live[key] {
					return false
				}
				delete(live, key)
				continue
			}
			id, _, err := m.Acquire(key)
			if errors.Is(err, ErrFull) {
				if len(live) != capacity {
					return false
				}
				continue
			}
			if err != nil {
				return false
			}
			if prev, ok := live[key]; ok && prev != id {
				return false
			}
			live[key] = id
		}
		if m.Len() != len(live) {
			return false
		}
		// All live ids must be distinct and within range, and round-trip.
		seen := map[int]bool{}
		for key, id := range live {
			if id < 0 || id >= capacity || seen[id] {
				return false
			}
			seen[id] = true
			k, ok := m.Key(id)
			if !ok || k != key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
