package idmap

import (
	"errors"
	"testing"
)

func TestBatchFuncResolvesUnderOneLock(t *testing.T) {
	s := MustNewStriped[string](8, 2)
	keys := []string{"a", "b", "c", "d"}
	// Group keys by stripe the way a batching caller would.
	groups := make(map[int][]string)
	for _, key := range keys {
		si := s.StripeOf(key)
		groups[si] = append(groups[si], key)
	}
	ids := map[string]int{}
	for si, group := range groups {
		err := s.BatchFunc(si, func(txn StripeTxn[string]) error {
			for _, key := range group {
				if _, ok := txn.Get(key); ok {
					t.Errorf("key %s mapped before acquisition", key)
				}
				id, isNew, err := txn.Acquire(key, nil)
				if err != nil || !isNew {
					return err
				}
				ids[key] = id
				// A second acquisition inside the same txn is a lookup.
				again, isNew2, err := txn.Acquire(key, nil)
				if err != nil || isNew2 || again != id {
					t.Errorf("re-acquire of %s: id %d->%d isNew=%v err=%v", key, id, again, isNew2, err)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(keys) {
		t.Fatalf("mapped %d keys, want %d", s.Len(), len(keys))
	}
	for _, key := range keys {
		id, err := s.DenseID(key)
		if err != nil || id != ids[key] {
			t.Fatalf("key %s resolves to %d (%v), txn assigned %d", key, id, err, ids[key])
		}
	}
}

func TestBatchFuncRollback(t *testing.T) {
	s := MustNewStriped[string](4, 1)
	err := s.BatchFunc(0, func(txn StripeTxn[string]) error {
		id, isNew, err := txn.Acquire("doomed", nil)
		if err != nil || !isNew {
			t.Fatalf("acquire: id=%d isNew=%v err=%v", id, isNew, err)
		}
		txn.Rollback("doomed", id)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("rollback left %d keys mapped", s.Len())
	}
	if s.Contains("doomed") {
		t.Fatal("rolled-back key still mapped")
	}
	// The freed id must be reusable.
	for i := 0; i < 4; i++ {
		if _, _, err := s.Acquire(string(rune('a' + i))); err != nil {
			t.Fatalf("acquire after rollback: %v", err)
		}
	}
}

func TestBatchFuncEviction(t *testing.T) {
	s := MustNewStriped[string](2, 1)
	for _, key := range []string{"idle", "busy"} {
		if _, _, err := s.Acquire(key); err != nil {
			t.Fatal(err)
		}
	}
	evict := func(stripe int) (string, bool) { return "idle", true }
	err := s.BatchFunc(0, func(txn StripeTxn[string]) error {
		id, isNew, err := txn.Acquire("fresh", evict)
		if err != nil || !isNew {
			t.Fatalf("evicting acquire: id=%d isNew=%v err=%v", id, isNew, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains("idle") {
		t.Fatal("victim still mapped")
	}
	if !s.Contains("fresh") || !s.Contains("busy") {
		t.Fatal("survivor set wrong")
	}
	// With no evictable key the stripe reports ErrFull.
	err = s.BatchFunc(0, func(txn StripeTxn[string]) error {
		_, _, err := txn.Acquire("overflow", nil)
		return err
	})
	if !errors.Is(err, ErrFull) {
		t.Fatalf("full stripe: %v", err)
	}
}
