package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sprofile/internal/checkpoint"
	"sprofile/internal/failpoint"
	"sprofile/internal/wal"
)

// ErrSnapshotRequired reports that the leader no longer has the bytes the
// follower needs (the segment was pruned, or the histories diverged): the
// mirror cannot be rolled forward and must be rebuilt from a fresh snapshot.
var ErrSnapshotRequired = errors.New("replication: leader cannot serve this position; bootstrap from a snapshot")

// Config configures a Follower.
type Config struct {
	// Leader is the leader's base URL (scheme://host[:port]).
	Leader string
	// Dir is the local mirror directory — a valid checkpointed log directory
	// at every instant.
	Dir string
	// Start is where mirroring resumes: the end of the last complete record
	// on local disk (checkpoint.Store.ReplayTailReadOnly reports it).
	Start wal.Position
	// Apply is called for every decoded record, in log order, from the
	// polling goroutine only.
	Apply func(wal.Record) error
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// ChunkBytes caps one fetch; 0 means DefaultChunkBytes.
	ChunkBytes int
	// LongPoll is the wait the follower asks of the leader when it is caught
	// up; 0 means no server-side wait (pure polling).
	LongPoll time.Duration
	// Pin is a lease id to present on WAL fetches (empty = none). The leader
	// advances the lease to the follower's position on every fetch and grants
	// a fresh one when none is presented, so a live follower always holds a
	// moving lease that keeps its unfetched bytes from being pruned; Close
	// releases it.
	Pin string
	// LocalSnapSeq is the sequence of the snapshot already in Dir (0 =
	// none); newer leader snapshots are mirrored to keep Dir bounded.
	LocalSnapSeq uint64
}

// Status is a point-in-time picture of the mirror.
type Status struct {
	Written     wal.Position // bytes durably mirrored (fetch position)
	Applied     wal.Position // last complete-record boundary applied
	Leader      wal.Position // leader's append position, as of LastContact
	CaughtUp    bool         // mirror covered the leader's position at FreshAsOf
	FreshAsOf   time.Time    // last instant the mirror provably held every acknowledged write
	LastContact time.Time    // last successful exchange with the leader
	Records     uint64       // records applied since this Follower started
}

// Follower incrementally mirrors a leader's WAL directory and applies each
// complete record through Config.Apply. One goroutine drives Poll/CatchUp;
// Status may be read from any goroutine.
type Follower struct {
	cfg     Config
	hc      *http.Client
	walURL  string
	snapURL string

	// The polling goroutine owns everything below; status copies are handed
	// out under mu.
	mu      chan struct{} // 1-slot semaphore (works as a mutex that Close can take too)
	file    *os.File
	dec     wal.StreamDecoder
	status  Status
	pin     string
	snapSeq uint64
}

// NewFollower opens the mirror at cfg.Start. If the local tail file holds
// torn bytes past Start they are truncated away, restoring the invariant
// that the file ends exactly at the fetch position.
func NewFollower(cfg Config) (*Follower, error) {
	if cfg.Apply == nil {
		return nil, errors.New("replication: Config.Apply is required")
	}
	base, err := url.Parse(cfg.Leader)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("replication: leader URL %q: %v", cfg.Leader, err)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		// The failpoint transport is a no-op (one atomic load) until the
		// "replication.fetch" site is armed; chaos rigs use it to inject
		// latency, drops, truncated bodies and 5xx bursts into the leader
		// link without touching the network stack.
		hc = &http.Client{Transport: failpoint.RoundTripper("replication.fetch", nil)}
	}
	f := &Follower{
		cfg:     cfg,
		hc:      hc,
		walURL:  strings.TrimSuffix(cfg.Leader, "/") + "/v1/replication/wal",
		snapURL: strings.TrimSuffix(cfg.Leader, "/") + "/v1/replication/snapshot",
		mu:      make(chan struct{}, 1),
		pin:     cfg.Pin,
		snapSeq: cfg.LocalSnapSeq,
	}
	f.status.Written = cfg.Start
	f.status.Applied = cfg.Start
	f.status.FreshAsOf = time.Now() // pessimistic: staleness counts from birth
	path := filepath.Join(cfg.Dir, wal.SegmentName(cfg.Start.Segment))
	fi, err := os.Stat(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if cfg.Start.Offset != 0 {
			return nil, fmt.Errorf("replication: mirror resumes at %v but %s is missing", cfg.Start, path)
		}
	case err != nil:
		return nil, err
	default:
		if fi.Size() < cfg.Start.Offset {
			return nil, fmt.Errorf("replication: mirror resumes at %v but %s holds only %d bytes",
				cfg.Start, path, fi.Size())
		}
		file, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if fi.Size() > cfg.Start.Offset {
			if err := file.Truncate(cfg.Start.Offset); err != nil {
				file.Close()
				return nil, err
			}
		}
		if _, err := file.Seek(cfg.Start.Offset, io.SeekStart); err != nil {
			file.Close()
			return nil, err
		}
		f.file = file
	}
	if cfg.Start.Offset > 0 {
		f.dec.MarkHeaderDone()
	}
	return f, nil
}

func (f *Follower) lock()   { f.mu <- struct{}{} }
func (f *Follower) unlock() { <-f.mu }

// Status returns a copy of the mirror's current state.
func (f *Follower) Status() Status {
	f.lock()
	defer f.unlock()
	return f.status
}

// Close fsyncs and closes the mirror file and hands the retention lease back
// to the leader (best-effort — the TTL covers followers that die without
// saying goodbye). The polling goroutine must have stopped.
func (f *Follower) Close() error {
	f.lock()
	pin := f.pin
	f.pin = ""
	var err error
	if f.file != nil {
		err = f.file.Sync()
		if cerr := f.file.Close(); err == nil {
			err = cerr
		}
		f.file = nil
	}
	f.unlock()
	if pin != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		u := f.walURL + "?unpin=" + url.QueryEscape(pin)
		if req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, u, nil); rerr == nil {
			if resp, derr := f.hc.Do(req); derr == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
				resp.Body.Close()
			}
		}
	}
	return err
}

// Poll performs one exchange with the leader: fetch bytes at the mirror's
// position (waiting up to cfg.LongPoll server-side), append them to the
// mirror, and apply every record that completed. A nil return means the
// exchange succeeded, whether or not bytes arrived. ErrSnapshotRequired
// means the mirror is beyond repair — rebuild via Bootstrap.
func (f *Follower) Poll(ctx context.Context) error {
	return f.poll(ctx, f.cfg.LongPoll)
}

// CatchUp polls without waiting until the mirror covers the leader's append
// position as of the final exchange.
func (f *Follower) CatchUp(ctx context.Context) error {
	for {
		if err := f.poll(ctx, 0); err != nil {
			return err
		}
		f.lock()
		caught := f.status.CaughtUp
		f.unlock()
		if caught {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

func (f *Follower) poll(ctx context.Context, wait time.Duration) error {
	f.lock()
	pos := f.status.Written
	pin := f.pin
	f.unlock()

	u := f.walURL + "?after=" + url.QueryEscape(pos.String())
	if wait > 0 {
		u += "&wait_ms=" + strconv.FormatInt(wait.Milliseconds(), 10)
	}
	if pin != "" {
		u += "&pin=" + url.QueryEscape(pin)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	started := time.Now()
	resp, err := f.hc.Do(req)
	if err != nil {
		mFetchesError.Inc()
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusOK:
		chunkBytes := f.cfg.ChunkBytes
		if chunkBytes <= 0 {
			chunkBytes = DefaultChunkBytes
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, int64(chunkBytes)+1))
		if err != nil {
			mFetchesError.Inc()
			return fmt.Errorf("replication: read wal chunk: %w", err)
		}
		mFetchesData.Inc()
		mFetchedBytes.Add(uint64(len(data)))
		seg, err1 := strconv.ParseUint(resp.Header.Get(HeaderSegment), 10, 64)
		off, err2 := strconv.ParseInt(resp.Header.Get(HeaderOffset), 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("replication: leader sent malformed chunk headers")
		}
		leaderPos, _ := wal.ParsePosition(resp.Header.Get(HeaderLeaderPos))
		f.adoptPin(resp)
		if err := f.ingest(seg, off, data, leaderPos, started); err != nil {
			return err
		}
		return f.maybeMirrorSnapshot(ctx, resp)
	case http.StatusNoContent:
		mFetchesEmpty.Inc()
		leaderPos, err := wal.ParsePosition(resp.Header.Get(HeaderLeaderPos))
		if err != nil {
			return fmt.Errorf("replication: leader sent malformed position: %v", err)
		}
		f.adoptPin(resp)
		f.lock()
		f.status.Leader = leaderPos
		f.status.LastContact = started
		if !f.status.Written.Less(leaderPos) {
			f.status.CaughtUp = true
			f.status.FreshAsOf = started
		}
		f.unlock()
		return f.maybeMirrorSnapshot(ctx, resp)
	case http.StatusGone, http.StatusRequestedRangeNotSatisfiable:
		// 410: pruned behind us. 416: we hold bytes the leader never wrote
		// (divergent history). Either way the mirror restarts from a
		// snapshot; resetting to the applied boundary cannot help because
		// applied state beyond the leader's history cannot be unapplied.
		mFetchesSnapReq.Inc()
		return fmt.Errorf("%w (leader said %d for %v)", ErrSnapshotRequired, resp.StatusCode, pos)
	default:
		mFetchesError.Inc()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replication: leader returned %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// ingest appends one chunk to the mirror and applies the records it
// completed. Called only from the polling goroutine.
func (f *Follower) ingest(seg uint64, off int64, data []byte, leaderPos wal.Position, started time.Time) error {
	f.lock()
	defer f.unlock()
	switch {
	case seg == f.status.Written.Segment && off == f.status.Written.Offset:
		// Contiguous bytes of the current segment.
	case seg == f.status.Written.Segment+1 && off == 0:
		// The previous segment was consumed whole and is sealed; its bytes
		// are immutable, so fsync and move on. A torn record buffered at a
		// segment boundary would mean the log itself is corrupt.
		if f.dec.Buffered() != 0 {
			return fmt.Errorf("%w: segment %d ended mid-record", wal.ErrCorrupt, f.status.Written.Segment)
		}
		if f.file != nil {
			if err := f.file.Sync(); err != nil {
				return err
			}
			if err := f.file.Close(); err != nil {
				return err
			}
			f.file = nil
		}
		f.status.Written = wal.Position{Segment: seg}
		f.dec.Reset()
	default:
		return fmt.Errorf("%w: leader served segment %d offset %d to a mirror at %v",
			ErrSnapshotRequired, seg, off, f.status.Written)
	}
	if f.file == nil {
		path := filepath.Join(f.cfg.Dir, wal.SegmentName(seg))
		file, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		f.file = file
	}
	if _, err := f.file.Write(data); err != nil {
		return err
	}
	// One fsync per chunk keeps the mirror's durable state equal to its
	// applied state, so a follower crash recovers without re-fetching more
	// than the in-flight chunk.
	if err := f.file.Sync(); err != nil {
		return err
	}
	f.status.Written.Offset += int64(len(data))
	if err := f.dec.Feed(data, func(rec wal.Record) error {
		if err := f.cfg.Apply(rec); err != nil {
			return err
		}
		f.status.Records++
		mAppliedRecords.Inc()
		return nil
	}); err != nil {
		return err
	}
	f.status.Applied = wal.Position{
		Segment: f.status.Written.Segment,
		Offset:  f.status.Written.Offset - int64(f.dec.Buffered()),
	}
	f.status.Leader = leaderPos
	f.status.LastContact = started
	if !f.status.Written.Less(leaderPos) {
		f.status.CaughtUp = true
		f.status.FreshAsOf = started
	} else {
		f.status.CaughtUp = false
	}
	return nil
}

// adoptPin records the lease id the leader echoed or granted on a WAL
// response, replacing an expired one transparently.
func (f *Follower) adoptPin(resp *http.Response) {
	if id := resp.Header.Get(HeaderPin); id != "" {
		f.lock()
		f.pin = id
		f.unlock()
	}
}

// maybeMirrorSnapshot keeps the mirror directory bounded: when the leader
// advertises a snapshot newer than the local one AND the mirror has already
// applied past the segment it seals, fetch it and drop the covered local
// segments — the local equivalent of the leader's own checkpoint prune.
func (f *Follower) maybeMirrorSnapshot(ctx context.Context, resp *http.Response) error {
	seq, err1 := strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
	seals, err2 := strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeals), 10, 64)
	if err1 != nil || err2 != nil || seq == 0 {
		return nil
	}
	f.lock()
	needed := seq > f.snapSeq && f.status.Applied.Segment > seals
	f.unlock()
	if !needed {
		return nil
	}
	got, gotSeals, err := fetchSnapshot(ctx, f.hc, f.snapURL, f.cfg.Dir)
	if err != nil || got == 0 {
		return nil // best-effort: the mirror just keeps more segments for now
	}
	f.lock()
	defer f.unlock()
	if got <= f.snapSeq || gotSeals >= f.status.Applied.Segment {
		return nil
	}
	prev := f.snapSeq
	f.snapSeq = got
	// Drop the covered segments and the superseded snapshot.
	for id := gotSeals; id > 0; id-- {
		path := filepath.Join(f.cfg.Dir, wal.SegmentName(id))
		if err := os.Remove(path); err != nil {
			break // older ones are already gone
		}
	}
	if prev > 0 && prev != got {
		os.Remove(filepath.Join(f.cfg.Dir, checkpoint.SnapshotName(prev)))
	}
	return nil
}

// BootstrapInfo describes what Bootstrap fetched.
type BootstrapInfo struct {
	Pin       string // lease id to carry on WAL fetches (refreshed until caught up)
	SnapSeq   uint64 // 0 when the leader had no snapshot
	SealedSeg uint64
}

// Bootstrap fetches the leader's latest snapshot into dir (durably:
// tmp → fsync → rename → dir fsync) and returns the pin lease protecting the
// snapshot's tail from pruning while the follower starts mirroring. When the
// leader has no snapshot yet, no file is written and SnapSeq is 0.
func Bootstrap(ctx context.Context, hc *http.Client, leader, dir string) (BootstrapInfo, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return BootstrapInfo{}, err
	}
	snapURL := strings.TrimSuffix(leader, "/") + "/v1/replication/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, snapURL, nil)
	if err != nil {
		return BootstrapInfo{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return BootstrapInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return BootstrapInfo{}, fmt.Errorf("replication: snapshot fetch returned %d: %s",
			resp.StatusCode, strings.TrimSpace(string(body)))
	}
	info := BootstrapInfo{Pin: resp.Header.Get(HeaderPin)}
	info.SnapSeq, _ = strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
	info.SealedSeg, _ = strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeals), 10, 64)
	if resp.StatusCode == http.StatusNoContent || info.SnapSeq == 0 {
		return info, nil
	}
	if err := writeSnapshotFile(dir, info.SnapSeq, resp.Body); err != nil {
		return BootstrapInfo{}, err
	}
	return info, nil
}

// fetchSnapshot downloads the leader's current snapshot into dir and returns
// its sequence and sealed segment (0 when the leader has none).
func fetchSnapshot(ctx context.Context, hc *http.Client, snapURL, dir string) (seq, seals uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, snapURL, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return 0, 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("replication: snapshot fetch returned %d", resp.StatusCode)
	}
	seq, _ = strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeq), 10, 64)
	seals, _ = strconv.ParseUint(resp.Header.Get(HeaderSnapshotSeals), 10, 64)
	if seq == 0 {
		return 0, 0, nil
	}
	if err := writeSnapshotFile(dir, seq, resp.Body); err != nil {
		return 0, 0, err
	}
	return seq, seals, nil
}

// writeSnapshotFile lands body as dir's snapshot seq with the same
// durability protocol the checkpointer uses.
func writeSnapshotFile(dir string, seq uint64, body io.Reader) error {
	final := filepath.Join(dir, checkpoint.SnapshotName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, body); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := wal.SyncDir(dir); err != nil {
		return err
	}
	mSnapshotsFetched.Inc()
	return nil
}

// WipeMirror removes every snapshot and segment file from dir, preparing a
// re-bootstrap after ErrSnapshotRequired.
func WipeMirror(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		name := e.Name()
		isSeg := strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg")
		isSnap := strings.HasPrefix(name, "snap-") && (strings.HasSuffix(name, ".sks") || strings.HasSuffix(name, ".sks.tmp"))
		if isSeg || isSnap {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return wal.SyncDir(dir)
}
