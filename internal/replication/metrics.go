package replication

import (
	"sprofile/internal/metrics"
)

// Replication metric families. The follower side classifies every poll
// exchange; the leader side counts the retention-lease traffic that keeps
// bootstrapping and tailing followers safe from pruning. Lag and staleness
// gauges live with the embedding KeyedFollower, which owns the Status they
// derive from.
var (
	mFetches = metrics.Default().CounterVec("sprofile_replication_fetches_total",
		"Follower WAL poll exchanges by outcome.", "result")
	mFetchesData    = mFetches.With("data")
	mFetchesEmpty   = mFetches.With("empty")
	mFetchesError   = mFetches.With("error")
	mFetchesSnapReq = mFetches.With("snapshot_required")
	mFetchedBytes   = metrics.Default().Counter("sprofile_replication_fetched_bytes_total",
		"Raw WAL bytes fetched from the leader and appended to the mirror.")
	mAppliedRecords = metrics.Default().Counter("sprofile_replication_applied_records_total",
		"WAL records decoded from the mirror and applied to the replica.")
	mSnapshotsFetched = metrics.Default().Counter("sprofile_replication_snapshots_fetched_total",
		"Leader snapshots mirrored locally (bootstrap and steady-state pruning).")

	mSnapshotsServed = metrics.Default().Counter("sprofile_replication_snapshots_served_total",
		"Snapshot bodies this leader streamed to bootstrapping followers.")
	mPinsIssued = metrics.Default().Counter("sprofile_replication_pins_issued_total",
		"Fresh retention leases granted to followers.")
	mPinRenewals = metrics.Default().Counter("sprofile_replication_pin_renewals_total",
		"Retention leases advanced or refreshed on follower fetches.")
)
