// Package replication ships a checkpointed segmented WAL from a leader to
// followers over HTTP, byte-for-byte. The leader side (Source, Handler)
// serves the latest SKS1 snapshot and raw SWL2 segment bytes; the follower
// side (Follower, Bootstrap) mirrors them into a local directory that is at
// every instant a valid checkpointed log directory — so a follower promotes
// to leader by simply running the ordinary recovery path over its mirror.
//
// The protocol leans on one WAL invariant: segment N+1 is only created after
// segment N was flushed and fsynced whole, so the existence of a higher
// segment id proves a segment is complete and its bytes immutable. Raw bytes
// of the current append segment may end mid-record at any moment (a buffered
// flush lands a prefix); the follower's stream decoder buffers such torn
// tails until the rest arrives, and only acts on complete records.
package replication

import (
	"fmt"
	"time"

	"sprofile/internal/checkpoint"
	"sprofile/internal/wal"
)

// DefaultChunkBytes bounds one WAL response body.
const DefaultChunkBytes = 1 << 20

// DefaultPinTTL is how long a snapshot lease taken on behalf of a follower
// lives without a refresh. Followers refresh on every WAL fetch while they
// still depend on the lease, so the TTL only has to outlast one fetch cycle.
const DefaultPinTTL = time.Minute

// Source adapts a checkpoint.Store into a replication feed. It is safe for
// concurrent use by many followers; reads race benignly with the appending
// owner (segment files only grow, and pruning is lease-gated).
type Source struct {
	store *checkpoint.Store
}

// NewSource wraps the store backing a leader profile.
func NewSource(store *checkpoint.Store) *Source { return &Source{store: store} }

// Position returns the leader's durable append position: everything at or
// below it is fsynced, which includes every acknowledged write.
func (s *Source) Position() wal.Position { return s.store.AppendPosition() }

// Chunk reads raw log bytes at pos, capped at the durable frontier: bytes of
// the current append segment that were flushed but not yet fsynced are never
// served, because a WAL fault would let Roll truncate them away after a
// follower had already mirrored them. Sealed segments are durable whole and
// stream uncapped. A follower positioned past the frontier in the current
// segment holds bytes this log no longer vouches for (a mirror taken before
// a truncating roll, by an older leader build) and is told to re-bootstrap
// via ErrOffsetBeyondEnd.
func (s *Source) Chunk(pos wal.Position, maxBytes int) (wal.Chunk, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultChunkBytes
	}
	durable := s.store.AppendPosition()
	if pos.Segment == durable.Segment {
		if pos.Offset > durable.Offset {
			return wal.Chunk{}, fmt.Errorf("%w: offset %d past durable end %d in segment %d",
				wal.ErrOffsetBeyondEnd, pos.Offset, durable.Offset, pos.Segment)
		}
		if pos.Offset == durable.Offset {
			return wal.Chunk{Segment: pos.Segment, Offset: pos.Offset, Size: durable.Offset}, nil
		}
		if n := durable.Offset - pos.Offset; int64(maxBytes) > n {
			maxBytes = int(n)
		}
	}
	return wal.ReadChunk(s.store.Dir(), pos, durable.Segment, maxBytes)
}

// Pin leases the current snapshot for a bootstrapping follower.
func (s *Source) Pin(ttl time.Duration) checkpoint.PinnedSnapshot {
	return s.store.PinSnapshot(ttl)
}

// PinTail grants a fresh moving lease covering segments at or above seg.
func (s *Source) PinTail(seg uint64, ttl time.Duration) uint64 {
	return s.store.PinTail(seg, ttl)
}

// AdvancePin moves a live lease to cover segments at or above seg and
// extends it; see checkpoint.Store.AdvancePin.
func (s *Source) AdvancePin(id, seg uint64, ttl time.Duration) bool {
	return s.store.AdvancePin(id, seg, ttl)
}

// Unpin releases a lease early.
func (s *Source) Unpin(id uint64) { s.store.Unpin(id) }

// SnapshotMeta returns the current snapshot sequence and the last segment it
// covers — advertised to followers so they can mirror newer snapshots and
// prune their own copies of covered segments.
func (s *Source) SnapshotMeta() (seq, sealedSeg uint64) { return s.store.SnapshotMeta() }
