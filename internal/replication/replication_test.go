package replication_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"sprofile/internal/checkpoint"
	"sprofile/internal/core"
	"sprofile/internal/replication"
	"sprofile/internal/wal"
)

// counts is the minimal state machine both ends of the wire drive.
type counts struct {
	m       map[string]int64
	adds    uint64
	removes uint64
}

func newCounts() *counts { return &counts{m: make(map[string]int64)} }

func (c *counts) apply(rec wal.Record) error {
	if rec.Batch {
		c.m[rec.Key] += int64(rec.Adds) - int64(rec.Removes)
		c.adds += rec.Adds
		c.removes += rec.Removes
		return nil
	}
	if rec.Action == core.ActionAdd {
		c.m[rec.Key]++
		c.adds++
	} else {
		c.m[rec.Key]--
		c.removes++
	}
	return nil
}

func (c *counts) state() *checkpoint.State {
	st := &checkpoint.State{Keyed: true, Capacity: 1 << 20, Adds: c.adds, Removes: c.removes}
	keys := make([]string, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st.Keys = append(st.Keys, k)
		st.Freqs = append(st.Freqs, c.m[k])
	}
	return st
}

func (c *counts) restore(st *checkpoint.State) {
	for i, k := range st.Keys {
		c.m[k] = st.Freqs[i]
	}
	c.adds, c.removes = st.Adds, st.Removes
}

func (c *counts) equal(d *counts) bool {
	for k, v := range c.m {
		if v != 0 && d.m[k] != v {
			return false
		}
	}
	for k, v := range d.m {
		if v != 0 && c.m[k] != v {
			return false
		}
	}
	return true
}

// leaderHarness is a Store-backed leader with its replication endpoints on
// an httptest server.
type leaderHarness struct {
	t     *testing.T
	store *checkpoint.Store
	state *counts
	srv   *httptest.Server
}

func newLeader(t *testing.T) *leaderHarness {
	t.Helper()
	dir := t.TempDir()
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := newCounts()
	if s := store.TakeState(); s != nil {
		st.restore(s)
	}
	if _, err := store.ReplayTail(st.apply); err != nil {
		t.Fatal(err)
	}
	h := replication.NewHandler(replication.NewSource(store))
	mux := http.NewServeMux()
	h.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { store.Close() })
	return &leaderHarness{t: t, store: store, state: st, srv: srv}
}

func (l *leaderHarness) add(keys ...string) {
	l.t.Helper()
	for _, k := range keys {
		rec := wal.Record{Key: k, Action: core.ActionAdd}
		if _, err := l.store.Append(rec); err != nil {
			l.t.Fatal(err)
		}
		l.state.apply(rec)
	}
	if err := l.store.Sync(); err != nil {
		l.t.Fatal(err)
	}
}

func (l *leaderHarness) checkpoint() {
	l.t.Helper()
	if err := l.store.Checkpoint(func() (*checkpoint.State, uint64, error) {
		sealed, err := l.store.Rotate()
		if err != nil {
			return nil, 0, err
		}
		return l.state.state(), sealed, nil
	}); err != nil {
		l.t.Fatal(err)
	}
}

// followerHarness recovers a mirror directory read-only and arms a Follower.
type followerHarness struct {
	f     *replication.Follower
	state *counts
}

func newFollowerAt(t *testing.T, leader *leaderHarness, dir string) *followerHarness {
	t.Helper()
	ctx := context.Background()
	var pin string
	var localSeq uint64
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := newCounts()
	if s := store.TakeState(); s != nil {
		st.restore(s)
	} else {
		info, err := replication.Bootstrap(ctx, nil, leader.srv.URL, dir)
		if err != nil {
			t.Fatal(err)
		}
		pin = info.Pin
		store, err = checkpoint.Open(dir, checkpoint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s := store.TakeState(); s != nil {
			st.restore(s)
		}
	}
	localSeq, _ = store.SnapshotMeta()
	_, pos, err := store.ReplayTailReadOnly(st.apply)
	if err != nil {
		t.Fatal(err)
	}
	f, err := replication.NewFollower(replication.Config{
		Leader:       leader.srv.URL,
		Dir:          dir,
		Start:        pos,
		Apply:        st.apply,
		ChunkBytes:   48, // small chunks: cross record and header boundaries
		Pin:          pin,
		LocalSnapSeq: localSeq,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return &followerHarness{f: f, state: st}
}

func TestFollowerConvergesAcrossCheckpoints(t *testing.T) {
	leader := newLeader(t)
	leader.add("a", "b", "a", "c")
	leader.checkpoint()
	leader.add("d", "d")

	dir := t.TempDir()
	fo := newFollowerAt(t, leader, dir)
	ctx := context.Background()
	if err := fo.f.CatchUp(ctx); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if !leader.state.equal(fo.state) {
		t.Fatalf("follower state %v != leader state %v", fo.state.m, leader.state.m)
	}
	st := fo.f.Status()
	if !st.CaughtUp {
		t.Fatalf("follower not caught up: %+v", st)
	}
	if st.Written != leader.store.AppendPosition() {
		t.Fatalf("follower at %v, leader at %v", st.Written, leader.store.AppendPosition())
	}

	// More writes and another checkpoint while the follower keeps tailing.
	leader.add("e")
	leader.checkpoint()
	leader.add("f", "f", "f")
	if err := fo.f.CatchUp(ctx); err != nil {
		t.Fatalf("CatchUp after checkpoint: %v", err)
	}
	if !leader.state.equal(fo.state) {
		t.Fatalf("follower diverged after checkpoint: %v vs %v", fo.state.m, leader.state.m)
	}

	// The follower's mirror must itself recover to the same state: reopen it
	// read-only and compare.
	if err := fo.f.Close(); err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re := newCounts()
	if s := store.TakeState(); s != nil {
		re.restore(s)
	}
	if _, _, err := store.ReplayTailReadOnly(re.apply); err != nil {
		t.Fatal(err)
	}
	if !leader.state.equal(re) {
		t.Fatalf("recovered mirror %v != leader %v", re.m, leader.state.m)
	}
}

func TestFollowerResumesFromMirror(t *testing.T) {
	leader := newLeader(t)
	leader.add("a", "b")

	dir := t.TempDir()
	fo := newFollowerAt(t, leader, dir)
	if err := fo.f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fo.f.Close(); err != nil {
		t.Fatal(err)
	}

	// New writes while the follower is down; a fresh follower over the same
	// mirror must resume from its position, not refetch history.
	leader.add("c", "d", "c")
	fo2 := newFollowerAt(t, leader, dir)
	if err := fo2.f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !leader.state.equal(fo2.state) {
		t.Fatalf("resumed follower %v != leader %v", fo2.state.m, leader.state.m)
	}
}

func TestFollowerPrunedBehindRequiresSnapshot(t *testing.T) {
	leader := newLeader(t)
	leader.add("a", "b")

	dir := t.TempDir()
	fo := newFollowerAt(t, leader, dir)
	if err := fo.f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fo.f.Close(); err != nil {
		t.Fatal(err)
	}

	// Two checkpoints while the follower sleeps: its segment is pruned.
	leader.add("c")
	leader.checkpoint()
	leader.add("d")
	leader.checkpoint()

	// Resuming blindly from the stale mirror (no re-bootstrap) must surface
	// ErrSnapshotRequired — the leader no longer holds those bytes.
	fo2 := newFollowerAtResume(t, leader, dir, replication.BootstrapInfo{})
	err := fo2.f.CatchUp(context.Background())
	if !errors.Is(err, replication.ErrSnapshotRequired) {
		t.Fatalf("CatchUp over pruned history: got %v, want ErrSnapshotRequired", err)
	}

	// Re-bootstrap: wipe and start over; the follower must converge.
	if err := replication.WipeMirror(dir); err != nil {
		t.Fatal(err)
	}
	fo3 := newFollowerAt(t, leader, dir)
	if err := fo3.f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !leader.state.equal(fo3.state) {
		t.Fatalf("rebootstrapped follower %v != leader %v", fo3.state.m, leader.state.m)
	}
}

func TestBootstrapPinSurvivesCheckpoint(t *testing.T) {
	leader := newLeader(t)
	leader.add("a")
	leader.checkpoint()
	leader.add("b")

	// Bootstrap takes the lease...
	dir := t.TempDir()
	info, err := replication.Bootstrap(context.Background(), nil, leader.srv.URL, dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Pin == "" || info.SnapSeq != 1 {
		t.Fatalf("bootstrap info %+v, want pin and snapshot 1", info)
	}
	// ...then the leader checkpoints twice, which would normally prune the
	// tail the bootstrapped snapshot needs. The lease must hold it.
	leader.checkpoint()
	leader.add("c")
	leader.checkpoint()

	fo := newFollowerAtResume(t, leader, dir, info)
	if err := fo.f.CatchUp(context.Background()); err != nil {
		t.Fatalf("CatchUp with pinned tail: %v", err)
	}
	if !leader.state.equal(fo.state) {
		t.Fatalf("pinned bootstrap follower %v != leader %v", fo.state.m, leader.state.m)
	}
}

// newFollowerAtResume arms a follower over an already-bootstrapped mirror,
// carrying the bootstrap lease.
func newFollowerAtResume(t *testing.T, leader *leaderHarness, dir string, info replication.BootstrapInfo) *followerHarness {
	t.Helper()
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := newCounts()
	if s := store.TakeState(); s != nil {
		st.restore(s)
	}
	localSeq, _ := store.SnapshotMeta()
	_, pos, err := store.ReplayTailReadOnly(st.apply)
	if err != nil {
		t.Fatal(err)
	}
	f, err := replication.NewFollower(replication.Config{
		Leader:       leader.srv.URL,
		Dir:          dir,
		Start:        pos,
		Apply:        st.apply,
		ChunkBytes:   48,
		Pin:          info.Pin,
		LocalSnapSeq: localSeq,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return &followerHarness{f: f, state: st}
}

func TestLongPollDeliversPromptly(t *testing.T) {
	leader := newLeader(t)
	dir := t.TempDir()
	fo := newFollowerAt(t, leader, dir)
	if err := fo.f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Start a long poll, then append: the poll must return with the bytes
	// well before its 5s window expires.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		f2, err := replication.NewFollower(replication.Config{
			Leader:   leader.srv.URL,
			Dir:      t.TempDir(),
			Start:    wal.Position{Segment: 1}, // the leader's first segment
			Apply:    func(wal.Record) error { return nil },
			LongPoll: 5 * time.Second,
		})
		if err != nil {
			done <- err
			return
		}
		defer f2.Close()
		done <- f2.Poll(ctx)
	}()
	time.Sleep(100 * time.Millisecond)
	leader.add("x")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("long poll: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("long poll did not return after new bytes were appended")
	}
}
