package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"sprofile/internal/wal"
)

// Wire protocol, all under the leader's /v1/replication/ prefix:
//
//	GET snapshot
//	    200 — body is the latest SKS1 snapshot file verbatim; headers carry
//	          its sequence, the segment it seals, and a fresh pin lease id.
//	    204 — the leader has no snapshot yet (follow from the earliest
//	          segment); a pin lease id is still issued to hold pruning off.
//	GET wal?after=<segment>:<offset>[&wait_ms=N][&pin=ID]
//	    200 — body is raw segment bytes; headers say which segment/offset the
//	          bytes sit at, whether that segment is sealed, the leader's
//	          append position, and the latest snapshot's metadata. The bytes
//	          always continue the follower's position: same segment at that
//	          offset, or the next segment from 0 when the previous one was
//	          consumed whole.
//	    204 — nothing new within the wait window; leader-position headers
//	          still update the follower's staleness watermark.
//	    410 — the requested segment was pruned; re-bootstrap from snapshot.
//	    416 — the requested offset is past the end of a sealed segment; the
//	          follower is on a divergent history (e.g. the leader was
//	          restored) and must re-bootstrap.
//
// Positions and ids are decimal; header names are constants below.
const (
	HeaderSegment       = "X-Sprofile-Segment"
	HeaderOffset        = "X-Sprofile-Offset"
	HeaderSealed        = "X-Sprofile-Sealed"
	HeaderLeaderPos     = "X-Sprofile-Leader-Position" // "<segment>:<offset>"
	HeaderSnapshotSeq   = "X-Sprofile-Snapshot-Seq"
	HeaderSnapshotSeals = "X-Sprofile-Snapshot-Seals"
	HeaderPin           = "X-Sprofile-Pin"
	HeaderLeader        = "X-Sprofile-Leader" // leader hint on follower 503s
)

// MaxWait caps the long-poll window a follower may ask for.
const MaxWait = 30 * time.Second

// tailPoll is how often a long-polling WAL request re-checks the log for new
// bytes. The appender does not signal readers; 20ms keeps follower lag small
// at negligible cost.
const tailPoll = 20 * time.Millisecond

// Handler serves the leader side of the protocol.
type Handler struct {
	src *Source
	// ChunkBytes bounds one WAL response body; 0 means DefaultChunkBytes.
	ChunkBytes int
	// PinTTL overrides DefaultPinTTL (tests shrink it).
	PinTTL time.Duration
}

// NewHandler returns a handler serving src.
func NewHandler(src *Source) *Handler { return &Handler{src: src} }

// Register mounts the two endpoints on mux.
func (h *Handler) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/replication/snapshot", h.ServeSnapshot)
	mux.HandleFunc("/v1/replication/wal", h.ServeWAL)
}

func (h *Handler) pinTTL() time.Duration {
	if h.PinTTL > 0 {
		return h.PinTTL
	}
	return DefaultPinTTL
}

func (h *Handler) chunkBytes() int {
	if h.ChunkBytes > 0 {
		return h.ChunkBytes
	}
	return DefaultChunkBytes
}

func replError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (h *Handler) setLeaderHeaders(w http.ResponseWriter) {
	w.Header().Set(HeaderLeaderPos, h.src.Position().String())
	seq, seals := h.src.SnapshotMeta()
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(seq, 10))
	w.Header().Set(HeaderSnapshotSeals, strconv.FormatUint(seals, 10))
}

// ServeSnapshot streams the latest snapshot file and issues a pin lease that
// keeps the snapshot's tail fetchable while the follower restores from it.
func (h *Handler) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		replError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	ps := h.src.Pin(h.pinTTL())
	mPinsIssued.Inc()
	w.Header().Set(HeaderPin, strconv.FormatUint(ps.Pin, 10))
	w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(ps.Seq, 10))
	w.Header().Set(HeaderSnapshotSeals, strconv.FormatUint(ps.SealedSeg, 10))
	w.Header().Set(HeaderLeaderPos, h.src.Position().String())
	if ps.Seq == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	f, err := os.Open(ps.Path)
	if err != nil {
		h.src.Unpin(ps.Pin)
		replError(w, http.StatusInternalServerError, "open snapshot: %v", err)
		return
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := io.Copy(w, f); err == nil {
		mSnapshotsServed.Inc()
	}
}

// ServeWAL serves one chunk of raw segment bytes at the follower's position,
// long-polling up to wait_ms for new data.
func (h *Handler) ServeWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		replError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	q := r.URL.Query()
	if unpinStr := q.Get("unpin"); unpinStr != "" {
		// A closing follower releases its lease; the TTL is only the backstop
		// for followers that die without saying goodbye.
		if id, err := strconv.ParseUint(unpinStr, 10, 64); err == nil {
			h.src.Unpin(id)
		}
		if q.Get("after") == "" { // pure release request
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
	pos, err := wal.ParsePosition(q.Get("after"))
	if err != nil {
		replError(w, http.StatusBadRequest, "after: %v", err)
		return
	}
	// Every fetch holds a moving lease covering the follower's position: the
	// presented lease is advanced to pos.Segment (never regressed), or a fresh
	// one is granted when none was presented or it already expired. Prune can
	// therefore never delete bytes an active follower has yet to fetch; dead
	// followers stop refreshing and their lease ages out.
	var leaseID uint64
	if pinStr := q.Get("pin"); pinStr != "" {
		if id, err := strconv.ParseUint(pinStr, 10, 64); err == nil && h.src.AdvancePin(id, pos.Segment, h.pinTTL()) {
			leaseID = id
			mPinRenewals.Inc()
		}
	}
	if leaseID == 0 {
		leaseID = h.src.PinTail(pos.Segment, h.pinTTL())
		mPinsIssued.Inc()
	}
	w.Header().Set(HeaderPin, strconv.FormatUint(leaseID, 10))
	var wait time.Duration
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			replError(w, http.StatusBadRequest, "wait_ms: %q", ms)
			return
		}
		wait = time.Duration(n) * time.Millisecond
		if wait > MaxWait {
			wait = MaxWait
		}
	}
	deadline := time.Now().Add(wait)
	for {
		chunk, err := h.src.Chunk(pos, h.chunkBytes())
		switch {
		case errors.Is(err, wal.ErrSegmentMissing):
			replError(w, http.StatusGone, "%v", err)
			return
		case errors.Is(err, wal.ErrOffsetBeyondEnd):
			replError(w, http.StatusRequestedRangeNotSatisfiable, "%v", err)
			return
		case err != nil:
			replError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if len(chunk.Data) > 0 {
			h.setLeaderHeaders(w)
			w.Header().Set(HeaderSegment, strconv.FormatUint(chunk.Segment, 10))
			w.Header().Set(HeaderOffset, strconv.FormatInt(chunk.Offset, 10))
			w.Header().Set(HeaderSealed, strconv.FormatBool(chunk.Sealed))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(chunk.Data)))
			w.Write(chunk.Data)
			return
		}
		if !time.Now().Before(deadline) {
			h.setLeaderHeaders(w)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(tailPoll):
		}
	}
}
