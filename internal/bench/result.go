package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Point is one row of an experiment sweep: the swept variable's value and the
// measured seconds per method.
type Point struct {
	X       int64
	Seconds map[Method]float64
}

// Result is the outcome of a whole experiment (one figure, or one panel of a
// figure, or one ablation).
type Result struct {
	// ID identifies the experiment ("figure3-stream1", "ablation-treekind").
	ID string
	// Title is the human-readable description shown above tables.
	Title string
	// XLabel names the swept variable ("n (tuples)", "m (objects)").
	XLabel string
	// Methods lists the measured methods in presentation order.
	Methods []Method
	// Points holds one entry per swept value, in ascending X order.
	Points []Point
	// XNames optionally labels each point for categorical sweeps (for example
	// the workload-sensitivity ablation, where X is an index into XNames).
	XNames []string
}

// xLabelFor renders the X value of point i, using XNames for categorical
// sweeps.
func (r *Result) xLabelFor(i int) string {
	x := r.Points[i].X
	if len(r.XNames) == len(r.Points) && x >= 0 && int(x) < len(r.XNames) {
		return r.XNames[x]
	}
	return fmt.Sprintf("%d", x)
}

// Table renders the result as an aligned text table, one row per swept value
// and one column per method, with a trailing speedup column relative to the
// first method when exactly two methods are present.
func (r *Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	header := r.XLabel
	for _, m := range r.Methods {
		header += "\t" + string(m) + " (s)"
	}
	twoMethods := len(r.Methods) == 2
	if twoMethods {
		header += fmt.Sprintf("\t%s/%s", r.Methods[0], r.Methods[1])
	}
	fmt.Fprintln(tw, header)
	for i, p := range r.Points {
		row := r.xLabelFor(i)
		for _, m := range r.Methods {
			row += fmt.Sprintf("\t%.4f", p.Seconds[m])
		}
		if twoMethods {
			row += fmt.Sprintf("\t%.2fx", ratio(p.Seconds[r.Methods[0]], p.Seconds[r.Methods[1]]))
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
	return sb.String()
}

// CSV renders the result as comma-separated values with a header row.
func (r *Result) CSV() string {
	var sb strings.Builder
	cols := []string{"x"}
	for _, m := range r.Methods {
		cols = append(cols, string(m))
	}
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteByte('\n')
	for i, p := range r.Points {
		row := []string{r.xLabelFor(i)}
		for _, m := range r.Methods {
			row = append(row, fmt.Sprintf("%.6f", p.Seconds[m]))
		}
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Speedup returns the minimum and maximum of seconds(slow)/seconds(fast)
// across all points — the "at least 2X" / "13X to 452X" numbers the paper
// quotes.
func (r *Result) Speedup(slow, fast Method) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, p := range r.Points {
		s := ratio(p.Seconds[slow], p.Seconds[fast])
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if len(r.Points) == 0 {
		return 0, 0
	}
	return min, max
}

// GrowthFactor reports how much the measured time of a method grows from the
// first point of the sweep to the last. A structure with per-update cost
// independent of the swept variable shows a factor close to the ratio of the
// workload sizes (n sweep) or close to 1 (m sweep, time flat in m).
func (r *Result) GrowthFactor(m Method) float64 {
	if len(r.Points) < 2 {
		return 1
	}
	first := r.Points[0].Seconds[m]
	last := r.Points[len(r.Points)-1].Seconds[m]
	return ratio(last, first)
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// sortPoints orders points by their X value; experiments call it before
// returning a Result.
func sortPoints(points []Point) {
	sort.Slice(points, func(i, j int) bool { return points[i].X < points[j].X })
}
