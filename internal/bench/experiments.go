package bench

import (
	"fmt"

	"sprofile/internal/stream"
)

// Scale sets the workload sizes of the figure experiments. The paper sweeps n
// and m up to 10^8 on a Xeon with tens of gigabytes of memory; DefaultScale
// keeps the same ratios at laptop-friendly sizes, and FullScale reproduces
// the paper's axes for hosts that can afford them (a 10^8-slot balanced tree
// needs several gigabytes).
type Scale struct {
	// Figure3NValues is the n sweep of Figure 3 (mode, fixed m).
	Figure3NValues []int
	// Figure3M is the fixed m of Figure 3.
	Figure3M int
	// Figure4MValues is the m sweep of Figures 4 and 5 (mode, fixed n).
	Figure4MValues []int
	// Figure4N is the fixed n of Figures 4 and 5.
	Figure4N int
	// Figure6NValues is the n sweep of Figure 6 left (median, fixed m).
	Figure6NValues []int
	// Figure6M is the fixed m of Figure 6 left.
	Figure6M int
	// Figure6MValues is the m sweep of Figure 6 right (median, fixed n).
	Figure6MValues []int
	// Figure6N is the fixed n of Figure 6 right.
	Figure6N int
	// Seed makes every experiment deterministic.
	Seed uint64
}

// DefaultScale is the laptop-scale configuration used by `go test -bench` and
// by cmd/sprofile-bench without -full. The n:m ratios match the paper.
func DefaultScale() Scale {
	return Scale{
		Figure3NValues: []int{100_000, 200_000, 500_000, 1_000_000, 2_000_000},
		Figure3M:       1_000_000,
		Figure4MValues: []int{100_000, 200_000, 500_000, 1_000_000, 2_000_000},
		Figure4N:       1_000_000,
		Figure6NValues: []int{50_000, 100_000, 200_000, 500_000, 1_000_000},
		Figure6M:       100_000,
		Figure6MValues: []int{20_000, 50_000, 100_000, 200_000, 500_000},
		Figure6N:       100_000,
		Seed:           20190326,
	}
}

// FullScale reproduces the paper's axes (n, m up to 10^8 for the mode
// experiments and 10^6..10^8 for the median experiments). Expect minutes of
// runtime and several gigabytes of memory.
func FullScale() Scale {
	return Scale{
		Figure3NValues: []int{10_000_000, 20_000_000, 50_000_000, 100_000_000},
		Figure3M:       100_000_000,
		Figure4MValues: []int{10_000_000, 20_000_000, 50_000_000, 100_000_000},
		Figure4N:       100_000_000,
		Figure6NValues: []int{100_000, 1_000_000, 10_000_000, 100_000_000},
		Figure6M:       1_000_000,
		Figure6MValues: []int{100_000, 1_000_000, 10_000_000, 100_000_000},
		Figure6N:       1_000_000,
		Seed:           20190326,
	}
}

// TinyScale is used by the harness's own tests; it finishes in milliseconds.
func TinyScale() Scale {
	return Scale{
		Figure3NValues: []int{500, 1_000},
		Figure3M:       2_000,
		Figure4MValues: []int{500, 1_000},
		Figure4N:       1_000,
		Figure6NValues: []int{500, 1_000},
		Figure6M:       500,
		Figure6MValues: []int{250, 500},
		Figure6N:       500,
		Seed:           7,
	}
}

// runSweep measures every method at every sweep point. buildWorkload receives
// the swept value and returns a fresh workload plus the number of tuples to
// process at that point.
func runSweep(id, title, xLabel string, methods []Method, task Task,
	sweep []int, buildWorkload func(x int) (stream.Workload, int, error)) (*Result, error) {

	res := &Result{ID: id, Title: title, XLabel: xLabel, Methods: methods}
	for _, x := range sweep {
		point := Point{X: int64(x), Seconds: make(map[Method]float64, len(methods))}
		for _, method := range methods {
			w, n, err := buildWorkload(x)
			if err != nil {
				return nil, fmt.Errorf("%s: x=%d: %w", id, x, err)
			}
			meas, err := Measure(method, w, n, task)
			if err != nil {
				return nil, fmt.Errorf("%s: x=%d method=%s: %w", id, x, method, err)
			}
			point.Seconds[method] = meas.Seconds
		}
		res.Points = append(res.Points, point)
	}
	sortPoints(res.Points)
	return res, nil
}

// Figure3 reproduces the paper's Figure 3: CPU time for keeping the mode up
// to date with the heap baseline vs S-Profile, as a function of the number of
// processed tuples n, with m fixed, for the given paper stream (1, 2 or 3).
func Figure3(scale Scale, streamIndex int) (*Result, error) {
	return runSweep(
		fmt.Sprintf("figure3-stream%d", streamIndex),
		fmt.Sprintf("mode maintenance, heap vs S-Profile, m=%d, stream%d", scale.Figure3M, streamIndex),
		"n (tuples)",
		[]Method{MethodHeap, MethodSProfile},
		TaskMode,
		scale.Figure3NValues,
		func(n int) (stream.Workload, int, error) {
			g, err := stream.PaperStream(streamIndex, scale.Figure3M, scale.Seed)
			return g, n, err
		},
	)
}

// Figure4 reproduces the paper's Figure 4: the same comparison as Figure 3
// but with n fixed and the number of objects m swept.
func Figure4(scale Scale, streamIndex int) (*Result, error) {
	return runSweep(
		fmt.Sprintf("figure4-stream%d", streamIndex),
		fmt.Sprintf("mode maintenance, heap vs S-Profile, n=%d, stream%d", scale.Figure4N, streamIndex),
		"m (objects)",
		[]Method{MethodHeap, MethodSProfile},
		TaskMode,
		scale.Figure4MValues,
		func(m int) (stream.Workload, int, error) {
			g, err := stream.PaperStream(streamIndex, m, scale.Seed)
			return g, scale.Figure4N, err
		},
	)
}

// Figure5 reproduces the paper's Figure 5: the time-vs-m trend on stream1
// with n fixed, highlighting that S-Profile's curve stays flat while the
// heap's grows with log m.
func Figure5(scale Scale) (*Result, error) {
	res, err := runSweep(
		"figure5",
		fmt.Sprintf("time-vs-m trend, heap vs S-Profile, n=%d, stream1", scale.Figure4N),
		"m (objects)",
		[]Method{MethodHeap, MethodSProfile},
		TaskMode,
		scale.Figure4MValues,
		func(m int) (stream.Workload, int, error) {
			g, err := stream.Stream1(m, scale.Seed)
			return g, scale.Figure4N, err
		},
	)
	return res, err
}

// Figure6Left reproduces the left panel of the paper's Figure 6: CPU time for
// keeping the median up to date with the balanced tree vs S-Profile as a
// function of n, with m fixed.
func Figure6Left(scale Scale) (*Result, error) {
	return runSweep(
		"figure6-left",
		fmt.Sprintf("median maintenance, balanced tree vs S-Profile, m=%d, stream1", scale.Figure6M),
		"n (tuples)",
		[]Method{MethodRedBlack, MethodSProfile},
		TaskMedian,
		scale.Figure6NValues,
		func(n int) (stream.Workload, int, error) {
			g, err := stream.Stream1(scale.Figure6M, scale.Seed)
			return g, n, err
		},
	)
}

// Figure6Right reproduces the right panel of the paper's Figure 6: the same
// comparison with n fixed and m swept.
func Figure6Right(scale Scale) (*Result, error) {
	return runSweep(
		"figure6-right",
		fmt.Sprintf("median maintenance, balanced tree vs S-Profile, n=%d, stream1", scale.Figure6N),
		"m (objects)",
		[]Method{MethodRedBlack, MethodSProfile},
		TaskMedian,
		scale.Figure6MValues,
		func(m int) (stream.Workload, int, error) {
			g, err := stream.Stream1(m, scale.Seed)
			return g, scale.Figure6N, err
		},
	)
}

// ExperimentIDs lists the identifiers accepted by Run, in the order they
// appear in the paper.
func ExperimentIDs() []string {
	return []string{
		"figure3", "figure4", "figure5", "figure6",
		"ablation-treekind", "ablation-fenwick", "ablation-blockhint",
		"ablation-workloads", "graph-shaving", "sliding-window", "variants",
		"keyed-parallel", "recovery", "batch-delta", "async-ingest",
	}
}

// Run executes one named experiment (a figure or an ablation) and returns its
// result panels.
func Run(id string, scale Scale) ([]*Result, error) {
	switch id {
	case "figure3":
		var out []*Result
		for s := 1; s <= 3; s++ {
			r, err := Figure3(scale, s)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	case "figure4":
		var out []*Result
		for s := 1; s <= 3; s++ {
			r, err := Figure4(scale, s)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	case "figure5":
		r, err := Figure5(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "figure6":
		left, err := Figure6Left(scale)
		if err != nil {
			return nil, err
		}
		right, err := Figure6Right(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{left, right}, nil
	case "ablation-treekind":
		r, err := AblationTreeKind(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "ablation-fenwick":
		r, err := AblationFenwick(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "ablation-blockhint":
		r, err := AblationBlockHint(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "ablation-workloads":
		r, err := AblationWorkloads(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "graph-shaving":
		r, err := GraphShaving(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "sliding-window":
		r, err := SlidingWindow(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "variants":
		r, err := Variants(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "keyed-parallel":
		r, err := KeyedParallel(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "recovery":
		r, err := Recovery(scale)
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	case "batch-delta":
		return BatchDelta(scale)
	case "async-ingest":
		return AsyncIngest(scale)
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, ExperimentIDs())
	}
}
