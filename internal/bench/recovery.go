package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sprofile"
	"sprofile/internal/stream"
)

// The recovery experiment's methods: cold-starting a durable keyed profile
// from a full, never-checkpointed log (every event replayed one by one)
// versus from a checkpointed log (snapshot restored in one O(m log m) load,
// then only the tail replayed). The gap is the whole point of the checkpoint
// subsystem: replay-full grows linearly with the ingest history, while
// snapshot-tail is bounded by the checkpoint cadence.
const (
	MethodReplayFull   Method = "replay-full"
	MethodSnapshotTail Method = "snapshot-tail"
)

// recoveryCheckpointAt is the fraction of the stream ingested before the
// checkpoint: the snapshot covers 90% of history and the tail holds 10%.
const recoveryCheckpointAt = 0.9

// buildRecoveryDir ingests n keyed add events into a fresh durable profile
// in dir, checkpointing after checkpointAt×n events when checkpointed is
// set, and closes it — producing the on-disk state a cold start recovers
// from.
func buildRecoveryDir(dir string, m, n int, keys []string, seed uint64, checkpointed bool) error {
	k, err := sprofile.BuildKeyed[string](m, sprofile.WithWAL(dir))
	if err != nil {
		return err
	}
	defer k.Close()
	ckptAt := int(float64(n) * recoveryCheckpointAt)
	rng := stream.NewRNG(seed)
	for i := 0; i < n; i++ {
		if checkpointed && i == ckptAt {
			if err := k.Checkpoint(); err != nil {
				return err
			}
		}
		if err := k.Add(keys[rng.Intn(len(keys))]); err != nil {
			return err
		}
	}
	return k.Close()
}

// measureRecovery times one cold start: open the durable profile over the
// directory's snapshot and/or log and rebuild the in-memory state.
func measureRecovery(dir string, m int) (secs float64, replayed int, total int64, err error) {
	start := time.Now()
	k, err := sprofile.BuildKeyed[string](m, sprofile.WithWAL(dir))
	if err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	replayed = k.Replayed()
	total = k.Total()
	if err := k.Close(); err != nil {
		return 0, 0, 0, err
	}
	return elapsed.Seconds(), replayed, total, nil
}

// Recovery measures cold-start time as a function of the ingest history
// length n: a durable keyed profile is rebuilt from a full log versus from a
// checkpoint snapshot (taken at 90% of the stream) plus the 10% tail. Both
// paths must reconstruct the identical profile; the experiment verifies the
// totals agree before reporting.
func Recovery(scale Scale) (*Result, error) {
	m := scale.Figure6M
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%08d", i)
	}
	methods := []Method{MethodReplayFull, MethodSnapshotTail}
	res := &Result{
		ID: "recovery",
		Title: fmt.Sprintf("cold-start recovery, full-log replay vs snapshot+tail (checkpoint at %d%%), m=%d",
			int(recoveryCheckpointAt*100), m),
		XLabel:  "n (tuples in history)",
		Methods: methods,
	}
	root, err := os.MkdirTemp("", "sprofile-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	for pi, n := range scale.Figure6NValues {
		point := Point{X: int64(n), Seconds: make(map[Method]float64, len(methods))}
		totals := make(map[Method]int64, len(methods))
		for _, method := range methods {
			dir := filepath.Join(root, fmt.Sprintf("%s-%d", method, pi))
			if err := buildRecoveryDir(dir, m, n, keys, scale.Seed, method == MethodSnapshotTail); err != nil {
				return nil, fmt.Errorf("recovery: n=%d method=%s: %w", n, method, err)
			}
			// Cold starts are short and jitter-prone; report the best of
			// three over the same on-disk state.
			best := 0.0
			for rep := 0; rep < 3; rep++ {
				secs, _, total, err := measureRecovery(dir, m)
				if err != nil {
					return nil, fmt.Errorf("recovery: n=%d method=%s: %w", n, method, err)
				}
				if rep == 0 || secs < best {
					best = secs
				}
				totals[method] = total
			}
			point.Seconds[method] = best
		}
		if totals[MethodReplayFull] != totals[MethodSnapshotTail] {
			return nil, fmt.Errorf("recovery: n=%d: recovered totals diverge (%d vs %d)",
				n, totals[MethodReplayFull], totals[MethodSnapshotTail])
		}
		res.Points = append(res.Points, point)
	}
	sortPoints(res.Points)
	return res, nil
}
