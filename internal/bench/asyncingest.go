package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sprofile"
	"sprofile/internal/stream"
)

// The async-ingest experiment's methods. locked-striped is the baseline the
// async plane is measured against: the same sharded dense profile, updated
// directly by the producer goroutines through its per-shard locks.
// async-mailbox routes the same events through per-producer SPSC mailboxes
// and one applier per shard, so producers never touch a lock and each drain
// is applied through the coalescing batch path.
const (
	MethodLockedStriped Method = "locked-striped"
	MethodAsyncMailbox  Method = "async-mailbox"
)

// Methods of the query-latency panel: p50 of a composite query against an
// idle profile vs the same query while every producer ingests full tilt.
const (
	MethodQueryIdle   Method = "query-idle-p50"
	MethodQueryIngest Method = "query-under-ingest-p50"
)

// asyncIngestProducers is the producer-count sweep of both panels.
var asyncIngestProducers = []int{1, 2, 4}

// asyncIngestShards fixes the shard count; the acceptance comparison is at
// 4 producers x 4 shards.
const asyncIngestShards = 4

// asyncIngestHot bounds the hot-object set: ingest draws uniformly from
// m/asyncIngestHot objects, the skew that lets the appliers' coalesced
// drains pay off (the shape the paper's stream generators model).
const asyncIngestHot = 1000

// hotObject maps one RNG draw to a hot object id.
func hotObject(rng *stream.RNG, m int) int {
	hot := m / asyncIngestHot
	if hot < 1 {
		hot = 1
	}
	return rng.Intn(hot)
}

// measureAsyncIngest ingests n add events from `producers` goroutines into a
// sharded dense profile of capacity m, either directly (locked-striped) or
// through the async plane (async-mailbox, including the final Flush so every
// event is applied when the clock stops). Construction is included,
// mirroring Measure's protocol; teardown is not.
func measureAsyncIngest(method Method, m, producers, n int, seed uint64) (float64, error) {
	per := n / producers
	start := time.Now()

	opts := []sprofile.BuildOption{sprofile.WithSharding(asyncIngestShards)}
	if method == MethodAsyncMailbox {
		opts = append(opts, sprofile.WithAsyncIngest(sprofile.AsyncPolicy{}))
	}
	p, err := sprofile.Build(m, opts...)
	if err != nil {
		return 0, err
	}

	var wg sync.WaitGroup
	errs := make([]error, producers)
	for w := 0; w < producers; w++ {
		count := per
		if w == producers-1 {
			count = n - per*(producers-1)
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			rng := stream.NewRNG(seed + uint64(w)*2654435761)
			if a, ok := p.(*sprofile.Async); ok {
				h, err := a.Producer()
				if err != nil {
					errs[w] = err
					return
				}
				defer h.Close()
				for i := 0; i < count; i++ {
					if err := h.Add(hotObject(rng, m)); err != nil {
						errs[w] = err
						return
					}
				}
				return
			}
			for i := 0; i < count; i++ {
				if err := p.Add(hotObject(rng, m)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, count)
	}
	wg.Wait()
	var elapsed time.Duration
	if a, ok := p.(*sprofile.Async); ok {
		// The clock stops only once every enqueued event is applied — the
		// async column never gets credit for work still sitting in a mailbox.
		if err := a.Flush(); err != nil {
			return 0, err
		}
		elapsed = time.Since(start)
		if err := a.Close(); err != nil {
			return 0, err
		}
	} else {
		elapsed = time.Since(start)
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed.Seconds(), nil
}

// measureQueryP50 returns the median latency, in seconds, of a composite
// Query (summary + top-10) against an async profile holding m objects,
// optionally while `producers` goroutines ingest continuously.
func measureQueryP50(m, producers, samples int, seed uint64) (float64, error) {
	p, err := sprofile.Build(m,
		sprofile.WithSharding(asyncIngestShards),
		sprofile.WithAsyncIngest(sprofile.AsyncPolicy{}))
	if err != nil {
		return 0, err
	}
	a := p.(*sprofile.Async)
	defer a.Close()

	// Seed the profile so the queries have state to summarise.
	rng := stream.NewRNG(seed)
	for i := 0; i < m; i++ {
		if err := a.Add(hotObject(rng, m)); err != nil {
			return 0, err
		}
	}
	if err := a.Flush(); err != nil {
		return 0, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := a.Producer()
			if err != nil {
				return
			}
			defer h.Close()
			rng := stream.NewRNG(seed + uint64(w+1)*40503)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.Add(hotObject(rng, m))
			}
		}(w)
	}

	lat := make([]float64, samples)
	q := sprofile.Query{Summary: true, TopK: 10}
	for i := range lat {
		t0 := time.Now()
		if _, err := a.Query(q); err != nil {
			close(stop)
			wg.Wait()
			return 0, err
		}
		lat[i] = time.Since(t0).Seconds()
	}
	close(stop)
	wg.Wait()
	sort.Float64s(lat)
	return lat[len(lat)/2], nil
}

// AsyncIngest measures the shared-nothing ingest plane against the locked
// striped baseline: the left panel sweeps the producer count at 4 shards and
// reports wall-clock seconds for n hot-key add events (async includes its
// final Flush); the right panel reports the p50 latency of a composite query
// against an idle profile vs under full-tilt ingest from the same producer
// counts — the bounded-staleness reads are supposed to stay flat because
// queries never take an ingest lock. Single-core hosts timeshare the
// producers and appliers, so the async column shows the coalescing win
// there rather than parallel speedup; record GOMAXPROCS with the numbers.
func AsyncIngest(scale Scale) ([]*Result, error) {
	n := scale.Figure4N
	m := scale.Figure6M

	ingest := &Result{
		ID: "async-ingest",
		Title: fmt.Sprintf("dense ingest, locked striped vs async mailboxes, n=%d, m=%d, %d shards, hot keys",
			n, m, asyncIngestShards),
		XLabel:  "producers",
		Methods: []Method{MethodLockedStriped, MethodAsyncMailbox},
	}
	// Wall-clock single shots are noisy (GC, neighbours); the best of five
	// runs is the usual low-noise estimate for each cell.
	const repeats = 5
	for _, producers := range asyncIngestProducers {
		point := Point{X: int64(producers), Seconds: make(map[Method]float64, 2)}
		for _, method := range ingest.Methods {
			best := 0.0
			for rep := 0; rep < repeats; rep++ {
				secs, err := measureAsyncIngest(method, m, producers, n, scale.Seed)
				if err != nil {
					return nil, fmt.Errorf("async-ingest: producers=%d method=%s: %w", producers, method, err)
				}
				if best == 0 || secs < best {
					best = secs
				}
			}
			point.Seconds[method] = best
		}
		ingest.Points = append(ingest.Points, point)
	}
	sortPoints(ingest.Points)

	samples := n / 500
	if samples < 20 {
		samples = 20
	}
	if samples > 500 {
		samples = 500
	}
	query := &Result{
		ID: "async-ingest-query",
		Title: fmt.Sprintf("composite query p50 on the async plane, idle vs under ingest, m=%d, %d shards, %d samples",
			m, asyncIngestShards, samples),
		XLabel:  "producers",
		Methods: []Method{MethodQueryIdle, MethodQueryIngest},
	}
	for _, producers := range asyncIngestProducers {
		point := Point{X: int64(producers), Seconds: make(map[Method]float64, 2)}
		idle, err := measureQueryP50(m, 0, samples, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("async-ingest-query: idle: %w", err)
		}
		under, err := measureQueryP50(m, producers, samples, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("async-ingest-query: producers=%d: %w", producers, err)
		}
		point.Seconds[MethodQueryIdle] = idle
		point.Seconds[MethodQueryIngest] = under
		query.Points = append(query.Points, point)
	}
	sortPoints(query.Points)

	return []*Result{ingest, query}, nil
}
