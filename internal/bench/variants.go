package bench

import (
	"fmt"
	"time"

	"sprofile"
	"sprofile/internal/core"
	"sprofile/internal/stream"
)

// The public profile variants measured by the "variants" experiment. Unlike
// the figure experiments, which talk to the internal evaluation interface,
// these go through the exported sprofile.Profiler contract — the same surface
// servers and applications embed — so the numbers include any interface and
// wrapper overhead a real caller pays.
const (
	MethodVariantPlain        Method = "profile"
	MethodVariantSynchronized Method = "concurrent"
	MethodVariantSharded      Method = "sharded-8"
)

// variantBuildOptions maps a variant method to its Build capabilities.
func variantBuildOptions(method Method) ([]sprofile.BuildOption, error) {
	switch method {
	case MethodVariantPlain:
		return nil, nil
	case MethodVariantSynchronized:
		return []sprofile.BuildOption{sprofile.Synchronized()}, nil
	case MethodVariantSharded:
		return []sprofile.BuildOption{sprofile.WithSharding(8)}, nil
	default:
		return nil, fmt.Errorf("bench: unknown variant %q", method)
	}
}

// measureVariant processes n tuples through a freshly built variant, asking
// for the mode after every update, and returns the wall-clock seconds.
// Construction is included, mirroring Measure's protocol.
func measureVariant(method Method, w stream.Workload, n int) (float64, error) {
	opts, err := variantBuildOptions(method)
	if err != nil {
		return 0, err
	}
	buf := make([]core.Tuple, chunkSize)

	start := time.Now()
	p, err := sprofile.Build(w.M(), opts...)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)

	remaining := n
	var sink int64
	for remaining > 0 {
		c := chunkSize
		if remaining < c {
			c = remaining
		}
		chunk := buf[:c]
		for i := range chunk {
			chunk[i] = w.Next()
		}

		chunkStart := time.Now()
		if _, err := p.ApplyAll(chunk); err != nil {
			return 0, err
		}
		e, _, err := p.Mode()
		if err != nil {
			return 0, err
		}
		sink += e.Frequency
		elapsed += time.Since(chunkStart)
		remaining -= c
	}
	benchSink += sink
	return elapsed.Seconds(), nil
}

// Variants measures single-goroutine ingestion throughput of the public
// builder variants — plain, mutex-protected and sharded — over the unified
// sprofile.Profiler interface, with m swept. It quantifies what each
// capability costs when its concurrency is not needed, the baseline for
// choosing Build options.
func Variants(scale Scale) (*Result, error) {
	methods := []Method{MethodVariantPlain, MethodVariantSynchronized, MethodVariantSharded}
	res := &Result{
		ID:      "variants",
		Title:   fmt.Sprintf("builder variants over the unified Profiler interface, n=%d, stream1", scale.Figure4N),
		XLabel:  "m (objects)",
		Methods: methods,
	}
	for _, m := range scale.Figure4MValues {
		point := Point{X: int64(m), Seconds: make(map[Method]float64, len(methods))}
		for _, method := range methods {
			w, err := stream.Stream1(m, scale.Seed)
			if err != nil {
				return nil, fmt.Errorf("variants: m=%d: %w", m, err)
			}
			secs, err := measureVariant(method, w, scale.Figure4N)
			if err != nil {
				return nil, fmt.Errorf("variants: m=%d method=%s: %w", m, method, err)
			}
			point.Seconds[method] = secs
		}
		res.Points = append(res.Points, point)
	}
	sortPoints(res.Points)
	return res, nil
}
