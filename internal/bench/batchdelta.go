package bench

import (
	"fmt"
	"time"

	"sprofile"
	"sprofile/internal/stream"
)

// The batch-delta experiment's methods: the per-event ingest path (one block
// operation, and for keyed profiles one stripe lock plus one map lookup, per
// event) against the delta-batched fast path (coalesce each batch into net
// per-object deltas, then one block-boundary walk per distinct object — and
// for keyed profiles one stripe-lock acquisition per stripe per batch).
const (
	MethodPerEvent      Method = "per-event"
	MethodDeltaBatched  Method = "delta-batched"
	MethodKeyedPerEvent Method = "keyed-per-event"
	MethodKeyedBatched  Method = "keyed-batched"
)

// batchDeltaSizes is the batch-size sweep: a small producer buffer, a
// typical HTTP batch, and a bulk-load chunk.
var batchDeltaSizes = []int{64, 1024, 65536}

// batchSizesFor clamps the sweep to the stream length.
func batchSizesFor(n int) []int {
	var out []int
	for _, s := range batchDeltaSizes {
		if s <= n {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{n}
	}
	return out
}

// batchDeltaZipfS is the exponent of the skewed panel: hot-key traffic
// where the head of the popularity curve dominates each batch (a 64k-draw
// batch over 100k objects touches only a few thousand distinct objects), the
// regime the coalescer exists for. The uniform panel is the opposite
// extreme — almost no repeats, so it bounds the overhead coalescing costs
// when it cannot win.
const batchDeltaZipfS = 1.5

// batchDeltaStream materialises the n-tuple dense workload of one skew.
func batchDeltaStream(skew string, m, n int, seed uint64) ([]sprofile.Tuple, error) {
	var (
		pos, neg stream.Distribution
		err      error
	)
	if skew == "zipf" {
		if pos, err = stream.NewZipf(m, batchDeltaZipfS); err != nil {
			return nil, err
		}
		if neg, err = stream.NewZipf(m, batchDeltaZipfS); err != nil {
			return nil, err
		}
	} else {
		if pos, err = stream.NewUniform(m); err != nil {
			return nil, err
		}
		if neg, err = stream.NewUniform(m); err != nil {
			return nil, err
		}
	}
	w, err := stream.NewGenerator(stream.Config{
		M: m, AddProb: stream.DefaultAddProb, PosPDF: pos, NegPDF: neg, Seed: seed, Name: skew,
	})
	if err != nil {
		return nil, err
	}
	return stream.Take(w, n), nil
}

// measureDenseBatch ingests the tuple stream in batches of the given size
// through one method and returns the wall-clock seconds. Construction is
// included, mirroring Measure's protocol.
func measureDenseBatch(method Method, m, batch int, tuples []sprofile.Tuple) (float64, error) {
	start := time.Now()
	p, err := sprofile.New(m)
	if err != nil {
		return 0, err
	}
	switch method {
	case MethodPerEvent:
		for i := 0; i < len(tuples); i += batch {
			end := min(i+batch, len(tuples))
			if _, err := p.ApplyAll(tuples[i:end]); err != nil {
				return 0, err
			}
		}
	case MethodDeltaBatched:
		c, err := sprofile.NewCoalescer(m)
		if err != nil {
			return 0, err
		}
		for i := 0; i < len(tuples); i += batch {
			end := min(i+batch, len(tuples))
			deltas, err := c.Coalesce(tuples[i:end])
			if err != nil {
				return 0, err
			}
			if _, err := p.ApplyDeltas(deltas); err != nil {
				return 0, err
			}
		}
	default:
		return 0, fmt.Errorf("bench: unknown dense batch method %q", method)
	}
	return time.Since(start).Seconds(), nil
}

// measureKeyedBatch ingests n keyed add events drawn from dist, in batches
// of the given size, through the full key→id→profile pipeline at the given
// shard count, from a single producer (the per-core cost both methods pay).
func measureKeyedBatch(method Method, m, shards, batch, n int, keys []string, dist stream.Distribution, seed uint64) (float64, error) {
	start := time.Now()
	k, err := sprofile.BuildKeyed[string](m, sprofile.WithSharding(shards))
	if err != nil {
		return 0, err
	}
	rng := stream.NewRNG(seed)
	switch method {
	case MethodKeyedPerEvent:
		for i := 0; i < n; i++ {
			if err := k.Add(keys[dist.Sample(rng)]); err != nil {
				return 0, err
			}
		}
	case MethodKeyedBatched:
		buf := make([]sprofile.KeyedTuple[string], 0, batch)
		for done := 0; done < n; {
			size := min(batch, n-done)
			buf = buf[:0]
			for j := 0; j < size; j++ {
				buf = append(buf, sprofile.KeyedTuple[string]{Key: keys[dist.Sample(rng)], Action: sprofile.ActionAdd})
			}
			if _, err := k.ApplyBatch(buf); err != nil {
				return 0, err
			}
			done += size
		}
	default:
		return 0, fmt.Errorf("bench: unknown keyed batch method %q", method)
	}
	return time.Since(start).Seconds(), nil
}

// BatchDelta measures the delta-batched ingestion fast path against the
// per-event path as a function of batch size: two dense panels (zipf-skewed
// traffic, where hot objects coalesce heavily, and uniform traffic, the
// worst case for coalescing) plus a keyed panel at shards=4, where the
// batched resolve amortises the striping overhead BENCH_keyed.json recorded.
func BatchDelta(scale Scale) ([]*Result, error) {
	n := scale.Figure4N
	m := scale.Figure6M
	sizes := batchSizesFor(n)
	var out []*Result

	for _, skew := range []string{"zipf", "uniform"} {
		tuples, err := batchDeltaStream(skew, m, n, scale.Seed)
		if err != nil {
			return nil, err
		}
		methods := []Method{MethodPerEvent, MethodDeltaBatched}
		res := &Result{
			ID:      "batch-delta-" + skew,
			Title:   fmt.Sprintf("delta-batched vs per-event dense ingestion, %s stream, n=%d, m=%d", skew, n, m),
			XLabel:  "batch size",
			Methods: methods,
		}
		for _, batch := range sizes {
			point := Point{X: int64(batch), Seconds: make(map[Method]float64, len(methods))}
			for _, method := range methods {
				secs, err := measureDenseBatch(method, m, batch, tuples)
				if err != nil {
					return nil, fmt.Errorf("batch-delta-%s: batch=%d method=%s: %w", skew, batch, method, err)
				}
				point.Seconds[method] = secs
			}
			res.Points = append(res.Points, point)
		}
		sortPoints(res.Points)
		out = append(out, res)
	}

	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%08d", i)
	}
	shards := min(4, m)
	methods := []Method{MethodKeyedPerEvent, MethodKeyedBatched}
	for _, skew := range []string{"zipf", "uniform"} {
		var (
			dist stream.Distribution
			err  error
		)
		if skew == "zipf" {
			dist, err = stream.NewZipf(m, batchDeltaZipfS)
		} else {
			dist, err = stream.NewUniform(m)
		}
		if err != nil {
			return nil, err
		}
		res := &Result{
			ID:      "batch-delta-keyed-" + skew,
			Title:   fmt.Sprintf("batched vs per-event keyed ingestion, %s keys, shards=%d, n=%d, m=%d, 1 producer", skew, shards, n, m),
			XLabel:  "batch size",
			Methods: methods,
		}
		// The per-event path never sees the batch size, so its baseline is
		// measured once per skew and reused across the sweep.
		perEventSecs := -1.0
		for _, batch := range sizes {
			point := Point{X: int64(batch), Seconds: make(map[Method]float64, len(methods))}
			for _, method := range methods {
				if method == MethodKeyedPerEvent && perEventSecs >= 0 {
					point.Seconds[method] = perEventSecs
					continue
				}
				secs, err := measureKeyedBatch(method, m, shards, batch, n, keys, dist, scale.Seed)
				if err != nil {
					return nil, fmt.Errorf("batch-delta-keyed-%s: batch=%d method=%s: %w", skew, batch, method, err)
				}
				if method == MethodKeyedPerEvent {
					perEventSecs = secs
				}
				point.Seconds[method] = secs
			}
			res.Points = append(res.Points, point)
		}
		sortPoints(res.Points)
		out = append(out, res)
	}
	return out, nil
}
