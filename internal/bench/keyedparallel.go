package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sprofile"
	"sprofile/internal/stream"
)

// The keyed-parallel experiment's methods: the serial Keyed ingesting from
// one goroutine (the pure single-threaded baseline), the same Keyed behind
// one global mutex fed by GOMAXPROCS producers (the HTTP server's hot path
// before it moved to KeyedConcurrent), and the lock-striped KeyedConcurrent
// under the same parallel producers. The swept variable is the shard/stripe
// count; the serial and mutex baselines ignore it, so their rows are the
// flatlines the striped row is measured against.
const (
	MethodKeyedSerial  Method = "keyed-serial"
	MethodKeyedMutex   Method = "keyed-mutex"
	MethodKeyedStriped Method = "keyed-striped"
)

// keyedParallelShards is the shard-count sweep of the keyed-parallel
// experiment.
var keyedParallelShards = []int{1, 4, 16}

// keyedAddFunc ingests one key; both methods reduce to this shape.
type keyedAddFunc func(key string) error

// buildKeyedMethod constructs the profile under test and returns its add
// path (thread-safe for the parallel methods) plus how many producer
// goroutines drive it.
func buildKeyedMethod(method Method, m, shards int) (keyedAddFunc, int, error) {
	switch method {
	case MethodKeyedSerial:
		k, err := sprofile.NewKeyed[string](m)
		if err != nil {
			return nil, 0, err
		}
		return k.Add, 1, nil
	case MethodKeyedMutex:
		k, err := sprofile.NewKeyed[string](m)
		if err != nil {
			return nil, 0, err
		}
		var mu sync.Mutex
		return func(key string) error {
			mu.Lock()
			defer mu.Unlock()
			return k.Add(key)
		}, runtime.GOMAXPROCS(0), nil
	case MethodKeyedStriped:
		k, err := sprofile.BuildKeyed[string](m, sprofile.WithSharding(shards))
		if err != nil {
			return nil, 0, err
		}
		return k.Add, runtime.GOMAXPROCS(0), nil
	default:
		return nil, 0, fmt.Errorf("bench: unknown keyed method %q", method)
	}
}

// measureKeyedParallel ingests n keyed add events from the method's producer
// goroutines, each drawing uniformly from a pool of m keys, and returns the
// wall-clock seconds. Construction is included, mirroring Measure's protocol.
func measureKeyedParallel(method Method, m, shards, n int, keys []string, seed uint64) (float64, error) {
	start := time.Now()
	add, workers, err := buildKeyedMethod(method, m, shards)
	if err != nil {
		return 0, err
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	per := n / workers
	for w := 0; w < workers; w++ {
		count := per
		if w == workers-1 {
			count = n - per*(workers-1)
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			rng := stream.NewRNG(seed + uint64(w)*2654435761)
			for i := 0; i < count; i++ {
				if err := add(keys[rng.Intn(len(keys))]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, count)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed.Seconds(), nil
}

// KeyedParallel measures concurrent keyed ingestion throughput as a function
// of the shard (and mapper stripe) count: GOMAXPROCS producer goroutines
// push add events through the full key→id→profile pipeline. The keyed-mutex
// column is today's single-lock baseline and stays flat; the keyed-striped
// column is the same workload through KeyedConcurrent, whose time drops as
// shards give concurrent producers disjoint locks (on a multi-core host;
// with one CPU the two columns mainly show the striping overhead).
func KeyedParallel(scale Scale) (*Result, error) {
	n := scale.Figure4N
	m := scale.Figure6M
	keys := make([]string, m)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%08d", i)
	}
	methods := []Method{MethodKeyedSerial, MethodKeyedMutex, MethodKeyedStriped}
	res := &Result{
		ID: "keyed-parallel",
		Title: fmt.Sprintf("concurrent keyed ingestion, mutex vs striped, n=%d, m=%d, %d producers",
			n, m, runtime.GOMAXPROCS(0)),
		XLabel:  "shards",
		Methods: methods,
	}
	for _, shards := range keyedParallelShards {
		point := Point{X: int64(shards), Seconds: make(map[Method]float64, len(methods))}
		for _, method := range methods {
			secs, err := measureKeyedParallel(method, m, shards, n, keys, scale.Seed)
			if err != nil {
				return nil, fmt.Errorf("keyed-parallel: shards=%d method=%s: %w", shards, method, err)
			}
			point.Seconds[method] = secs
		}
		res.Points = append(res.Points, point)
	}
	sortPoints(res.Points)
	return res, nil
}
