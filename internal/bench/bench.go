// Package bench is the experiment harness behind cmd/sprofile-bench: it
// defines one experiment per figure of the paper's evaluation (§3) plus a set
// of ablation studies, runs them at a configurable scale, and renders the
// results as text tables and CSV so they can be compared with the paper's
// plots.
//
// The paper reports wall-clock CPU seconds for processing n log-stream tuples
// while keeping a statistic (the mode in §3.1, the median in §3.2) up to
// date. The harness reproduces that measurement protocol: tuples are
// generated outside the timed region in chunks, and the timed region applies
// each tuple to the data structure under test and immediately asks it for the
// statistic, exactly once per tuple.
package bench

import (
	"fmt"
	"time"

	"sprofile/internal/baseline/bstprof"
	"sprofile/internal/baseline/bucketprof"
	"sprofile/internal/baseline/fenwickprof"
	"sprofile/internal/baseline/heapprof"
	"sprofile/internal/core"
	"sprofile/internal/profiler"
	"sprofile/internal/stream"
)

// Method names a profiler implementation under measurement.
type Method string

// The methods the harness can measure.
const (
	MethodSProfile Method = "s-profile"
	MethodHeap     Method = "heap"
	MethodTreap    Method = "tree-treap"
	MethodRedBlack Method = "tree-redblack"
	MethodSkipList Method = "skip-list"
	MethodFenwick  Method = "fenwick"
	MethodBucket   Method = "bucket-scan"
)

// Task is the statistic kept up to date while the stream is applied.
type Task int

const (
	// TaskMode queries the most frequent object after every update (§3.1).
	TaskMode Task = iota
	// TaskMedian queries the median frequency after every update (§3.2).
	TaskMedian
	// TaskMin queries the least frequent object after every update (the
	// graph-shaving primitive from §2.3).
	TaskMin
	// TaskUpdateOnly applies updates without issuing any query; it isolates
	// pure maintenance cost for the ablation benchmarks.
	TaskUpdateOnly
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskMode:
		return "mode"
	case TaskMedian:
		return "median"
	case TaskMin:
		return "min"
	case TaskUpdateOnly:
		return "update-only"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// NewProfiler constructs the profiler behind a method name. The heap is
// oriented to serve the requested task (max-heap for mode, min-heap for min).
func NewProfiler(method Method, m int, task Task) (profiler.Profiler, error) {
	switch method {
	case MethodSProfile:
		return core.New(m)
	case MethodHeap:
		orientation := heapprof.MaxHeap
		if task == TaskMin {
			orientation = heapprof.MinHeap
		}
		return heapprof.New(m, orientation)
	case MethodTreap:
		return bstprof.New(m, bstprof.Treap)
	case MethodRedBlack:
		return bstprof.New(m, bstprof.RedBlack)
	case MethodSkipList:
		return bstprof.New(m, bstprof.SkipList)
	case MethodFenwick:
		return fenwickprof.New(m)
	case MethodBucket:
		return bucketprof.New(m)
	default:
		return nil, fmt.Errorf("bench: unknown method %q", method)
	}
}

// Measurement is the outcome of one (method, workload, n, m, task) run.
type Measurement struct {
	Method  Method
	Task    Task
	N       int
	M       int
	Seconds float64
	// NsPerOp is the average wall-clock nanoseconds per tuple, including the
	// per-tuple statistic query.
	NsPerOp float64
}

// chunkSize bounds the tuple buffer used to keep stream generation outside
// the timed region without materialising the whole stream.
const chunkSize = 1 << 16

// Measure processes n tuples of the workload with the given method, keeping
// the task statistic up to date, and returns the timing. Construction of the
// data structure is included in the measured time (for m much larger than n
// the O(m) or O(m log m) setup is a real cost the paper's m-sweeps expose).
func Measure(method Method, w stream.Workload, n int, task Task) (Measurement, error) {
	if n <= 0 {
		return Measurement{}, fmt.Errorf("bench: n must be positive, got %d", n)
	}
	m := w.M()
	buf := make([]core.Tuple, chunkSize)

	start := time.Now()
	p, err := NewProfiler(method, m, task)
	if err != nil {
		return Measurement{}, err
	}
	elapsed := time.Since(start)

	remaining := n
	for remaining > 0 {
		c := chunkSize
		if remaining < c {
			c = remaining
		}
		chunk := buf[:c]
		for i := range chunk {
			chunk[i] = w.Next()
		}

		chunkStart := time.Now()
		if err := applyChunk(p, chunk, task); err != nil {
			return Measurement{}, err
		}
		elapsed += time.Since(chunkStart)
		remaining -= c
	}

	seconds := elapsed.Seconds()
	return Measurement{
		Method:  method,
		Task:    task,
		N:       n,
		M:       m,
		Seconds: seconds,
		NsPerOp: seconds * 1e9 / float64(n),
	}, nil
}

// applyChunk applies every tuple and issues the per-tuple query. The query
// results are accumulated into a sink so the compiler cannot elide them.
func applyChunk(p profiler.Profiler, chunk []core.Tuple, task Task) error {
	var sink int64
	for _, t := range chunk {
		if err := profiler.Apply(p, t); err != nil {
			return err
		}
		switch task {
		case TaskMode:
			e, _, err := p.Mode()
			if err != nil {
				return err
			}
			sink += e.Frequency
		case TaskMedian:
			e, err := p.Median()
			if err != nil {
				return err
			}
			sink += e.Frequency
		case TaskMin:
			e, _, err := p.Min()
			if err != nil {
				return err
			}
			sink += e.Frequency
		case TaskUpdateOnly:
		}
	}
	benchSink += sink
	return nil
}

// benchSink defeats dead-code elimination of the per-tuple query results.
var benchSink int64
