package bench

import (
	"strings"
	"testing"

	"sprofile/internal/stream"
)

func TestNewProfilerAllMethods(t *testing.T) {
	for _, method := range []Method{
		MethodSProfile, MethodHeap, MethodTreap, MethodRedBlack, MethodSkipList, MethodFenwick, MethodBucket,
	} {
		p, err := NewProfiler(method, 100, TaskMode)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if p.Cap() != 100 {
			t.Fatalf("%s: Cap() = %d", method, p.Cap())
		}
	}
	if _, err := NewProfiler("nonsense", 10, TaskMode); err == nil {
		t.Fatalf("unknown method accepted")
	}
	// The heap must flip orientation for the min task.
	p, err := NewProfiler(MethodHeap, 10, TaskMin)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Min(); err != nil {
		t.Fatalf("min-task heap cannot answer Min: %v", err)
	}
}

func TestTaskString(t *testing.T) {
	for task, want := range map[Task]string{
		TaskMode: "mode", TaskMedian: "median", TaskMin: "min", TaskUpdateOnly: "update-only",
	} {
		if task.String() != want {
			t.Fatalf("Task %d String() = %q, want %q", task, task.String(), want)
		}
	}
}

func TestMeasureBasics(t *testing.T) {
	g, err := stream.Stream1(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Measure(MethodSProfile, g, 5000, TaskMode)
	if err != nil {
		t.Fatal(err)
	}
	if meas.N != 5000 || meas.M != 1000 {
		t.Fatalf("Measurement = %+v", meas)
	}
	if meas.Seconds <= 0 || meas.NsPerOp <= 0 {
		t.Fatalf("non-positive timing: %+v", meas)
	}
	if _, err := Measure(MethodSProfile, g, 0, TaskMode); err == nil {
		t.Fatalf("Measure accepted n=0")
	}
}

func TestMeasureAllTasks(t *testing.T) {
	for _, task := range []Task{TaskMode, TaskMedian, TaskMin, TaskUpdateOnly} {
		g, err := stream.Stream1(200, 2)
		if err != nil {
			t.Fatal(err)
		}
		method := MethodSProfile
		meas, err := Measure(method, g, 1000, task)
		if err != nil {
			t.Fatalf("task %v: %v", task, err)
		}
		if meas.Task != task {
			t.Fatalf("task %v recorded as %v", task, meas.Task)
		}
	}
}

func TestFigureExperimentsAtTinyScale(t *testing.T) {
	scale := TinyScale()
	for _, id := range []string{"figure3", "figure4", "figure5", "figure6"} {
		results, err := Run(id, scale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(results) == 0 {
			t.Fatalf("%s: no result panels", id)
		}
		for _, r := range results {
			if len(r.Points) == 0 {
				t.Fatalf("%s/%s: no points", id, r.ID)
			}
			for _, p := range r.Points {
				for _, m := range r.Methods {
					if p.Seconds[m] <= 0 {
						t.Fatalf("%s/%s: non-positive seconds for %s at x=%d", id, r.ID, m, p.X)
					}
				}
			}
			table := r.Table()
			if !strings.Contains(table, r.ID) {
				t.Fatalf("%s: table missing experiment id:\n%s", id, table)
			}
			csv := r.CSV()
			if lines := strings.Count(csv, "\n"); lines != len(r.Points)+1 {
				t.Fatalf("%s/%s: CSV has %d lines, want %d", id, r.ID, lines, len(r.Points)+1)
			}
		}
	}
}

func TestAblationExperimentsAtTinyScale(t *testing.T) {
	scale := TinyScale()
	for _, id := range []string{
		"ablation-treekind", "ablation-fenwick", "ablation-blockhint",
		"ablation-workloads", "graph-shaving", "sliding-window", "keyed-parallel",
		"recovery", "batch-delta", "async-ingest",
	} {
		results, err := Run(id, scale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, r := range results {
			if len(r.Points) == 0 {
				t.Fatalf("%s: no points", id)
			}
			if r.Table() == "" || r.CSV() == "" {
				t.Fatalf("%s: empty rendering", id)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("figure99", TinyScale()); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestExperimentIDsCovered(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 8 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
}

func TestResultSpeedupAndGrowth(t *testing.T) {
	r := &Result{
		ID:      "test",
		Title:   "test",
		XLabel:  "x",
		Methods: []Method{MethodHeap, MethodSProfile},
		Points: []Point{
			{X: 1, Seconds: map[Method]float64{MethodHeap: 2.0, MethodSProfile: 1.0}},
			{X: 2, Seconds: map[Method]float64{MethodHeap: 6.0, MethodSProfile: 2.0}},
		},
	}
	min, max := r.Speedup(MethodHeap, MethodSProfile)
	if min != 2.0 || max != 3.0 {
		t.Fatalf("Speedup = (%g, %g), want (2, 3)", min, max)
	}
	if g := r.GrowthFactor(MethodSProfile); g != 2.0 {
		t.Fatalf("GrowthFactor = %g, want 2", g)
	}
	if g := r.GrowthFactor(MethodHeap); g != 3.0 {
		t.Fatalf("GrowthFactor = %g, want 3", g)
	}
	empty := &Result{Methods: []Method{MethodHeap, MethodSProfile}}
	if min, max := empty.Speedup(MethodHeap, MethodSProfile); min != 0 || max != 0 {
		t.Fatalf("empty Speedup = (%g, %g)", min, max)
	}
	if g := empty.GrowthFactor(MethodHeap); g != 1 {
		t.Fatalf("empty GrowthFactor = %g", g)
	}
}

func TestResultCategoricalXNames(t *testing.T) {
	r := &Result{
		ID:      "cat",
		Title:   "categorical",
		XLabel:  "workload",
		Methods: []Method{MethodSProfile},
		XNames:  []string{"alpha", "beta"},
		Points: []Point{
			{X: 0, Seconds: map[Method]float64{MethodSProfile: 1}},
			{X: 1, Seconds: map[Method]float64{MethodSProfile: 2}},
		},
	}
	table := r.Table()
	if !strings.Contains(table, "alpha") || !strings.Contains(table, "beta") {
		t.Fatalf("categorical table missing names:\n%s", table)
	}
	csv := r.CSV()
	if !strings.Contains(csv, "alpha,") {
		t.Fatalf("categorical CSV missing names:\n%s", csv)
	}
}
