package bench

import (
	"fmt"
	"time"

	"sprofile/internal/core"
	"sprofile/internal/graph"
	"sprofile/internal/stream"
	"sprofile/internal/window"
)

// AblationTreeKind checks that the §3.2 gap is not an artifact of the chosen
// balanced tree: both the treap and the red-black tree are measured against
// S-Profile on the median-maintenance task over the Figure-6 n sweep.
func AblationTreeKind(scale Scale) (*Result, error) {
	return runSweep(
		"ablation-treekind",
		fmt.Sprintf("median maintenance by ordered-index engine, m=%d, stream1", scale.Figure6M),
		"n (tuples)",
		[]Method{MethodTreap, MethodRedBlack, MethodSkipList, MethodSProfile},
		TaskMedian,
		scale.Figure6NValues,
		func(n int) (stream.Workload, int, error) {
			g, err := stream.Stream1(scale.Figure6M, scale.Seed)
			return g, n, err
		},
	)
}

// AblationFenwick asks how close an O(log F) frequency-domain index gets to
// the O(1) bound: the Fenwick profiler joins the median comparison.
func AblationFenwick(scale Scale) (*Result, error) {
	return runSweep(
		"ablation-fenwick",
		fmt.Sprintf("median maintenance, Fenwick index vs balanced tree vs S-Profile, m=%d, stream1", scale.Figure6M),
		"n (tuples)",
		[]Method{MethodFenwick, MethodRedBlack, MethodSProfile},
		TaskMedian,
		scale.Figure6NValues,
		func(n int) (stream.Workload, int, error) {
			g, err := stream.Stream1(scale.Figure6M, scale.Seed)
			return g, n, err
		},
	)
}

// AblationBlockHint measures the effect of pre-sizing the block slab: with no
// hint the slab grows geometrically during the first updates; with a hint the
// hot path never allocates. The swept variable is the hint size.
func AblationBlockHint(scale Scale) (*Result, error) {
	n := scale.Figure4N
	m := scale.Figure3M
	hints := []int{0, 16, 256, 4096, 65536}
	res := &Result{
		ID:      "ablation-blockhint",
		Title:   fmt.Sprintf("block slab pre-sizing, n=%d, m=%d, stream1 (update only)", n, m),
		XLabel:  "block hint",
		Methods: []Method{MethodSProfile},
	}
	buf := make([]core.Tuple, chunkSize)
	for _, hint := range hints {
		g, err := stream.Stream1(m, scale.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		p, err := core.New(m, core.WithBlockHint(hint))
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		remaining := n
		for remaining > 0 {
			c := chunkSize
			if remaining < c {
				c = remaining
			}
			chunk := buf[:c]
			for i := range chunk {
				chunk[i] = g.Next()
			}
			chunkStart := time.Now()
			if _, err := p.ApplyAll(chunk); err != nil {
				return nil, err
			}
			elapsed += time.Since(chunkStart)
			remaining -= c
		}
		res.Points = append(res.Points, Point{
			X:       int64(hint),
			Seconds: map[Method]float64{MethodSProfile: elapsed.Seconds()},
		})
	}
	sortPoints(res.Points)
	return res, nil
}

// AblationWorkloads measures mode maintenance across the full workload suite
// (the paper's three streams plus Zipfian, burst, sawtooth, drain and
// round-robin) to show that S-Profile's advantage is not tied to one
// particular stream shape.
func AblationWorkloads(scale Scale) (*Result, error) {
	names := stream.WorkloadNames()
	m := scale.Figure6M
	n := scale.Figure6N
	res := &Result{
		ID:      "ablation-workloads",
		Title:   fmt.Sprintf("mode maintenance by workload, n=%d, m=%d", n, m),
		XLabel:  "workload",
		Methods: []Method{MethodHeap, MethodSProfile},
		XNames:  names,
	}
	for idx, name := range names {
		point := Point{X: int64(idx), Seconds: make(map[Method]float64, 2)}
		for _, method := range res.Methods {
			w, err := stream.NamedWorkload(name, m, scale.Seed)
			if err != nil {
				return nil, err
			}
			meas, err := Measure(method, w, n, TaskMode)
			if err != nil {
				return nil, err
			}
			point.Seconds[method] = meas.Seconds
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// GraphShaving measures the §2.3 application: greedy peeling of a random
// graph, driven by each minimum-degree tracker engine. The swept variable is
// the node count; every graph has an average degree of about 8.
func GraphShaving(scale Scale) (*Result, error) {
	sizes := graphShavingSizes(scale)
	res := &Result{
		ID:      "graph-shaving",
		Title:   "greedy peeling (densest subgraph) by min-degree engine, avg degree 8",
		XLabel:  "nodes",
		Methods: []Method{Method(graph.EngineHeap.String()), Method(graph.EngineBucket.String()), Method(graph.EngineSProfile.String())},
	}
	for _, nodes := range sizes {
		g, err := randomGraph(nodes, nodes*4, scale.Seed)
		if err != nil {
			return nil, err
		}
		point := Point{X: int64(nodes), Seconds: make(map[Method]float64, 3)}
		for _, engine := range graph.Engines() {
			start := time.Now()
			if _, err := graph.Peel(g, engine); err != nil {
				return nil, err
			}
			point.Seconds[Method(engine.String())] = time.Since(start).Seconds()
		}
		res.Points = append(res.Points, point)
	}
	sortPoints(res.Points)
	return res, nil
}

// graphShavingSizes derives the node-count sweep from the scale's Figure-6
// sizes so that -full runs a larger study.
func graphShavingSizes(scale Scale) []int {
	base := scale.Figure6M
	return []int{base / 10, base / 4, base / 2, base}
}

// randomGraph builds a random multigraph with the given node and edge counts.
func randomGraph(nodes, edges int, seed uint64) (*graph.Graph, error) {
	g, err := graph.NewGraph(nodes)
	if err != nil {
		return nil, err
	}
	rng := stream.NewRNG(seed)
	for i := 0; i < edges; i++ {
		u := rng.Intn(nodes)
		v := rng.Intn(nodes)
		if u == v {
			v = (v + 1) % nodes
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SlidingWindow measures the §2.3 sliding-window adapter: n tuples are pushed
// through windows of increasing size while the mode is kept up to date, for
// the heap baseline and for S-Profile. Expiry doubles the number of ±1
// updates per tuple, so the O(1)-vs-O(log m) gap persists.
func SlidingWindow(scale Scale) (*Result, error) {
	m := scale.Figure6M
	n := scale.Figure6N
	windowSizes := []int{1_000, 10_000, 50_000}
	res := &Result{
		ID:      "sliding-window",
		Title:   fmt.Sprintf("windowed mode maintenance, n=%d, m=%d, stream1", n, m),
		XLabel:  "window size",
		Methods: []Method{MethodHeap, MethodSProfile},
	}
	for _, size := range windowSizes {
		point := Point{X: int64(size), Seconds: make(map[Method]float64, 2)}
		for _, method := range res.Methods {
			g, err := stream.Stream1(m, scale.Seed)
			if err != nil {
				return nil, err
			}
			seconds, err := measureWindow(method, g, n, size)
			if err != nil {
				return nil, err
			}
			point.Seconds[method] = seconds
		}
		res.Points = append(res.Points, point)
	}
	sortPoints(res.Points)
	return res, nil
}

// measureWindow pushes n tuples of w through a sliding window of the given
// size over the method's profiler, querying the mode after every push.
func measureWindow(method Method, w stream.Workload, n, size int) (float64, error) {
	m := w.M()
	buf := make([]core.Tuple, chunkSize)

	start := time.Now()
	p, err := NewProfiler(method, m, TaskMode)
	if err != nil {
		return 0, err
	}
	win, err := window.New(p, size)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)

	var sink int64
	remaining := n
	for remaining > 0 {
		c := chunkSize
		if remaining < c {
			c = remaining
		}
		chunk := buf[:c]
		for i := range chunk {
			chunk[i] = w.Next()
		}
		chunkStart := time.Now()
		for _, t := range chunk {
			if err := win.Push(t); err != nil {
				return 0, err
			}
			e, _, err := p.Mode()
			if err != nil {
				return 0, err
			}
			sink += e.Frequency
		}
		elapsed += time.Since(chunkStart)
		remaining -= c
	}
	benchSink += sink
	return elapsed.Seconds(), nil
}
