package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the Prometheus metric type of a family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// family is one registered metric family: a name, help text, a kind, and
// either a single unlabeled metric or a vec of labeled children.
type family struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // callback gauge/counter; nil otherwise

	vec *vec // labeled family; nil otherwise
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format v0.0.4. Registration is idempotent by name: asking for a
// family that already exists returns the existing one (and panics if the
// kind or label set differs, which is a programming error). All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	hookMu   sync.Mutex
	hooks    map[uint64]func()
	nextHook uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every plane registers into and
// GET /metrics serves.
func Default() *Registry { return defaultRegistry }

// register adds fam, or returns the existing family of the same name after
// checking that the shapes agree.
func (r *Registry) register(fam *family) *family {
	checkName(fam.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.families[fam.name]; ok {
		if old.kind != fam.kind || (old.vec == nil) != (fam.vec == nil) {
			panic(fmt.Sprintf("metrics: %s re-registered as a different kind (%s vs %s)", fam.name, old.kind, fam.kind))
		}
		if old.vec != nil && strings.Join(old.vec.labels, ",") != strings.Join(fam.vec.labels, ",") {
			panic(fmt.Sprintf("metrics: %s re-registered with different labels", fam.name))
		}
		return old
	}
	r.families[fam.name] = fam
	return fam
}

// Counter returns the registered counter name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	fam := r.register(&family{name: name, help: help, kind: KindCounter, counter: &Counter{}})
	return fam.counter
}

// Gauge returns the registered gauge name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	fam := r.register(&family{name: name, help: help, kind: KindGauge, gauge: &Gauge{}})
	return fam.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at render time.
// Re-registering the same name keeps the FIRST callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindGauge, fn: fn})
}

// CounterFunc registers a counter whose value is computed by fn at render
// time; fn must be monotonically non-decreasing (e.g. a runtime total).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindCounter, fn: fn})
}

// Histogram returns the registered histogram name, creating it with the
// given bucket upper bounds if needed (an implicit +Inf bucket is always
// appended).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	fam := r.register(&family{name: name, help: help, kind: KindHistogram, hist: newHistogram(buckets)})
	return fam.hist
}

// CounterVec returns the registered labeled counter family name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	fam := r.register(&family{name: name, help: help, kind: KindCounter, vec: newVec(labels, func() any { return &Counter{} })})
	return &CounterVec{fam.vec}
}

// GaugeVec returns the registered labeled gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	fam := r.register(&family{name: name, help: help, kind: KindGauge, vec: newVec(labels, func() any { return &Gauge{} })})
	return &GaugeVec{fam.vec}
}

// HistogramVec returns the registered labeled histogram family name. All
// children share the bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	fam := r.register(&family{name: name, help: help, kind: KindHistogram, vec: newVec(labels, func() any { return newHistogram(bounds) })})
	return &HistogramVec{fam.vec}
}

// OnScrape registers f to run at the start of every render — the place to
// refresh gauges from live state (mailbox depths, replication lag). The
// returned cancel removes the hook; owners of finite-lifetime state MUST
// call it on close so scrapes stop touching dead objects.
func (r *Registry) OnScrape(f func()) (cancel func()) {
	r.hookMu.Lock()
	if r.hooks == nil {
		r.hooks = make(map[uint64]func())
	}
	r.nextHook++
	id := r.nextHook
	r.hooks[id] = f
	r.hookMu.Unlock()
	return func() {
		r.hookMu.Lock()
		delete(r.hooks, id)
		r.hookMu.Unlock()
	}
}

// runHooks executes the scrape hooks outside the registry lock (hooks set
// gauges, which would otherwise deadlock on registration-during-scrape).
func (r *Registry) runHooks() {
	r.hookMu.Lock()
	fns := make([]func(), 0, len(r.hooks))
	for _, f := range r.hooks {
		fns = append(fns, f)
	}
	r.hookMu.Unlock()
	for _, f := range fns {
		f()
	}
}

// ContentType is the Content-Type of the text exposition format v0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format. Scrape hooks run per request.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = r.Write(w)
	})
}

// Write renders every family, sorted by name, in the text exposition format,
// running the scrape hooks first.
func (r *Registry) Write(w io.Writer) error {
	r.runHooks()
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, fam := range r.families {
		fams = append(fams, fam)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, fam := range fams {
		fam.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// render writes one family: # HELP, # TYPE, then the samples.
func (f *family) render(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.kind))
	b.WriteByte('\n')

	if f.vec != nil {
		for _, ch := range f.vec.sortedChildren() {
			switch f.kind {
			case KindCounter:
				writeSample(b, f.name, ch.labelStr, float64(ch.metric.(*Counter).Value()), true)
			case KindGauge:
				writeSample(b, f.name, ch.labelStr, ch.metric.(*Gauge).Value(), false)
			case KindHistogram:
				renderHistogram(b, f.name, ch.labelStr, ch.metric.(*Histogram))
			}
		}
		return
	}
	switch {
	case f.fn != nil:
		writeSample(b, f.name, "", f.fn(), f.kind == KindCounter)
	case f.counter != nil:
		writeSample(b, f.name, "", float64(f.counter.Value()), true)
	case f.gauge != nil:
		writeSample(b, f.name, "", f.gauge.Value(), false)
	case f.hist != nil:
		renderHistogram(b, f.name, "", f.hist)
	}
}

// renderHistogram writes the _bucket/_sum/_count triplet of one histogram
// (child). labelStr is the pre-rendered label body without braces ("" for
// the unlabeled case).
func renderHistogram(b *strings.Builder, name, labelStr string, h *Histogram) {
	cum, count, sum := h.snapshot()
	for i, bound := range h.upper {
		le := formatFloat(bound)
		writeSample(b, name+"_bucket", joinLabels(labelStr, `le="`+le+`"`), float64(cum[i]), true)
	}
	writeSample(b, name+"_bucket", joinLabels(labelStr, `le="+Inf"`), float64(count), true)
	writeSample(b, name+"_sum", labelStr, sum, false)
	writeSample(b, name+"_count", labelStr, float64(count), true)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// writeSample emits one sample line. integral renders whole-valued samples
// without an exponent so counters read naturally.
func writeSample(b *strings.Builder, name, labelStr string, v float64, integral bool) {
	b.WriteString(name)
	if labelStr != "" {
		b.WriteByte('{')
		b.WriteString(labelStr)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	if integral && v == float64(uint64(v)) {
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	} else {
		b.WriteString(formatFloat(v))
	}
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// checkName panics on a family name the exposition grammar (or the repo's
// own conventions) would reject; catching it at registration turns a silent
// scrape-time corruption into an immediate test failure.
func checkName(name string) {
	if name == "" {
		panic("metrics: empty family name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid family name %q", name))
		}
	}
}
