// Package metrics is a zero-dependency instrumentation library for the
// S-Profile planes: atomic counters and gauges, fixed-bucket histograms with
// lock-free observation, labeled families with bounded cardinality, and a
// Registry that renders the Prometheus text exposition format (v0.0.4), so
// every runtime statistic the profiler maintains is scrapeable by stock
// monitoring tooling.
//
// Design constraints, in order:
//
//   - The write side must be cheap enough for ingest hot paths: every update
//     is one or two atomic adds (a histogram observation is a binary search
//     over at most a few dozen bounds plus one bucket add and one CAS-loop
//     sum add), with no locks and no allocation.
//   - Instrumentation must be removable at runtime: SetEnabled(false) turns
//     every update into a single atomic load and branch, so a benchmark can
//     pin the uninstrumented baseline without rebuilding (see
//     BenchmarkApplyDeltas's metrics-off variant).
//   - Registration is idempotent by family name, so independent packages can
//     attach to the same family (the registry hands back the existing metric)
//     and repeated construction in tests cannot double-register.
//
// Metric naming follows the Prometheus conventions the repo's CI lints:
// every family is prefixed sprofile_, counters end in _total, and families
// measuring seconds or bytes say so in the name.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// enabled is the global instrumentation switch. Updates on every metric in
// the process check it first; render always works (values freeze while
// disabled). Default on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether metric updates are currently recorded. Call sites
// with expensive-to-compute observations (label building, time.Since) should
// check it before doing that work; the metric types check it again
// internally, so cheap call sites need not bother.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns metric recording on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing uint64, safe for concurrent use.
// The zero value is NOT usable — obtain counters from a Registry so they
// render.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n. Counters are monotonic; callers must not pass values that
// would require decrementing.
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with lock-free observation: each
// Observe is one binary search over the (immutable) bucket bounds, one
// atomic bucket increment and one CAS-loop sum add. Bucket counts are stored
// non-cumulatively and accumulated at render time, so concurrent observers
// never contend on more than their own bucket.
type Histogram struct {
	// upper holds the inclusive upper bounds of the finite buckets, sorted
	// ascending; counts has one extra slot at the end for +Inf.
	upper   []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	b := make([]float64, len(buckets))
	copy(b, buckets)
	sort.Float64s(b)
	// Drop duplicate bounds so the rendered le labels are unique.
	uniq := b[:0]
	for i, v := range b {
		if i == 0 || v != b[i-1] {
			uniq = append(uniq, v)
		}
	}
	return &Histogram{upper: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// Binary search for the first bound >= v; misses land in +Inf.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if enabled.Load() {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts (aligned with upper, then +Inf),
// the total count and the sum, each internally consistent per slot. A
// concurrent Observe may straddle the reads — standard for Prometheus
// histograms, where bucket/total skew of in-flight observations is accepted.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run, h.Sum()
}

// Quantile estimates quantile q (in [0,1]) from the bucket counts with
// linear interpolation inside the bucket, the same estimate Prometheus's
// histogram_quantile computes. It returns the highest finite bound when the
// quantile lands in the +Inf bucket, and 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	cum, count, _ := h.snapshot()
	if count == 0 || len(h.upper) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	for i, c := range cum {
		if float64(c) >= rank {
			if i >= len(h.upper) {
				return h.upper[len(h.upper)-1]
			}
			lower := 0.0
			var below uint64
			if i > 0 {
				lower = h.upper[i-1]
				below = cum[i-1]
			}
			width := h.upper[i] - lower
			inBucket := float64(c - below)
			if inBucket == 0 {
				return h.upper[i]
			}
			return lower + width*((rank-float64(below))/inBucket)
		}
	}
	return h.upper[len(h.upper)-1]
}

// ExpBuckets returns count bucket bounds growing exponentially from start by
// factor: start, start*factor, start*factor².., for histograms whose
// observations span orders of magnitude (latencies, sizes).
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExpBuckets requires start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns count bucket bounds from start spaced width apart.
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		panic("metrics: LinearBuckets requires count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// LatencyBuckets is the default bound set for operation latencies in
// seconds: 100µs to ~1.6s, doubling.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 15) }

// SizeBuckets is the default bound set for batch/event-count histograms:
// 1 to ~260k, quadrupling.
func SizeBuckets() []float64 { return ExpBuckets(1, 4, 10) }
