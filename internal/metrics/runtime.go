package metrics

import (
	"runtime"
	"sync/atomic"
	"time"
)

// processStart anchors the uptime gauge; recorded at package init, which for
// any real process is indistinguishable from process start.
var processStart = time.Now()

// memStats is the per-scrape runtime.MemStats snapshot: the scrape hook
// refreshes it once, and every runtime family renders from the same copy —
// one stop-the-world per scrape instead of one per family.
var memStats atomic.Pointer[runtime.MemStats]

func readMemStats() *runtime.MemStats {
	if ms := memStats.Load(); ms != nil {
		return ms
	}
	return &runtime.MemStats{}
}

// init registers the Go runtime families on the default registry, so every
// scrape carries scheduler and memory health next to the plane metrics.
func init() {
	r := Default()
	r.OnScrape(func() {
		ms := new(runtime.MemStats)
		runtime.ReadMemStats(ms)
		memStats.Store(ms)
	})
	r.GaugeFunc("sprofile_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("sprofile_go_gomaxprocs",
		"GOMAXPROCS: the scheduler's processor parallelism.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("sprofile_process_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(processStart).Seconds() })
	r.GaugeFunc("sprofile_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(readMemStats().HeapAlloc) })
	r.GaugeFunc("sprofile_go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { return float64(readMemStats().HeapSys) })
	r.GaugeFunc("sprofile_go_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(readMemStats().HeapObjects) })
	r.GaugeFunc("sprofile_go_gc_next_target_bytes",
		"Heap size at which the next GC cycle triggers.",
		func() float64 { return float64(readMemStats().NextGC) })
	r.CounterFunc("sprofile_go_gcs_total",
		"Completed GC cycles since process start.",
		func() float64 { return float64(readMemStats().NumGC) })
	r.CounterFunc("sprofile_go_gc_pause_seconds_total",
		"Cumulative seconds of GC stop-the-world pauses.",
		func() float64 { return float64(readMemStats().PauseTotalNs) / 1e9 })
}
