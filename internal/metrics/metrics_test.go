package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Idempotent registration hands back the same metric.
	if r.Counter("test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("test_x_total", "x")
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 5} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if want := 0.005 + 0.02 + 0.02 + 0.5 + 5; math.Abs(sum-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	wantCum := []uint64{1, 3, 4, 5}
	for i, w := range wantCum {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts decrease at %d: %v", i, cum)
		}
	}
	// An exact-boundary observation lands in its bucket (le is inclusive).
	h2 := r.Histogram("test_edge_seconds", "edge", []float64{1, 2})
	h2.Observe(1)
	cum2, _, _ := h2.snapshot()
	if cum2[0] != 1 {
		t.Fatalf("boundary observation missed its bucket: %v", cum2)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "q", LinearBuckets(0.1, 0.1, 10))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%10)/10 + 0.05)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.3 || p50 > 0.7 {
		t.Fatalf("p50 = %v, want ~0.5", p50)
	}
	if q := h.Quantile(1); q > 1.0 {
		t.Fatalf("p100 = %v beyond highest bound", q)
	}
	var empty Histogram
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_labeled_total", "labeled", "who")
	for i := 0; i < MaxCardinality+50; i++ {
		cv.With(fmt.Sprintf("client-%d", i)).Inc()
	}
	var buf strings.Builder
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `who="overflow"`) {
		t.Fatal("overflow child missing after cardinality bound")
	}
	// The overflow child accumulated everything past the bound (the bound
	// itself spends one slot on the overflow child).
	over := cv.With("anything-else")
	if over.Value() < 50 {
		t.Fatalf("overflow child = %d, want >= 50", over.Value())
	}
	// The bound admits MaxCardinality ordinary children plus the one
	// overflow child everything else collapses into.
	if lines := strings.Count(out, "test_labeled_total{"); lines > MaxCardinality+1 {
		t.Fatalf("rendered %d children, bound is %d", lines, MaxCardinality)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Total events.")
	c.Add(7)
	g := r.Gauge("test_queue_depth", "Depth with \"quotes\" and \\ slashes\nnewline.")
	g.Set(1.5)
	h := r.Histogram("test_dur_seconds", "Durations.", []float64{0.5})
	h.Observe(0.25)
	cv := r.CounterVec("test_by_route_total", "By route.", "route", "method")
	cv.With(`/v1/events`, "POST").Add(3)

	var buf strings.Builder
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_events_total Total events.\n",
		"# TYPE test_events_total counter\n",
		"test_events_total 7\n",
		"# TYPE test_queue_depth gauge\n",
		"test_queue_depth 1.5\n",
		"# TYPE test_dur_seconds histogram\n",
		`test_dur_seconds_bucket{le="0.5"} 1`,
		`test_dur_seconds_bucket{le="+Inf"} 1`,
		"test_dur_seconds_sum 0.25\n",
		"test_dur_seconds_count 1\n",
		`test_by_route_total{route="/v1/events",method="POST"} 3`,
		// HELP escapes only backslash and newline; quotes stay literal.
		`Depth with "quotes" and \\ slashes\nnewline.`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "test_by_route_total") > strings.Index(out, "test_events_total") {
		t.Fatal("families not sorted by name")
	}
}

func TestSetEnabledFreezesUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_frozen_total", "frozen")
	h := r.Histogram("test_frozen_seconds", "frozen", []float64{1})
	c.Inc()
	h.Observe(0.5)
	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	c.Add(100)
	h.Observe(0.5)
	if c.Value() != 1 {
		t.Fatalf("disabled counter moved: %d", c.Value())
	}
	if h.Count() != 1 {
		t.Fatalf("disabled histogram moved: %d", h.Count())
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "conc", ExpBuckets(0.001, 2, 10))
	c := r.Counter("test_conc_total", "conc")
	var wg sync.WaitGroup
	const G, per = 8, 10_000
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed*i%1000) / 1000)
				c.Inc()
			}
		}(g + 1)
	}
	wg.Wait()
	if got := c.Value(); got != G*per {
		t.Fatalf("counter = %d, want %d", got, G*per)
	}
	if got := h.Count(); got != G*per {
		t.Fatalf("histogram count = %d, want %d", got, G*per)
	}
}

func TestOnScrapeCancel(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_hooked", "hooked")
	n := 0
	cancel := r.OnScrape(func() { n++; g.Set(float64(n)) })
	var buf strings.Builder
	_ = r.Write(&buf)
	if n != 1 || g.Value() != 1 {
		t.Fatalf("hook did not run: n=%d g=%v", n, g.Value())
	}
	cancel()
	_ = r.Write(&buf)
	if n != 1 {
		t.Fatal("hook ran after cancel")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench", LatencyBuckets())
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) / 1e5)
			i++
		}
	})
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_off_total", "bench")
	SetEnabled(false)
	defer SetEnabled(true)
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
