package metrics

import (
	"sort"
	"strings"
	"sync"
)

// MaxCardinality bounds how many distinct label-value combinations one
// labeled family will track. The bound keeps a mistake — or an adversarial
// client — from turning a label like "route" into an unbounded allocation:
// once a family is full, every new combination collapses into a single
// overflow child whose label values are all "overflow".
const MaxCardinality = 256

// vec is the shared machinery of the labeled family types: an RWMutex-guarded
// map from the rendered label body to the child metric. Lookups on the hot
// path take the read lock only.
type vec struct {
	labels []string
	newFn  func() any

	mu       sync.RWMutex
	children map[string]*child
	overflow *child // lazily created once MaxCardinality is hit
}

type child struct {
	labelStr string // pre-rendered `k1="v1",k2="v2"` body
	metric   any
}

func newVec(labels []string, newFn func() any) *vec {
	return &vec{labels: labels, newFn: newFn, children: make(map[string]*child)}
}

// labelBody renders the label pairs for the given values, escaping values.
func (v *vec) labelBody(values []string) string {
	var b strings.Builder
	for i, name := range v.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// with returns the child metric for the given label values, creating it if
// the family is under its cardinality bound and collapsing into the overflow
// child otherwise.
func (v *vec) with(values ...string) any {
	if len(values) != len(v.labels) {
		panic("metrics: wrong number of label values")
	}
	key := v.labelBody(values)
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return ch.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok = v.children[key]; ok {
		return ch.metric
	}
	if len(v.children) >= MaxCardinality {
		if v.overflow == nil {
			vals := make([]string, len(v.labels))
			for i := range vals {
				vals[i] = "overflow"
			}
			v.overflow = &child{labelStr: v.labelBody(vals), metric: v.newFn()}
			v.children[v.overflow.labelStr] = v.overflow
		}
		return v.overflow.metric
	}
	ch = &child{labelStr: key, metric: v.newFn()}
	v.children[key] = ch
	return ch.metric
}

// sortedChildren returns the children ordered by label body, for
// deterministic rendering.
func (v *vec) sortedChildren() []*child {
	v.mu.RLock()
	out := make([]*child, 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labelStr < out[j].labelStr })
	return out
}

// CounterVec is a family of counters sharing a name and label names.
type CounterVec struct{ v *vec }

// With returns the counter for the given label values (order matches the
// label names at registration). Hot paths should resolve children once and
// hold the *Counter rather than calling With per operation.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values...).(*Counter) }

// GaugeVec is a family of gauges sharing a name and label names.
type GaugeVec struct{ v *vec }

// With returns the gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.v.with(values...).(*Gauge) }

// HistogramVec is a family of histograms sharing a name, label names and
// bucket bounds.
type HistogramVec struct{ v *vec }

// With returns the histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(values...).(*Histogram) }
