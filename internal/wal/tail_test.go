package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"sprofile/internal/core"
	"testing"
)

// tailRecord renders a record compactly so sequences compare with plain ==.
func tailRecord(rec Record) string {
	if rec.Batch {
		return fmt.Sprintf("batch:%s:+%d-%d", rec.Key, rec.Adds, rec.Removes)
	}
	return fmt.Sprintf("act%d:%s", rec.Action, rec.Key)
}

// drain reads chunks from dir starting at pos until the reader is caught up
// with the append head, feeding every byte through dec and collecting the
// decoded records. It mirrors a follower's ingest loop, including the
// sealed-segment advance.
func drain(t *testing.T, dir string, d *Dir, pos Position, dec *StreamDecoder) ([]string, Position) {
	t.Helper()
	var got []string
	for {
		chunk, err := ReadChunk(dir, pos, d.SegmentID(), 64) // small chunks to cross record boundaries
		if err != nil {
			t.Fatalf("ReadChunk(%v): %v", pos, err)
		}
		if len(chunk.Data) == 0 && !chunk.Sealed {
			return got, pos
		}
		if chunk.Segment != pos.Segment {
			if chunk.Segment != pos.Segment+1 || chunk.Offset != 0 {
				t.Fatalf("reader at %v jumped to segment %d offset %d", pos, chunk.Segment, chunk.Offset)
			}
			if dec.Buffered() != 0 {
				t.Fatalf("segment advance with %d bytes of a torn record buffered", dec.Buffered())
			}
			dec.Reset()
		}
		if err := dec.Feed(chunk.Data, func(rec Record) error {
			got = append(got, tailRecord(rec))
			return nil
		}); err != nil {
			t.Fatalf("Feed: %v", err)
		}
		pos = chunk.End()
	}
}

// TestTailRotationBoundary drives a reader across a Rotate: positioned at the
// end of segment N it must pick up segment N+1 at offset 0, with no record
// skipped or delivered twice.
func TestTailRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var want []string
	acts := []core.Action{core.ActionAdd, core.ActionRemove}
	appendOne := func(key string, action core.Action) {
		t.Helper()
		if _, err := d.Append(Record{Key: key, Action: action}); err != nil {
			t.Fatal(err)
		}
		want = append(want, fmt.Sprintf("act%d:%s", action, key))
	}
	for i := 0; i < 7; i++ {
		appendOne(fmt.Sprintf("seg1-key-%02d", i), acts[i%2])
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	var dec StreamDecoder
	got, pos := drain(t, dir, d, Position{Segment: 1}, &dec)
	if len(got) != 7 {
		t.Fatalf("pre-rotation drain: got %d records, want 7", len(got))
	}

	// The reader now sits exactly at the end of segment 1. Rotate and append
	// into segment 2; the next drain must deliver only the new records.
	if _, err := d.Rotate(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		appendOne(fmt.Sprintf("seg2-key-%02d", i), core.ActionAdd)
	}
	if _, err := d.AppendBatch([]BatchEntry{{Key: "seg2-batch", Adds: 3, Removes: 1}}); err != nil {
		t.Fatal(err)
	}
	want = append(want, "batch:seg2-batch:+3-1")
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	more, pos := drain(t, dir, d, pos, &dec)
	got = append(got, more...)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}

	// A second rotation while the reader is mid-segment: drain must still see
	// every record exactly once, in order.
	appendOne("seg2-late", core.ActionRemove)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Rotate(2); err != nil {
		t.Fatal(err)
	}
	appendOne("seg3-first", core.ActionAdd)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	more, pos = drain(t, dir, d, pos, &dec)
	got = append(got, more...)
	if pos.Segment != 3 {
		t.Fatalf("reader ended on segment %d, want 3", pos.Segment)
	}
	if len(got) != len(want) {
		t.Fatalf("after second rotation: got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReadChunkErrors(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Append(Record{Key: "k", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Rotate(1); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadChunk(dir, Position{Segment: 7}, d.SegmentID(), 0); !errors.Is(err, ErrSegmentMissing) {
		t.Fatalf("missing segment: got %v, want ErrSegmentMissing", err)
	}
	if _, err := ReadChunk(dir, Position{Segment: 1, Offset: 1 << 30}, d.SegmentID(), 0); !errors.Is(err, ErrOffsetBeyondEnd) {
		t.Fatalf("beyond end: got %v, want ErrOffsetBeyondEnd", err)
	}
	if err := d.DropThrough(1); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChunk(dir, Position{Segment: 1}, d.SegmentID(), 0); !errors.Is(err, ErrSegmentMissing) {
		t.Fatalf("pruned segment: got %v, want ErrSegmentMissing", err)
	}
}

// TestStreamDecoderByteAtATime feeds a whole segment one byte at a time: the
// header and every record must survive arbitrary chunk boundaries, and each
// record must be emitted exactly once.
func TestStreamDecoderByteAtATime(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	acts2 := []core.Action{core.ActionAdd, core.ActionRemove}
	var want []string
	for i := 0; i < 4; i++ {
		rec := Record{Key: fmt.Sprintf("key-%d", i), Action: acts2[i%2]}
		if _, err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, tailRecord(rec))
	}
	if _, err := d.AppendBatch([]BatchEntry{{Key: "b1", Adds: 2}, {Key: "b2", Removes: 5}}); err != nil {
		t.Fatal(err)
	}
	want = append(want, "batch:b1:+2-0", "batch:b2:+0-5")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, SegmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	var dec StreamDecoder
	var got []string
	for i := range data {
		if err := dec.Feed(data[i:i+1], func(rec Record) error {
			got = append(got, tailRecord(rec))
			return nil
		}); err != nil {
			t.Fatalf("Feed byte %d: %v", i, err)
		}
	}
	if dec.Buffered() != 0 {
		t.Fatalf("decoder holds %d bytes after a complete segment", dec.Buffered())
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestReplaySegmentValid checks the valid-end bookkeeping against a torn
// tail: the reported offset must cover exactly the complete records.
func TestReplaySegmentValid(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Append(Record{Key: fmt.Sprintf("key-%d", i), Action: core.ActionAdd}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SegmentName(1))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, end, err := ReplaySegmentValid(path, true, func(Record) error { return nil })
	if err != nil || n != 3 || end != int64(len(full)) {
		t.Fatalf("intact segment: n=%d end=%d err=%v, want 3, %d, nil", n, end, err, len(full))
	}

	// Tear the last record: append a fresh copy missing its final byte.
	if err := os.WriteFile(path, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	n, end, err = ReplaySegmentValid(path, true, func(Record) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("torn segment: n=%d err=%v, want 2, nil", n, err)
	}
	if end >= int64(len(full)-1) || end <= 0 {
		t.Fatalf("torn segment validEnd %d outside (0, %d)", end, len(full)-1)
	}
	if _, _, err := ReplaySegmentValid(path, false, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict torn replay: got %v, want ErrCorrupt", err)
	}
}
