package wal

import (
	"errors"
	"sync"
	"syscall"
	"testing"

	"sprofile/internal/core"
	"sprofile/internal/failpoint"
)

// TestSyncFailureFailsWholeCommitGroup pins the group-commit error contract:
// when the fsync behind a commit group fails, EVERY writer waiting on that
// group must see the failure — the watermark must not advance, no later Sync
// may falsely report the records durable, and the append head must rewind to
// the synced boundary when the log recovers via Roll.
func TestSyncFailureFailsWholeCommitGroup(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	d, dir := openTestDir(t, Options{})
	defer d.Close()

	for i := 0; i < 10; i++ {
		if _, err := d.Append(Record{Key: "k", Action: core.ActionAdd}); err != nil {
			t.Fatal(err)
		}
	}

	// Every fsync fails while armed — the first Sync to reach the disk
	// poisons the log; the rest of the group must inherit the failure.
	if err := failpoint.Enable("wal.sync", "error(eio)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = d.Sync()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("group member %d: Sync reported success for records the fsync never persisted", i)
		}
	}

	// The failure is sticky: even after the disk "recovers", a Sync on the
	// same fd must not be trusted (fsyncgate) — only Roll clears it.
	failpoint.DisableAll()
	if err := d.Sync(); err == nil {
		t.Fatal("Sync on a poisoned log reported success without a Roll")
	}
	if _, err := d.Append(Record{Key: "k", Action: core.ActionAdd}); err == nil {
		t.Fatal("Append on a poisoned log succeeded")
	}
	if _, err := d.AppendBatch([]BatchEntry{{Key: "k", Adds: 1}}); err == nil {
		t.Fatal("AppendBatch on a poisoned log succeeded")
	}
	if d.SyncError() == nil {
		t.Fatal("SyncError() nil on a poisoned log")
	}

	// Roll: fresh segment, poison cleared. The 10 records were flushed whole
	// before the fsync failed, so Roll salvages them into the new segment —
	// their writers were applied in memory before journaling, and dropping
	// the bytes would leave the queryable state permanently ahead of the
	// log. They end up durable-but-unacknowledged.
	if err := d.Roll(); err != nil {
		t.Fatal(err)
	}
	if d.SyncError() != nil {
		t.Fatalf("SyncError() after Roll: %v", d.SyncError())
	}
	if got := d.Appended(); got != 10 {
		t.Fatalf("append head after Roll = %d, want the 10 salvaged records", got)
	}

	for i := 0; i < 3; i++ {
		if _, err := d.Append(Record{Key: "post", Action: core.ActionAdd}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The log replays the salvaged pre-fault records plus the post-roll
	// ones — matching the in-memory state their appliers built.
	var k, post int
	n, err := ReplayDir(dir, func(r Record) error {
		switch r.Key {
		case "k":
			k++
		case "post":
			post++
		default:
			return errors.New("unexpected record replayed: " + r.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 || k != 10 || post != 3 {
		t.Fatalf("replayed %d (k=%d post=%d), want 13 (10 salvaged + 3 post)", n, k, post)
	}
}

// TestPartialSyncThenFailureKeepsSyncedPrefix covers the mixed case: some
// records synced successfully, more appended, then the disk dies. Roll
// truncates the poisoned segment back to the synced boundary — keeping the
// durable prefix, so the sealed segment replays cleanly — and salvages the
// flushed-but-unsynced records into the fresh segment, where they become
// durable without ever having been acknowledged.
func TestPartialSyncThenFailureKeepsSyncedPrefix(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	d, dir := openTestDir(t, Options{})
	defer d.Close()

	for i := 0; i < 5; i++ {
		if _, err := d.Append(Record{Key: "durable", Action: core.ActionAdd}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := d.Append(Record{Key: "unacked", Action: core.ActionAdd}); err != nil {
			t.Fatal(err)
		}
	}
	if err := failpoint.Enable("wal.sync", "error(enospc):count=1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Sync = %v, want ENOSPC", err)
	}
	failpoint.DisableAll()
	if err := d.Roll(); err != nil {
		t.Fatal(err)
	}
	if got := d.Appended(); got != 12 {
		t.Fatalf("append head after Roll = %d, want 5 synced + 7 salvaged", got)
	}
	if _, err := d.Append(Record{Key: "post", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	var durable, unacked, post int
	n, err := ReplayDir(dir, func(r Record) error {
		switch r.Key {
		case "durable":
			durable++
		case "unacked":
			unacked++
		case "post":
			post++
		default:
			return errors.New("unexpected record replayed: " + r.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 || durable != 5 || unacked != 7 || post != 1 {
		t.Fatalf("replayed %d (durable=%d unacked=%d post=%d), want 13 (5+7+1)", n, durable, unacked, post)
	}
}

// TestTornWriteOnFlushPoisonsAndRolls injects a short write under the bufio
// flush, leaving a half-record on disk, and proves Roll truncates it away so
// replay never sees the tear.
func TestTornWriteOnFlushPoisonsAndRolls(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	d, dir := openTestDir(t, Options{})
	defer d.Close()

	if _, err := d.Append(Record{Key: "torn-victim-with-a-longer-key", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("wal.write", "torn:count=1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err == nil {
		t.Fatal("Sync over a torn flush reported success")
	}
	failpoint.DisableAll()
	if err := d.Roll(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(Record{Key: "post", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ReplayDir(dir, func(r Record) error {
		if r.Key != "post" {
			return errors.New("torn record replayed: " + r.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
}

// TestRollOnHealthyLogIsNoOp: the recovery probe may race a Roll against a
// log that already recovered; rolling a healthy log must change nothing.
func TestRollOnHealthyLogIsNoOp(t *testing.T) {
	d, _ := openTestDir(t, Options{})
	defer d.Close()
	if _, err := d.Append(Record{Key: "k", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	seg := d.SegmentID()
	if err := d.Roll(); err != nil {
		t.Fatal(err)
	}
	if d.SegmentID() != seg {
		t.Fatal("Roll on a healthy log rotated the segment")
	}
	if d.Appended() != 1 {
		t.Fatal("Roll on a healthy log changed the append head")
	}
}

// TestValidationErrorDoesNotPoison: a rejected input (oversized key, empty
// key) is the caller's bug, not a disk failure — the log must stay healthy.
func TestValidationErrorDoesNotPoison(t *testing.T) {
	d, _ := openTestDir(t, Options{})
	defer d.Close()
	if _, err := d.Append(Record{Key: "", Action: core.ActionAdd}); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := d.AppendBatch([]BatchEntry{{Key: "k"}}); err == nil {
		t.Fatal("empty batch entry accepted")
	}
	if d.SyncError() != nil {
		t.Fatalf("validation failure poisoned the log: %v", d.SyncError())
	}
	if _, err := d.Append(Record{Key: "k", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}
