// Package wal implements the write-ahead log for keyed profiling events, so
// that an ingest service built on S-Profile (cmd/sprofiled) can recover its
// profile after a restart by replaying the log.
//
// The profile itself is an in-memory structure; what makes it durable is the
// stream that built it. Because every event is two small fields, the record
// format is a length-prefixed binary stream:
//
//	record  repeated:
//	          keyLen  uvarint
//	          key     keyLen bytes (UTF-8)
//	          action  1 byte: 0 = add, 1 = remove
//
// Two containers carry that record stream:
//
//   - Log is the legacy layout: one unbounded file with an "SWL1" magic
//     header. Its recovery time and disk footprint grow with the entire
//     ingest history.
//   - Dir is the segmented layout (see segment.go): a directory of rotating
//     "SWL2" segment files with monotonic ids, which the checkpoint subsystem
//     (internal/checkpoint) combines with snapshots so recovery replays only
//     the tail written since the last checkpoint. A legacy single-file log is
//     migrated into the directory layout automatically (MigrateLegacy).
//
// Records are buffered and flushed either explicitly (Sync) or every
// SyncEvery appends. A torn final record — the normal result of a crash mid
// write — is detected and ignored during replay; everything before it is
// recovered.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"sprofile/internal/core"
)

// ErrCorrupt is returned by Replay when the log contains an undecodable
// record that is not a clean truncation at the tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

var fileMagic = [4]byte{'S', 'W', 'L', '1'}

// Record is one durable event: a string object key and an action.
type Record struct {
	Key    string
	Action core.Action
}

// Options configures a Log.
type Options struct {
	// SyncEvery flushes and fsyncs after this many appends; zero means only
	// explicit Sync/Close calls flush to stable storage.
	SyncEvery int
}

// Log is an append-only write-ahead log backed by a single file in the
// legacy SWL1 layout. It is not safe for concurrent use; callers serialise
// access themselves. The HTTP server's concurrent front end holds a small
// append mutex around Append/Flush (each append runs under the event's
// stripe lock, keeping per-key log order equal to apply order) and runs the
// fsync outside all locks via SyncFile, so concurrent batches group-commit
// on one fsync. Dir implements that append-mutex + group-commit-fsync
// discipline internally and is what new code should use.
type Log struct {
	f        *os.File
	w        *bufio.Writer
	opts     Options
	appended uint64
	sinceSyn int
	closed   bool
}

// Open opens (or creates) the log at path for appending. Existing contents
// are preserved; call Replay first to rebuild state from them.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.Write(fileMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var magic [4]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil || magic != fileMagic {
			f.Close()
			return nil, fmt.Errorf("%w: bad file header", ErrCorrupt)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriter(f), opts: opts}, nil
}

// maxKeyLen bounds the key length a record may carry; longer lengths in a
// file indicate corruption rather than a legitimate record.
const maxKeyLen = 1 << 20

// errTornTail is the internal sentinel for a record cut short by a crash at
// the end of a file; replay paths translate it into a clean stop.
var errTornTail = errors.New("wal: torn record at tail")

// appendRecord encodes one record into w, returning the encoded byte count.
// Shared by the legacy Log and the segmented Dir.
func appendRecord(w *bufio.Writer, rec Record) (int, error) {
	if rec.Key == "" {
		return 0, errors.New("wal: empty key")
	}
	if !rec.Action.Valid() {
		return 0, fmt.Errorf("wal: invalid action %d", rec.Action)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(rec.Key)))
	if _, err := w.Write(buf[:n]); err != nil {
		return 0, err
	}
	if _, err := w.WriteString(rec.Key); err != nil {
		return 0, err
	}
	actionByte := byte(0)
	if rec.Action == core.ActionRemove {
		actionByte = 1
	}
	if err := w.WriteByte(actionByte); err != nil {
		return 0, err
	}
	return n + len(rec.Key) + 1, nil
}

// readRecord decodes one record from br. io.EOF marks a clean end of the
// stream, errTornTail a record cut short by a crash; any other failure wraps
// ErrCorrupt.
func readRecord(br *bufio.Reader) (Record, error) {
	keyLen, err := binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		// A varint cut short by a crash reads as unexpected EOF.
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, errTornTail
		}
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if keyLen == 0 || keyLen > maxKeyLen {
		return Record{}, fmt.Errorf("%w: key length %d", ErrCorrupt, keyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(br, key); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, errTornTail
		}
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	actionByte, err := br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, errTornTail
		}
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var action core.Action
	switch actionByte {
	case 0:
		action = core.ActionAdd
	case 1:
		action = core.ActionRemove
	default:
		return Record{}, fmt.Errorf("%w: action byte %d", ErrCorrupt, actionByte)
	}
	return Record{Key: string(key), Action: action}, nil
}

// Append adds one record to the log.
func (l *Log) Append(rec Record) error {
	if l.closed {
		return ErrClosed
	}
	if _, err := appendRecord(l.w, rec); err != nil {
		return err
	}
	l.appended++
	l.sinceSyn++
	if l.opts.SyncEvery > 0 && l.sinceSyn >= l.opts.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Appended returns the number of records appended through this Log handle.
func (l *Log) Appended() uint64 { return l.appended }

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.sinceSyn = 0
	return l.f.Sync()
}

// Flush hands buffered records to the operating system without forcing them
// to stable storage. Pair with SyncFile to persist them.
func (l *Log) Flush() error {
	if l.closed {
		return ErrClosed
	}
	return l.w.Flush()
}

// SyncFile fsyncs the underlying file without touching the record buffer: it
// persists exactly what earlier Flush calls handed to the OS. Unlike the
// other methods it may run concurrently with Append and Flush (the kernel
// serialises the fd operations); callers must still serialise SyncFile with
// Close. This split lets a concurrent front end keep appending under its own
// lock while a completed batch fsyncs outside it.
func (l *Log) SyncFile() error {
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Close flushes, fsyncs and closes the log file.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	if err := l.Sync(); err != nil {
		l.closed = true
		l.f.Close()
		return err
	}
	l.closed = true
	return l.f.Close()
}

// Replay reads every record of the log at path, invoking fn for each. A
// truncated final record (crash mid append) stops the replay cleanly; any
// other malformed data returns ErrCorrupt. It returns the number of records
// replayed. A missing file replays zero records.
func Replay(path string, fn func(Record) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	br := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, fmt.Errorf("%w: missing file header", ErrCorrupt)
		}
		return 0, err
	}
	if magic != fileMagic {
		return 0, fmt.Errorf("%w: bad file header", ErrCorrupt)
	}

	replayed := 0
	for {
		rec, err := readRecord(br)
		if errors.Is(err, io.EOF) || errors.Is(err, errTornTail) {
			return replayed, nil
		}
		if err != nil {
			return replayed, err
		}
		if err := fn(rec); err != nil {
			return replayed, err
		}
		replayed++
	}
}
