// Package wal implements the write-ahead log for keyed profiling events, so
// that an ingest service built on S-Profile (cmd/sprofiled) can recover its
// profile after a restart by replaying the log.
//
// The profile itself is an in-memory structure; what makes it durable is the
// stream that built it. Because every event is two small fields, the record
// format is a length-prefixed binary stream:
//
//	record  repeated:
//	          keyLen  uvarint
//	          key     keyLen bytes (UTF-8)
//	          action  1 byte: 0 = add, 1 = remove
//
// A leading keyLen of zero — invalid as a single-event record — marks the
// batch framing the delta-batched ingestion path appends: one physical
// record carrying a whole coalesced batch, replayed atomically (a record
// torn mid-batch is dropped whole):
//
//	batch   0 uvarint (marker)
//	        count   uvarint
//	        entry   repeated count times:
//	          keyLen  uvarint (> 0)
//	          key     keyLen bytes (UTF-8)
//	          adds    uvarint  gross add events coalesced for the key
//	          removes uvarint  gross remove events coalesced for the key
//
// Two containers carry that record stream:
//
//   - Log is the legacy layout: one unbounded file with an "SWL1" magic
//     header. Its recovery time and disk footprint grow with the entire
//     ingest history.
//   - Dir is the segmented layout (see segment.go): a directory of rotating
//     "SWL2" segment files with monotonic ids, which the checkpoint subsystem
//     (internal/checkpoint) combines with snapshots so recovery replays only
//     the tail written since the last checkpoint. A legacy single-file log is
//     migrated into the directory layout automatically (MigrateLegacy).
//
// Records are buffered and flushed either explicitly (Sync) or every
// SyncEvery appends. A torn final record — the normal result of a crash mid
// write — is detected and ignored during replay; everything before it is
// recovered.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"sprofile/internal/core"
)

// ErrCorrupt is returned by Replay when the log contains an undecodable
// record that is not a clean truncation at the tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

var fileMagic = [4]byte{'S', 'W', 'L', '1'}

// Record is one durable event: a string object key and an action. Records
// decoded from a batch frame instead carry the coalesced gross counts: Batch
// is set, Adds-Removes is the net frequency delta, and Action is meaningless.
type Record struct {
	Key     string
	Action  core.Action
	Batch   bool
	Adds    uint64
	Removes uint64
}

// BatchEntry is one coalesced (key, gross adds, gross removes) element of a
// batch record. At least one of the counts must be nonzero; a pair of equal
// counts is a valid record of events that cancelled out.
type BatchEntry struct {
	Key           string
	Adds, Removes uint64
}

// Options configures a Log.
type Options struct {
	// SyncEvery flushes and fsyncs after this many appends; zero means only
	// explicit Sync/Close calls flush to stable storage.
	SyncEvery int
}

// Log is an append-only write-ahead log backed by a single file in the
// legacy SWL1 layout. It is not safe for concurrent use; callers serialise
// access themselves. The HTTP server's concurrent front end holds a small
// append mutex around Append/Flush (each append runs under the event's
// stripe lock, keeping per-key log order equal to apply order) and runs the
// fsync outside all locks via SyncFile, so concurrent batches group-commit
// on one fsync. Dir implements that append-mutex + group-commit-fsync
// discipline internally and is what new code should use.
type Log struct {
	f        *os.File
	w        *bufio.Writer
	opts     Options
	appended uint64
	sinceSyn int
	closed   bool
}

// Open opens (or creates) the log at path for appending. Existing contents
// are preserved; call Replay first to rebuild state from them.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() == 0 {
		if _, err := f.Write(fileMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var magic [4]byte
		if _, err := io.ReadFull(f, magic[:]); err != nil || magic != fileMagic {
			f.Close()
			return nil, fmt.Errorf("%w: bad file header", ErrCorrupt)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriter(f), opts: opts}, nil
}

// MaxKeyLen bounds the key length a record may carry, enforced on BOTH
// sides of the log: the append paths reject longer keys (journaling one
// would poison the log — every later replay would abort on it), and the
// read paths treat longer lengths in a file as corruption rather than a
// legitimate record. Ingest front ends should reject longer keys before
// applying them anywhere.
const MaxKeyLen = 1 << 20

// errTornTail is the internal sentinel for a record cut short by a crash at
// the end of a file; replay paths translate it into a clean stop.
var errTornTail = errors.New("wal: torn record at tail")

// validateRecord checks a record against the append-side limits without
// touching the stream. The segmented Dir validates before writing so that
// any later appendRecord failure is known to be a real I/O error (the
// trigger for sticky poisoning), never a rejected input.
func validateRecord(rec Record) error {
	if rec.Key == "" {
		return errors.New("wal: empty key")
	}
	if len(rec.Key) > MaxKeyLen {
		return fmt.Errorf("wal: key of %d bytes exceeds the %d-byte record limit", len(rec.Key), MaxKeyLen)
	}
	if !rec.Action.Valid() {
		return fmt.Errorf("wal: invalid action %d", rec.Action)
	}
	return nil
}

// appendRecord encodes one record into w, returning the encoded byte count.
// Shared by the legacy Log and the segmented Dir.
func appendRecord(w *bufio.Writer, rec Record) (int, error) {
	if err := validateRecord(rec); err != nil {
		return 0, err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(rec.Key)))
	if _, err := w.Write(buf[:n]); err != nil {
		return 0, err
	}
	if _, err := w.WriteString(rec.Key); err != nil {
		return 0, err
	}
	actionByte := byte(0)
	if rec.Action == core.ActionRemove {
		actionByte = 1
	}
	if err := w.WriteByte(actionByte); err != nil {
		return 0, err
	}
	return n + len(rec.Key) + 1, nil
}

// maxBatchEntries bounds how many entries one batch record may carry; larger
// counts in a file indicate corruption rather than a legitimate record.
const maxBatchEntries = 1 << 26

// readUvarintTorn reads a uvarint, translating any end-of-file — even a
// clean one, since the caller knows it sits mid-record — into errTornTail.
func readUvarintTorn(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, errTornTail
		}
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

// readKeyTorn reads a length-prefixed key mid-record.
func readKeyTorn(br *bufio.Reader, keyLen uint64) (string, error) {
	if keyLen == 0 || keyLen > MaxKeyLen {
		return "", fmt.Errorf("%w: key length %d", ErrCorrupt, keyLen)
	}
	key := make([]byte, keyLen)
	if _, err := io.ReadFull(br, key); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return "", errTornTail
		}
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return string(key), nil
}

// readPhysicalRecord decodes one physical record from br into scratch[:0]: a
// single-event record yields one Record, a batch record one Record per
// entry. A batch is atomic — a record torn anywhere inside it yields
// errTornTail and no Records. io.EOF marks a clean end of the stream,
// errTornTail a record cut short by a crash; any other failure wraps
// ErrCorrupt.
//
// allowBatch says whether the stream may carry batch framing. It is false
// only for a standalone legacy SWL1 file (Replay): no writer ever appends
// batch records there, so a zero keyLen keeps its historical meaning of
// corruption instead of decoding garbage as a phantom batch. A legacy file
// migrated into a segment directory does accept batch appends, so the
// segment paths always allow them.
func readPhysicalRecord(br *bufio.Reader, scratch []Record, allowBatch bool) ([]Record, error) {
	first, err := binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		// A varint cut short by a crash reads as unexpected EOF.
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errTornTail
		}
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	scratch = scratch[:0]
	if first == 0 {
		if !allowBatch {
			return nil, fmt.Errorf("%w: key length 0", ErrCorrupt)
		}
		count, err := readUvarintTorn(br)
		if err != nil {
			return nil, err
		}
		if count == 0 || count > maxBatchEntries {
			return nil, fmt.Errorf("%w: batch of %d entries", ErrCorrupt, count)
		}
		for i := uint64(0); i < count; i++ {
			keyLen, err := readUvarintTorn(br)
			if err != nil {
				return nil, err
			}
			key, err := readKeyTorn(br, keyLen)
			if err != nil {
				return nil, err
			}
			adds, err := readUvarintTorn(br)
			if err != nil {
				return nil, err
			}
			removes, err := readUvarintTorn(br)
			if err != nil {
				return nil, err
			}
			if adds == 0 && removes == 0 {
				return nil, fmt.Errorf("%w: empty batch entry for key %q", ErrCorrupt, key)
			}
			scratch = append(scratch, Record{Key: key, Batch: true, Adds: adds, Removes: removes})
		}
		return scratch, nil
	}
	key, err := readKeyTorn(br, first)
	if err != nil {
		return nil, err
	}
	actionByte, err := br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errTornTail
		}
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var action core.Action
	switch actionByte {
	case 0:
		action = core.ActionAdd
	case 1:
		action = core.ActionRemove
	default:
		return nil, fmt.Errorf("%w: action byte %d", ErrCorrupt, actionByte)
	}
	return append(scratch, Record{Key: key, Action: action}), nil
}

// validateBatch checks every entry of a batch against the append-side
// limits without touching the stream; see validateRecord for why the
// segmented Dir runs it before encoding.
func validateBatch(entries []BatchEntry) error {
	for i := range entries {
		if entries[i].Key == "" {
			return errors.New("wal: empty key")
		}
		if len(entries[i].Key) > MaxKeyLen {
			return fmt.Errorf("wal: key of %d bytes exceeds the %d-byte record limit", len(entries[i].Key), MaxKeyLen)
		}
		if entries[i].Adds == 0 && entries[i].Removes == 0 {
			return fmt.Errorf("wal: batch entry for key %q records no events", entries[i].Key)
		}
	}
	return nil
}

// appendBatchRecord encodes a whole coalesced batch as one physical record,
// returning the encoded byte count. Entries are validated before the first
// byte is written, so a rejected batch leaves the stream clean. The caller
// (Dir.AppendBatch) splits batches over maxBatchEntries; the check here is
// the write-side mirror of the read-side corruption bound.
func appendBatchRecord(w *bufio.Writer, entries []BatchEntry) (int, error) {
	if len(entries) > maxBatchEntries {
		return 0, fmt.Errorf("wal: batch of %d entries exceeds the %d-entry record limit", len(entries), maxBatchEntries)
	}
	if err := validateBatch(entries); err != nil {
		return 0, err
	}
	var buf [binary.MaxVarintLen64]byte
	total := 0
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		total += n
		_, err := w.Write(buf[:n])
		return err
	}
	if err := writeUvarint(0); err != nil {
		return 0, err
	}
	if err := writeUvarint(uint64(len(entries))); err != nil {
		return 0, err
	}
	for i := range entries {
		e := &entries[i]
		if err := writeUvarint(uint64(len(e.Key))); err != nil {
			return 0, err
		}
		if _, err := w.WriteString(e.Key); err != nil {
			return 0, err
		}
		total += len(e.Key)
		if err := writeUvarint(e.Adds); err != nil {
			return 0, err
		}
		if err := writeUvarint(e.Removes); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// Append adds one record to the log.
func (l *Log) Append(rec Record) error {
	if l.closed {
		return ErrClosed
	}
	if _, err := appendRecord(l.w, rec); err != nil {
		return err
	}
	l.appended++
	l.sinceSyn++
	if l.opts.SyncEvery > 0 && l.sinceSyn >= l.opts.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Appended returns the number of records appended through this Log handle.
func (l *Log) Appended() uint64 { return l.appended }

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	l.sinceSyn = 0
	return l.f.Sync()
}

// Flush hands buffered records to the operating system without forcing them
// to stable storage. Pair with SyncFile to persist them.
func (l *Log) Flush() error {
	if l.closed {
		return ErrClosed
	}
	return l.w.Flush()
}

// SyncFile fsyncs the underlying file without touching the record buffer: it
// persists exactly what earlier Flush calls handed to the OS. Unlike the
// other methods it may run concurrently with Append and Flush (the kernel
// serialises the fd operations); callers must still serialise SyncFile with
// Close. This split lets a concurrent front end keep appending under its own
// lock while a completed batch fsyncs outside it.
func (l *Log) SyncFile() error {
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Close flushes, fsyncs and closes the log file.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	if err := l.Sync(); err != nil {
		l.closed = true
		l.f.Close()
		return err
	}
	l.closed = true
	return l.f.Close()
}

// Replay reads every record of the log at path, invoking fn for each. A
// truncated final record (crash mid append) stops the replay cleanly; any
// other malformed data returns ErrCorrupt. It returns the number of records
// replayed. A missing file replays zero records.
func Replay(path string, fn func(Record) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	br := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, fmt.Errorf("%w: missing file header", ErrCorrupt)
		}
		return 0, err
	}
	if magic != fileMagic {
		return 0, fmt.Errorf("%w: bad file header", ErrCorrupt)
	}

	replayed := 0
	var scratch []Record
	for {
		recs, err := readPhysicalRecord(br, scratch, false)
		if errors.Is(err, io.EOF) || errors.Is(err, errTornTail) {
			return replayed, nil
		}
		if err != nil {
			return replayed, err
		}
		scratch = recs
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return replayed, err
			}
			replayed++
		}
	}
}
