package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sprofile/internal/core"
)

func tempLogPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "events.wal")
}

func TestAppendAndReplay(t *testing.T) {
	path := tempLogPath(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{Key: "video-1", Action: core.ActionAdd},
		{Key: "video-1", Action: core.ActionAdd},
		{Key: "user:alice", Action: core.ActionRemove},
		{Key: "video-2", Action: core.ActionAdd},
	}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Appended() != uint64(len(records)) {
		t.Fatalf("Appended() = %d", l.Appended())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed []Record
	n, err := Replay(path, func(r Record) error {
		replayed = append(replayed, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) || len(replayed) != len(records) {
		t.Fatalf("replayed %d records, want %d", n, len(records))
	}
	for i := range records {
		if replayed[i] != records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, replayed[i], records[i])
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "absent.wal"), func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("Replay of missing file = %d, %v", n, err)
	}
}

func TestAppendValidation(t *testing.T) {
	l, err := Open(tempLogPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Key: "", Action: core.ActionAdd}); err == nil {
		t.Fatalf("accepted empty key")
	}
	if err := l.Append(Record{Key: "x", Action: 0}); err == nil {
		t.Fatalf("accepted invalid action")
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	l, err := Open(tempLogPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Key: "x", Action: core.ActionAdd}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync on closed log: %v", err)
	}
	// Closing twice is fine.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestReopenAppendsAfterExistingRecords(t *testing.T) {
	path := tempLogPath(t)
	l, _ := Open(path, Options{})
	l.Append(Record{Key: "a", Action: core.ActionAdd})
	l.Close()

	l2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(Record{Key: "b", Action: core.ActionRemove})
	l2.Close()

	var keys []string
	n, err := Replay(path, func(r Record) error {
		keys = append(keys, r.Key)
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("replayed %d, %v", n, err)
	}
	if keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestTornTailIsIgnored(t *testing.T) {
	path := tempLogPath(t)
	l, _ := Open(path, Options{})
	l.Append(Record{Key: "complete-1", Action: core.ActionAdd})
	l.Append(Record{Key: "complete-2", Action: core.ActionRemove})
	l.Close()

	// Simulate a crash mid write: append a record manually and cut it short.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// keyLen=10 but only 3 bytes of key follow, and no action byte.
	if _, err := f.Write([]byte{10, 'c', 'u', 't'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var keys []string
	n, err := Replay(path, func(r Record) error {
		keys = append(keys, r.Key)
		return nil
	})
	if err != nil {
		t.Fatalf("torn tail treated as corruption: %v", err)
	}
	if n != 2 || keys[0] != "complete-1" || keys[1] != "complete-2" {
		t.Fatalf("replayed %d records %v", n, keys)
	}
}

func TestCorruptHeaderAndRecords(t *testing.T) {
	dir := t.TempDir()

	badHeader := filepath.Join(dir, "badheader.wal")
	os.WriteFile(badHeader, []byte("NOPE"), 0o644)
	if _, err := Replay(badHeader, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header error %v", err)
	}

	truncatedHeader := filepath.Join(dir, "short.wal")
	os.WriteFile(truncatedHeader, []byte("SW"), 0o644)
	if _, err := Replay(truncatedHeader, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header error %v", err)
	}

	// A record with an absurd key length in the middle is corruption, not a
	// clean truncation.
	badRecord := filepath.Join(dir, "badrecord.wal")
	l, _ := Open(badRecord, Options{})
	l.Append(Record{Key: "fine", Action: core.ActionAdd})
	l.Close()
	f, _ := os.OpenFile(badRecord, os.O_APPEND|os.O_WRONLY, 0o644)
	// keyLen uvarint far beyond maxKeyLen.
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Close()
	n, err := Replay(badRecord, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd key length error %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records before corruption, want 1", n)
	}

	// A standalone legacy file can never legitimately contain batch framing
	// (no writer appends batches to one), so a zero keyLen keeps its
	// historical meaning there: corruption, not a phantom batch — even when
	// the following bytes would decode as a well-formed batch record.
	legacyBatch := filepath.Join(dir, "legacybatch.wal")
	l, _ = Open(legacyBatch, Options{})
	l.Append(Record{Key: "fine", Action: core.ActionAdd})
	l.Close()
	f, _ = os.OpenFile(legacyBatch, os.O_APPEND|os.O_WRONLY, 0o644)
	// batch marker, 1 entry: ("x", 3 adds, 0 removes).
	f.Write([]byte{0, 1, 1, 'x', 3, 0})
	f.Close()
	n, err = Replay(legacyBatch, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("batch framing in a legacy file: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records before the corrupt marker, want 1", n)
	}
}

func TestReplayCallbackErrorStops(t *testing.T) {
	path := tempLogPath(t)
	l, _ := Open(path, Options{})
	l.Append(Record{Key: "a", Action: core.ActionAdd})
	l.Append(Record{Key: "b", Action: core.ActionAdd})
	l.Close()

	sentinel := errors.New("stop")
	n, err := Replay(path, func(r Record) error {
		if r.Key == "b" {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
}

func TestSyncEvery(t *testing.T) {
	path := tempLogPath(t)
	l, err := Open(path, Options{SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two appends trigger an automatic sync; a crash (no Close) must still
	// leave both records durable on disk.
	l.Append(Record{Key: "a", Action: core.ActionAdd})
	l.Append(Record{Key: "b", Action: core.ActionAdd})
	// Do not close; replay from the same path.
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("replayed %d, %v after auto-sync", n, err)
	}
	l.Close()
}

func TestReplayRebuildsProfileState(t *testing.T) {
	path := tempLogPath(t)
	l, _ := Open(path, Options{})
	events := []Record{
		{Key: "x", Action: core.ActionAdd},
		{Key: "x", Action: core.ActionAdd},
		{Key: "y", Action: core.ActionAdd},
		{Key: "x", Action: core.ActionRemove},
	}
	for _, e := range events {
		l.Append(e)
	}
	l.Close()

	counts := map[string]int{}
	if _, err := Replay(path, func(r Record) error {
		counts[r.Key] += int(r.Action)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if counts["x"] != 1 || counts["y"] != 1 {
		t.Fatalf("rebuilt counts = %v", counts)
	}
}
