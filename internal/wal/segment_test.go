package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sprofile/internal/core"
)

func addRec(key string) Record { return Record{Key: key, Action: core.ActionAdd} }

func collectDir(t *testing.T, dir string) []string {
	t.Helper()
	var keys []string
	if _, err := ReplayDir(dir, func(r Record) error {
		keys = append(keys, r.Key)
		return nil
	}); err != nil {
		t.Fatalf("ReplayDir: %v", err)
	}
	return keys
}

func TestDirAppendRotateReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b"} {
		if _, err := d.Append(addRec(k)); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := d.Rotate(7)
	if err != nil {
		t.Fatal(err)
	}
	if sealed != 1 {
		t.Fatalf("sealed segment %d, want 1", sealed)
	}
	if d.SegmentID() != 2 {
		t.Fatalf("current segment %d, want 2", d.SegmentID())
	}
	if _, err := d.Append(addRec("c")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].ID != 1 || segs[1].ID != 2 {
		t.Fatalf("segments = %+v, want ids 1,2", segs)
	}
	if segs[0].SnapSeq != 0 || segs[1].SnapSeq != 7 {
		t.Fatalf("snap seqs = %d,%d, want 0,7", segs[0].SnapSeq, segs[1].SnapSeq)
	}
	if got := collectDir(t, dir); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("replayed %v, want [a b c]", got)
	}
}

func TestDirReopenAppendsToTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(addRec("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	tail := segs[len(segs)-1]
	d2, err := OpenDir(dir, Options{}, &tail, tail.ID, tail.SnapSeq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Append(addRec("b")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collectDir(t, dir); len(got) != 2 || got[1] != "b" {
		t.Fatalf("replayed %v, want [a b]", got)
	}
}

// TestDirTornTailTruncated simulates a crash mid-append: the torn bytes must
// be both invisible to replay and physically removed before new appends, so
// later records stay reachable.
func TestDirTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"alpha", "beta"} {
		if _, err := d.Append(addRec(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(dir)
	tail := segs[0]
	// Tear the final record: chop two bytes off the file.
	if err := os.Truncate(tail.Path, tail.Size-2); err != nil {
		t.Fatal(err)
	}
	if got := collectDir(t, dir); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("replayed %v, want [alpha]", got)
	}

	segs, _ = ListSegments(dir)
	tail = segs[0]
	d2, err := OpenDir(dir, Options{}, &tail, tail.ID, tail.SnapSeq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Append(addRec("gamma")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	got := collectDir(t, dir)
	if len(got) != 2 || got[0] != "alpha" || got[1] != "gamma" {
		t.Fatalf("replayed %v, want [alpha gamma]", got)
	}
}

// TestDirTornHeaderRecreated simulates a crash during rotation, before the
// new segment's header reached the disk: the stub is recreated in place.
func TestDirTornHeaderRecreated(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(addRec("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// A two-byte stub of segment 2: not even the magic survived.
	if err := os.WriteFile(filepath.Join(dir, SegmentName(2)), []byte("SW"), 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || !segs[1].Torn {
		t.Fatalf("segments = %+v, want torn tail", segs)
	}
	tail := segs[1]
	d2, err := OpenDir(dir, Options{}, &tail, tail.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.SegmentID() != 2 {
		t.Fatalf("recreated segment id %d, want 2", d2.SegmentID())
	}
	if _, err := d2.Append(addRec("b")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collectDir(t, dir); len(got) != 2 || got[1] != "b" {
		t.Fatalf("replayed %v, want [a b]", got)
	}
}

func TestDirDropThrough(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Append(addRec("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Rotate(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.DropThrough(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].ID != 3 || segs[1].ID != 4 {
		t.Fatalf("segments after drop = %+v, want ids 3,4", segs)
	}
	if got := collectDir(t, dir); len(got) != 1 {
		t.Fatalf("replayed %v, want one record (segment 3's)", got)
	}
}

// TestReplaySegmentSealedTornIsCorrupt: a torn record inside a sealed (non
// final) segment is corruption, not a crash artifact, and must be reported.
func TestReplaySegmentSealedTornIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, Options{}, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(addRec("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(dir)
	if err := os.Truncate(segs[0].Path, segs[0].Size-2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySegment(segs[0].Path, false, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed torn segment replay = %v, want ErrCorrupt", err)
	}
}

func TestMigrateLegacy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.wal")
	log, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := log.Append(addRec(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	if err := MigrateLegacy(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		t.Fatalf("after migration, %s is not a directory (err=%v)", path, err)
	}
	segs, err := ListSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].ID != 1 || !segs[0].Legacy {
		t.Fatalf("segments = %+v, want one legacy segment id 1", segs)
	}
	if got := collectDir(t, path); len(got) != 3 || got[0] != "a" {
		t.Fatalf("replayed %v, want [a b c]", got)
	}
	// Idempotent.
	if err := MigrateLegacy(path); err != nil {
		t.Fatal(err)
	}

	// The legacy segment accepts appends (same record codec).
	tail := segs[0]
	d, err := OpenDir(path, Options{}, &tail, tail.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(addRec("d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collectDir(t, path); len(got) != 4 || got[3] != "d" {
		t.Fatalf("replayed %v, want [a b c d]", got)
	}
}

// TestMigrateLegacyResumes covers the crash window inside the migration:
// the file was moved aside but the directory was never populated.
func TestMigrateLegacyResumes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.wal")
	log, err := Open(path+".legacy", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(addRec("a")); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := MigrateLegacy(path); err != nil {
		t.Fatal(err)
	}
	if got := collectDir(t, path); len(got) != 1 || got[0] != "a" {
		t.Fatalf("replayed %v, want [a]", got)
	}
}
