package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sprofile/internal/failpoint/failfs"
)

// This file implements the segmented WAL layout: instead of one unbounded
// file, the log is a directory of fixed-order segment files
//
//	wal-<id, 16 hex digits>.seg
//
// with monotonically increasing ids. Each segment starts with a header
//
//	magic   [4]byte  "SWL2"
//	id      uvarint  (must match the filename)
//	snapSeq uvarint  (the snapshot sequence current when the segment opened)
//
// followed by the same record stream the legacy format uses. A migrated
// legacy file keeps its "SWL1" header and is read as segment id 1 with
// snapSeq 0; records append to it unchanged, since the record codec is
// identical.
//
// Only the highest-id segment is ever written, so a crash can tear at most
// that segment's tail; sealed segments are fsynced before rotation completes
// and are immutable afterwards. The checkpoint subsystem deletes segments
// once a snapshot covers them, which is what bounds recovery time and disk
// use.

var segmentMagic = [4]byte{'S', 'W', 'L', '2'}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// SegmentInfo describes one segment file found in a log directory.
type SegmentInfo struct {
	// ID is the segment's position in the log order (1-based, monotonic).
	ID uint64
	// SnapSeq is the snapshot sequence recorded in the header: the id of the
	// last checkpoint taken before this segment opened (0 = none).
	SnapSeq uint64
	// Legacy marks a migrated single-file log readable as a segment.
	Legacy bool
	// Torn marks a segment whose header could not be read — the result of a
	// crash during segment creation. Only valid as the final segment; it
	// holds no records and is recreated when the directory reopens.
	Torn bool
	Path string
	Size int64
}

// SegmentName returns the file name of segment id.
func SegmentName(id uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, id, segSuffix)
}

// parseSegmentName extracts the segment id from a file name, reporting
// whether the name is a segment name at all.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// readSegmentHeader consumes the header from br, reporting the recorded id
// and snapshot sequence (legacy headers carry neither). errTornTail marks a
// header cut short by a crash during segment creation.
func readSegmentHeader(br *bufio.Reader) (id, snapSeq uint64, legacy bool, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, false, errTornTail
		}
		return 0, 0, false, err
	}
	switch magic {
	case fileMagic:
		return 0, 0, true, nil
	case segmentMagic:
	default:
		return 0, 0, false, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, magic[:])
	}
	id, err = binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, false, errTornTail
		}
		return 0, 0, false, fmt.Errorf("%w: segment header: %v", ErrCorrupt, err)
	}
	snapSeq, err = binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, false, errTornTail
		}
		return 0, 0, false, fmt.Errorf("%w: segment header: %v", ErrCorrupt, err)
	}
	return id, snapSeq, false, nil
}

// writeSegmentHeader emits the SWL2 header for segment id.
func writeSegmentHeader(w io.Writer, id, snapSeq uint64) error {
	var buf [4 + 2*binary.MaxVarintLen64]byte
	copy(buf[:4], segmentMagic[:])
	n := 4
	n += binary.PutUvarint(buf[n:], id)
	n += binary.PutUvarint(buf[n:], snapSeq)
	_, err := w.Write(buf[:n])
	return err
}

// ListSegments returns the segments of dir sorted by id, reading each header.
// A segment whose header is unreadable is reported with Torn set; anything
// else undecodable fails with ErrCorrupt.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var infos []SegmentInfo
	for _, e := range entries {
		id, ok := parseSegmentName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		info := SegmentInfo{ID: id, Path: filepath.Join(dir, e.Name()), Size: fi.Size()}
		f, err := os.Open(info.Path)
		if err != nil {
			return nil, err
		}
		hdrID, snapSeq, legacy, err := readSegmentHeader(bufio.NewReader(f))
		f.Close()
		switch {
		case errors.Is(err, errTornTail):
			info.Torn = true
		case err != nil:
			return nil, fmt.Errorf("%s: %w", info.Path, err)
		case legacy:
			info.Legacy = true
		case hdrID != id:
			return nil, fmt.Errorf("%w: segment %s header claims id %d", ErrCorrupt, info.Path, hdrID)
		default:
			info.SnapSeq = snapSeq
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos, nil
}

// ReplaySegment reads every record of one segment file, invoking fn for each.
// A torn final record (or torn header) stops the replay cleanly when
// tolerateTorn is set — correct only for the log's final segment, since
// sealed segments are fsynced whole — and fails with ErrCorrupt otherwise.
func ReplaySegment(path string, tolerateTorn bool, fn func(Record) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if _, _, _, err := readSegmentHeader(br); err != nil {
		if errors.Is(err, errTornTail) {
			if tolerateTorn {
				return 0, nil
			}
			return 0, fmt.Errorf("%w: %s: truncated segment header", ErrCorrupt, path)
		}
		return 0, err
	}
	replayed := 0
	defer func() { mReplayed.Add(uint64(replayed)) }()
	var scratch []Record
	for {
		recs, err := readPhysicalRecord(br, scratch, true)
		if errors.Is(err, io.EOF) {
			return replayed, nil
		}
		if errors.Is(err, errTornTail) {
			if tolerateTorn {
				return replayed, nil
			}
			return replayed, fmt.Errorf("%w: %s: torn record in sealed segment", ErrCorrupt, path)
		}
		if err != nil {
			return replayed, fmt.Errorf("%s: %w", path, err)
		}
		scratch = recs
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return replayed, err
			}
			replayed++
		}
	}
}

// ReplayDir replays every record of every segment in a log directory in id
// order, tolerating a torn tail only in the final segment, and returns the
// record count. It is snapshot-oblivious — segments already covered by a
// checkpoint snapshot replay too — so use the checkpoint package for real
// recovery; this is the raw-log view (tests, tooling, full audits).
func ReplayDir(dir string, fn func(Record) error) (int, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, sg := range segs {
		if sg.Torn {
			if i != len(segs)-1 {
				return total, fmt.Errorf("%w: segment %s has no readable header but is not the tail", ErrCorrupt, sg.Path)
			}
			continue
		}
		n, err := ReplaySegment(sg.Path, i == len(segs)-1, fn)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// countingReader counts the bytes its wrapped reader hands out, so a bufio
// consumer can compute how far into the file the decoded prefix reaches.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanValidEnd reads f from the start and returns the byte offset just past
// the last complete record — the truncation point that removes a torn tail
// before the segment is appended to again.
func scanValidEnd(f failfs.File) (validEnd int64, err error) {
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	if _, _, _, err := readSegmentHeader(br); err != nil {
		if errors.Is(err, errTornTail) {
			return 0, err // caller recreates the segment
		}
		return 0, err
	}
	validEnd = cr.n - int64(br.Buffered())
	var scratch []Record
	for {
		recs, err := readPhysicalRecord(br, scratch, true)
		if errors.Is(err, io.EOF) || errors.Is(err, errTornTail) {
			return validEnd, nil
		}
		if err != nil {
			return validEnd, err
		}
		scratch = recs
		validEnd = cr.n - int64(br.Buffered())
	}
}

// Dir is the append head of a segmented write-ahead log directory. Unlike
// the legacy Log it is safe for concurrent use: appends serialise on an
// internal mutex while Sync runs the fsync outside it with a group-commit
// watermark, so concurrent producers' batches are persisted collectively by
// whichever fsync lands after their records were flushed.
type Dir struct {
	dir  string
	opts Options

	// mu guards the buffer, the current segment and the counters.
	mu sync.Mutex
	// syncMu serialises fsyncs only; the fsync itself runs without mu, so
	// appends proceed while the disk works. Holding it across the fsync IS
	// the group commit: every appender waiting here rides the one
	// in-flight sync. The invariant locksafe enforces is "no I/O under the
	// data locks" (mu, the stripe locks) — this mutex exists to be held
	// across I/O.
	//lint:allow locksafe — group-commit fsync gate, audited: only Sync/Roll contend on it, never appends
	syncMu    sync.Mutex
	f         failfs.File
	w         *bufio.Writer
	segID     uint64
	snapSeq   uint64
	appended  uint64
	bytes     int64
	sinceSync int
	closed    bool
	// fileEnd is the byte offset in the current segment file just past the
	// last completely appended record (whether still buffered or flushed).
	// Captured together with appended under mu, it gives Sync the byte
	// watermark matching its record watermark.
	fileEnd int64
	// syncedEnd is the fileEnd offset covered by the last completed fsync —
	// always a record boundary, because fileEnd is only read between whole
	// appends. Roll truncates a poisoned segment back to it.
	syncedEnd int64
	// synced is the appended-count watermark covered by the last completed
	// fsync; a Sync whose records are already covered returns without
	// touching the disk.
	synced atomic.Uint64
	// fsyncs counts the fsyncs actually issued for record durability (Sync,
	// Rotate, Close) — the observable behind the one-fsync-per-batch
	// group-commit contract.
	fsyncs atomic.Uint64

	// errMu guards ioErr alone. It is a leaf lock — taken with mu and/or
	// syncMu held, never the other way — so poisoning from the fsync path
	// (under syncMu only) cannot deadlock against Rotate (mu then syncMu).
	errMu sync.Mutex
	// ioErr is the sticky poison. The first write, flush or fsync failure
	// sets it and it never clears except through Roll: retrying an fsync on
	// a failed fd can report success while the kernel has already dropped
	// the dirty pages, so once any I/O error surfaces the only honest
	// recovery is proving the disk healthy with a fresh segment. While set,
	// every Append/AppendBatch/Sync/Rotate returns it, which also
	// guarantees the group-commit contract: an fsync failure fails every
	// write in the commit group, not just the goroutine that ran the flush.
	ioErr error
}

// poison records the first I/O failure; later failures keep the original.
func (d *Dir) poison(err error) {
	d.errMu.Lock()
	if d.ioErr == nil {
		d.ioErr = err
	}
	d.errMu.Unlock()
}

// SyncError returns the sticky I/O error poisoning this log, or nil while it
// is healthy. The server's degraded-mode probe keys off it.
func (d *Dir) SyncError() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.ioErr
}

// OpenDir opens the append head of a segment directory. When tail is
// non-nil, that segment is opened for appending — a torn final record left
// by a crash is truncated away first, and a segment whose header never made
// it to disk (tail.Torn) is recreated in place. Otherwise a fresh segment
// with id nextID is created, its header recording snapSeq.
func OpenDir(dir string, opts Options, tail *SegmentInfo, nextID, snapSeq uint64) (*Dir, error) {
	d := &Dir{dir: dir, opts: opts}
	if tail != nil && tail.Torn {
		// The crash happened between creating the file and persisting its
		// header; it holds nothing recoverable.
		if err := os.Remove(tail.Path); err != nil {
			return nil, err
		}
		nextID = tail.ID
		tail = nil
	}
	if tail != nil {
		f, err := failfs.OpenFile("wal", tail.Path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		validEnd, err := scanValidEnd(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", tail.Path, err)
		}
		if validEnd < tail.Size {
			if err := f.Truncate(validEnd); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		d.f = f
		d.segID = tail.ID
		d.snapSeq = tail.SnapSeq
		d.bytes = validEnd
		d.fileEnd = validEnd
	} else {
		f, end, err := createSegment(dir, nextID, snapSeq)
		if err != nil {
			return nil, err
		}
		d.f = f
		d.segID = nextID
		d.snapSeq = snapSeq
		d.fileEnd = end
	}
	// Whatever the segment holds at open survived to disk already; it is the
	// baseline a Roll may truncate back to, never below.
	d.syncedEnd = d.fileEnd
	d.w = bufio.NewWriter(d.f)
	return d, nil
}

// createSegment creates segment id with a durable header, returning the open
// file and the header length (the file's append offset).
func createSegment(dir string, id, snapSeq uint64) (failfs.File, int64, error) {
	path := filepath.Join(dir, SegmentName(id))
	// Deliberately the same "wal" seam as the tail-reopen path in open():
	// a disk fault does not care which code path opened the segment, and
	// chaos schedules arm one site for the whole layer.
	//lint:allow failpointsite — shared seam with the tail reopen in open(); one site covers every segment file
	f, err := failfs.OpenFile("wal", path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	var hdr countingWriter
	if err := writeSegmentHeader(io.MultiWriter(&hdr, f), id, snapSeq); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, err
	}
	if err := SyncDir(dir); err != nil {
		f.Close()
		os.Remove(path)
		return nil, 0, err
	}
	return f, hdr.n, nil
}

// countingWriter records how many bytes were written through it.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// SyncDir fsyncs a directory so renames and file creations inside it are
// durable. Shared with the checkpoint layer, which publishes snapshots into
// the same directory.
func SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Append adds one record to the current segment. syncDue reports that the
// SyncEvery threshold has been crossed; the caller runs Sync outside its own
// locks, which is what keeps fsyncs off the append path.
func (d *Dir) Append(rec Record) (syncDue bool, err error) {
	if err := validateRecord(rec); err != nil {
		return false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if err := d.SyncError(); err != nil {
		return false, err
	}
	n, err := appendRecord(d.w, rec)
	if err != nil {
		// Validation passed above, so this is a real write failure — the
		// stream may hold a partial record. Poison until Roll.
		d.poison(err)
		return false, err
	}
	d.appended++
	d.bytes += int64(n)
	d.fileEnd += int64(n)
	mAppends.Inc()
	mAppendedBytes.Add(uint64(n))
	if d.opts.SyncEvery > 0 {
		d.sinceSync++
		if d.sinceSync >= d.opts.SyncEvery {
			d.sinceSync = 0
			return true, nil
		}
	}
	return false, nil
}

// AppendBatch adds a whole coalesced batch to the current segment as one
// physical record under one acquisition of the append mutex. Replay treats
// each record atomically: either every entry is recovered or — after a
// crash that tears it — none. A batch larger than the frame's entry-count
// limit spans several records (still under the one mutex hold), so no write
// can ever produce a record the read side would reject as corrupt. syncDue
// follows the Append contract, counting each entry as one record against
// the SyncEvery threshold.
func (d *Dir) AppendBatch(entries []BatchEntry) (syncDue bool, err error) {
	if len(entries) == 0 {
		return false, nil
	}
	if err := validateBatch(entries); err != nil {
		return false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if err := d.SyncError(); err != nil {
		return false, err
	}
	for rest := entries; len(rest) > 0; {
		chunk := rest
		if len(chunk) > maxBatchEntries {
			chunk = rest[:maxBatchEntries]
		}
		n, err := appendBatchRecord(d.w, chunk)
		if err != nil {
			d.poison(err)
			return false, err
		}
		d.bytes += int64(n)
		d.fileEnd += int64(n)
		mAppendedBytes.Add(uint64(n))
		rest = rest[len(chunk):]
	}
	d.appended += uint64(len(entries))
	mAppends.Add(uint64(len(entries)))
	if d.opts.SyncEvery > 0 {
		d.sinceSync += len(entries)
		if d.sinceSync >= d.opts.SyncEvery {
			d.sinceSync = 0
			return true, nil
		}
	}
	return false, nil
}

// Fsyncs returns how many record-durability fsyncs this handle has issued.
// Group commit keeps it far below the number of Sync calls under load; tests
// use it to pin the one-fsync-per-batch contract.
func (d *Dir) Fsyncs() uint64 { return d.fsyncs.Load() }

// Appended returns the number of records appended through this handle.
func (d *Dir) Appended() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appended
}

// AppendedBytes returns the record bytes appended through this handle plus
// the bytes already in the segment it opened on — the input to a size-based
// checkpoint trigger.
func (d *Dir) AppendedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// SegmentID returns the id of the segment currently open for appending.
func (d *Dir) SegmentID() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.segID
}

// SyncedPosition returns the durable frontier: the current append segment and
// the byte offset covered by the last completed fsync. Bytes at or below it
// survive both a crash and a post-failure Roll (which truncates the poisoned
// segment back to exactly this offset) — so it is the highest position a
// replication feed may safely serve.
func (d *Dir) SyncedPosition() Position {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	return Position{Segment: d.segID, Offset: d.syncedEnd}
}

// Sync makes every appended record durable, with group commit: the buffer is
// flushed under the append mutex, the fsync runs outside it, and a Sync
// whose records were already covered by a concurrent fsync (or a rotation)
// returns without touching the disk.
func (d *Dir) Sync() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if err := d.SyncError(); err != nil {
		d.mu.Unlock()
		return err
	}
	target := d.appended
	targetEnd := d.fileEnd
	if d.synced.Load() >= target {
		d.mu.Unlock()
		return nil
	}
	err := d.w.Flush()
	f := d.f
	d.mu.Unlock()
	if err != nil {
		d.poison(err)
		return err
	}
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if err := d.SyncError(); err != nil {
		// A concurrent flush or fsync failed while we queued. Our records
		// were never covered (the watermark only advances on success), so
		// every write in this commit group reports the failure.
		return err
	}
	if d.synced.Load() >= target {
		// Another batch's fsync — or a rotation, which seals with an fsync —
		// covered our records. f may already be a sealed, closed segment;
		// either way there is nothing left to persist.
		return nil
	}
	if err := syncTimed(f.Sync); err != nil {
		// Do NOT retry this fd: a failed fsync may have dropped the dirty
		// pages, and a retry can report success for data that never hit the
		// disk. Poison; recovery means proving the disk with a fresh
		// segment (Roll).
		d.poison(err)
		return err
	}
	d.fsyncs.Add(1)
	if d.synced.Load() < target {
		d.synced.Store(target)
		d.syncedEnd = targetEnd
	}
	return nil
}

// Rotate seals the current segment — flush, fsync, close — and opens the
// next one, whose header records newSnapSeq. It returns the sealed segment's
// id. Rotation excludes appends and in-flight fsyncs for its (short)
// duration; a failure to open the new segment leaves the old one writable.
func (d *Dir) Rotate(newSnapSeq uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if err := d.SyncError(); err != nil {
		return 0, err
	}
	if err := d.w.Flush(); err != nil {
		d.poison(err)
		return 0, err
	}
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if err := syncTimed(d.f.Sync); err != nil {
		d.poison(err)
		return 0, err
	}
	d.fsyncs.Add(1)
	mRotations.Inc()
	sealed := d.segID
	nf, end, err := createSegment(d.dir, sealed+1, newSnapSeq)
	if err != nil {
		return 0, err
	}
	old := d.f
	d.f = nf
	d.w.Reset(nf)
	d.segID = sealed + 1
	d.snapSeq = newSnapSeq
	d.sinceSync = 0
	d.fileEnd = end
	d.syncedEnd = end
	// Everything appended so far is durable in the sealed segment.
	d.synced.Store(d.appended)
	old.Close()
	return sealed, nil
}

// Roll abandons the current segment after an I/O failure and restores append
// service on a fresh one — the only recovery from a poisoned log, because a
// failed fsync may already have dropped dirty pages and cannot be retried
// honestly on the same fd. The sequence:
//
//  1. Create the next segment. Its durable header (data fsync + directory
//     fsync) is the proof the disk accepts writes again; if this fails the
//     log stays poisoned and nothing has changed.
//  2. Truncate the poisoned segment back to its last fsync-covered byte — a
//     record boundary — and fsync the cut, so the sealed segment replays
//     cleanly with exactly the records that were acknowledged durable.
//  3. Reset the writer onto the new segment, discarding any poisoned
//     buffered bytes, rewind the append counters to the durable watermark,
//     and clear the sticky error.
//
// Records past the durable watermark are not simply dropped: their writers
// were told the write failed, but the in-memory state they updated cannot be
// unapplied, so discarding their bytes would leave the queryable state
// permanently ahead of the log (and a later checkpoint would persist that
// divergence). Roll therefore salvages every complete record in the
// unsynced tail into the fresh segment and fsyncs it there — the failed
// writes become durable-but-unacknowledged, the ordinary indeterminate
// outcome of an errored write. Only a torn trailing record, or bytes a
// failed flush never landed, stay lost. Roll on a healthy log is a no-op.
func (d *Dir) Roll() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if d.SyncError() == nil {
		return nil
	}
	// Push whatever the writer still buffers toward the old file so its
	// records are salvageable; on failure, salvage reads what already is on
	// disk.
	d.w.Flush()
	salvaged, salvagedRecs := d.salvageTail()
	nf, end, err := createSegment(d.dir, d.segID+1, d.snapSeq)
	if err != nil {
		return err
	}
	newPath := filepath.Join(d.dir, SegmentName(d.segID+1))
	old := d.f
	// Truncate before the salvage bytes land in the new segment: a crash in
	// between loses only never-acknowledged records, while the reverse order
	// could replay them twice.
	//
	// This whole salvage sequence deliberately runs under d.mu: Roll only
	// executes after a sync failure has poisoned the log, so every appender
	// those locks would serve is already failing fast, and holding the lock
	// is what guarantees no append interleaves with the truncate boundary.
	if err := old.Truncate(d.syncedEnd); err != nil { //lint:allow locksafe — salvage-on-roll: writers already fail fast, the lock pins the truncate boundary
		nf.Close()
		os.Remove(newPath) //lint:allow locksafe — salvage-on-roll cleanup of the never-visible fresh segment
		return err
	}
	if err := old.Sync(); err != nil { //lint:allow locksafe — salvage-on-roll: the durable truncate point must exist before the swap
		nf.Close()
		os.Remove(newPath) //lint:allow locksafe — salvage-on-roll cleanup of the never-visible fresh segment
		return err
	}
	old.Close()
	lostBytes := d.fileEnd - d.syncedEnd
	d.f = nf
	d.w.Reset(nf)
	d.segID++
	d.sinceSync = 0
	d.appended = d.synced.Load()
	d.bytes -= lostBytes
	d.fileEnd = end
	d.syncedEnd = end
	mRolls.Inc()
	if len(salvaged) > 0 {
		// Re-append through the ordinary buffered path and make the copies
		// durable immediately. A failure here keeps the log poisoned — the
		// salvage bytes sit past the (unchanged) watermark of the new
		// segment, so the next Roll attempt salvages them again.
		if _, err := d.w.Write(salvaged); err != nil {
			return err
		}
		d.appended += salvagedRecs
		d.bytes += int64(len(salvaged))
		d.fileEnd += int64(len(salvaged))
		if err := d.w.Flush(); err != nil {
			return err
		}
		if err := syncTimed(nf.Sync); err != nil {
			return err
		}
		d.fsyncs.Add(1)
		d.synced.Store(d.appended)
		d.syncedEnd = d.fileEnd
		mSalvaged.Add(salvagedRecs)
	}
	d.errMu.Lock()
	d.ioErr = nil
	d.errMu.Unlock()
	return nil
}

// salvageTail reads the complete records sitting past the durable watermark
// in the current segment file — the applied-but-unacknowledged writes a Roll
// must carry into the fresh segment. Called with both mutexes held while the
// log is poisoned. Best effort: an unreadable or undecodable tail salvages
// nothing, which degrades to the plain truncating roll.
func (d *Dir) salvageTail() ([]byte, uint64) {
	fi, err := d.f.Stat()
	if err != nil || fi.Size() <= d.syncedEnd {
		return nil, 0
	}
	data := make([]byte, fi.Size()-d.syncedEnd)
	if _, err := io.ReadFull(io.NewSectionReader(readerAtOnly{d.f}, d.syncedEnd, int64(len(data))), data); err != nil {
		return nil, 0
	}
	sd := &StreamDecoder{}
	sd.MarkHeaderDone()
	var recs uint64
	if err := sd.Feed(data, func(Record) error { recs++; return nil }); err != nil {
		return nil, 0
	}
	valid := len(data) - sd.Buffered()
	if valid == 0 || recs == 0 {
		return nil, 0
	}
	return data[:valid], recs
}

// readerAtOnly narrows a file to io.ReaderAt for SectionReader use.
type readerAtOnly struct{ f failfs.File }

func (r readerAtOnly) ReadAt(p []byte, off int64) (int, error) { return r.f.ReadAt(p, off) }

// DropThrough deletes every segment file with id at most segID, except the
// segment currently open for appending. Used after a checkpoint has made
// those segments redundant.
func (d *Dir) DropThrough(segID uint64) error {
	d.mu.Lock()
	cur := d.segID
	dir := d.dir
	d.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		id, ok := parseSegmentName(e.Name())
		if !ok || id > segID || id == cur {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := SyncDir(dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close flushes, fsyncs and closes the current segment.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.SyncError(); err != nil {
		// A poisoned log must not fsync on close: the watermark has not
		// advanced, so reporting the sticky error — not a fresh fsync that
		// might falsely succeed — is the honest outcome.
		d.f.Close()
		return err
	}
	flushErr := d.w.Flush()
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if flushErr != nil {
		d.f.Close()
		return flushErr
	}
	if err := syncTimed(d.f.Sync); err != nil {
		d.f.Close()
		return err
	}
	d.fsyncs.Add(1)
	// Everything appended is durable; advance the watermark so a Sync that
	// raced past the closed check returns success instead of fsyncing the
	// closed fd and reporting a spurious failure.
	d.synced.Store(d.appended)
	return d.f.Close()
}

// MigrateLegacy converts a single-file SWL1 log at path, if one exists, into
// the segmented directory layout: the file becomes segment 1 — byte for
// byte, since the segment reader still understands the legacy header —
// inside a new directory at the same path. Calling it on a path that is
// already a directory, or does not exist, is a no-op. A migration
// interrupted by a crash resumes on the next call.
func MigrateLegacy(path string) error {
	staging := path + ".legacy"
	if _, err := os.Stat(staging); err == nil {
		// A previous migration moved the file aside and crashed; finish it.
		return completeMigration(path, staging)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	fi, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if fi.IsDir() {
		return nil
	}
	if fi.Size() == 0 {
		// An empty file (crash before the legacy header was written) holds
		// nothing; replace it with a fresh directory.
		return os.Remove(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var magic [4]byte
	_, readErr := io.ReadFull(f, magic[:])
	f.Close()
	if readErr != nil || magic != fileMagic {
		return fmt.Errorf("%w: %s is not a write-ahead log", ErrCorrupt, path)
	}
	if err := os.Rename(path, staging); err != nil {
		return err
	}
	return completeMigration(path, staging)
}

// completeMigration turns the staged legacy file into segment 1 of a
// directory at path.
func completeMigration(path, staging string) error {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return err
	}
	if err := os.Rename(staging, filepath.Join(path, SegmentName(1))); err != nil {
		return err
	}
	return SyncDir(path)
}
