package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the segmented WAL layout: instead of one unbounded
// file, the log is a directory of fixed-order segment files
//
//	wal-<id, 16 hex digits>.seg
//
// with monotonically increasing ids. Each segment starts with a header
//
//	magic   [4]byte  "SWL2"
//	id      uvarint  (must match the filename)
//	snapSeq uvarint  (the snapshot sequence current when the segment opened)
//
// followed by the same record stream the legacy format uses. A migrated
// legacy file keeps its "SWL1" header and is read as segment id 1 with
// snapSeq 0; records append to it unchanged, since the record codec is
// identical.
//
// Only the highest-id segment is ever written, so a crash can tear at most
// that segment's tail; sealed segments are fsynced before rotation completes
// and are immutable afterwards. The checkpoint subsystem deletes segments
// once a snapshot covers them, which is what bounds recovery time and disk
// use.

var segmentMagic = [4]byte{'S', 'W', 'L', '2'}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// SegmentInfo describes one segment file found in a log directory.
type SegmentInfo struct {
	// ID is the segment's position in the log order (1-based, monotonic).
	ID uint64
	// SnapSeq is the snapshot sequence recorded in the header: the id of the
	// last checkpoint taken before this segment opened (0 = none).
	SnapSeq uint64
	// Legacy marks a migrated single-file log readable as a segment.
	Legacy bool
	// Torn marks a segment whose header could not be read — the result of a
	// crash during segment creation. Only valid as the final segment; it
	// holds no records and is recreated when the directory reopens.
	Torn bool
	Path string
	Size int64
}

// SegmentName returns the file name of segment id.
func SegmentName(id uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, id, segSuffix)
}

// parseSegmentName extracts the segment id from a file name, reporting
// whether the name is a segment name at all.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// readSegmentHeader consumes the header from br, reporting the recorded id
// and snapshot sequence (legacy headers carry neither). errTornTail marks a
// header cut short by a crash during segment creation.
func readSegmentHeader(br *bufio.Reader) (id, snapSeq uint64, legacy bool, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, false, errTornTail
		}
		return 0, 0, false, err
	}
	switch magic {
	case fileMagic:
		return 0, 0, true, nil
	case segmentMagic:
	default:
		return 0, 0, false, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, magic[:])
	}
	id, err = binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, false, errTornTail
		}
		return 0, 0, false, fmt.Errorf("%w: segment header: %v", ErrCorrupt, err)
	}
	snapSeq, err = binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, false, errTornTail
		}
		return 0, 0, false, fmt.Errorf("%w: segment header: %v", ErrCorrupt, err)
	}
	return id, snapSeq, false, nil
}

// writeSegmentHeader emits the SWL2 header for segment id.
func writeSegmentHeader(w io.Writer, id, snapSeq uint64) error {
	var buf [4 + 2*binary.MaxVarintLen64]byte
	copy(buf[:4], segmentMagic[:])
	n := 4
	n += binary.PutUvarint(buf[n:], id)
	n += binary.PutUvarint(buf[n:], snapSeq)
	_, err := w.Write(buf[:n])
	return err
}

// ListSegments returns the segments of dir sorted by id, reading each header.
// A segment whose header is unreadable is reported with Torn set; anything
// else undecodable fails with ErrCorrupt.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var infos []SegmentInfo
	for _, e := range entries {
		id, ok := parseSegmentName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		info := SegmentInfo{ID: id, Path: filepath.Join(dir, e.Name()), Size: fi.Size()}
		f, err := os.Open(info.Path)
		if err != nil {
			return nil, err
		}
		hdrID, snapSeq, legacy, err := readSegmentHeader(bufio.NewReader(f))
		f.Close()
		switch {
		case errors.Is(err, errTornTail):
			info.Torn = true
		case err != nil:
			return nil, fmt.Errorf("%s: %w", info.Path, err)
		case legacy:
			info.Legacy = true
		case hdrID != id:
			return nil, fmt.Errorf("%w: segment %s header claims id %d", ErrCorrupt, info.Path, hdrID)
		default:
			info.SnapSeq = snapSeq
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos, nil
}

// ReplaySegment reads every record of one segment file, invoking fn for each.
// A torn final record (or torn header) stops the replay cleanly when
// tolerateTorn is set — correct only for the log's final segment, since
// sealed segments are fsynced whole — and fails with ErrCorrupt otherwise.
func ReplaySegment(path string, tolerateTorn bool, fn func(Record) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if _, _, _, err := readSegmentHeader(br); err != nil {
		if errors.Is(err, errTornTail) {
			if tolerateTorn {
				return 0, nil
			}
			return 0, fmt.Errorf("%w: %s: truncated segment header", ErrCorrupt, path)
		}
		return 0, err
	}
	replayed := 0
	defer func() { mReplayed.Add(uint64(replayed)) }()
	var scratch []Record
	for {
		recs, err := readPhysicalRecord(br, scratch, true)
		if errors.Is(err, io.EOF) {
			return replayed, nil
		}
		if errors.Is(err, errTornTail) {
			if tolerateTorn {
				return replayed, nil
			}
			return replayed, fmt.Errorf("%w: %s: torn record in sealed segment", ErrCorrupt, path)
		}
		if err != nil {
			return replayed, fmt.Errorf("%s: %w", path, err)
		}
		scratch = recs
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return replayed, err
			}
			replayed++
		}
	}
}

// ReplayDir replays every record of every segment in a log directory in id
// order, tolerating a torn tail only in the final segment, and returns the
// record count. It is snapshot-oblivious — segments already covered by a
// checkpoint snapshot replay too — so use the checkpoint package for real
// recovery; this is the raw-log view (tests, tooling, full audits).
func ReplayDir(dir string, fn func(Record) error) (int, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, sg := range segs {
		if sg.Torn {
			if i != len(segs)-1 {
				return total, fmt.Errorf("%w: segment %s has no readable header but is not the tail", ErrCorrupt, sg.Path)
			}
			continue
		}
		n, err := ReplaySegment(sg.Path, i == len(segs)-1, fn)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// countingReader counts the bytes its wrapped reader hands out, so a bufio
// consumer can compute how far into the file the decoded prefix reaches.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanValidEnd reads f from the start and returns the byte offset just past
// the last complete record — the truncation point that removes a torn tail
// before the segment is appended to again.
func scanValidEnd(f *os.File) (validEnd int64, err error) {
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	if _, _, _, err := readSegmentHeader(br); err != nil {
		if errors.Is(err, errTornTail) {
			return 0, err // caller recreates the segment
		}
		return 0, err
	}
	validEnd = cr.n - int64(br.Buffered())
	var scratch []Record
	for {
		recs, err := readPhysicalRecord(br, scratch, true)
		if errors.Is(err, io.EOF) || errors.Is(err, errTornTail) {
			return validEnd, nil
		}
		if err != nil {
			return validEnd, err
		}
		scratch = recs
		validEnd = cr.n - int64(br.Buffered())
	}
}

// Dir is the append head of a segmented write-ahead log directory. Unlike
// the legacy Log it is safe for concurrent use: appends serialise on an
// internal mutex while Sync runs the fsync outside it with a group-commit
// watermark, so concurrent producers' batches are persisted collectively by
// whichever fsync lands after their records were flushed.
type Dir struct {
	dir  string
	opts Options

	// mu guards the buffer, the current segment and the counters.
	mu sync.Mutex
	// syncMu serialises fsyncs only; the fsync itself runs without mu, so
	// appends proceed while the disk works.
	syncMu    sync.Mutex
	f         *os.File
	w         *bufio.Writer
	segID     uint64
	snapSeq   uint64
	appended  uint64
	bytes     int64
	sinceSync int
	closed    bool
	// synced is the appended-count watermark covered by the last completed
	// fsync; a Sync whose records are already covered returns without
	// touching the disk.
	synced atomic.Uint64
	// fsyncs counts the fsyncs actually issued for record durability (Sync,
	// Rotate, Close) — the observable behind the one-fsync-per-batch
	// group-commit contract.
	fsyncs atomic.Uint64
}

// OpenDir opens the append head of a segment directory. When tail is
// non-nil, that segment is opened for appending — a torn final record left
// by a crash is truncated away first, and a segment whose header never made
// it to disk (tail.Torn) is recreated in place. Otherwise a fresh segment
// with id nextID is created, its header recording snapSeq.
func OpenDir(dir string, opts Options, tail *SegmentInfo, nextID, snapSeq uint64) (*Dir, error) {
	d := &Dir{dir: dir, opts: opts}
	if tail != nil && tail.Torn {
		// The crash happened between creating the file and persisting its
		// header; it holds nothing recoverable.
		if err := os.Remove(tail.Path); err != nil {
			return nil, err
		}
		nextID = tail.ID
		tail = nil
	}
	if tail != nil {
		f, err := os.OpenFile(tail.Path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		validEnd, err := scanValidEnd(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", tail.Path, err)
		}
		if validEnd < tail.Size {
			if err := f.Truncate(validEnd); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		d.f = f
		d.segID = tail.ID
		d.snapSeq = tail.SnapSeq
		d.bytes = validEnd
	} else {
		f, err := createSegment(dir, nextID, snapSeq)
		if err != nil {
			return nil, err
		}
		d.f = f
		d.segID = nextID
		d.snapSeq = snapSeq
	}
	d.w = bufio.NewWriter(d.f)
	return d, nil
}

// createSegment creates segment nextID with a durable header.
func createSegment(dir string, id, snapSeq uint64) (*os.File, error) {
	path := filepath.Join(dir, SegmentName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := writeSegmentHeader(f, id, snapSeq); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := SyncDir(dir); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// SyncDir fsyncs a directory so renames and file creations inside it are
// durable. Shared with the checkpoint layer, which publishes snapshots into
// the same directory.
func SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Append adds one record to the current segment. syncDue reports that the
// SyncEvery threshold has been crossed; the caller runs Sync outside its own
// locks, which is what keeps fsyncs off the append path.
func (d *Dir) Append(rec Record) (syncDue bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	n, err := appendRecord(d.w, rec)
	if err != nil {
		return false, err
	}
	d.appended++
	d.bytes += int64(n)
	mAppends.Inc()
	mAppendedBytes.Add(uint64(n))
	if d.opts.SyncEvery > 0 {
		d.sinceSync++
		if d.sinceSync >= d.opts.SyncEvery {
			d.sinceSync = 0
			return true, nil
		}
	}
	return false, nil
}

// AppendBatch adds a whole coalesced batch to the current segment as one
// physical record under one acquisition of the append mutex. Replay treats
// each record atomically: either every entry is recovered or — after a
// crash that tears it — none. A batch larger than the frame's entry-count
// limit spans several records (still under the one mutex hold), so no write
// can ever produce a record the read side would reject as corrupt. syncDue
// follows the Append contract, counting each entry as one record against
// the SyncEvery threshold.
func (d *Dir) AppendBatch(entries []BatchEntry) (syncDue bool, err error) {
	if len(entries) == 0 {
		return false, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	for rest := entries; len(rest) > 0; {
		chunk := rest
		if len(chunk) > maxBatchEntries {
			chunk = rest[:maxBatchEntries]
		}
		n, err := appendBatchRecord(d.w, chunk)
		if err != nil {
			return false, err
		}
		d.bytes += int64(n)
		mAppendedBytes.Add(uint64(n))
		rest = rest[len(chunk):]
	}
	d.appended += uint64(len(entries))
	mAppends.Add(uint64(len(entries)))
	if d.opts.SyncEvery > 0 {
		d.sinceSync += len(entries)
		if d.sinceSync >= d.opts.SyncEvery {
			d.sinceSync = 0
			return true, nil
		}
	}
	return false, nil
}

// Fsyncs returns how many record-durability fsyncs this handle has issued.
// Group commit keeps it far below the number of Sync calls under load; tests
// use it to pin the one-fsync-per-batch contract.
func (d *Dir) Fsyncs() uint64 { return d.fsyncs.Load() }

// Appended returns the number of records appended through this handle.
func (d *Dir) Appended() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appended
}

// AppendedBytes returns the record bytes appended through this handle plus
// the bytes already in the segment it opened on — the input to a size-based
// checkpoint trigger.
func (d *Dir) AppendedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// SegmentID returns the id of the segment currently open for appending.
func (d *Dir) SegmentID() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.segID
}

// Sync makes every appended record durable, with group commit: the buffer is
// flushed under the append mutex, the fsync runs outside it, and a Sync
// whose records were already covered by a concurrent fsync (or a rotation)
// returns without touching the disk.
func (d *Dir) Sync() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	target := d.appended
	if d.synced.Load() >= target {
		d.mu.Unlock()
		return nil
	}
	err := d.w.Flush()
	f := d.f
	d.mu.Unlock()
	if err != nil {
		return err
	}
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if d.synced.Load() >= target {
		// Another batch's fsync — or a rotation, which seals with an fsync —
		// covered our records. f may already be a sealed, closed segment;
		// either way there is nothing left to persist.
		return nil
	}
	if err := syncTimed(f.Sync); err != nil {
		return err
	}
	d.fsyncs.Add(1)
	if d.synced.Load() < target {
		d.synced.Store(target)
	}
	return nil
}

// Rotate seals the current segment — flush, fsync, close — and opens the
// next one, whose header records newSnapSeq. It returns the sealed segment's
// id. Rotation excludes appends and in-flight fsyncs for its (short)
// duration; a failure to open the new segment leaves the old one writable.
func (d *Dir) Rotate(newSnapSeq uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if err := d.w.Flush(); err != nil {
		return 0, err
	}
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if err := syncTimed(d.f.Sync); err != nil {
		return 0, err
	}
	d.fsyncs.Add(1)
	mRotations.Inc()
	sealed := d.segID
	nf, err := createSegment(d.dir, sealed+1, newSnapSeq)
	if err != nil {
		return 0, err
	}
	old := d.f
	d.f = nf
	d.w.Reset(nf)
	d.segID = sealed + 1
	d.snapSeq = newSnapSeq
	d.sinceSync = 0
	// Everything appended so far is durable in the sealed segment.
	d.synced.Store(d.appended)
	old.Close()
	return sealed, nil
}

// DropThrough deletes every segment file with id at most segID, except the
// segment currently open for appending. Used after a checkpoint has made
// those segments redundant.
func (d *Dir) DropThrough(segID uint64) error {
	d.mu.Lock()
	cur := d.segID
	dir := d.dir
	d.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		id, ok := parseSegmentName(e.Name())
		if !ok || id > segID || id == cur {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := SyncDir(dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close flushes, fsyncs and closes the current segment.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	flushErr := d.w.Flush()
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if flushErr != nil {
		d.f.Close()
		return flushErr
	}
	if err := syncTimed(d.f.Sync); err != nil {
		d.f.Close()
		return err
	}
	d.fsyncs.Add(1)
	// Everything appended is durable; advance the watermark so a Sync that
	// raced past the closed check returns success instead of fsyncing the
	// closed fd and reporting a spurious failure.
	d.synced.Store(d.appended)
	return d.f.Close()
}

// MigrateLegacy converts a single-file SWL1 log at path, if one exists, into
// the segmented directory layout: the file becomes segment 1 — byte for
// byte, since the segment reader still understands the legacy header —
// inside a new directory at the same path. Calling it on a path that is
// already a directory, or does not exist, is a no-op. A migration
// interrupted by a crash resumes on the next call.
func MigrateLegacy(path string) error {
	staging := path + ".legacy"
	if _, err := os.Stat(staging); err == nil {
		// A previous migration moved the file aside and crashed; finish it.
		return completeMigration(path, staging)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	fi, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if fi.IsDir() {
		return nil
	}
	if fi.Size() == 0 {
		// An empty file (crash before the legacy header was written) holds
		// nothing; replace it with a fresh directory.
		return os.Remove(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var magic [4]byte
	_, readErr := io.ReadFull(f, magic[:])
	f.Close()
	if readErr != nil || magic != fileMagic {
		return fmt.Errorf("%w: %s is not a write-ahead log", ErrCorrupt, path)
	}
	if err := os.Rename(path, staging); err != nil {
		return err
	}
	return completeMigration(path, staging)
}

// completeMigration turns the staged legacy file into segment 1 of a
// directory at path.
func completeMigration(path, staging string) error {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return err
	}
	if err := os.Rename(staging, filepath.Join(path, SegmentName(1))); err != nil {
		return err
	}
	return SyncDir(path)
}
