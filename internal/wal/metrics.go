package wal

import (
	"time"

	"sprofile/internal/metrics"
)

// Package-level WAL metric families, registered once at init on the default
// registry. They aggregate across every Dir in the process — the normal
// deployment has exactly one — and each hot-path update is a single atomic
// add, so instrumentation never touches the append mutex.
var (
	mAppends = metrics.Default().Counter("sprofile_wal_appends_total",
		"Records appended to the write-ahead log (batch entries count individually).")
	mAppendedBytes = metrics.Default().Counter("sprofile_wal_appended_bytes_total",
		"Encoded record bytes appended to the write-ahead log.")
	mFsyncs = metrics.Default().Counter("sprofile_wal_fsyncs_total",
		"Record-durability fsyncs issued (group commit keeps this far below batch count).")
	mFsyncSeconds = metrics.Default().Histogram("sprofile_wal_fsync_seconds",
		"Latency of record-durability fsyncs.", metrics.LatencyBuckets())
	mRotations = metrics.Default().Counter("sprofile_wal_segment_rotations_total",
		"Segment rotations (seal + fsync + open next).")
	mReplayed = metrics.Default().Counter("sprofile_wal_replayed_records_total",
		"Records replayed from segments during recovery or audits.")
	mRolls = metrics.Default().Counter("sprofile_wal_rolls_total",
		"Poisoned segments rolled away to recover from a persistent I/O failure.")
	mSalvaged = metrics.Default().Counter("sprofile_wal_salvaged_records_total",
		"Applied-but-unacknowledged records a Roll carried from a poisoned segment into its replacement.")
)

// syncTimed runs one durability fsync on f-like sync functions, recording
// count and latency. The time.Now pair costs nanoseconds against an fsync's
// milliseconds, so it is unconditional; the histogram itself honours the
// global enable switch.
func syncTimed(sync func() error) error {
	start := time.Now()
	err := sync()
	if err == nil {
		mFsyncs.Inc()
		mFsyncSeconds.ObserveSince(start)
	}
	return err
}
