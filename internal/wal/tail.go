package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the replication-facing half of the segmented WAL: a raw byte
// cursor over the segment files (ReadChunk) for a leader shipping its log,
// and an incremental record decoder (StreamDecoder) for a follower applying
// the shipped bytes as they arrive. The contract that makes raw byte
// shipping safe is the rotation protocol in Dir.Rotate: segment N+1 is only
// created after segment N has been flushed and fsynced whole, so "a segment
// with a higher id exists" proves a segment is complete on disk. Only the
// current append segment may end mid-record (a buffered flush can land a
// prefix of a record); StreamDecoder simply buffers such a tail until the
// rest of the bytes arrive.

// Position addresses a byte boundary in a segmented WAL: a segment id and a
// byte offset within that segment's file (header bytes included). Positions
// order lexicographically by (Segment, Offset).
type Position struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// Less reports whether p is strictly before q in the log.
func (p Position) Less(q Position) bool {
	if p.Segment != q.Segment {
		return p.Segment < q.Segment
	}
	return p.Offset < q.Offset
}

// String renders the position as "<segment>:<offset>" in decimal — the form
// the replication endpoints exchange.
func (p Position) String() string {
	return strconv.FormatUint(p.Segment, 10) + ":" + strconv.FormatInt(p.Offset, 10)
}

// ParsePosition parses the "<segment>:<offset>" form produced by String.
func ParsePosition(s string) (Position, error) {
	seg, off, ok := strings.Cut(s, ":")
	if !ok {
		return Position{}, fmt.Errorf("wal: position %q: want <segment>:<offset>", s)
	}
	id, err := strconv.ParseUint(seg, 10, 64)
	if err != nil {
		return Position{}, fmt.Errorf("wal: position %q: bad segment: %v", s, err)
	}
	n, err := strconv.ParseInt(off, 10, 64)
	if err != nil || n < 0 {
		return Position{}, fmt.Errorf("wal: position %q: bad offset", s)
	}
	return Position{Segment: id, Offset: n}, nil
}

// ErrSegmentMissing reports a read of a segment that does not exist on disk —
// for a replication source this means the segment was pruned by a checkpoint
// and the reader must restart from a snapshot.
var ErrSegmentMissing = errors.New("wal: segment missing")

// ErrOffsetBeyondEnd reports a read offset past the end of a sealed segment —
// the reader's position does not belong to this log's history.
var ErrOffsetBeyondEnd = errors.New("wal: offset beyond end of segment")

// Chunk is one raw byte range of the segmented log, as served to a tailing
// reader.
type Chunk struct {
	Segment uint64 // segment the bytes belong to
	Offset  int64  // offset of Data[0] within the segment file
	Data    []byte
	Sealed  bool  // segment is complete on disk (a newer segment exists)
	Size    int64 // segment file size at read time
}

// End returns the position just past the chunk's last byte.
func (c Chunk) End() Position {
	return Position{Segment: c.Segment, Offset: c.Offset + int64(len(c.Data))}
}

// ReadChunk reads up to maxBytes raw bytes of the log in dir starting at
// pos. currentSeg is the id of the segment currently open for appending
// (Dir.SegmentID); every lower id is sealed. When pos sits at the end of a
// sealed segment the cursor advances to the start of the next one, so a
// reader never observes a gap across a rotation. A chunk with no data and
// Sealed false means the reader is caught up with the flushed log.
//
// Reads race benignly with the appender: segment files only grow, and a
// concurrent rotation at worst makes this call report the final bytes of a
// just-sealed segment with Sealed still false — the next call advances.
func ReadChunk(dir string, pos Position, currentSeg uint64, maxBytes int) (Chunk, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	for {
		path := filepath.Join(dir, SegmentName(pos.Segment))
		fi, err := os.Stat(path)
		if errors.Is(err, os.ErrNotExist) {
			return Chunk{}, fmt.Errorf("%w: segment %d", ErrSegmentMissing, pos.Segment)
		}
		if err != nil {
			return Chunk{}, err
		}
		size := fi.Size()
		sealed := pos.Segment < currentSeg
		if pos.Offset > size {
			return Chunk{}, fmt.Errorf("%w: offset %d past %d in segment %d",
				ErrOffsetBeyondEnd, pos.Offset, size, pos.Segment)
		}
		if pos.Offset == size {
			if !sealed {
				return Chunk{Segment: pos.Segment, Offset: pos.Offset, Sealed: false, Size: size}, nil
			}
			pos = Position{Segment: pos.Segment + 1}
			continue
		}
		n := size - pos.Offset
		if n > int64(maxBytes) {
			n = int64(maxBytes)
		}
		f, err := os.Open(path)
		if errors.Is(err, os.ErrNotExist) {
			return Chunk{}, fmt.Errorf("%w: segment %d", ErrSegmentMissing, pos.Segment)
		}
		if err != nil {
			return Chunk{}, err
		}
		buf := make([]byte, n)
		_, err = io.ReadFull(io.NewSectionReader(f, pos.Offset, n), buf)
		f.Close()
		if err != nil {
			return Chunk{}, fmt.Errorf("wal: read segment %d at %d: %w", pos.Segment, pos.Offset, err)
		}
		return Chunk{Segment: pos.Segment, Offset: pos.Offset, Data: buf, Sealed: sealed, Size: size}, nil
	}
}

// StreamDecoder incrementally decodes the record stream of one segment's raw
// bytes as they arrive in order: Feed appends a chunk and emits every record
// that is now complete; the bytes of an incomplete trailing record stay
// buffered until the rest arrives. Reset re-arms it for the next segment
// (whose header it will parse and skip). The zero value is ready to decode a
// segment from byte 0; a decoder resuming mid-segment must call
// MarkHeaderDone first.
type StreamDecoder struct {
	buf        []byte
	headerDone bool
	scratch    []Record
}

// Reset drops buffered bytes and re-arms header parsing for a new segment.
func (sd *StreamDecoder) Reset() {
	sd.buf = sd.buf[:0]
	sd.headerDone = false
}

// MarkHeaderDone declares that the segment header was already consumed (the
// decoder is resuming at an offset past it).
func (sd *StreamDecoder) MarkHeaderDone() { sd.headerDone = true }

// Buffered reports how many bytes of an incomplete trailing record (or
// header) are held back.
func (sd *StreamDecoder) Buffered() int { return len(sd.buf) }

// Feed appends data to the stream and calls fn for every record that is now
// complete, in order. A record is emitted exactly once across all Feed
// calls. An undecodable stream fails with ErrCorrupt; an error from fn is
// returned as-is. After a non-nil error the decoder's state is undefined —
// Reset it before reuse.
func (sd *StreamDecoder) Feed(data []byte, fn func(Record) error) error {
	sd.buf = append(sd.buf, data...)
	cr := &countingReader{r: bytes.NewReader(sd.buf)}
	br := bufio.NewReader(cr)
	var good int64
	if !sd.headerDone {
		if _, _, _, err := readSegmentHeader(br); err != nil {
			if errors.Is(err, errTornTail) {
				return nil // header still incomplete; keep buffering
			}
			return err
		}
		sd.headerDone = true
		good = cr.n - int64(br.Buffered())
	}
	for {
		recs, err := readPhysicalRecord(br, sd.scratch[:0], true)
		if errors.Is(err, io.EOF) || errors.Is(err, errTornTail) {
			break
		}
		if err != nil {
			return err
		}
		sd.scratch = recs
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return err
			}
		}
		good = cr.n - int64(br.Buffered())
	}
	sd.buf = sd.buf[:copy(sd.buf, sd.buf[good:])]
	return nil
}

// ReplaySegmentValid is ReplaySegment plus the valid end: it reports the
// byte offset just past the last complete record (the boundary where
// mirrored replication bytes resume). A segment whose header itself is torn
// replays zero records with validEnd 0.
func ReplaySegmentValid(path string, tolerateTorn bool, fn func(Record) error) (replayed int, validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	if _, _, _, err := readSegmentHeader(br); err != nil {
		if errors.Is(err, errTornTail) {
			if tolerateTorn {
				return 0, 0, nil
			}
			return 0, 0, fmt.Errorf("%w: %s: truncated segment header", ErrCorrupt, path)
		}
		return 0, 0, err
	}
	validEnd = cr.n - int64(br.Buffered())
	var scratch []Record
	for {
		recs, rerr := readPhysicalRecord(br, scratch[:0], true)
		if errors.Is(rerr, io.EOF) {
			return replayed, validEnd, nil
		}
		if errors.Is(rerr, errTornTail) {
			if tolerateTorn {
				return replayed, validEnd, nil
			}
			return replayed, validEnd, fmt.Errorf("%w: %s: torn record in sealed segment", ErrCorrupt, path)
		}
		if rerr != nil {
			return replayed, validEnd, rerr
		}
		scratch = recs
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return replayed, validEnd, err
			}
			replayed++
		}
		validEnd = cr.n - int64(br.Buffered())
	}
}
