package wal

import (
	"os"
	"testing"

	"sprofile/internal/core"
)

func openTestDir(t *testing.T, opts Options) (*Dir, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenDir(dir, opts, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

func TestAppendBatchRoundTrip(t *testing.T) {
	d, dir := openTestDir(t, Options{})
	entries := []BatchEntry{
		{Key: "alpha", Adds: 3, Removes: 1},
		{Key: "beta", Adds: 0, Removes: 2},
		{Key: "gamma", Adds: 4, Removes: 4}, // cancelled out, still recorded
	}
	if _, err := d.AppendBatch(entries); err != nil {
		t.Fatal(err)
	}
	// Interleave a single-event record to prove the two framings coexist.
	if _, err := d.Append(Record{Key: "delta", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	n, err := ReplayDir(dir, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records, want 4", n)
	}
	want := []Record{
		{Key: "alpha", Batch: true, Adds: 3, Removes: 1},
		{Key: "beta", Batch: true, Removes: 2},
		{Key: "gamma", Batch: true, Adds: 4, Removes: 4},
		{Key: "delta", Action: core.ActionAdd},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAppendBatchValidates(t *testing.T) {
	d, dir := openTestDir(t, Options{})
	if _, err := d.AppendBatch([]BatchEntry{{Key: "", Adds: 1}}); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := d.AppendBatch([]BatchEntry{{Key: "x"}}); err == nil {
		t.Fatal("zero-count entry accepted")
	}
	// A key the read path would reject as corrupt must never be written:
	// journaling it would poison the log for every later replay.
	huge := string(make([]byte, MaxKeyLen+1))
	if _, err := d.AppendBatch([]BatchEntry{{Key: huge, Adds: 1}}); err == nil {
		t.Fatal("oversized key accepted by AppendBatch")
	}
	if _, err := d.Append(Record{Key: huge, Action: core.ActionAdd}); err == nil {
		t.Fatal("oversized key accepted by Append")
	}
	// Rejected batches must leave the stream clean for later appends.
	if _, err := d.AppendBatch([]BatchEntry{{Key: "ok", Adds: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ReplayDir(dir, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("replayed %d records (%v), want exactly the valid one", n, err)
	}
}

func TestAppendBatchSyncEveryCountsEntries(t *testing.T) {
	d, _ := openTestDir(t, Options{SyncEvery: 4})
	due, err := d.AppendBatch([]BatchEntry{{Key: "a", Adds: 1}, {Key: "b", Adds: 1}})
	if err != nil || due {
		t.Fatalf("2 entries: due=%v err=%v", due, err)
	}
	due, err = d.AppendBatch([]BatchEntry{{Key: "c", Adds: 1}, {Key: "d", Adds: 1}})
	if err != nil || !due {
		t.Fatalf("4 entries total: due=%v err=%v", due, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatchOneFsync(t *testing.T) {
	d, _ := openTestDir(t, Options{})
	base := d.Fsyncs()
	if _, err := d.AppendBatch([]BatchEntry{
		{Key: "a", Adds: 100}, {Key: "b", Adds: 50, Removes: 10}, {Key: "c", Removes: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if got := d.Fsyncs(); got != base {
		t.Fatalf("append issued %d fsyncs", got-base)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.Fsyncs() - base; got != 1 {
		t.Fatalf("batch cost %d fsyncs, want 1", got)
	}
	// A second Sync with nothing new appended is group-commit deduplicated.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.Fsyncs() - base; got != 1 {
		t.Fatalf("idempotent sync fsynced again: %d total", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornBatchTruncatedOnReopen(t *testing.T) {
	d, dir := openTestDir(t, Options{})
	if _, err := d.AppendBatch([]BatchEntry{{Key: "keep", Adds: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear a batch record onto the tail by hand.
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	f, err := os.OpenFile(segs[0].Path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 3, 1, 'x', 5}) // 3 entries promised, first one torn
	f.Close()

	segs, err = ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(dir, Options{}, &segs[0], segs[0].ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Append(Record{Key: "after", Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	var keys []string
	if _, err := ReplayDir(dir, func(r Record) error {
		keys = append(keys, r.Key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "keep" || keys[1] != "after" {
		t.Fatalf("recovered keys %v, want [keep after]", keys)
	}
}
