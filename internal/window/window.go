// Package window implements the sliding-window adapter sketched in §2.3 of
// the paper: "S-Profile can also deal with a sliding window on a log stream,
// by letting every tuple (x_i, c_i) outdated from the window be a new
// incoming tuple (x_i, c̄_i), where c̄_i is the opposite action of c_i."
//
// A Window wraps any profiler.Profiler. Every pushed tuple is applied to the
// profiler and remembered in a ring buffer; once the buffer holds Size
// tuples, each new push first expires the oldest tuple by applying its
// opposite action. The profiler therefore always reflects exactly the last
// Size tuples of the stream, and — because expiry is just one extra ±1 update
// — the per-tuple cost stays O(1) when the wrapped profiler is S-Profile.
package window

import (
	"errors"
	"fmt"

	"sprofile/internal/core"
	"sprofile/internal/profiler"
)

// ErrBadSize is returned by New when the window size is not positive.
var ErrBadSize = errors.New("window: size must be positive")

// Window maintains a count-based sliding window over a log stream on top of
// an arbitrary profiler. It is not safe for concurrent use.
type Window struct {
	p    profiler.Profiler
	size int

	ring  []core.Tuple
	head  int // index of the oldest tuple
	count int // number of tuples currently in the window

	pushed  uint64
	expired uint64
}

// New returns a sliding window of the given size over profiler p.
func New(p profiler.Profiler, size int) (*Window, error) {
	if p == nil {
		return nil, errors.New("window: nil profiler")
	}
	if size <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	return &Window{
		p:    p,
		size: size,
		ring: make([]core.Tuple, size),
	}, nil
}

// MustNew is New for callers with known-good arguments; it panics on error.
func MustNew(p profiler.Profiler, size int) *Window {
	w, err := New(p, size)
	if err != nil {
		panic(err)
	}
	return w
}

// Profiler returns the wrapped profiler; use it for queries. The caller must
// not apply updates to it directly, or the window contents and the profile
// will diverge.
func (w *Window) Profiler() profiler.Profiler { return w.p }

// Size returns the window capacity in tuples.
func (w *Window) Size() int { return w.size }

// Len returns the number of tuples currently inside the window.
func (w *Window) Len() int { return w.count }

// Full reports whether the window has reached its capacity, i.e. every new
// push will expire the oldest tuple.
func (w *Window) Full() bool { return w.count == w.size }

// Stats returns how many tuples have been pushed and how many have expired.
func (w *Window) Stats() (pushed, expired uint64) { return w.pushed, w.expired }

// Oldest returns the oldest tuple still inside the window.
func (w *Window) Oldest() (core.Tuple, bool) {
	if w.count == 0 {
		return core.Tuple{}, false
	}
	return w.ring[w.head], true
}

// Push applies tuple t to the window: the oldest tuple is expired first if
// the window is full, then t is applied to the profiler and recorded.
//
// If applying t fails (out-of-range object, invalid action, strict-mode
// violation) the window is left exactly as it was before the call, including
// any tuple that would have been expired.
func (w *Window) Push(t core.Tuple) error {
	if !t.Action.Valid() {
		return fmt.Errorf("window: invalid action %d", t.Action)
	}

	var expiredTuple core.Tuple
	didExpire := false
	if w.count == w.size {
		expiredTuple = w.ring[w.head]
		if err := profiler.Apply(w.p, core.Tuple{Object: expiredTuple.Object, Action: expiredTuple.Action.Opposite()}); err != nil {
			return fmt.Errorf("window: expiring oldest tuple: %w", err)
		}
		didExpire = true
	}

	if err := profiler.Apply(w.p, t); err != nil {
		if didExpire {
			// Roll the expiry back so the window state is unchanged.
			if rbErr := profiler.Apply(w.p, expiredTuple); rbErr != nil {
				return fmt.Errorf("window: push failed (%v) and rollback failed: %w", err, rbErr)
			}
		}
		return err
	}

	if didExpire {
		w.head = (w.head + 1) % w.size
		w.count--
		w.expired++
	}
	tail := (w.head + w.count) % w.size
	w.ring[tail] = t
	w.count++
	w.pushed++
	return nil
}

// PushAll pushes tuples in order, stopping at the first error; it returns the
// number of tuples pushed.
func (w *Window) PushAll(tuples []core.Tuple) (int, error) {
	for i, t := range tuples {
		if err := w.Push(t); err != nil {
			return i, err
		}
	}
	return len(tuples), nil
}

// Drain expires every tuple still in the window (oldest first), returning the
// profiler to the state it had before any windowed tuple was applied.
func (w *Window) Drain() error {
	for w.count > 0 {
		t := w.ring[w.head]
		if err := profiler.Apply(w.p, core.Tuple{Object: t.Object, Action: t.Action.Opposite()}); err != nil {
			return fmt.Errorf("window: draining tuple: %w", err)
		}
		w.head = (w.head + 1) % w.size
		w.count--
		w.expired++
	}
	w.head = 0
	return nil
}

// Contents returns the tuples currently inside the window, oldest first.
func (w *Window) Contents() []core.Tuple {
	out := make([]core.Tuple, 0, w.count)
	for i := 0; i < w.count; i++ {
		out = append(out, w.ring[(w.head+i)%w.size])
	}
	return out
}
