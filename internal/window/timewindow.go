package window

import (
	"errors"
	"fmt"
	"time"

	"sprofile/internal/core"
	"sprofile/internal/profiler"
)

// ErrBadDuration is returned by NewTime when the window length is not
// positive.
var ErrBadDuration = errors.New("window: duration must be positive")

// ErrTimeRegression is returned by PushAt when a tuple's timestamp is older
// than the newest timestamp already pushed; the time window requires
// monotonically non-decreasing event times.
var ErrTimeRegression = errors.New("window: event timestamps must be non-decreasing")

// TimeWindow maintains a duration-based sliding window over a log stream: the
// wrapped profiler always reflects exactly the tuples whose timestamps lie in
// (now - span, now], where "now" is the timestamp of the most recent push (or
// an explicit AdvanceTo). Expiry applies the opposite action, as in §2.3 of
// the paper, so the amortised cost per push stays O(1): every tuple is
// expired at most once.
//
// A TimeWindow is not safe for concurrent use.
type TimeWindow struct {
	p    profiler.Profiler
	span time.Duration

	// entries is a growable circular buffer ordered by timestamp.
	entries []timedTuple
	head    int
	count   int

	now     time.Time
	haveNow bool

	pushed  uint64
	expired uint64
}

type timedTuple struct {
	tuple core.Tuple
	at    time.Time
}

// NewTime returns a sliding window of the given time span over profiler p.
func NewTime(p profiler.Profiler, span time.Duration) (*TimeWindow, error) {
	if p == nil {
		return nil, errors.New("window: nil profiler")
	}
	if span <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadDuration, span)
	}
	return &TimeWindow{p: p, span: span, entries: make([]timedTuple, 8)}, nil
}

// MustNewTime is NewTime for callers with known-good arguments; it panics on
// error.
func MustNewTime(p profiler.Profiler, span time.Duration) *TimeWindow {
	w, err := NewTime(p, span)
	if err != nil {
		panic(err)
	}
	return w
}

// Profiler returns the wrapped profiler for queries; callers must not update
// it directly.
func (w *TimeWindow) Profiler() profiler.Profiler { return w.p }

// Span returns the window length.
func (w *TimeWindow) Span() time.Duration { return w.span }

// Len returns the number of tuples currently inside the window.
func (w *TimeWindow) Len() int { return w.count }

// Stats returns how many tuples have been pushed and how many have expired.
func (w *TimeWindow) Stats() (pushed, expired uint64) { return w.pushed, w.expired }

// Now returns the window's current logical time (the newest timestamp seen).
func (w *TimeWindow) Now() (time.Time, bool) { return w.now, w.haveNow }

// PushAt applies tuple t stamped with the given event time. Timestamps must
// be non-decreasing; out-of-order events are rejected with ErrTimeRegression
// so the caller can decide how to handle them (drop, clamp, or buffer).
func (w *TimeWindow) PushAt(t core.Tuple, at time.Time) error {
	if !t.Action.Valid() {
		return fmt.Errorf("window: invalid action %d", t.Action)
	}
	if w.haveNow && at.Before(w.now) {
		return fmt.Errorf("%w: %v is before %v", ErrTimeRegression, at, w.now)
	}
	// Expire first so the profile never momentarily holds both an outdated
	// tuple and the new one.
	if err := w.expireBefore(at.Add(-w.span)); err != nil {
		return err
	}
	if err := profiler.Apply(w.p, t); err != nil {
		return err
	}
	w.append(timedTuple{tuple: t, at: at})
	w.now = at
	w.haveNow = true
	w.pushed++
	return nil
}

// Push applies tuple t stamped with the current wall-clock time; prefer
// PushAt in tests and replay pipelines.
func (w *TimeWindow) Push(t core.Tuple) error { return w.PushAt(t, time.Now()) }

// AdvanceTo moves the window's logical time forward without adding a tuple,
// expiring everything that falls out of the span. Use it on idle streams so
// queries do not keep counting stale events.
func (w *TimeWindow) AdvanceTo(now time.Time) error {
	if w.haveNow && now.Before(w.now) {
		return fmt.Errorf("%w: %v is before %v", ErrTimeRegression, now, w.now)
	}
	if err := w.expireBefore(now.Add(-w.span)); err != nil {
		return err
	}
	w.now = now
	w.haveNow = true
	return nil
}

// expireBefore replays the opposite action for every buffered tuple whose
// timestamp is at or before the cutoff.
func (w *TimeWindow) expireBefore(cutoff time.Time) error {
	for w.count > 0 {
		oldest := w.entries[w.head]
		if oldest.at.After(cutoff) {
			return nil
		}
		opposite := core.Tuple{Object: oldest.tuple.Object, Action: oldest.tuple.Action.Opposite()}
		if err := profiler.Apply(w.p, opposite); err != nil {
			return fmt.Errorf("window: expiring tuple: %w", err)
		}
		w.head = (w.head + 1) % len(w.entries)
		w.count--
		w.expired++
	}
	return nil
}

// append adds an entry to the circular buffer, growing it when full.
func (w *TimeWindow) append(e timedTuple) {
	if w.count == len(w.entries) {
		grown := make([]timedTuple, 2*len(w.entries))
		for i := 0; i < w.count; i++ {
			grown[i] = w.entries[(w.head+i)%len(w.entries)]
		}
		w.entries = grown
		w.head = 0
	}
	w.entries[(w.head+w.count)%len(w.entries)] = e
	w.count++
}

// Contents returns the tuples currently inside the window with their
// timestamps, oldest first.
func (w *TimeWindow) Contents() []core.Tuple {
	out := make([]core.Tuple, 0, w.count)
	for i := 0; i < w.count; i++ {
		out = append(out, w.entries[(w.head+i)%len(w.entries)].tuple)
	}
	return out
}
