package window

import (
	"errors"
	"testing"
	"testing/quick"

	"sprofile/internal/baseline/bucketprof"
	"sprofile/internal/core"
	"sprofile/internal/stream"
)

func TestNewValidation(t *testing.T) {
	p := core.MustNew(4)
	if _, err := New(nil, 5); err == nil {
		t.Fatalf("New(nil, 5) succeeded")
	}
	if _, err := New(p, 0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("New(p, 0) error %v, want ErrBadSize", err)
	}
	if _, err := New(p, -3); !errors.Is(err, ErrBadSize) {
		t.Fatalf("New(p, -3) error %v, want ErrBadSize", err)
	}
	w, err := New(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 || w.Len() != 0 || w.Full() {
		t.Fatalf("fresh window reports Size=%d Len=%d Full=%v", w.Size(), w.Len(), w.Full())
	}
	if w.Profiler() != p {
		t.Fatalf("Profiler() does not return the wrapped profiler")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew did not panic")
		}
	}()
	MustNew(core.MustNew(1), 0)
}

func TestWindowReflectsOnlyLastNTuples(t *testing.T) {
	const m = 10
	const size = 5
	p := core.MustNew(m)
	w := MustNew(p, size)
	g, err := stream.Stream1(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	var history []core.Tuple
	for i := 0; i < 500; i++ {
		tp := g.Next()
		history = append(history, tp)
		if err := w.Push(tp); err != nil {
			t.Fatal(err)
		}

		// Reference: apply only the last `size` tuples to a fresh oracle.
		oracle := bucketprof.MustNew(m)
		start := 0
		if len(history) > size {
			start = len(history) - size
		}
		for _, ht := range history[start:] {
			if ht.Action == core.ActionAdd {
				oracle.Add(ht.Object)
			} else {
				oracle.Remove(ht.Object)
			}
		}
		for x := 0; x < m; x++ {
			got, _ := p.Count(x)
			want, _ := oracle.Count(x)
			if got != want {
				t.Fatalf("step %d: Count(%d) = %d, windowed oracle %d", i, x, got, want)
			}
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	pushed, expired := w.Stats()
	if pushed != 500 || expired != 500-size {
		t.Fatalf("Stats() = (%d, %d), want (500, %d)", pushed, expired, 500-size)
	}
}

func TestWindowLenAndFull(t *testing.T) {
	p := core.MustNew(4)
	w := MustNew(p, 3)
	for i := 0; i < 3; i++ {
		if w.Full() {
			t.Fatalf("window full after %d pushes", i)
		}
		if err := w.Push(core.Tuple{Object: i % 4, Action: core.ActionAdd}); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("after 3 pushes: Full=%v Len=%d", w.Full(), w.Len())
	}
	w.Push(core.Tuple{Object: 3, Action: core.ActionAdd})
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("after 4 pushes: Full=%v Len=%d", w.Full(), w.Len())
	}
}

func TestWindowOldestAndContents(t *testing.T) {
	p := core.MustNew(8)
	w := MustNew(p, 3)
	if _, ok := w.Oldest(); ok {
		t.Fatalf("Oldest on empty window reported ok")
	}
	tuples := []core.Tuple{
		{Object: 0, Action: core.ActionAdd},
		{Object: 1, Action: core.ActionAdd},
		{Object: 2, Action: core.ActionRemove},
		{Object: 3, Action: core.ActionAdd},
	}
	for _, tp := range tuples {
		w.Push(tp)
	}
	oldest, ok := w.Oldest()
	if !ok || oldest != tuples[1] {
		t.Fatalf("Oldest = %+v, want %+v", oldest, tuples[1])
	}
	contents := w.Contents()
	want := tuples[1:]
	if len(contents) != len(want) {
		t.Fatalf("Contents has %d tuples, want %d", len(contents), len(want))
	}
	for i := range want {
		if contents[i] != want[i] {
			t.Fatalf("Contents[%d] = %+v, want %+v", i, contents[i], want[i])
		}
	}
}

func TestWindowPushRejectsInvalidAction(t *testing.T) {
	p := core.MustNew(2)
	w := MustNew(p, 2)
	if err := w.Push(core.Tuple{Object: 0, Action: 0}); err == nil {
		t.Fatalf("Push accepted invalid action")
	}
}

func TestWindowPushErrorLeavesStateUnchanged(t *testing.T) {
	p := core.MustNew(3)
	w := MustNew(p, 2)
	w.Push(core.Tuple{Object: 0, Action: core.ActionAdd})
	w.Push(core.Tuple{Object: 1, Action: core.ActionAdd})
	before := w.Contents()
	freqBefore := p.Frequencies(nil)

	if err := w.Push(core.Tuple{Object: 99, Action: core.ActionAdd}); err == nil {
		t.Fatalf("Push accepted out-of-range object")
	}
	after := w.Contents()
	freqAfter := p.Frequencies(nil)
	if len(before) != len(after) {
		t.Fatalf("window length changed after failed push")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("window contents changed after failed push")
		}
	}
	for i := range freqBefore {
		if freqBefore[i] != freqAfter[i] {
			t.Fatalf("profile changed after failed push")
		}
	}
	if _, expired := w.Stats(); expired != 0 {
		t.Fatalf("failed push counted an expiry")
	}
}

func TestWindowPushAllStopsAtError(t *testing.T) {
	p := core.MustNew(3)
	w := MustNew(p, 5)
	tuples := []core.Tuple{
		{Object: 0, Action: core.ActionAdd},
		{Object: 1, Action: core.ActionAdd},
		{Object: 9, Action: core.ActionAdd},
		{Object: 2, Action: core.ActionAdd},
	}
	n, err := w.PushAll(tuples)
	if err == nil {
		t.Fatalf("PushAll accepted out-of-range tuple")
	}
	if n != 2 {
		t.Fatalf("PushAll applied %d tuples before failing, want 2", n)
	}
}

func TestWindowDrainRestoresProfile(t *testing.T) {
	p := core.MustNew(6)
	w := MustNew(p, 4)
	g, _ := stream.Stream1(6, 11)
	for i := 0; i < 50; i++ {
		if err := w.Push(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 0 {
		t.Fatalf("Len() = %d after Drain", w.Len())
	}
	if p.Total() != 0 {
		t.Fatalf("Total() = %d after Drain, want 0", p.Total())
	}
	for x := 0; x < 6; x++ {
		if f, _ := p.Count(x); f != 0 {
			t.Fatalf("Count(%d) = %d after Drain, want 0", x, f)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowStrictProfileExpiryErrorIsSurfaced(t *testing.T) {
	// Over a strict profile the windowed view can require driving a frequency
	// below zero when the expiring prefix is an "add" whose object has since
	// been removed inside the window. That expiry must fail loudly and leave
	// both the window and the profile untouched.
	p := core.MustNew(4, core.WithStrictNonNegative())
	w := MustNew(p, 2)
	if err := w.Push(core.Tuple{Object: 0, Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if err := w.Push(core.Tuple{Object: 0, Action: core.ActionRemove}); err != nil {
		t.Fatal(err)
	}
	// Expiring the oldest tuple (add of object 0) needs Remove(0), but the
	// strict profile already has object 0 at frequency zero.
	err := w.Push(core.Tuple{Object: 1, Action: core.ActionAdd})
	if !errors.Is(err, core.ErrNegativeFrequency) {
		t.Fatalf("Push error = %v, want ErrNegativeFrequency from expiry", err)
	}
	if w.Len() != 2 {
		t.Fatalf("window length changed after failed expiry")
	}
	if f, _ := p.Count(0); f != 0 {
		t.Fatalf("Count(0) = %d after failed expiry, want 0", f)
	}
	if f, _ := p.Count(1); f != 0 {
		t.Fatalf("Count(1) = %d after failed expiry, want 0", f)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowPropertyMatchesSuffixOracle(t *testing.T) {
	f := func(seed uint64, rawM uint8, rawSize uint8, rawN uint16) bool {
		m := int(rawM)%20 + 1
		size := int(rawSize)%30 + 1
		n := int(rawN) % 300
		g, err := stream.Stream1(m, seed)
		if err != nil {
			return false
		}
		p := core.MustNew(m)
		w := MustNew(p, size)
		history := make([]core.Tuple, 0, n)
		for i := 0; i < n; i++ {
			tp := g.Next()
			history = append(history, tp)
			if w.Push(tp) != nil {
				return false
			}
		}
		oracle := bucketprof.MustNew(m)
		start := 0
		if len(history) > size {
			start = len(history) - size
		}
		for _, ht := range history[start:] {
			if ht.Action == core.ActionAdd {
				oracle.Add(ht.Object)
			} else {
				oracle.Remove(ht.Object)
			}
		}
		for x := 0; x < m; x++ {
			got, _ := p.Count(x)
			want, _ := oracle.Count(x)
			if got != want {
				return false
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
