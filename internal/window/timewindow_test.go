package window

import (
	"errors"
	"testing"
	"time"

	"sprofile/internal/baseline/bucketprof"
	"sprofile/internal/core"
	"sprofile/internal/stream"
)

var epoch = time.Date(2026, 6, 16, 0, 0, 0, 0, time.UTC)

func TestTimeWindowValidation(t *testing.T) {
	p := core.MustNew(4)
	if _, err := NewTime(nil, time.Second); err == nil {
		t.Fatalf("NewTime(nil) succeeded")
	}
	if _, err := NewTime(p, 0); !errors.Is(err, ErrBadDuration) {
		t.Fatalf("NewTime(p, 0) error %v", err)
	}
	if _, err := NewTime(p, -time.Second); !errors.Is(err, ErrBadDuration) {
		t.Fatalf("NewTime(p, -1s) error %v", err)
	}
	w := MustNewTime(p, time.Minute)
	if w.Span() != time.Minute || w.Len() != 0 {
		t.Fatalf("fresh time window: Span=%v Len=%d", w.Span(), w.Len())
	}
	if w.Profiler() != p {
		t.Fatalf("Profiler() mismatch")
	}
	if _, ok := w.Now(); ok {
		t.Fatalf("fresh window reports a logical time")
	}
}

func TestMustNewTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewTime did not panic")
		}
	}()
	MustNewTime(core.MustNew(1), 0)
}

func TestTimeWindowExpiresOldTuples(t *testing.T) {
	p := core.MustNew(4)
	w := MustNewTime(p, 10*time.Second)

	// Three adds of object 0 at t=0, 5s, 20s: by the time the third arrives,
	// the first two (older than 10s) must have expired.
	if err := w.PushAt(core.Tuple{Object: 0, Action: core.ActionAdd}, epoch); err != nil {
		t.Fatal(err)
	}
	if err := w.PushAt(core.Tuple{Object: 0, Action: core.ActionAdd}, epoch.Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	if f, _ := p.Count(0); f != 2 {
		t.Fatalf("Count(0) = %d before expiry, want 2", f)
	}
	if err := w.PushAt(core.Tuple{Object: 0, Action: core.ActionAdd}, epoch.Add(20*time.Second)); err != nil {
		t.Fatal(err)
	}
	if f, _ := p.Count(0); f != 1 {
		t.Fatalf("Count(0) = %d after expiry, want 1", f)
	}
	if w.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", w.Len())
	}
	pushed, expired := w.Stats()
	if pushed != 3 || expired != 2 {
		t.Fatalf("Stats = (%d, %d)", pushed, expired)
	}
	now, ok := w.Now()
	if !ok || !now.Equal(epoch.Add(20*time.Second)) {
		t.Fatalf("Now = %v ok=%v", now, ok)
	}
}

func TestTimeWindowBoundaryExactlySpanOld(t *testing.T) {
	// A tuple exactly `span` old is expired (window is half-open: (now-span, now]).
	p := core.MustNew(2)
	w := MustNewTime(p, 10*time.Second)
	w.PushAt(core.Tuple{Object: 0, Action: core.ActionAdd}, epoch)
	w.PushAt(core.Tuple{Object: 1, Action: core.ActionAdd}, epoch.Add(10*time.Second))
	if f, _ := p.Count(0); f != 0 {
		t.Fatalf("tuple exactly span old not expired: Count(0) = %d", f)
	}
	if f, _ := p.Count(1); f != 1 {
		t.Fatalf("Count(1) = %d", f)
	}
}

func TestTimeWindowRejectsTimeRegression(t *testing.T) {
	p := core.MustNew(2)
	w := MustNewTime(p, time.Minute)
	w.PushAt(core.Tuple{Object: 0, Action: core.ActionAdd}, epoch.Add(time.Hour))
	err := w.PushAt(core.Tuple{Object: 1, Action: core.ActionAdd}, epoch)
	if !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("out-of-order push error %v", err)
	}
	if err := w.AdvanceTo(epoch); !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("out-of-order AdvanceTo error %v", err)
	}
	// State unchanged by the rejected push.
	if f, _ := p.Count(1); f != 0 {
		t.Fatalf("rejected push changed the profile")
	}
}

func TestTimeWindowInvalidAction(t *testing.T) {
	w := MustNewTime(core.MustNew(2), time.Minute)
	if err := w.PushAt(core.Tuple{Object: 0, Action: 0}, epoch); err == nil {
		t.Fatalf("invalid action accepted")
	}
}

func TestTimeWindowAdvanceToExpiresIdleStream(t *testing.T) {
	p := core.MustNew(4)
	w := MustNewTime(p, 30*time.Second)
	for i := 0; i < 4; i++ {
		w.PushAt(core.Tuple{Object: i, Action: core.ActionAdd}, epoch.Add(time.Duration(i)*time.Second))
	}
	if p.Total() != 4 {
		t.Fatalf("Total = %d", p.Total())
	}
	// No new events arrive; advancing logical time far enough empties the
	// window.
	if err := w.AdvanceTo(epoch.Add(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 0 || w.Len() != 0 {
		t.Fatalf("after AdvanceTo: Total=%d Len=%d", p.Total(), w.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWindowPushUsesWallClock(t *testing.T) {
	p := core.MustNew(2)
	w := MustNewTime(p, time.Hour)
	if err := w.Push(core.Tuple{Object: 0, Action: core.ActionAdd}); err != nil {
		t.Fatal(err)
	}
	if f, _ := p.Count(0); f != 1 {
		t.Fatalf("Count(0) = %d", f)
	}
}

func TestTimeWindowBufferGrowthAndWraparound(t *testing.T) {
	// Push far more tuples than the initial buffer capacity within the span,
	// then let them all expire; contents ordering must survive growth.
	const m = 16
	p := core.MustNew(m)
	w := MustNewTime(p, time.Duration(50)*time.Millisecond)
	g, _ := stream.Stream1(m, 9)

	type stamped struct {
		tuple core.Tuple
		at    time.Time
	}
	var history []stamped
	for i := 0; i < 500; i++ {
		tp := g.Next()
		at := epoch.Add(time.Duration(i) * time.Millisecond)
		if err := w.PushAt(tp, at); err != nil {
			t.Fatal(err)
		}
		history = append(history, stamped{tuple: tp, at: at})

		// Reference: all tuples with timestamp in (at-50ms, at].
		ref := bucketprof.MustNew(m)
		cutoff := at.Add(-50 * time.Millisecond)
		for _, h := range history {
			if h.at.After(cutoff) {
				if h.tuple.Action == core.ActionAdd {
					ref.Add(h.tuple.Object)
				} else {
					ref.Remove(h.tuple.Object)
				}
			}
		}
		if i%50 == 0 || i == 499 {
			for x := 0; x < m; x++ {
				got, _ := p.Count(x)
				want, _ := ref.Count(x)
				if got != want {
					t.Fatalf("step %d: Count(%d) = %d, reference %d", i, x, got, want)
				}
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(w.Contents()) != w.Len() {
		t.Fatalf("Contents length %d != Len %d", len(w.Contents()), w.Len())
	}
}
