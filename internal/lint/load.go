package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed, fully type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load parses and type-checks the packages named by patterns, resolved
// relative to dir (the module root, or any directory inside it). It shells
// out to `go list -deps -export -json`, which yields compiled export data
// for every dependency from the build cache, and type-checks only the
// matched (root) packages from source — the same division of labor as
// golang.org/x/tools/go/packages in LoadSyntax mode, with zero dependencies
// beyond the go toolchain.
//
// Only non-test GoFiles are analyzed: the invariants the suite enforces are
// production contracts, and test files routinely violate them on purpose
// (arming failpoints, poking atomics through test-only accessors).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		q := p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, gf := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", gf, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
