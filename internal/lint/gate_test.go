package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sprofile/internal/lint"
)

// moduleRoot resolves this module's root directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestModuleClean is the same gate CI runs: the full analyzer suite over the
// whole module must report nothing. A failure here means either a real
// invariant violation slipped in or an analyzer regressed into a false
// positive — both are bugs to fix before merging, not findings to allow.
func TestModuleClean(t *testing.T) {
	root := moduleRoot(t)
	old := lint.FailpointReadme
	lint.FailpointReadme = filepath.Join(root, "README.md")
	defer func() { lint.FailpointReadme = old }()

	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	suite := &lint.Suite{Analyzers: lint.All()}
	diags, err := suite.Run(pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestSeededViolationFailsGate proves the gate has teeth: a module seeded
// with a known locksafe violation (fsync under a held mutex) must make the
// sprofile-lint binary exit 1 and name the analyzer.
func TestSeededViolationFailsGate(t *testing.T) {
	root := moduleRoot(t)
	tmp := t.TempDir()

	bin := filepath.Join(tmp, "sprofile-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sprofile-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sprofile-lint: %v\n%s", err, out)
	}

	seeded := filepath.Join(tmp, "seeded")
	if err := os.Mkdir(seeded, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(seeded, "go.mod"), "module seeded\n\ngo 1.24\n")
	writeFile(t, filepath.Join(seeded, "seeded.go"), `package seeded

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	f  *os.File
}

func (s *store) bad() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}
`)

	cmd := exec.Command(bin, "-C", seeded, "./...")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("sprofile-lint exited 0 on a seeded violation\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running sprofile-lint: %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "locksafe") {
		t.Fatalf("output does not name the locksafe analyzer:\n%s", out)
	}
}

// TestCleanModulePassesBinary is the complement: the binary itself (not just
// the in-process suite) exits 0 on this module.
func TestCleanModulePassesBinary(t *testing.T) {
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "sprofile-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sprofile-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sprofile-lint: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-C", root, "./...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("sprofile-lint on the module tree: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
