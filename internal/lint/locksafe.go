package lint

import (
	"go/ast"
	"go/types"
)

// Locksafe enforces the group-commit contract established in PR 2 and
// relied on by the checkpoint protocol (PR 3): no blocking file or network
// I/O — most critically fsync — while a sync.Mutex or sync.RWMutex is
// provably held. Fsync under a lock turns the WAL's group commit into a
// serial commit and stalls every reader behind disk latency; the audited
// exceptions (bounded buffered writes under the WAL append mutex) carry
// //lint:allow locksafe comments explaining why they are safe.
//
// The analysis is intra-procedural and deliberately conservative: a mutex
// counts as held between an x.Lock()/x.RLock() statement and the matching
// x.Unlock()/x.RUnlock() in the same statement sequence, or to the end of
// the function when the unlock is deferred. Function literals are analyzed
// independently (a goroutine does not inherit the creator's locks), and
// branches cannot leak lock state outward — so every report is a call that
// really can execute with the lock held on some path.
//
// Two escape granularities:
//
//   - line-level: //lint:allow locksafe on the flagged call, for one
//     audited exception (e.g. the salvage path of wal.Dir.Roll, which
//     truncates the poisoned segment while holding the append locks — the
//     writers those locks guard are already failing);
//   - declaration-level: //lint:allow locksafe on the mutex's own var or
//     field declaration, for mutexes whose entire purpose is to be held
//     across I/O (the checkpoint Store's one-in-flight ckptMu, the WAL's
//     group-commit syncMu). Such a mutex never enters the held set: the
//     invariant protects ingest/read fast-path locks, and the comment is
//     the audit that nothing fast-path ever contends on this one.
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc: "flags blocking I/O (fsync, file writes, file opens, network calls) " +
		"while a sync mutex is provably held",
	Run: runLocksafe,
}

func runLocksafe(p *Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLocked(p, fd.Body.List, map[string]bool{})
		}
		// Function literals are independent execution contexts: they do not
		// inherit the creating goroutine's locks (walkLocked skips them),
		// but their own bodies must uphold the invariant too.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				walkLocked(p, lit.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// walkLocked processes one statement sequence, threading the set of held
// mutexes (keyed by the printed receiver expression) through it. Nested
// blocks and branches get a copy: a Lock inside an if cannot leak out, and
// an Unlock inside an early-return branch does not clear the lock on the
// fallthrough path — both conservative in the right direction.
func walkLocked(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if key, op, ok := lockOp(p, st.X); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
		case *ast.DeferStmt:
			if key, op, ok := lockOp(p, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
				// Deferred unlocks release at return, so the mutex stays
				// held for the rest of this walk — nothing to do, but do
				// not scan the defer itself as a blocking call.
				_ = key
				continue
			}
		case *ast.BlockStmt:
			walkLocked(p, st.List, copyHeld(held))
			continue
		}
		if len(held) > 0 {
			findBlockingCalls(p, s, held)
		}
		// Branch bodies run with the current set held; their own
		// lock/unlock traffic stays local to the copy.
		switch st := s.(type) {
		case *ast.IfStmt:
			walkLocked(p, st.Body.List, copyHeld(held))
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					walkLocked(p, e.List, copyHeld(held))
				case *ast.IfStmt:
					walkLocked(p, []ast.Stmt{e}, copyHeld(held))
				}
			}
		case *ast.ForStmt:
			walkLocked(p, st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			walkLocked(p, st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkLocked(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			walkLocked(p, []ast.Stmt{st.Stmt}, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// lockOp recognizes x.Lock / x.Unlock / x.RLock / x.RUnlock calls where x is
// a sync.Mutex or sync.RWMutex (directly, by pointer, or embedded), and
// returns the printed receiver expression as the held-set key. Mutexes whose
// declaration carries //lint:allow locksafe are audited to be held across
// I/O and are not tracked at all.
func lockOp(p *Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := calleeObj(p.Info, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	if mutexDeclAllowed(p, sel.X) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// mutexDeclAllowed reports whether the mutex expression resolves to a var or
// field whose declaration line carries //lint:allow locksafe.
func mutexDeclAllowed(p *Pass, mutexExpr ast.Expr) bool {
	var obj types.Object
	switch x := ast.Unparen(mutexExpr).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[x]
	case *ast.SelectorExpr:
		if v := fieldVar(p.Info, x); v != nil {
			obj = v
		} else {
			obj = p.Info.Uses[x.Sel]
		}
	}
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return p.allow.covers("locksafe", p.Fset.Position(obj.Pos()))
}

// blocking-method names on file-like receivers. Sync is banned on ANY
// receiver type: a method named Sync that is safe to call under a lock is
// not a pattern this codebase has, and the false-positive cost of an allow
// comment is the audit we want.
var blockingFileMethods = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true,
	"ReadAt": true, "Truncate": true, "ReadFrom": true,
}

// blocking package-level functions: path ops that hit the disk and dialers
// that hit the network.
var blockingPkgFuncs = map[string]map[string]bool{
	"os": {
		"OpenFile": true, "Open": true, "Create": true, "CreateTemp": true,
		"Rename": true, "Remove": true, "RemoveAll": true, "Truncate": true,
		"ReadFile": true, "WriteFile": true, "Mkdir": true, "MkdirAll": true,
		"ReadDir": true, "Link": true, "Symlink": true,
	},
	"net": {
		"Dial": true, "DialTimeout": true, "Listen": true,
	},
	"net/http": {
		"Get": true, "Post": true, "PostForm": true, "Head": true,
	},
	"sprofile/internal/failpoint/failfs": {
		"OpenFile": true,
	},
}

// findBlockingCalls scans one statement (but not nested function literals)
// for calls that block on I/O, and reports each with the held mutexes.
func findBlockingCalls(p *Pass, s ast.Stmt, held map[string]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false // independent execution context
		case *ast.BlockStmt:
			// Nested bodies are re-scanned by walkLocked's own recursion
			// (with their local lock traffic applied); scanning them here
			// too would double-report.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := blockingCall(p.Info, call); ok {
			p.Reportf(call.Pos(), "%s while holding %s: fsync and file/network I/O must run outside all locks (group-commit contract)",
				name, heldNames(held))
		}
		return true
	})
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// blockingCall classifies a call as blocking I/O and names it for the
// report.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	// Package-level functions from the blocking table.
	if fn, ok := calleeObj(info, call).(*types.Func); ok && fn.Pkg() != nil {
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() == nil {
			if blockingPkgFuncs[fn.Pkg().Path()][fn.Name()] {
				return fn.Pkg().Path() + "." + fn.Name(), true
			}
			return "", false
		}
	}
	// Method calls: Sync on anything; write-like methods on file-like
	// receivers (os.File, failfs.File, or any type embedding them).
	recvT := info.Types[sel.X].Type
	if recvT == nil {
		return "", false
	}
	name := sel.Sel.Name
	if name == "Sync" {
		return types.TypeString(recvT, nil) + ".Sync", true
	}
	if blockingFileMethods[name] && isFileLike(recvT) {
		return types.TypeString(recvT, nil) + "." + name, true
	}
	// Outbound HTTP through a client or transport.
	if (name == "Do" || name == "RoundTrip") && (isPkgType(recvT, "net/http", "Client") || isPkgType(recvT, "net/http", "Transport")) {
		return "net/http request", true
	}
	return "", false
}

// isFileLike reports whether t is *os.File, the failfs.File seam, or a named
// type that embeds either.
func isFileLike(t types.Type) bool {
	if isPkgType(t, "os", "File") || isPkgType(t, "sprofile/internal/failpoint/failfs", "File") {
		return true
	}
	named := namedFrom(t)
	if named == nil {
		return false
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() && (isPkgType(f.Type(), "os", "File") || isPkgType(f.Type(), "sprofile/internal/failpoint/failfs", "File")) {
				return true
			}
		}
	}
	return false
}
