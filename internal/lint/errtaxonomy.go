package lint

import (
	"go/ast"
	"strings"
)

// ErrTaxonomyPackages is the set of import paths whose errors cross the
// wire or the public API boundary, where every error must resolve — via
// errors.Is — to a core taxonomy root or a documented package-level
// sentinel (see errors.go at the module root and the PR 5 query-plane
// contract: the HTTP server maps error classes to status codes, and the
// client SDK maps them back, so errors.Is works identically against a
// local and a remote profile). A naked fmt.Errorf breaks that chain: the
// server can only map it to a 500 and the client can only surface a string.
//
// Tests override this to point at fixture packages.
var ErrTaxonomyPackages = map[string]bool{
	"sprofile":                 true,
	"sprofile/client":          true,
	"sprofile/internal/server": true,
}

// ErrTaxonomy enforces the error-taxonomy contract in the wire-facing
// packages: every fmt.Errorf must wrap (%w) a taxonomy root, a documented
// sentinel, or an underlying error that already resolves to one, and
// errors.New may only declare package-level sentinels, never construct
// one-off errors inside a function body.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc: "flags naked fmt.Errorf (no %w) and function-local errors.New in " +
		"wire-path packages, where every error must wrap the taxonomy",
	Run: runErrTaxonomy,
}

func runErrTaxonomy(p *Pass) error {
	if !ErrTaxonomyPackages[p.Pkg.Path()] {
		return nil
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case calleeIsPkgFunc(p.Info, call, "fmt", "Errorf"):
					if len(call.Args) == 0 {
						return true
					}
					format, isLit := stringLit(p.Info, call.Args[0])
					if isLit && !strings.Contains(format, "%w") {
						p.Reportf(call.Pos(), "fmt.Errorf without %%w on a wire path: wrap a taxonomy root or documented sentinel so errors.Is and the HTTP error-code mapping work")
					}
				case calleeIsPkgFunc(p.Info, call, "errors", "New"):
					p.Reportf(call.Pos(), "function-local errors.New on a wire path: declare a package-level sentinel (documented in the taxonomy) or wrap an existing root with fmt.Errorf(...%%w...)")
				}
				return true
			})
		}
	}
	return nil
}
