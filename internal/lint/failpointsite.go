package lint

import (
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"
)

// FailpointReadme is the document that must list every failpoint site (the
// README's fault-injection table). Empty disables the documentation check;
// cmd/sprofile-lint points it at the module's README.md, tests at a fixture.
var FailpointReadme string

// failpointPkg is the registry package; sites are declared by calling into
// it. The package itself (and its failfs wrapper) derive site names at
// runtime and are exempt from the literal-name rule.
const failpointPkg = "sprofile/internal/failpoint"

// FailpointSite enforces the PR 9 fault-injection contract: every failpoint
// site is named by a string literal (so the chaos harness, the
// SPROFILE_FAILPOINTS grammar and the docs can refer to it), each name is
// declared at exactly one call site (two seams sharing a name would make
// trigger counts unattributable — deliberate sharing carries an audited
// allow comment), and every site appears in the README's site table so an
// operator arming faults can discover what exists. failfs prefixes expand
// to their derived <prefix>.open/.write/.sync sites.
var FailpointSite = &Analyzer{
	Name: "failpointsite",
	Doc: "failpoint sites must be unique string literals documented in the " +
		"README's fault-injection table",
	Run:    runFailpointSite,
	Finish: finishFailpointSite,
}

// siteDecl records one declaration of a site name.
type siteDecl struct {
	name    string
	pos     token.Pos
	allowed bool // an allow comment covers the declaration site
}

func runFailpointSite(p *Pass) error {
	if p.Pkg.Path() == failpointPkg || strings.HasPrefix(p.Pkg.Path(), failpointPkg+"/") {
		return nil
	}
	decls, _ := p.State["decls"].([]siteDecl)
	record := func(pos token.Pos, names ...string) {
		position := p.Fset.Position(pos)
		for _, n := range names {
			decls = append(decls, siteDecl{
				name:    n,
				pos:     pos,
				allowed: p.allow.covers(p.Analyzer.Name, position),
			})
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			switch {
			case calleeIsPkgFunc(p.Info, call, failpointPkg, "Inject"),
				calleeIsPkgFunc(p.Info, call, failpointPkg, "InjectWrite"),
				calleeIsPkgFunc(p.Info, call, failpointPkg, "RoundTripper"):
				name, isLit := stringLit(p.Info, call.Args[0])
				if !isLit {
					p.Reportf(call.Args[0].Pos(), "failpoint site name must be a string literal so the arming grammar and docs can name it")
					return true
				}
				record(call.Args[0].Pos(), name)
			case calleeIsPkgFunc(p.Info, call, failpointPkg+"/failfs", "OpenFile"):
				prefix, isLit := stringLit(p.Info, call.Args[0])
				if !isLit {
					p.Reportf(call.Args[0].Pos(), "failfs site prefix must be a string literal so the derived sites can be documented")
					return true
				}
				record(call.Args[0].Pos(), prefix+".open", prefix+".write", prefix+".sync")
			case calleeIsPkgFunc(p.Info, call, failpointPkg+"/failfs", "Wrap"):
				prefix, isLit := stringLit(p.Info, call.Args[0])
				if !isLit {
					p.Reportf(call.Args[0].Pos(), "failfs site prefix must be a string literal so the derived sites can be documented")
					return true
				}
				record(call.Args[0].Pos(), prefix+".write", prefix+".sync")
			}
			return true
		})
	}
	p.State["decls"] = decls
	return nil
}

func finishFailpointSite(f *Finisher) error {
	decls, _ := f.State["decls"].([]siteDecl)
	if len(decls) == 0 {
		return nil
	}
	sort.SliceStable(decls, func(i, j int) bool { return decls[i].pos < decls[j].pos })

	// Uniqueness: the first declaration of a name owns it; every later
	// declaration site needs an audited allow comment (e.g. the two WAL
	// segment-open paths deliberately sharing the "wal" seam).
	first := map[string]token.Pos{}
	for _, d := range decls {
		prev, seen := first[d.name]
		if !seen {
			first[d.name] = d.pos
			continue
		}
		if d.pos == prev || d.allowed {
			continue
		}
		f.Reportf(d.pos, "failpoint site %q is already declared at %s; a site name maps to one seam (share deliberately with //lint:allow failpointsite)",
			d.name, f.Fset.Position(prev))
	}

	// Documentation: every declared site appears in the README table.
	if FailpointReadme == "" {
		return nil
	}
	doc, err := os.ReadFile(FailpointReadme)
	if err != nil {
		return err
	}
	text := string(doc)
	names := make([]string, 0, len(first))
	for name := range first {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(text, "`"+name+"`") {
			f.Reportf(first[name], "failpoint site %q is not documented in %s's fault-injection table", name, FailpointReadme)
		}
	}
	return nil
}
