// Package linttest runs lint analyzers against fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture source lines
// carry "// want" comments naming the diagnostics the analyzer must produce
// there, and the runner fails the test on any missing or unexpected finding.
//
// A want comment holds one double-quoted substring per expected diagnostic
// on that line:
//
//	mu.Lock()
//	f.Sync() // want "while holding mu"
//
// Lines without a want comment must produce no diagnostics; every want must
// be matched by exactly one diagnostic. Fixtures live under
// internal/lint/testdata/src/<analyzer>/... and are real, compiling packages
// inside this module (the testdata path keeps ./... wildcards away from
// them), so the runner type-checks them with the same loader the production
// binary uses.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sprofile/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one "want" on one fixture line.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), runs exactly one analyzer over it, and compares the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(abs, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	want := collectWants(t, pkgs)

	suite := &lint.Suite{Analyzers: []*lint.Analyzer{a}}
	diags, err := suite.Run(pkgs)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		if !matchWant(want, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", dir, d)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// collectWants scans every fixture file for want comments.
func collectWants(t *testing.T, pkgs []*lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				substrs, err := parseWant(m[1])
				if err != nil {
					t.Fatalf("%s:%d: %v", name, i+1, err)
				}
				for _, s := range substrs {
					wants = append(wants, &expectation{file: name, line: i + 1, substr: s})
				}
			}
		}
	}
	return wants
}

// parseWant extracts the double-quoted substrings from a want comment's
// payload.
func parseWant(payload string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(payload)
	for rest != "" {
		if rest[0] != '"' {
			return nil, fmt.Errorf("want payload must be double-quoted strings, got %q", rest)
		}
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want string in %q", rest)
		}
		out = append(out, rest[1:1+end])
		rest = strings.TrimSpace(rest[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}

func matchWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && strings.Contains(msg, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}
