package lint_test

import (
	"path/filepath"
	"testing"

	"sprofile/internal/lint"
	"sprofile/internal/lint/linttest"
)

// Each analyzer runs over its fixture package under testdata/src; the
// fixtures carry both flagged (// want) and allowed cases, so these tests
// pin the positive and the negative behavior at once.

func TestLocksafe(t *testing.T) {
	linttest.Run(t, lint.Locksafe, "testdata/src/locksafe/a")
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "testdata/src/atomicfield/a")
}

func TestErrTaxonomy(t *testing.T) {
	// The taxonomy rule is scoped to wire-path packages; opt the fixture in.
	const fixturePkg = "sprofile/internal/lint/testdata/src/errtaxonomy/a"
	lint.ErrTaxonomyPackages[fixturePkg] = true
	defer delete(lint.ErrTaxonomyPackages, fixturePkg)
	linttest.Run(t, lint.ErrTaxonomy, "testdata/src/errtaxonomy/a")
}

func TestMetricFamily(t *testing.T) {
	linttest.Run(t, lint.MetricFamily, "testdata/src/metricfamily/a")
}

func TestFailpointSite(t *testing.T) {
	readme, err := filepath.Abs("testdata/src/failpointsite/README.md")
	if err != nil {
		t.Fatal(err)
	}
	old := lint.FailpointReadme
	lint.FailpointReadme = readme
	defer func() { lint.FailpointReadme = old }()
	linttest.Run(t, lint.FailpointSite, "testdata/src/failpointsite/a")
}
