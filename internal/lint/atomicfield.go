package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces the mixed-access rule behind the lock-free planes
// (the PR 7 mailbox ring's head/tail words, the PR 9 failpoint registry's
// armed counter): a struct field that is accessed through sync/atomic —
// either because its type is one of the atomic.* wrapper types or because
// its address is passed to a sync/atomic function anywhere in the package —
// must never be read or written plainly. One plain store racing atomic
// loads is undefined behavior the race detector only catches when the
// schedule cooperates; this analyzer catches it at compile time.
//
// Allowed accesses:
//   - atomic.* wrapper types: method calls (f.Load(), f.Store(x)) and
//     taking the address (&s.f);
//   - address-taken fields: &s.f as an argument to a sync/atomic function;
//   - any access inside the type's constructor functions (New*/new*/
//     Open*/open*/make*/init), where the value has not escaped yet.
//
// Everything else needs an audited //lint:allow atomicfield comment.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "flags plain reads/writes of struct fields that are elsewhere " +
		"accessed via sync/atomic or typed atomic.*",
	Run: runAtomicField,
}

// atomicWrapperTypes are the sync/atomic value types (go1.19+). Generic
// atomic.Pointer[T] is matched by name as well.
var atomicWrapperTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicField(p *Pass) error {
	// Pass 1: collect the package's atomic fields.
	//
	// wrapped: fields whose type is an atomic.* wrapper — plain copies are
	// the hazard (method calls go through the pointer receiver).
	// addressed: plain-typed fields whose address is passed to a
	// sync/atomic function somewhere in the package — ANY plain use is the
	// hazard.
	wrapped := map[*types.Var]bool{}
	addressed := map[*types.Var]bool{}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					for _, name := range fld.Names {
						v, ok := p.Info.Defs[name].(*types.Var)
						if ok && isAtomicWrapper(v.Type()) {
							wrapped[v] = true
						}
					}
				}
			case *ast.CallExpr:
				fn, ok := calleeObj(p.Info, n).(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range n.Args {
					un, isUn := ast.Unparen(arg).(*ast.UnaryExpr)
					if !isUn || un.Op.String() != "&" {
						continue
					}
					if v := fieldVar(p.Info, un.X); v != nil {
						addressed[v] = true
					}
				}
			}
			return true
		})
	}
	if len(wrapped) == 0 && len(addressed) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses outside constructors.
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructorName(fd.Name.Name) {
				continue
			}
			checkAtomicUses(p, fd.Body, wrapped, addressed)
		}
	}
	return nil
}

func isAtomicWrapper(t types.Type) bool {
	named := namedFrom(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicWrapperTypes[obj.Name()]
}

// isConstructorName reports whether a function plausibly initializes a value
// before it escapes to other goroutines; plain field access is legal there.
func isConstructorName(name string) bool {
	for _, prefix := range []string{"New", "new", "Open", "open", "make", "init", "Init"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldVar resolves an expression to the struct-field *types.Var it selects,
// or nil if it is not a field selection.
func fieldVar(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// checkAtomicUses walks a function body flagging misuses. parents are
// tracked so a selector can be judged by its context: receiver of a method
// call, operand of &, argument to sync/atomic, LHS of assignment.
func checkAtomicUses(p *Pass, body *ast.BlockStmt, wrapped, addressed map[*types.Var]bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v := fieldVar(p.Info, sel)
		if v == nil {
			return true
		}
		if wrapped[v] {
			if !wrapperUseOK(p.Info, stack) {
				p.Reportf(sel.Pos(), "atomic-typed field %s used as a plain value (copy or reassignment); use its Load/Store/Add methods", v.Name())
			}
			return true
		}
		if addressed[v] {
			if !addressedUseOK(p.Info, stack) {
				p.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races those atomics", v.Name())
			}
		}
		return true
	})
}

// wrapperUseOK reports whether the selector at the top of stack (an
// atomic.*-typed field) appears in a legal context: as the receiver of a
// method call (s.f.Load()), under & (passing the pointer), or as the base
// of a deeper selection.
func wrapperUseOK(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		// s.f.Load — the parent selection resolves a method on the field.
		if s, ok := info.Selections[parent]; ok && s.Kind() == types.MethodVal {
			return true
		}
		// A field-of-field selection through an atomic wrapper does not
		// exist (wrappers have no exported fields); treat as misuse.
		return false
	case *ast.UnaryExpr:
		return parent.Op.String() == "&"
	}
	return false
}

// addressedUseOK reports whether the selector appears as &s.f passed
// directly to a sync/atomic call.
func addressedUseOK(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	un, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calleeObj(info, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
