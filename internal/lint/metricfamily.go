package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MetricLabelAllowlist is the closed set of label names a sprofile_* family
// may declare. Labels are a cardinality contract: every name here is known
// to have a small, bounded value set (routes come from the mux table,
// results and paths from code, site names from the failpoint table). A new
// label means a new review of its value space — add it here in the same
// commit, with the family that needs it.
var MetricLabelAllowlist = map[string]bool{
	"method": true, "route": true, "status": true, // HTTP plane
	"stats": true, "stat": true, // query plane
	"path": true, "result": true, // ingest + checkpoint planes
	"site":    true,                 // failpoint registry
	"version": true, "commit": true, // build info
}

// MetricMaxLabels caps the label dimensions a single family may declare;
// the registry's 256-children cardinality cap assumes the cross product of
// label values stays small, and three dimensions (method × route × status)
// is the widest audited family.
var MetricMaxLabels = 3

var metricNameRE = regexp.MustCompile(`^sprofile_[a-z0-9]+(_[a-z0-9]+)*$`)

// MetricFamily is the AST-level replacement for the shell grep that used to
// lint metric names in CI: every family constructed anywhere in the module
// must carry the sprofile_ prefix in lower_snake_case, counters must end in
// _total and nothing else may, families measuring time or size must say
// _seconds/_bytes, label sets come from a closed allowlist, and no family
// declares more label dimensions than the registry's cardinality cap was
// audited for. Unlike the grep, it resolves the constructor through the
// type checker, so aliasing the registry or wrapping the constructors
// cannot smuggle a family past the lint.
var MetricFamily = &Analyzer{
	Name: "metricfamily",
	Doc: "enforces metric naming (sprofile_ prefix, _total/_seconds/_bytes " +
		"suffix rules) and the closed label allowlist at construction sites",
	Run: runMetricFamily,
}

// metricCtors maps constructor method names on internal/metrics.Registry to
// whether they create counters (the _total rule) and where the label list
// starts in the argument list (after name, help, and for histograms the
// bucket slice).
var metricCtors = map[string]struct {
	counter   bool
	labelsArg int // index of first label argument; -1 = no labels
}{
	"Counter":      {counter: true, labelsArg: -1},
	"CounterFunc":  {counter: true, labelsArg: -1},
	"CounterVec":   {counter: true, labelsArg: 2},
	"Gauge":        {counter: false, labelsArg: -1},
	"GaugeFunc":    {counter: false, labelsArg: -1},
	"GaugeVec":     {counter: false, labelsArg: 2},
	"Histogram":    {counter: false, labelsArg: -1},
	"HistogramVec": {counter: false, labelsArg: 3},
}

func runMetricFamily(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ctor, ok := metricCtorCall(p.Info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, isLit := stringLit(p.Info, call.Args[0])
			if !isLit {
				p.Reportf(call.Pos(), "metric family name must be a string literal so the naming lint can see it")
				return true
			}
			checkMetricName(p, call, name, ctor.counter)
			if ctor.labelsArg >= 0 {
				labels := call.Args[ctor.labelsArg:]
				if len(labels) > MetricMaxLabels {
					p.Reportf(call.Pos(), "family %s declares %d label dimensions; the audited cardinality cap is %d", name, len(labels), MetricMaxLabels)
				}
				for _, l := range labels {
					label, isLit := stringLit(p.Info, l)
					if !isLit {
						p.Reportf(l.Pos(), "family %s: label names must be string literals", name)
						continue
					}
					if !MetricLabelAllowlist[label] {
						p.Reportf(l.Pos(), "family %s declares label %q, not in the closed allowlist; new labels need a cardinality review (internal/lint/metricfamily.go)", name, label)
					}
				}
			}
			return true
		})
	}
	return nil
}

// metricCtorCall reports whether call constructs a metric family on the
// sprofile metrics registry, resolving the receiver type so wrappers and
// local aliases are still caught. Inside internal/metrics itself only the
// exported Registry methods count (the internal helpers take already-vetted
// names).
func metricCtorCall(info *types.Info, call *ast.CallExpr) (struct {
	counter   bool
	labelsArg int
}, bool) {
	var zero struct {
		counter   bool
		labelsArg int
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return zero, false
	}
	ctor, ok := metricCtors[sel.Sel.Name]
	if !ok {
		return zero, false
	}
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return zero, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return zero, false
	}
	if !isPkgType(sig.Recv().Type(), "sprofile/internal/metrics", "Registry") &&
		!metricCtorFixture(sig.Recv().Type()) {
		return zero, false
	}
	return ctor, true
}

// metricCtorFixture lets the analysistest fixtures exercise the rules
// without importing the real registry: any type literally named Registry in
// a package under this module's lint testdata counts.
func metricCtorFixture(t types.Type) bool {
	named := namedFrom(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Registry" &&
		strings.Contains(named.Obj().Pkg().Path(), "lint/testdata/")
}

func checkMetricName(p *Pass, call *ast.CallExpr, name string, counter bool) {
	if !metricNameRE.MatchString(name) {
		p.Reportf(call.Pos(), "metric family %q must match %s (sprofile_ prefix, lower_snake_case)", name, metricNameRE)
		return
	}
	base := strings.TrimSuffix(name, "_total")
	switch {
	case counter && !strings.HasSuffix(name, "_total"):
		p.Reportf(call.Pos(), "counter family %s must end in _total", name)
	case !counter && strings.HasSuffix(name, "_total"):
		p.Reportf(call.Pos(), "non-counter family %s must not end in _total", name)
	}
	if strings.Contains(base, "second") && !strings.HasSuffix(base, "_seconds") {
		p.Reportf(call.Pos(), "time family %s must end in _seconds", name)
	}
	if strings.Contains(base, "bytes") && !strings.HasSuffix(base, "_bytes") {
		p.Reportf(call.Pos(), "size family %s must end in _bytes", name)
	}
}
