// Package a is the failpointsite fixture: site names are unique string
// literals, failfs prefixes expand to derived sites, and every site appears
// in the fixture README's table.
package a

import (
	"net/http"
	"os"

	"sprofile/internal/failpoint"
	"sprofile/internal/failpoint/failfs"
)

func goodSites(f *os.File) {
	_ = failpoint.Inject("fixture.good")
	_, _ = failpoint.InjectWrite("fixture.write", 8)
	_ = failpoint.RoundTripper("fixture.rt", http.DefaultTransport)
	_, _ = failfs.OpenFile("fixture.seg", "x", os.O_RDONLY, 0)
	_ = failfs.Wrap("fixture.wrapped", f)
}

func duplicateSite() {
	_ = failpoint.Inject("fixture.dup")
	_ = failpoint.Inject("fixture.dup") // want "already declared"
}

func sharedSeamAllowed() {
	_ = failpoint.Inject("fixture.shared")
	_ = failpoint.Inject("fixture.shared") //lint:allow failpointsite — fixture: deliberate shared seam
}

func dynamicName(name string) {
	_ = failpoint.Inject(name) // want "must be a string literal"
}

func undocumentedSite() {
	_ = failpoint.Inject("fixture.undocumented") // want "not documented"
}
