// Package a is the errtaxonomy fixture: in wire-path packages every
// fmt.Errorf wraps something and errors.New appears only at package level.
package a

import (
	"errors"
	"fmt"
)

// errSentinel is a documented package-level sentinel: allowed.
var errSentinel = errors.New("a: documented sentinel")

func bad(id int) error {
	return fmt.Errorf("object %d out of range", id) // want "fmt.Errorf without %w"
}

func badLocalNew() error {
	return errors.New("one-off error") // want "function-local errors.New"
}

func goodWrapSentinel(id int) error {
	return fmt.Errorf("object %d out of range: %w", id, errSentinel)
}

func goodReturnSentinel() error {
	return errSentinel
}

func goodWrapUnderlying(err error) error {
	return fmt.Errorf("decoding request: %w", err)
}

func goodAllowed() error {
	return fmt.Errorf("internal invariant broken") //lint:allow errtaxonomy — fixture: not a wire error
}
