// Package a is the locksafe fixture: blocking I/O under held mutexes is
// flagged; I/O after unlock, in early-unlock branches, under audited allow
// comments, or under declaration-allowed mutexes is not.
package a

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex

	// ioMu is audited to be held across I/O (the group-commit pattern).
	//lint:allow locksafe — fixture: declaration-level escape
	ioMu sync.Mutex

	f *os.File
}

func (s *store) badSync() {
	s.mu.Lock()
	s.f.Sync() // want "while holding s.mu"
	s.mu.Unlock()
}

func (s *store) badWriteUnderDefer() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write([]byte("x")) // want "while holding s.mu"
	return err
}

func (s *store) badPathOp() {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove("x") // want "os.Remove while holding s.mu"
}

func (s *store) badInsideBranch(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > 0 {
		s.f.Sync() // want "while holding s.mu"
	}
}

func (s *store) badInsideFuncLit() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.f.Sync() // want "while holding s.mu"
	}
}

func (s *store) goodAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.f.Sync()
}

func (s *store) goodEarlyUnlockBranch(n int) {
	s.mu.Lock()
	if n > 0 {
		s.mu.Unlock()
		s.f.Sync()
		return
	}
	s.mu.Unlock()
}

func (s *store) goodAllowedLine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Sync() //lint:allow locksafe — fixture: audited exception
}

func (s *store) goodDeclAllowedMutex() {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.f.Sync()
}

func (s *store) goodLitEscapesLock() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The literal runs later, without the creator's lock.
	return func() { s.f.Sync() }
}
