// Package a is the metricfamily fixture. The local Registry type stands in
// for sprofile/internal/metrics.Registry (the analyzer accepts a type named
// Registry inside lint testdata so fixtures need no real registry), with the
// same constructor shapes.
package a

type Registry struct{}

func (r *Registry) Counter(name, help string) int     { return 0 }
func (r *Registry) CounterFunc(name, help string) int { return 0 }
func (r *Registry) Gauge(name, help string) int       { return 0 }
func (r *Registry) GaugeFunc(name, help string) int   { return 0 }
func (r *Registry) Histogram(name, help string, buckets []float64) int {
	return 0
}
func (r *Registry) CounterVec(name, help string, labels ...string) int { return 0 }
func (r *Registry) GaugeVec(name, help string, labels ...string) int   { return 0 }
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) int {
	return 0
}

// other has colliding method names but is not a metrics registry; its calls
// must not be linted.
type other struct{}

func (other) Counter(name, help string) int { return 0 }

func declare(r *Registry, dynamicName, dynamicLabel string) {
	r.Counter("sprofile_events_total", "ok")
	r.Gauge("sprofile_queue_depth", "ok")
	r.Histogram("sprofile_flush_seconds", "ok", nil)
	r.CounterVec("sprofile_requests_total", "ok", "method", "route", "status")
	r.HistogramVec("sprofile_request_seconds", "ok", nil, "route")

	r.Counter("sprofile_events", "x")                // want "must end in _total"
	r.Gauge("sprofile_depth_total", "x")             // want "must not end in _total"
	r.Counter("events_total", "x")                   // want "must match"
	r.Counter("sprofile_Events_total", "x")          // want "must match"
	r.Gauge("sprofile_flush_second", "x")            // want "must end in _seconds"
	r.Counter("sprofile_heap_bytes_used_total", "x") // want "must end in _bytes"
	r.Counter(dynamicName, "x")                      // want "must be a string literal"

	r.CounterVec("sprofile_by_user_total", "x", "user_id")                        // want "not in the closed allowlist"
	r.GaugeVec("sprofile_wide", "x", "method", "route", "status", "site")         // want "label dimensions"
	r.CounterVec("sprofile_dyn_total", "x", dynamicLabel)                         // want "label names must be string literals"
	r.HistogramVec("sprofile_handler_seconds", "x", []float64{0.1, 1}, "user_id") // want "not in the closed allowlist"
	r.CounterVec("sprofile_custom_total", "x", "tenant")                          //lint:allow metricfamily — fixture: audited new label
	_ = other{}.Counter("not_a_metric", "untouched")
}
