// Package a is the atomicfield fixture: fields accessed via sync/atomic (by
// wrapper type or by address) must never be touched plainly outside a
// constructor.
package a

import "sync/atomic"

type ring struct {
	head atomic.Uint64
	tail uint64 // accessed via atomic.AddUint64 below
	n    int    // plain field, never atomic: free to use anywhere
}

func newRing(n int) *ring {
	r := &ring{}
	r.tail = 0 // constructors may initialize plainly
	r.n = n
	return r
}

func (r *ring) push() {
	r.head.Add(1)
	atomic.AddUint64(&r.tail, 1)
}

func (r *ring) badCopy() {
	h := r.head // want "atomic-typed field head used as a plain value"
	_ = h
}

func (r *ring) badPlainRead() uint64 {
	return r.tail // want "field tail is accessed with sync/atomic elsewhere"
}

func (r *ring) badPlainWrite() {
	r.tail = 7 // want "field tail is accessed with sync/atomic elsewhere"
}

func (r *ring) goodAllowed() uint64 {
	return r.tail //lint:allow atomicfield — fixture: quiesced single-writer phase
}

func (r *ring) goodMethodCalls() uint64 {
	return r.head.Load()
}

func (r *ring) goodAddressOf() *atomic.Uint64 {
	return &r.head
}

func (r *ring) goodAtomicLoad() uint64 {
	return atomic.LoadUint64(&r.tail)
}

func (r *ring) goodPlainField() int {
	r.n++
	return r.n
}
