// Package lint is sprofile's static-analysis suite: a set of custom
// analyzers that mechanically enforce the codebase's load-bearing invariants
// — "no blocking I/O while a mutex is held", "atomic fields are never
// accessed plainly", "wire-path errors wrap the taxonomy", "metric families
// follow the naming contract", "failpoint sites are named once and
// documented" — so contracts that previously lived in doc comments and
// reviewers' heads are checked on every commit by cmd/sprofile-lint.
//
// The package deliberately depends only on the standard library (go/ast,
// go/types, go/importer): it mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer with a Run func over a Pass —
// but drives type checking itself from `go list -export` metadata, so the
// module stays zero-dependency. See load.go for the driver.
//
// # Escape hatch
//
// A finding can be suppressed by an audited allow comment on the flagged
// line or the line directly above it:
//
//	//lint:allow locksafe — group-commit contract: writes under appendMu are bounded, fsync runs outside
//
// The comment must name the analyzer and should state why the violation is
// safe; unexplained allows are themselves a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// comments.
	Name string

	// Doc is a one-paragraph description of the invariant, shown by
	// sprofile-lint -help.
	Doc string

	// Run checks one package. It reports findings through the Pass and
	// may stash cross-package facts in Pass.State (shared across every
	// package of one Suite run).
	Run func(*Pass) error

	// Finish, if non-nil, runs once after every package has been analyzed,
	// for module-wide invariants (e.g. failpoint site uniqueness).
	Finish func(*Finisher) error
}

// A Pass carries one package's parsed and type-checked form to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// State is shared by every Pass of this analyzer across one Suite run,
	// so Run can accumulate module-wide facts for Finish.
	State map[string]any

	suite *Suite
	allow allowIndex
}

// A Finisher is handed to Analyzer.Finish after all packages ran.
type Finisher struct {
	Fset  *token.FileSet
	State map[string]any

	analyzer *Analyzer
	suite    *Suite
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless an audited //lint:allow comment
// for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.covers(p.Analyzer.Name, position) {
		return
	}
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf records a module-level finding. Finish-phase findings carry a
// position when the underlying fact has one (token.NoPos renders as "-").
func (f *Finisher) Reportf(pos token.Pos, format string, args ...any) {
	position := token.Position{Filename: "-"}
	if pos.IsValid() {
		position = f.Fset.Position(pos)
		if f.suite.allows.covers(f.analyzer.Name, position) {
			return
		}
	}
	f.suite.diags = append(f.suite.diags, Diagnostic{
		Analyzer: f.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowIndex maps file → line → set of analyzer names allowed there. A
// //lint:allow comment covers its own line and the line below it, so both
// trailing comments and their-own-line comments work:
//
//	f.Sync() //lint:allow locksafe — audited: ...
//
//	//lint:allow locksafe — audited: ...
//	f.Sync()
type allowIndex map[string]map[int][]string

const allowPrefix = "//lint:allow "

func (ai allowIndex) addFile(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(strings.TrimSpace(text), " ")
			pos := fset.Position(c.Pos())
			m := ai[pos.Filename]
			if m == nil {
				m = map[int][]string{}
				ai[pos.Filename] = m
			}
			m[pos.Line] = append(m[pos.Line], name)
			m[pos.Line+1] = append(m[pos.Line+1], name)
		}
	}
}

func (ai allowIndex) covers(analyzer string, pos token.Position) bool {
	for _, name := range ai[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// A Suite runs a set of analyzers over loaded packages and collects their
// diagnostics.
type Suite struct {
	Analyzers []*Analyzer

	diags  []Diagnostic
	allows allowIndex
}

// Run analyzes every package and returns the findings sorted by position.
func (s *Suite) Run(pkgs []*Package) ([]Diagnostic, error) {
	s.diags = nil
	s.allows = allowIndex{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			s.allows.addFile(pkg.Fset, f)
		}
	}
	for _, a := range s.Analyzers {
		state := map[string]any{}
		var fset *token.FileSet
		for _, pkg := range pkgs {
			fset = pkg.Fset
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				State:    state,
				suite:    s,
				allow:    s.allows,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		if a.Finish != nil && fset != nil {
			fin := &Finisher{Fset: fset, State: state, analyzer: a, suite: s}
			if err := a.Finish(fin); err != nil {
				return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
			}
		}
	}
	sort.Slice(s.diags, func(i, j int) bool {
		a, b := s.diags[i], s.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return s.diags, nil
}

// All returns every analyzer in the suite, the set cmd/sprofile-lint runs by
// default.
func All() []*Analyzer {
	return []*Analyzer{
		Locksafe,
		AtomicField,
		ErrTaxonomy,
		MetricFamily,
		FailpointSite,
	}
}

// ---- shared type helpers used by several analyzers ----

// isPkgType reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedFrom returns the named type behind t (after pointer indirection), or
// nil.
func namedFrom(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// calleeObj resolves the object a call expression invokes: a *types.Func for
// method calls and package-level functions, nil for indirect calls through
// function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // qualified identifier pkg.Func
	}
	return nil
}

// calleeIsPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// stringLit returns the value of a (possibly parenthesized or concatenated)
// string-literal expression, and whether it is one.
func stringLit(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
