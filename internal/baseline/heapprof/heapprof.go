// Package heapprof implements the indexed-binary-heap baseline the paper
// compares S-Profile against in §3.1.
//
// The heap stores one node per object, keyed on the object's current
// frequency, together with a position index so that the node of any object
// can be located in O(1) and re-sifted after a ±1 update in O(log m). A
// max-heap answers the mode query from its root; a min-heap answers the
// minimum-frequency query. Neither orientation can answer rank queries such
// as the median or the K-th largest — that is exactly the applicability gap
// the paper points out — so those methods return profiler.ErrUnsupported.
package heapprof

import (
	"fmt"

	"sprofile/internal/core"
	"sprofile/internal/profiler"
)

// Orientation selects which extreme the heap keeps at its root.
type Orientation int

const (
	// MaxHeap keeps the largest frequency at the root (mode queries).
	MaxHeap Orientation = iota
	// MinHeap keeps the smallest frequency at the root (minimum queries,
	// e.g. the graph-shaving application in §2.3).
	MinHeap
)

// String implements fmt.Stringer.
func (o Orientation) String() string {
	if o == MinHeap {
		return "min-heap"
	}
	return "max-heap"
}

// Profiler is the indexed binary heap baseline. It is not safe for concurrent
// use.
type Profiler struct {
	orientation Orientation

	// freq[x] is the current frequency of object x.
	freq []int64
	// heap[i] is the object stored at heap slot i; pos[x] is the heap slot
	// of object x. They are inverse permutations.
	heap []int32
	pos  []int32

	total int64

	// comparisons counts key comparisons performed by sift operations; the
	// ablation benchmarks report it to show where the O(log m) factor goes.
	comparisons uint64
}

var _ profiler.Profiler = (*Profiler)(nil)

// New returns a heap profiler with m object slots, all at frequency zero.
func New(m int, orientation Orientation) (*Profiler, error) {
	if m < 0 || m > core.MaxCapacity {
		return nil, fmt.Errorf("heapprof: invalid capacity %d", m)
	}
	p := &Profiler{
		orientation: orientation,
		freq:        make([]int64, m),
		heap:        make([]int32, m),
		pos:         make([]int32, m),
	}
	for i := 0; i < m; i++ {
		p.heap[i] = int32(i)
		p.pos[i] = int32(i)
	}
	return p, nil
}

// MustNew is New for callers with a known-good capacity; it panics on error.
func MustNew(m int, orientation Orientation) *Profiler {
	p, err := New(m, orientation)
	if err != nil {
		panic(err)
	}
	return p
}

// Cap returns the number of object slots.
func (p *Profiler) Cap() int { return len(p.freq) }

// Total returns the sum of all frequencies.
func (p *Profiler) Total() int64 { return p.total }

// Orientation returns whether this is a max- or min-heap.
func (p *Profiler) Orientation() Orientation { return p.orientation }

// Comparisons returns the number of key comparisons performed so far.
func (p *Profiler) Comparisons() uint64 { return p.comparisons }

func (p *Profiler) checkID(x int) error {
	if x < 0 || x >= len(p.freq) {
		return fmt.Errorf("%w: id %d, capacity %d", core.ErrObjectRange, x, len(p.freq))
	}
	return nil
}

// before reports whether object a must sit above object b in the heap.
func (p *Profiler) before(a, b int32) bool {
	p.comparisons++
	if p.orientation == MaxHeap {
		return p.freq[a] > p.freq[b]
	}
	return p.freq[a] < p.freq[b]
}

// swap exchanges the heap slots i and j.
func (p *Profiler) swap(i, j int32) {
	p.heap[i], p.heap[j] = p.heap[j], p.heap[i]
	p.pos[p.heap[i]] = i
	p.pos[p.heap[j]] = j
}

// siftUp moves the object at slot i towards the root until the heap property
// holds again.
func (p *Profiler) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.before(p.heap[i], p.heap[parent]) {
			return
		}
		p.swap(i, parent)
		i = parent
	}
}

// siftDown moves the object at slot i towards the leaves until the heap
// property holds again.
func (p *Profiler) siftDown(i int32) {
	n := int32(len(p.heap))
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && p.before(p.heap[right], p.heap[left]) {
			best = right
		}
		if !p.before(p.heap[best], p.heap[i]) {
			return
		}
		p.swap(i, best)
		i = best
	}
}

// update changes the frequency of object x by delta and restores the heap.
func (p *Profiler) update(x int, delta int64) {
	p.freq[x] += delta
	p.total += delta
	i := p.pos[x]
	increased := delta > 0
	if (p.orientation == MaxHeap) == increased {
		p.siftUp(i)
	} else {
		p.siftDown(i)
	}
}

// Add applies an "add" event for object x.
func (p *Profiler) Add(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	p.update(x, 1)
	return nil
}

// Remove applies a "remove" event for object x.
func (p *Profiler) Remove(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	p.update(x, -1)
	return nil
}

// Count returns the current frequency of object x.
func (p *Profiler) Count(x int) (int64, error) {
	if err := p.checkID(x); err != nil {
		return 0, err
	}
	return p.freq[x], nil
}

// Mode returns the object at the root of a max-heap. The tie count is always
// reported as 1: discovering how many objects share the maximum would require
// walking the heap, which the baseline cannot do in O(1). Min-heaps return
// ErrUnsupported.
func (p *Profiler) Mode() (core.Entry, int, error) {
	if len(p.freq) == 0 {
		return core.Entry{}, 0, core.ErrEmptyProfile
	}
	if p.orientation != MaxHeap {
		return core.Entry{}, 0, fmt.Errorf("%w: Mode on a min-heap", profiler.ErrUnsupported)
	}
	root := p.heap[0]
	return core.Entry{Object: int(root), Frequency: p.freq[root]}, 1, nil
}

// Min returns the object at the root of a min-heap, with the same tie-count
// caveat as Mode. Max-heaps return ErrUnsupported.
func (p *Profiler) Min() (core.Entry, int, error) {
	if len(p.freq) == 0 {
		return core.Entry{}, 0, core.ErrEmptyProfile
	}
	if p.orientation != MinHeap {
		return core.Entry{}, 0, fmt.Errorf("%w: Min on a max-heap", profiler.ErrUnsupported)
	}
	root := p.heap[0]
	return core.Entry{Object: int(root), Frequency: p.freq[root]}, 1, nil
}

// KthLargest is not answerable from a binary heap without destroying it;
// it always returns ErrUnsupported.
func (p *Profiler) KthLargest(int) (core.Entry, error) {
	return core.Entry{}, fmt.Errorf("%w: KthLargest on a heap", profiler.ErrUnsupported)
}

// Median is not answerable from a binary heap; it always returns
// ErrUnsupported.
func (p *Profiler) Median() (core.Entry, error) {
	return core.Entry{}, fmt.Errorf("%w: Median on a heap", profiler.ErrUnsupported)
}

// CheckInvariants validates the heap property and the position index; tests
// call it after randomised operation sequences.
func (p *Profiler) CheckInvariants() error {
	n := int32(len(p.heap))
	for x := int32(0); x < n; x++ {
		if p.heap[p.pos[x]] != x {
			return fmt.Errorf("heapprof: pos/heap mismatch for object %d", x)
		}
	}
	for i := int32(1); i < n; i++ {
		parent := (i - 1) / 2
		a, b := p.heap[parent], p.heap[i]
		if p.orientation == MaxHeap && p.freq[a] < p.freq[b] {
			return fmt.Errorf("heapprof: max-heap violation at slot %d (%d < %d)", i, p.freq[a], p.freq[b])
		}
		if p.orientation == MinHeap && p.freq[a] > p.freq[b] {
			return fmt.Errorf("heapprof: min-heap violation at slot %d (%d > %d)", i, p.freq[a], p.freq[b])
		}
	}
	return nil
}
