package heapprof

import (
	"errors"
	"testing"
	"testing/quick"

	"sprofile/internal/baseline/bucketprof"
	"sprofile/internal/core"
	"sprofile/internal/profiler"
	"sprofile/internal/stream"
)

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(-1, MaxHeap); err == nil {
		t.Fatalf("New(-1) succeeded")
	}
}

func TestOrientationString(t *testing.T) {
	if MaxHeap.String() != "max-heap" || MinHeap.String() != "min-heap" {
		t.Fatalf("unexpected orientation strings %q %q", MaxHeap.String(), MinHeap.String())
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	p := MustNew(3, MaxHeap)
	for _, x := range []int{-1, 3} {
		if err := p.Add(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Add(%d) error = %v, want ErrObjectRange", x, err)
		}
		if err := p.Remove(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Remove(%d) error = %v, want ErrObjectRange", x, err)
		}
		if _, err := p.Count(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Count(%d) error = %v, want ErrObjectRange", x, err)
		}
	}
}

func TestMaxHeapTracksMode(t *testing.T) {
	p := MustNew(4, MaxHeap)
	oracle := bucketprof.MustNew(4)
	ops := []core.Tuple{
		{Object: 0, Action: core.ActionAdd},
		{Object: 1, Action: core.ActionAdd},
		{Object: 1, Action: core.ActionAdd},
		{Object: 2, Action: core.ActionAdd},
		{Object: 1, Action: core.ActionRemove},
		{Object: 0, Action: core.ActionAdd},
		{Object: 3, Action: core.ActionRemove},
	}
	for i, op := range ops {
		if err := profiler.Apply(p, op); err != nil {
			t.Fatal(err)
		}
		if err := profiler.Apply(oracle, op); err != nil {
			t.Fatal(err)
		}
		got, _, err := p.Mode()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.Mode()
		if err != nil {
			t.Fatal(err)
		}
		if got.Frequency != want.Frequency {
			t.Fatalf("after op %d: heap mode frequency %d, oracle %d", i, got.Frequency, want.Frequency)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("after op %d: %v", i, err)
		}
	}
}

func TestMinHeapTracksMinimum(t *testing.T) {
	p := MustNew(5, MinHeap)
	oracle := bucketprof.MustNew(5)
	g, err := stream.Stream1(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if err := profiler.Apply(p, op); err != nil {
			t.Fatal(err)
		}
		if err := profiler.Apply(oracle, op); err != nil {
			t.Fatal(err)
		}
		got, _, err := p.Min()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.Min()
		if err != nil {
			t.Fatal(err)
		}
		if got.Frequency != want.Frequency {
			t.Fatalf("after op %d: heap min frequency %d, oracle %d", i, got.Frequency, want.Frequency)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnsupportedQueries(t *testing.T) {
	maxp := MustNew(3, MaxHeap)
	minp := MustNew(3, MinHeap)
	if _, _, err := maxp.Min(); !errors.Is(err, profiler.ErrUnsupported) {
		t.Fatalf("Min on max-heap error %v, want ErrUnsupported", err)
	}
	if _, _, err := minp.Mode(); !errors.Is(err, profiler.ErrUnsupported) {
		t.Fatalf("Mode on min-heap error %v, want ErrUnsupported", err)
	}
	if _, err := maxp.KthLargest(1); !errors.Is(err, profiler.ErrUnsupported) {
		t.Fatalf("KthLargest error %v, want ErrUnsupported", err)
	}
	if _, err := maxp.Median(); !errors.Is(err, profiler.ErrUnsupported) {
		t.Fatalf("Median error %v, want ErrUnsupported", err)
	}
}

func TestEmptyHeapQueries(t *testing.T) {
	p := MustNew(0, MaxHeap)
	if _, _, err := p.Mode(); !errors.Is(err, core.ErrEmptyProfile) {
		t.Fatalf("Mode on empty heap: %v", err)
	}
	if p.Cap() != 0 || p.Total() != 0 {
		t.Fatalf("empty heap reports Cap=%d Total=%d", p.Cap(), p.Total())
	}
}

func TestCountAndTotalBookkeeping(t *testing.T) {
	p := MustNew(3, MaxHeap)
	p.Add(0)
	p.Add(0)
	p.Remove(1)
	if f, _ := p.Count(0); f != 2 {
		t.Fatalf("Count(0) = %d, want 2", f)
	}
	if f, _ := p.Count(1); f != -1 {
		t.Fatalf("Count(1) = %d, want -1", f)
	}
	if p.Total() != 1 {
		t.Fatalf("Total() = %d, want 1", p.Total())
	}
	if p.Orientation() != MaxHeap {
		t.Fatalf("Orientation() = %v, want MaxHeap", p.Orientation())
	}
	// Raising a leaf object above the root forces at least one sift
	// comparison.
	p.Add(2)
	p.Add(2)
	p.Add(2)
	if p.Comparisons() == 0 {
		t.Fatalf("Comparisons() = 0 after sifting updates")
	}
}

func TestHeapInvariantPropertyRandomOps(t *testing.T) {
	f := func(seed uint64, rawM uint8, rawN uint16) bool {
		m := int(rawM)%50 + 1
		n := int(rawN) % 800
		rng := stream.NewRNG(seed)
		p := MustNew(m, MaxHeap)
		oracle := bucketprof.MustNew(m)
		for i := 0; i < n; i++ {
			x := rng.Intn(m)
			var op core.Tuple
			if rng.Bernoulli(0.6) {
				op = core.Tuple{Object: x, Action: core.ActionAdd}
			} else {
				op = core.Tuple{Object: x, Action: core.ActionRemove}
			}
			if profiler.Apply(p, op) != nil || profiler.Apply(oracle, op) != nil {
				return false
			}
		}
		if p.CheckInvariants() != nil {
			return false
		}
		got, _, err1 := p.Mode()
		want, _, err2 := oracle.Mode()
		if err1 != nil || err2 != nil {
			return false
		}
		return got.Frequency == want.Frequency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
