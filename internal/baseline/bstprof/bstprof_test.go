package bstprof

import (
	"errors"
	"testing"

	"sprofile/internal/baseline/bucketprof"
	"sprofile/internal/core"
	"sprofile/internal/profiler"
	"sprofile/internal/stream"
)

func kinds() []Kind { return []Kind{Treap, RedBlack, SkipList} }

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, k := range kinds() {
		if _, err := New(-1, k); err == nil {
			t.Fatalf("%v: New(-1) succeeded", k)
		}
	}
	if _, err := New(10, Kind(99)); err == nil {
		t.Fatalf("New with unknown kind succeeded")
	}
}

func TestKindString(t *testing.T) {
	if Treap.String() != "treap" || RedBlack.String() != "red-black" || SkipList.String() != "skip-list" {
		t.Fatalf("unexpected kind strings %q %q %q", Treap.String(), RedBlack.String(), SkipList.String())
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	for _, k := range kinds() {
		p := MustNew(3, k)
		for _, x := range []int{-1, 3} {
			if err := p.Add(x); !errors.Is(err, core.ErrObjectRange) {
				t.Fatalf("%v: Add(%d) error = %v", k, x, err)
			}
			if err := p.Remove(x); !errors.Is(err, core.ErrObjectRange) {
				t.Fatalf("%v: Remove(%d) error = %v", k, x, err)
			}
			if _, err := p.Count(x); !errors.Is(err, core.ErrObjectRange) {
				t.Fatalf("%v: Count(%d) error = %v", k, x, err)
			}
		}
	}
}

func TestEmptyProfile(t *testing.T) {
	for _, k := range kinds() {
		p := MustNew(0, k)
		if _, _, err := p.Mode(); !errors.Is(err, core.ErrEmptyProfile) {
			t.Fatalf("%v: Mode on empty profile: %v", k, err)
		}
		if _, _, err := p.Min(); !errors.Is(err, core.ErrEmptyProfile) {
			t.Fatalf("%v: Min on empty profile: %v", k, err)
		}
		if _, err := p.Median(); !errors.Is(err, core.ErrEmptyProfile) {
			t.Fatalf("%v: Median on empty profile: %v", k, err)
		}
	}
}

func TestQueriesMatchOracleOnPaperStreams(t *testing.T) {
	for _, k := range kinds() {
		for streamIdx := 1; streamIdx <= 3; streamIdx++ {
			const m = 60
			p := MustNew(m, k)
			oracle := bucketprof.MustNew(m)
			g, err := stream.PaperStream(streamIdx, m, uint64(streamIdx)*31)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3000; i++ {
				op := g.Next()
				if err := profiler.Apply(p, op); err != nil {
					t.Fatal(err)
				}
				if err := profiler.Apply(oracle, op); err != nil {
					t.Fatal(err)
				}
				if i%101 != 0 {
					continue
				}
				gotMode, _, err := p.Mode()
				if err != nil {
					t.Fatal(err)
				}
				wantMode, _, err := oracle.Mode()
				if err != nil {
					t.Fatal(err)
				}
				if gotMode.Frequency != wantMode.Frequency {
					t.Fatalf("%v stream%d op %d: mode %d, oracle %d", k, streamIdx, i, gotMode.Frequency, wantMode.Frequency)
				}
				gotMin, _, _ := p.Min()
				wantMin, _, _ := oracle.Min()
				if gotMin.Frequency != wantMin.Frequency {
					t.Fatalf("%v stream%d op %d: min %d, oracle %d", k, streamIdx, i, gotMin.Frequency, wantMin.Frequency)
				}
				gotMed, _ := p.Median()
				wantMed, _ := oracle.Median()
				if gotMed.Frequency != wantMed.Frequency {
					t.Fatalf("%v stream%d op %d: median %d, oracle %d", k, streamIdx, i, gotMed.Frequency, wantMed.Frequency)
				}
				for _, kth := range []int{1, 2, m / 2, m} {
					gotK, err := p.KthLargest(kth)
					if err != nil {
						t.Fatal(err)
					}
					wantK, err := oracle.KthLargest(kth)
					if err != nil {
						t.Fatal(err)
					}
					if gotK.Frequency != wantK.Frequency {
						t.Fatalf("%v stream%d op %d: KthLargest(%d) %d, oracle %d",
							k, streamIdx, i, kth, gotK.Frequency, wantK.Frequency)
					}
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("%v stream%d: %v", k, streamIdx, err)
			}
		}
	}
}

func TestKthLargestBounds(t *testing.T) {
	for _, k := range kinds() {
		p := MustNew(4, k)
		if _, err := p.KthLargest(0); !errors.Is(err, core.ErrBadRank) {
			t.Fatalf("%v: KthLargest(0) error %v", k, err)
		}
		if _, err := p.KthLargest(5); !errors.Is(err, core.ErrBadRank) {
			t.Fatalf("%v: KthLargest(5) error %v", k, err)
		}
	}
}

func TestAtRank(t *testing.T) {
	for _, k := range kinds() {
		p := MustNew(3, k)
		p.Add(2)
		p.Add(2)
		p.Add(1)
		// ascending frequencies: [0 (obj0), 1 (obj1), 2 (obj2)]
		for r, want := range []int64{0, 1, 2} {
			e, err := p.AtRank(r)
			if err != nil {
				t.Fatal(err)
			}
			if e.Frequency != want {
				t.Fatalf("%v: AtRank(%d) frequency %d, want %d", k, r, e.Frequency, want)
			}
		}
		if _, err := p.AtRank(3); !errors.Is(err, core.ErrBadRank) {
			t.Fatalf("%v: AtRank(3) error %v", k, err)
		}
	}
}

func TestCapTotalKind(t *testing.T) {
	for _, k := range kinds() {
		p := MustNew(5, k)
		p.Add(0)
		p.Add(0)
		p.Remove(1)
		if p.Cap() != 5 {
			t.Fatalf("%v: Cap() = %d", k, p.Cap())
		}
		if p.Total() != 1 {
			t.Fatalf("%v: Total() = %d", k, p.Total())
		}
		if p.Kind() != k {
			t.Fatalf("Kind() = %v, want %v", p.Kind(), k)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
