package bstprof

import "fmt"

// rbTree is a size-augmented red-black tree (CLRS layout with a shared
// sentinel leaf). It is the closest Go stand-in for the GNU PBDS
// tree_order_statistics_node_update structure used by the paper's §3.2
// baseline: deterministic O(log m) insert, delete and order statistics.
type rbTree struct {
	root     *rbNode
	sentinel *rbNode
	count    int
}

type rbNode struct {
	k                   key
	left, right, parent *rbNode
	red                 bool
	size                int32
}

// newRBTree returns an empty red-black tree.
func newRBTree() *rbTree {
	s := &rbNode{red: false, size: 0}
	s.left, s.right, s.parent = s, s, s
	return &rbTree{root: s, sentinel: s}
}

func (t *rbTree) isNil(n *rbNode) bool { return n == t.sentinel }

// leftRotate performs the standard left rotation around x, keeping subtree
// sizes consistent.
func (t *rbTree) leftRotate(x *rbNode) {
	y := x.right
	x.right = y.left
	if !t.isNil(y.left) {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case t.isNil(x.parent):
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	y.size = x.size
	x.size = x.left.size + x.right.size + 1
}

// rightRotate is the mirror image of leftRotate.
func (t *rbTree) rightRotate(x *rbNode) {
	y := x.left
	x.left = y.right
	if !t.isNil(y.right) {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case t.isNil(x.parent):
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	y.size = x.size
	x.size = x.left.size + x.right.size + 1
}

// insert implements orderedTree.
func (t *rbTree) insert(k key) {
	z := &rbNode{k: k, red: true, size: 1, left: t.sentinel, right: t.sentinel, parent: t.sentinel}
	y := t.sentinel
	x := t.root
	for !t.isNil(x) {
		x.size++
		y = x
		if k.less(x.k) {
			x = x.left
		} else {
			x = x.right
		}
	}
	z.parent = y
	switch {
	case t.isNil(y):
		t.root = z
	case k.less(y.k):
		y.left = z
	default:
		y.right = z
	}
	t.count++
	t.insertFixup(z)
}

func (t *rbTree) insertFixup(z *rbNode) {
	for z.parent.red {
		if z.parent == z.parent.parent.left {
			uncle := z.parent.parent.right
			if uncle.red {
				z.parent.red = false
				uncle.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.leftRotate(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.rightRotate(z.parent.parent)
			}
		} else {
			uncle := z.parent.parent.left
			if uncle.red {
				z.parent.red = false
				uncle.red = false
				z.parent.parent.red = true
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rightRotate(z)
				}
				z.parent.red = false
				z.parent.parent.red = true
				t.leftRotate(z.parent.parent)
			}
		}
	}
	t.root.red = false
}

// find returns the node holding k, or the sentinel if absent.
func (t *rbTree) find(k key) *rbNode {
	x := t.root
	for !t.isNil(x) {
		switch {
		case k.less(x.k):
			x = x.left
		case x.k.less(k):
			x = x.right
		default:
			return x
		}
	}
	return t.sentinel
}

// transplant replaces the subtree rooted at u with the subtree rooted at v.
func (t *rbTree) transplant(u, v *rbNode) {
	switch {
	case t.isNil(u.parent):
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

// subtreeMin returns the smallest node of the subtree rooted at x.
func (t *rbTree) subtreeMin(x *rbNode) *rbNode {
	for !t.isNil(x.left) {
		x = x.left
	}
	return x
}

// delete implements orderedTree.
func (t *rbTree) delete(k key) bool {
	z := t.find(k)
	if t.isNil(z) {
		return false
	}

	// Identify the node that will be physically spliced out of the tree and
	// decrement subtree sizes from its parent up to the root before any
	// structural change; the fix-up rotations recompute sizes locally from
	// already-correct children.
	spliced := z
	if !t.isNil(z.left) && !t.isNil(z.right) {
		spliced = t.subtreeMin(z.right)
	}
	for p := spliced.parent; !t.isNil(p); p = p.parent {
		p.size--
	}

	y := z
	yWasRed := y.red
	var x *rbNode
	switch {
	case t.isNil(z.left):
		x = z.right
		t.transplant(z, z.right)
	case t.isNil(z.right):
		x = z.left
		t.transplant(z, z.left)
	default:
		y = spliced
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
		y.size = z.size
	}
	t.count--
	if !yWasRed {
		t.deleteFixup(x)
	}
	t.sentinel.parent = t.sentinel
	t.sentinel.size = 0
	return true
}

func (t *rbTree) deleteFixup(x *rbNode) {
	for x != t.root && !x.red {
		if x == x.parent.left {
			w := x.parent.right
			if w.red {
				w.red = false
				x.parent.red = true
				t.leftRotate(x.parent)
				w = x.parent.right
			}
			if !w.left.red && !w.right.red {
				w.red = true
				x = x.parent
			} else {
				if !w.right.red {
					w.left.red = false
					w.red = true
					t.rightRotate(w)
					w = x.parent.right
				}
				w.red = x.parent.red
				x.parent.red = false
				w.right.red = false
				t.leftRotate(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.red {
				w.red = false
				x.parent.red = true
				t.rightRotate(x.parent)
				w = x.parent.left
			}
			if !w.right.red && !w.left.red {
				w.red = true
				x = x.parent
			} else {
				if !w.left.red {
					w.right.red = false
					w.red = true
					t.leftRotate(w)
					w = x.parent.left
				}
				w.red = x.parent.red
				x.parent.red = false
				w.left.red = false
				t.rightRotate(x.parent)
				x = t.root
			}
		}
	}
	x.red = false
}

// kth implements orderedTree (0-based ascending order statistic).
func (t *rbTree) kth(k int) (key, bool) {
	if k < 0 || k >= t.count {
		return key{}, false
	}
	x := t.root
	for !t.isNil(x) {
		leftSize := int(x.left.size)
		switch {
		case k < leftSize:
			x = x.left
		case k == leftSize:
			return x.k, true
		default:
			k -= leftSize + 1
			x = x.right
		}
	}
	return key{}, false
}

// min implements orderedTree.
func (t *rbTree) min() (key, bool) {
	if t.isNil(t.root) {
		return key{}, false
	}
	return t.subtreeMin(t.root).k, true
}

// max implements orderedTree.
func (t *rbTree) max() (key, bool) {
	if t.isNil(t.root) {
		return key{}, false
	}
	x := t.root
	for !t.isNil(x.right) {
		x = x.right
	}
	return x.k, true
}

// size implements orderedTree.
func (t *rbTree) size() int { return t.count }

// checkInvariants implements orderedTree: BST order, red-black properties
// (root black, no red node with a red child, equal black height on every
// root-to-leaf path), size augmentation and node count are all validated.
func (t *rbTree) checkInvariants() error {
	if t.red(t.root) {
		return fmt.Errorf("bstprof: red-black root is red")
	}
	if t.sentinel.red {
		return fmt.Errorf("bstprof: red-black sentinel is red")
	}
	seen := 0
	var walk func(n *rbNode, lo, hi *key) (blackHeight int, size int32, err error)
	walk = func(n *rbNode, lo, hi *key) (int, int32, error) {
		if t.isNil(n) {
			return 1, 0, nil
		}
		seen++
		if lo != nil && n.k.less(*lo) {
			return 0, 0, fmt.Errorf("bstprof: red-black BST order violated (key below lower bound)")
		}
		if hi != nil && hi.less(n.k) {
			return 0, 0, fmt.Errorf("bstprof: red-black BST order violated (key above upper bound)")
		}
		if n.red && (n.left.red || n.right.red) {
			return 0, 0, fmt.Errorf("bstprof: red node with red child")
		}
		lh, ls, err := walk(n.left, lo, &n.k)
		if err != nil {
			return 0, 0, err
		}
		rh, rs, err := walk(n.right, &n.k, hi)
		if err != nil {
			return 0, 0, err
		}
		if lh != rh {
			return 0, 0, fmt.Errorf("bstprof: black height mismatch %d vs %d", lh, rh)
		}
		if n.size != ls+rs+1 {
			return 0, 0, fmt.Errorf("bstprof: red-black size augmentation wrong (%d != %d+%d+1)", n.size, ls, rs)
		}
		h := lh
		if !n.red {
			h++
		}
		return h, n.size, nil
	}
	_, total, err := walk(t.root, nil, nil)
	if err != nil {
		return err
	}
	if int(total) != t.count || seen != t.count {
		return fmt.Errorf("bstprof: red-black count %d does not match reachable nodes %d", t.count, total)
	}
	return nil
}

func (t *rbTree) red(n *rbNode) bool { return n.red }

var _ orderedTree = (*rbTree)(nil)
