package bstprof

import (
	"fmt"

	"sprofile/internal/core"
	"sprofile/internal/profiler"
)

// Kind selects the balanced-tree engine behind a Profiler.
type Kind int

const (
	// Treap uses the randomised size-augmented treap engine.
	Treap Kind = iota
	// RedBlack uses the deterministic size-augmented red-black tree engine,
	// the closest analogue of the GNU PBDS baseline in the paper.
	RedBlack
	// SkipList uses an indexable skip list (spans on forward pointers), the
	// probabilistic alternative to balanced trees with the same O(log m)
	// bounds.
	SkipList
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case RedBlack:
		return "red-black"
	case SkipList:
		return "skip-list"
	default:
		return "treap"
	}
}

// Profiler is the order-statistic balanced-tree baseline. Every update costs
// O(log m) (one delete plus one insert); every rank query costs O(log m).
// It is not safe for concurrent use.
type Profiler struct {
	kind Kind
	tree orderedTree
	freq []int64

	total int64
}

var _ profiler.Profiler = (*Profiler)(nil)

// New returns a tree profiler with m object slots, all at frequency zero.
func New(m int, kind Kind) (*Profiler, error) {
	if m < 0 || m > core.MaxCapacity {
		return nil, fmt.Errorf("bstprof: invalid capacity %d", m)
	}
	p := &Profiler{kind: kind, freq: make([]int64, m)}
	switch kind {
	case Treap:
		p.tree = newTreap(m, 0x5b5ad4)
	case RedBlack:
		p.tree = newRBTree()
	case SkipList:
		p.tree = newSkipList(0x9d2c56)
	default:
		return nil, fmt.Errorf("bstprof: unknown tree kind %d", kind)
	}
	for x := 0; x < m; x++ {
		p.tree.insert(key{freq: 0, obj: int32(x)})
	}
	return p, nil
}

// MustNew is New for callers with a known-good capacity; it panics on error.
func MustNew(m int, kind Kind) *Profiler {
	p, err := New(m, kind)
	if err != nil {
		panic(err)
	}
	return p
}

// Cap returns the number of object slots.
func (p *Profiler) Cap() int { return len(p.freq) }

// Total returns the sum of all frequencies.
func (p *Profiler) Total() int64 { return p.total }

// Kind returns the tree engine in use.
func (p *Profiler) Kind() Kind { return p.kind }

func (p *Profiler) checkID(x int) error {
	if x < 0 || x >= len(p.freq) {
		return fmt.Errorf("%w: id %d, capacity %d", core.ErrObjectRange, x, len(p.freq))
	}
	return nil
}

// update re-keys object x from its old frequency to old+delta.
func (p *Profiler) update(x int, delta int64) error {
	old := p.freq[x]
	if !p.tree.delete(key{freq: old, obj: int32(x)}) {
		return fmt.Errorf("bstprof: internal error: key for object %d missing from tree", x)
	}
	p.freq[x] = old + delta
	p.tree.insert(key{freq: p.freq[x], obj: int32(x)})
	p.total += delta
	return nil
}

// Add applies an "add" event for object x.
func (p *Profiler) Add(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	return p.update(x, 1)
}

// Remove applies a "remove" event for object x.
func (p *Profiler) Remove(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	return p.update(x, -1)
}

// Count returns the current frequency of object x.
func (p *Profiler) Count(x int) (int64, error) {
	if err := p.checkID(x); err != nil {
		return 0, err
	}
	return p.freq[x], nil
}

// Mode returns the object with maximum frequency. The tie count is always
// reported as 1: counting the ties would need an extra range query.
func (p *Profiler) Mode() (core.Entry, int, error) {
	k, ok := p.tree.max()
	if !ok {
		return core.Entry{}, 0, core.ErrEmptyProfile
	}
	return core.Entry{Object: int(k.obj), Frequency: k.freq}, 1, nil
}

// Min returns the object with minimum frequency, with the same tie-count
// caveat as Mode.
func (p *Profiler) Min() (core.Entry, int, error) {
	k, ok := p.tree.min()
	if !ok {
		return core.Entry{}, 0, core.ErrEmptyProfile
	}
	return core.Entry{Object: int(k.obj), Frequency: k.freq}, 1, nil
}

// KthLargest returns the object holding the k-th largest frequency (1-based).
func (p *Profiler) KthLargest(k int) (core.Entry, error) {
	if k < 1 || k > len(p.freq) {
		return core.Entry{}, fmt.Errorf("%w: k %d, capacity %d", core.ErrBadRank, k, len(p.freq))
	}
	kk, ok := p.tree.kth(len(p.freq) - k)
	if !ok {
		return core.Entry{}, fmt.Errorf("%w: k %d, capacity %d", core.ErrBadRank, k, len(p.freq))
	}
	return core.Entry{Object: int(kk.obj), Frequency: kk.freq}, nil
}

// Median returns the lower-median entry of the frequency multiset (rank
// floor((m-1)/2) of the ascending order), matching core.Profile.Median.
func (p *Profiler) Median() (core.Entry, error) {
	if len(p.freq) == 0 {
		return core.Entry{}, core.ErrEmptyProfile
	}
	k, ok := p.tree.kth((len(p.freq) - 1) / 2)
	if !ok {
		return core.Entry{}, core.ErrEmptyProfile
	}
	return core.Entry{Object: int(k.obj), Frequency: k.freq}, nil
}

// AtRank returns the entry at 0-based ascending rank r, matching
// core.Profile.AtRank.
func (p *Profiler) AtRank(r int) (core.Entry, error) {
	k, ok := p.tree.kth(r)
	if !ok {
		return core.Entry{}, fmt.Errorf("%w: rank %d, capacity %d", core.ErrBadRank, r, len(p.freq))
	}
	return core.Entry{Object: int(k.obj), Frequency: k.freq}, nil
}

// CheckInvariants validates the tree engine's structural invariants plus the
// agreement between the frequency array and the tree contents.
func (p *Profiler) CheckInvariants() error {
	if err := p.tree.checkInvariants(); err != nil {
		return err
	}
	if p.tree.size() != len(p.freq) {
		return fmt.Errorf("bstprof: tree holds %d keys, want %d", p.tree.size(), len(p.freq))
	}
	var total int64
	for x, f := range p.freq {
		_ = x
		total += f
	}
	if total != p.total {
		return fmt.Errorf("bstprof: total %d does not match frequency sum %d", p.total, total)
	}
	return nil
}
