package bstprof

import "fmt"

// skipList is an indexable skip list (the structure behind Redis sorted
// sets): every forward pointer carries the number of level-0 elements it
// skips, so order statistics run in O(log m) expected time, like insert and
// delete. It is the third engine behind the §3.2 baseline, included to show
// that the S-Profile gap is a property of logarithmic ordered indexes in
// general, not of binary search trees specifically.
type skipList struct {
	header *slNode
	level  int
	length int
	rng    uint64
}

const slMaxLevel = 32

type slNode struct {
	k       key
	forward []*slNode
	span    []int
}

// newSkipList returns an empty indexable skip list.
func newSkipList(seed uint64) *skipList {
	return &skipList{
		header: &slNode{
			forward: make([]*slNode, slMaxLevel),
			span:    make([]int, slMaxLevel),
		},
		level: 1,
		rng:   seed | 1,
	}
}

// randomLevel draws a node height with P(level >= L) = 4^-(L-1).
func (s *skipList) randomLevel() int {
	level := 1
	for level < slMaxLevel {
		s.rng += 0x9e3779b97f4a7c15
		z := s.rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z&3 != 0 { // probability 3/4 to stop
			break
		}
		level++
	}
	return level
}

// insert implements orderedTree.
func (s *skipList) insert(k key) {
	var update [slMaxLevel]*slNode
	var rank [slMaxLevel]int

	x := s.header
	for i := s.level - 1; i >= 0; i-- {
		if i == s.level-1 {
			rank[i] = 0
		} else {
			rank[i] = rank[i+1]
		}
		for x.forward[i] != nil && x.forward[i].k.less(k) {
			rank[i] += x.span[i]
			x = x.forward[i]
		}
		update[i] = x
	}

	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			rank[i] = 0
			update[i] = s.header
			update[i].span[i] = s.length
		}
		s.level = lvl
	}

	n := &slNode{k: k, forward: make([]*slNode, lvl), span: make([]int, lvl)}
	for i := 0; i < lvl; i++ {
		n.forward[i] = update[i].forward[i]
		update[i].forward[i] = n
		n.span[i] = update[i].span[i] - (rank[0] - rank[i])
		update[i].span[i] = (rank[0] - rank[i]) + 1
	}
	for i := lvl; i < s.level; i++ {
		update[i].span[i]++
	}
	s.length++
}

// delete implements orderedTree.
func (s *skipList) delete(k key) bool {
	var update [slMaxLevel]*slNode
	x := s.header
	for i := s.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && x.forward[i].k.less(k) {
			x = x.forward[i]
		}
		update[i] = x
	}
	target := update[0].forward[0]
	if target == nil || target.k != k {
		return false
	}
	for i := 0; i < s.level; i++ {
		if update[i].forward[i] == target {
			update[i].span[i] += target.span[i] - 1
			update[i].forward[i] = target.forward[i]
		} else {
			update[i].span[i]--
		}
	}
	for s.level > 1 && s.header.forward[s.level-1] == nil {
		s.header.span[s.level-1] = 0
		s.level--
	}
	s.length--
	return true
}

// kth implements orderedTree (0-based ascending order statistic).
func (s *skipList) kth(k int) (key, bool) {
	if k < 0 || k >= s.length {
		return key{}, false
	}
	target := k + 1
	traversed := 0
	x := s.header
	for i := s.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && traversed+x.span[i] <= target {
			traversed += x.span[i]
			x = x.forward[i]
		}
		if traversed == target && x != s.header {
			return x.k, true
		}
	}
	return key{}, false
}

// min implements orderedTree.
func (s *skipList) min() (key, bool) {
	if s.header.forward[0] == nil {
		return key{}, false
	}
	return s.header.forward[0].k, true
}

// max implements orderedTree.
func (s *skipList) max() (key, bool) {
	if s.length == 0 {
		return key{}, false
	}
	x := s.header
	for i := s.level - 1; i >= 0; i-- {
		for x.forward[i] != nil {
			x = x.forward[i]
		}
	}
	return x.k, true
}

// size implements orderedTree.
func (s *skipList) size() int { return s.length }

// checkInvariants implements orderedTree: level-0 ordering, length, and the
// span bookkeeping at every level are validated against the level-0 order.
func (s *skipList) checkInvariants() error {
	// Level-0 walk: collect positions and check ordering.
	pos := make(map[*slNode]int)
	count := 0
	prev := (*slNode)(nil)
	for x := s.header.forward[0]; x != nil; x = x.forward[0] {
		if prev != nil && !prev.k.less(x.k) {
			return fmt.Errorf("bstprof: skip list level-0 order violated")
		}
		pos[x] = count
		count++
		prev = x
	}
	if count != s.length {
		return fmt.Errorf("bstprof: skip list length %d, level-0 walk found %d", s.length, count)
	}
	// Span checks on every level: the span of a link must equal the distance
	// between the positions of its endpoints (header has position -1).
	for i := 0; i < s.level; i++ {
		at := -1
		x := s.header
		for x.forward[i] != nil {
			next := x.forward[i]
			nextPos, ok := pos[next]
			if !ok {
				return fmt.Errorf("bstprof: skip list node on level %d missing from level 0", i)
			}
			if x.span[i] != nextPos-at {
				return fmt.Errorf("bstprof: skip list span mismatch on level %d: %d, want %d", i, x.span[i], nextPos-at)
			}
			at = nextPos
			x = next
		}
	}
	return nil
}

var _ orderedTree = (*skipList)(nil)
