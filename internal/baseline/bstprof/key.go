// Package bstprof implements the order-statistic balanced-tree baseline the
// paper compares S-Profile against in §3.2 (there realised with the GNU C++
// policy-based data structures; here with two self-contained Go trees).
//
// The tree stores one key per object — the pair (frequency, object id),
// ordered by frequency first — augmented with subtree sizes, so that rank
// queries (median, K-th largest, arbitrary order statistics) run in O(log m).
// Every ±1 update deletes the object's old key and inserts the new one, also
// O(log m). That logarithmic factor is exactly what the S-Profile block set
// eliminates.
//
// Two interchangeable tree engines are provided:
//
//   - Treap: a randomised binary search tree (expected O(log m) height);
//   - RedBlack: a deterministic red-black tree (worst-case O(log m) height),
//     the closest stand-in for the GNU PBDS rb_tree the paper measures.
//
// The ablation benchmark BenchmarkAblationTreeKind shows the paper's
// conclusions do not depend on which engine is used.
package bstprof

// key orders objects by frequency, breaking ties by object id so that every
// key in the tree is distinct.
type key struct {
	freq int64
	obj  int32
}

// less reports whether a orders strictly before b.
func (a key) less(b key) bool {
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.obj < b.obj
}

// orderedTree is the engine interface shared by the treap and the red-black
// tree. All methods refer to the ascending (frequency, object) order.
type orderedTree interface {
	// insert adds k to the tree. k must not already be present.
	insert(k key)
	// delete removes k from the tree and reports whether it was present.
	delete(k key) bool
	// kth returns the 0-based k-th smallest key.
	kth(k int) (key, bool)
	// min returns the smallest key.
	min() (key, bool)
	// max returns the largest key.
	max() (key, bool)
	// size returns the number of keys stored.
	size() int
	// checkInvariants validates the engine's structural invariants.
	checkInvariants() error
}
