package bstprof

import (
	"sort"
	"testing"
	"testing/quick"

	"sprofile/internal/stream"
)

// engines returns a fresh instance of every tree engine under test.
func engines() map[string]orderedTree {
	return map[string]orderedTree{
		"treap":     newTreap(0, 1),
		"red-black": newRBTree(),
		"skip-list": newSkipList(1),
	}
}

func TestTreeInsertDeleteSmall(t *testing.T) {
	for name, tr := range engines() {
		keys := []key{
			{freq: 5, obj: 1},
			{freq: 3, obj: 2},
			{freq: 5, obj: 0},
			{freq: -2, obj: 3},
			{freq: 0, obj: 4},
		}
		for _, k := range keys {
			tr.insert(k)
		}
		if tr.size() != len(keys) {
			t.Fatalf("%s: size %d, want %d", name, tr.size(), len(keys))
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		min, ok := tr.min()
		if !ok || min != (key{freq: -2, obj: 3}) {
			t.Fatalf("%s: min = %+v", name, min)
		}
		max, ok := tr.max()
		if !ok || max != (key{freq: 5, obj: 1}) {
			t.Fatalf("%s: max = %+v", name, max)
		}
		if !tr.delete(key{freq: 3, obj: 2}) {
			t.Fatalf("%s: delete of present key failed", name)
		}
		if tr.delete(key{freq: 3, obj: 2}) {
			t.Fatalf("%s: delete of absent key succeeded", name)
		}
		if tr.size() != len(keys)-1 {
			t.Fatalf("%s: size %d after delete, want %d", name, tr.size(), len(keys)-1)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("%s after delete: %v", name, err)
		}
	}
}

func TestTreeEmptyQueries(t *testing.T) {
	for name, tr := range engines() {
		if _, ok := tr.min(); ok {
			t.Fatalf("%s: min on empty tree reported ok", name)
		}
		if _, ok := tr.max(); ok {
			t.Fatalf("%s: max on empty tree reported ok", name)
		}
		if _, ok := tr.kth(0); ok {
			t.Fatalf("%s: kth on empty tree reported ok", name)
		}
		if tr.delete(key{freq: 1, obj: 1}) {
			t.Fatalf("%s: delete on empty tree reported success", name)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestTreeKthMatchesSortedOrder(t *testing.T) {
	for name, tr := range engines() {
		rng := stream.NewRNG(42)
		var keys []key
		for i := 0; i < 500; i++ {
			k := key{freq: int64(rng.Intn(50)) - 25, obj: int32(i)}
			keys = append(keys, k)
			tr.insert(k)
		}
		sorted := append([]key(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].less(sorted[j]) })
		for i, want := range sorted {
			got, ok := tr.kth(i)
			if !ok || got != want {
				t.Fatalf("%s: kth(%d) = %+v ok=%v, want %+v", name, i, got, ok, want)
			}
		}
		if _, ok := tr.kth(len(sorted)); ok {
			t.Fatalf("%s: kth past the end reported ok", name)
		}
		if _, ok := tr.kth(-1); ok {
			t.Fatalf("%s: kth(-1) reported ok", name)
		}
	}
}

func TestTreeRandomisedAgainstSortedSlice(t *testing.T) {
	for name, tr := range engines() {
		rng := stream.NewRNG(7)
		reference := map[key]bool{}
		for step := 0; step < 4000; step++ {
			k := key{freq: int64(rng.Intn(30)), obj: int32(rng.Intn(60))}
			if reference[k] {
				if !tr.delete(k) {
					t.Fatalf("%s: step %d: delete of present key %+v failed", name, step, k)
				}
				delete(reference, k)
			} else {
				tr.insert(k)
				reference[k] = true
			}
			if step%500 == 0 {
				if err := tr.checkInvariants(); err != nil {
					t.Fatalf("%s: step %d: %v", name, step, err)
				}
			}
			if tr.size() != len(reference) {
				t.Fatalf("%s: step %d: size %d, want %d", name, step, tr.size(), len(reference))
			}
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Final order check.
		var sorted []key
		for k := range reference {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].less(sorted[j]) })
		for i, want := range sorted {
			got, ok := tr.kth(i)
			if !ok || got != want {
				t.Fatalf("%s: kth(%d) = %+v, want %+v", name, i, got, want)
			}
		}
	}
}

func TestTreeDeleteEveryElement(t *testing.T) {
	for name, tr := range engines() {
		const n = 300
		for i := 0; i < n; i++ {
			tr.insert(key{freq: int64(i % 7), obj: int32(i)})
		}
		perm := stream.NewRNG(9).Perm(n)
		for _, i := range perm {
			if !tr.delete(key{freq: int64(i % 7), obj: int32(i)}) {
				t.Fatalf("%s: delete of key for object %d failed", name, i)
			}
		}
		if tr.size() != 0 {
			t.Fatalf("%s: size %d after deleting everything", name, tr.size())
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestTreePropertyInsertDeleteMirrorsMap(t *testing.T) {
	f := func(seed uint64, rawOps uint16) bool {
		nOps := int(rawOps)%400 + 1
		rng := stream.NewRNG(seed)
		for _, tr := range engines() {
			reference := map[key]bool{}
			for i := 0; i < nOps; i++ {
				k := key{freq: int64(rng.Intn(10)), obj: int32(rng.Intn(20))}
				if reference[k] {
					if !tr.delete(k) {
						return false
					}
					delete(reference, k)
				} else {
					tr.insert(k)
					reference[k] = true
				}
			}
			if tr.size() != len(reference) {
				return false
			}
			if tr.checkInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyLess(t *testing.T) {
	a := key{freq: 1, obj: 5}
	b := key{freq: 2, obj: 1}
	c := key{freq: 1, obj: 6}
	if !a.less(b) || b.less(a) {
		t.Fatalf("frequency ordering broken")
	}
	if !a.less(c) || c.less(a) {
		t.Fatalf("object tie-break ordering broken")
	}
	if a.less(a) {
		t.Fatalf("key compares less than itself")
	}
}
