package bstprof

import "fmt"

// treap is a size-augmented randomised binary search tree. Nodes live in a
// slab indexed by int32 handles with an intrusive free list, so steady-state
// updates (delete + insert) reuse slots and do not allocate.
type treap struct {
	nodes []treapNode
	root  int32
	free  int32
	count int
	rng   uint64
}

type treapNode struct {
	k           key
	priority    uint64
	left, right int32
	size        int32
}

const nilNode int32 = -1

// newTreap returns an empty treap; hint pre-sizes the node slab.
func newTreap(hint int, seed uint64) *treap {
	if hint < 0 {
		hint = 0
	}
	return &treap{
		nodes: make([]treapNode, 0, hint),
		root:  nilNode,
		free:  nilNode,
		rng:   seed | 1,
	}
}

// nextPriority is a splitmix64 step; treap balance only needs the priorities
// to look random, not to be cryptographically strong.
func (t *treap) nextPriority() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *treap) alloc(k key) int32 {
	if t.free != nilNode {
		h := t.free
		t.free = t.nodes[h].left
		t.nodes[h] = treapNode{k: k, priority: t.nextPriority(), left: nilNode, right: nilNode, size: 1}
		return h
	}
	t.nodes = append(t.nodes, treapNode{k: k, priority: t.nextPriority(), left: nilNode, right: nilNode, size: 1})
	return int32(len(t.nodes) - 1)
}

func (t *treap) release(h int32) {
	t.nodes[h].left = t.free
	t.free = h
}

func (t *treap) sizeOf(h int32) int32 {
	if h == nilNode {
		return 0
	}
	return t.nodes[h].size
}

func (t *treap) pull(h int32) {
	n := &t.nodes[h]
	n.size = 1 + t.sizeOf(n.left) + t.sizeOf(n.right)
}

// split partitions the subtree h into keys < k and keys >= k.
func (t *treap) split(h int32, k key) (left, right int32) {
	if h == nilNode {
		return nilNode, nilNode
	}
	n := &t.nodes[h]
	if n.k.less(k) {
		l, r := t.split(n.right, k)
		n.right = l
		t.pull(h)
		return h, r
	}
	l, r := t.split(n.left, k)
	n.left = r
	t.pull(h)
	return l, h
}

// merge joins two subtrees where every key in a precedes every key in b.
func (t *treap) merge(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if t.nodes[a].priority >= t.nodes[b].priority {
		t.nodes[a].right = t.merge(t.nodes[a].right, b)
		t.pull(a)
		return a
	}
	t.nodes[b].left = t.merge(a, t.nodes[b].left)
	t.pull(b)
	return b
}

// insert implements orderedTree.
func (t *treap) insert(k key) {
	h := t.alloc(k)
	l, r := t.split(t.root, k)
	t.root = t.merge(t.merge(l, h), r)
	t.count++
}

// delete implements orderedTree.
func (t *treap) delete(k key) bool {
	var deleted bool
	t.root = t.deleteRec(t.root, k, &deleted)
	if deleted {
		t.count--
	}
	return deleted
}

func (t *treap) deleteRec(h int32, k key, deleted *bool) int32 {
	if h == nilNode {
		return nilNode
	}
	n := &t.nodes[h]
	switch {
	case k.less(n.k):
		n.left = t.deleteRec(n.left, k, deleted)
	case n.k.less(k):
		n.right = t.deleteRec(n.right, k, deleted)
	default:
		*deleted = true
		merged := t.merge(n.left, n.right)
		t.release(h)
		return merged
	}
	t.pull(h)
	return h
}

// kth implements orderedTree (0-based ascending order statistic).
func (t *treap) kth(k int) (key, bool) {
	if k < 0 || k >= t.count {
		return key{}, false
	}
	h := t.root
	for h != nilNode {
		n := &t.nodes[h]
		leftSize := int(t.sizeOf(n.left))
		switch {
		case k < leftSize:
			h = n.left
		case k == leftSize:
			return n.k, true
		default:
			k -= leftSize + 1
			h = n.right
		}
	}
	return key{}, false
}

// min implements orderedTree.
func (t *treap) min() (key, bool) {
	if t.root == nilNode {
		return key{}, false
	}
	h := t.root
	for t.nodes[h].left != nilNode {
		h = t.nodes[h].left
	}
	return t.nodes[h].k, true
}

// max implements orderedTree.
func (t *treap) max() (key, bool) {
	if t.root == nilNode {
		return key{}, false
	}
	h := t.root
	for t.nodes[h].right != nilNode {
		h = t.nodes[h].right
	}
	return t.nodes[h].k, true
}

// size implements orderedTree.
func (t *treap) size() int { return t.count }

// checkInvariants implements orderedTree: BST order, heap order on
// priorities, and size augmentation are all validated.
func (t *treap) checkInvariants() error {
	seen := 0
	var walk func(h int32, lo, hi *key) (int32, error)
	walk = func(h int32, lo, hi *key) (int32, error) {
		if h == nilNode {
			return 0, nil
		}
		seen++
		n := t.nodes[h]
		if lo != nil && n.k.less(*lo) {
			return 0, fmt.Errorf("bstprof: treap BST order violated (key below lower bound)")
		}
		if hi != nil && hi.less(n.k) {
			return 0, fmt.Errorf("bstprof: treap BST order violated (key above upper bound)")
		}
		if n.left != nilNode && t.nodes[n.left].priority > n.priority {
			return 0, fmt.Errorf("bstprof: treap heap order violated on left child")
		}
		if n.right != nilNode && t.nodes[n.right].priority > n.priority {
			return 0, fmt.Errorf("bstprof: treap heap order violated on right child")
		}
		ls, err := walk(n.left, lo, &n.k)
		if err != nil {
			return 0, err
		}
		rs, err := walk(n.right, &n.k, hi)
		if err != nil {
			return 0, err
		}
		if n.size != ls+rs+1 {
			return 0, fmt.Errorf("bstprof: treap size augmentation wrong (%d != %d+%d+1)", n.size, ls, rs)
		}
		return n.size, nil
	}
	total, err := walk(t.root, nil, nil)
	if err != nil {
		return err
	}
	if int(total) != t.count || seen != t.count {
		return fmt.Errorf("bstprof: treap count %d does not match reachable nodes %d", t.count, total)
	}
	return nil
}

var _ orderedTree = (*treap)(nil)
