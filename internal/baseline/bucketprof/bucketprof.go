// Package bucketprof is the naive reference profiler: it stores one frequency
// counter per object and answers every query by scanning all m counters.
//
// Updates are O(1) (the paper's "m buckets" observation) but every statistical
// query is O(m) — or O(m log m) for order statistics — which is exactly the
// cost the S-Profile block set removes. The implementation exists for two
// reasons:
//
//   - it is simple enough to be obviously correct, so the property-based
//     tests use it as the oracle every other profiler is checked against;
//   - it quantifies the query-time gap in the ablation benchmarks.
package bucketprof

import (
	"fmt"
	"sort"

	"sprofile/internal/core"
	"sprofile/internal/profiler"
)

// Profiler is the bucket-scan baseline. It is not safe for concurrent use.
type Profiler struct {
	freq  []int64
	total int64
}

var _ profiler.Profiler = (*Profiler)(nil)

// New returns a bucket profiler with m object slots, all at frequency zero.
func New(m int) (*Profiler, error) {
	if m < 0 {
		return nil, fmt.Errorf("bucketprof: negative capacity %d", m)
	}
	return &Profiler{freq: make([]int64, m)}, nil
}

// MustNew is New for callers with a known-good capacity; it panics on error.
func MustNew(m int) *Profiler {
	p, err := New(m)
	if err != nil {
		panic(err)
	}
	return p
}

// Cap returns the number of object slots.
func (p *Profiler) Cap() int { return len(p.freq) }

// Total returns the sum of all frequencies.
func (p *Profiler) Total() int64 { return p.total }

func (p *Profiler) checkID(x int) error {
	if x < 0 || x >= len(p.freq) {
		return fmt.Errorf("%w: id %d, capacity %d", core.ErrObjectRange, x, len(p.freq))
	}
	return nil
}

// Add applies an "add" event for object x.
func (p *Profiler) Add(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	p.freq[x]++
	p.total++
	return nil
}

// Remove applies a "remove" event for object x.
func (p *Profiler) Remove(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	p.freq[x]--
	p.total--
	return nil
}

// Count returns the current frequency of object x.
func (p *Profiler) Count(x int) (int64, error) {
	if err := p.checkID(x); err != nil {
		return 0, err
	}
	return p.freq[x], nil
}

// Mode scans all buckets and returns an object with maximum frequency, the
// frequency, and how many objects share it. Ties are broken towards the
// smallest object id; cross-implementation tests compare frequencies and tie
// counts, not the representative object, because every profiler is free to
// pick any member of the winning tie.
func (p *Profiler) Mode() (core.Entry, int, error) {
	if len(p.freq) == 0 {
		return core.Entry{}, 0, core.ErrEmptyProfile
	}
	best := 0
	count := 0
	for x, f := range p.freq {
		switch {
		case x == 0 || f > p.freq[best]:
			best = x
			count = 1
		case f == p.freq[best]:
			count++
		}
	}
	return core.Entry{Object: best, Frequency: p.freq[best]}, count, nil
}

// Min scans all buckets and returns an object with minimum frequency.
func (p *Profiler) Min() (core.Entry, int, error) {
	if len(p.freq) == 0 {
		return core.Entry{}, 0, core.ErrEmptyProfile
	}
	best := 0
	count := 0
	for x, f := range p.freq {
		switch {
		case x == 0 || f < p.freq[best]:
			best = x
			count = 1
		case f == p.freq[best]:
			count++
		}
	}
	return core.Entry{Object: best, Frequency: p.freq[best]}, count, nil
}

// KthLargest sorts a copy of the frequencies and returns the k-th largest
// (1-based). Cost O(m log m).
func (p *Profiler) KthLargest(k int) (core.Entry, error) {
	if k < 1 || k > len(p.freq) {
		return core.Entry{}, fmt.Errorf("%w: k %d, capacity %d", core.ErrBadRank, k, len(p.freq))
	}
	return p.atSortedRank(len(p.freq) - k)
}

// Median returns the lower-median entry of the frequency multiset (the entry
// at rank floor((m-1)/2) of the ascending sort).
func (p *Profiler) Median() (core.Entry, error) {
	if len(p.freq) == 0 {
		return core.Entry{}, core.ErrEmptyProfile
	}
	return p.atSortedRank((len(p.freq) - 1) / 2)
}

// atSortedRank returns the entry at 0-based rank r of the frequencies sorted
// ascending (ties broken by object id, matching how the oracle tests compare
// frequencies only).
func (p *Profiler) atSortedRank(r int) (core.Entry, error) {
	type pair struct {
		obj int
		f   int64
	}
	pairs := make([]pair, len(p.freq))
	for x, f := range p.freq {
		pairs[x] = pair{obj: x, f: f}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].f != pairs[j].f {
			return pairs[i].f < pairs[j].f
		}
		return pairs[i].obj < pairs[j].obj
	})
	return core.Entry{Object: pairs[r].obj, Frequency: pairs[r].f}, nil
}

// Frequencies returns a copy of the raw frequency array; the oracle tests use
// it to validate other profilers bucket by bucket.
func (p *Profiler) Frequencies() []int64 {
	return append([]int64(nil), p.freq...)
}

// Distribution returns the ascending frequency histogram, mirroring
// core.Profile.Distribution, in O(m log m).
func (p *Profiler) Distribution() []core.FreqCount {
	if len(p.freq) == 0 {
		return nil
	}
	sorted := append([]int64(nil), p.freq...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []core.FreqCount
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, core.FreqCount{Freq: sorted[i], Count: j - i})
		i = j
	}
	return out
}
