package bucketprof

import (
	"errors"
	"testing"

	"sprofile/internal/core"
)

func TestNewRejectsNegativeCapacity(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatalf("New(-1) succeeded")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew(-1) did not panic")
		}
	}()
	MustNew(-1)
}

func TestAddRemoveCount(t *testing.T) {
	p := MustNew(4)
	if err := p.Add(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(3); err != nil {
		t.Fatal(err)
	}
	if f, _ := p.Count(2); f != 2 {
		t.Fatalf("Count(2) = %d, want 2", f)
	}
	if f, _ := p.Count(3); f != -1 {
		t.Fatalf("Count(3) = %d, want -1", f)
	}
	if p.Total() != 1 {
		t.Fatalf("Total() = %d, want 1", p.Total())
	}
	if p.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", p.Cap())
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	p := MustNew(3)
	for _, x := range []int{-1, 3, 100} {
		if err := p.Add(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Add(%d) error = %v, want ErrObjectRange", x, err)
		}
		if err := p.Remove(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Remove(%d) error = %v, want ErrObjectRange", x, err)
		}
		if _, err := p.Count(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Count(%d) error = %v, want ErrObjectRange", x, err)
		}
	}
}

func TestModeMinTieCounts(t *testing.T) {
	p := MustNew(5)
	// freqs: [2, 2, 0, 0, 0]
	for i := 0; i < 2; i++ {
		p.Add(0)
		p.Add(1)
	}
	mode, ties, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Frequency != 2 || ties != 2 {
		t.Fatalf("Mode = %+v ties %d, want frequency 2 ties 2", mode, ties)
	}
	min, ties, err := p.Min()
	if err != nil {
		t.Fatal(err)
	}
	if min.Frequency != 0 || ties != 3 {
		t.Fatalf("Min = %+v ties %d, want frequency 0 ties 3", min, ties)
	}
}

func TestEmptyProfileQueries(t *testing.T) {
	p := MustNew(0)
	if _, _, err := p.Mode(); !errors.Is(err, core.ErrEmptyProfile) {
		t.Fatalf("Mode on empty profile: %v", err)
	}
	if _, _, err := p.Min(); !errors.Is(err, core.ErrEmptyProfile) {
		t.Fatalf("Min on empty profile: %v", err)
	}
	if _, err := p.Median(); !errors.Is(err, core.ErrEmptyProfile) {
		t.Fatalf("Median on empty profile: %v", err)
	}
	if p.Distribution() != nil {
		t.Fatalf("Distribution on empty profile is not nil")
	}
}

func TestKthLargestAndMedian(t *testing.T) {
	p := MustNew(5)
	// freqs: [5, 3, 1, 0, 0]
	for i := 0; i < 5; i++ {
		p.Add(0)
	}
	for i := 0; i < 3; i++ {
		p.Add(1)
	}
	p.Add(2)

	wantDesc := []int64{5, 3, 1, 0, 0}
	for k := 1; k <= 5; k++ {
		e, err := p.KthLargest(k)
		if err != nil {
			t.Fatal(err)
		}
		if e.Frequency != wantDesc[k-1] {
			t.Fatalf("KthLargest(%d) frequency %d, want %d", k, e.Frequency, wantDesc[k-1])
		}
	}
	med, err := p.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med.Frequency != 1 {
		t.Fatalf("Median frequency %d, want 1", med.Frequency)
	}
	if _, err := p.KthLargest(0); !errors.Is(err, core.ErrBadRank) {
		t.Fatalf("KthLargest(0) error %v, want ErrBadRank", err)
	}
	if _, err := p.KthLargest(6); !errors.Is(err, core.ErrBadRank) {
		t.Fatalf("KthLargest(6) error %v, want ErrBadRank", err)
	}
}

func TestDistribution(t *testing.T) {
	p := MustNew(4)
	p.Add(0)
	p.Add(0)
	p.Add(1)
	dist := p.Distribution()
	want := []core.FreqCount{{Freq: 0, Count: 2}, {Freq: 1, Count: 1}, {Freq: 2, Count: 1}}
	if len(dist) != len(want) {
		t.Fatalf("Distribution() = %+v, want %+v", dist, want)
	}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("Distribution()[%d] = %+v, want %+v", i, dist[i], want[i])
		}
	}
}

func TestFrequenciesCopy(t *testing.T) {
	p := MustNew(3)
	p.Add(1)
	fs := p.Frequencies()
	fs[1] = 99
	if f, _ := p.Count(1); f != 1 {
		t.Fatalf("mutating the returned slice changed internal state")
	}
}
