package fenwickprof

import (
	"errors"
	"testing"
	"testing/quick"

	"sprofile/internal/baseline/bucketprof"
	"sprofile/internal/core"
	"sprofile/internal/profiler"
	"sprofile/internal/stream"
)

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatalf("New(-1) succeeded")
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	p := MustNew(3)
	for _, x := range []int{-1, 3} {
		if err := p.Add(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Add(%d) error = %v", x, err)
		}
		if err := p.Remove(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Remove(%d) error = %v", x, err)
		}
		if _, err := p.Count(x); !errors.Is(err, core.ErrObjectRange) {
			t.Fatalf("Count(%d) error = %v", x, err)
		}
	}
}

func TestEmptyProfileQueries(t *testing.T) {
	p := MustNew(0)
	if _, _, err := p.Mode(); !errors.Is(err, core.ErrEmptyProfile) {
		t.Fatalf("Mode on empty profile: %v", err)
	}
	if _, _, err := p.Min(); !errors.Is(err, core.ErrEmptyProfile) {
		t.Fatalf("Min on empty profile: %v", err)
	}
	if _, err := p.Median(); !errors.Is(err, core.ErrEmptyProfile) {
		t.Fatalf("Median on empty profile: %v", err)
	}
}

func TestBasicCounting(t *testing.T) {
	p := MustNew(4)
	p.Add(1)
	p.Add(1)
	p.Remove(2)
	if f, _ := p.Count(1); f != 2 {
		t.Fatalf("Count(1) = %d, want 2", f)
	}
	if f, _ := p.Count(2); f != -1 {
		t.Fatalf("Count(2) = %d, want -1", f)
	}
	if p.Total() != 1 || p.Cap() != 4 {
		t.Fatalf("Total=%d Cap=%d", p.Total(), p.Cap())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestModeMinMedianTies(t *testing.T) {
	p := MustNew(5)
	// freqs: [3, 3, 1, 0, 0]
	for i := 0; i < 3; i++ {
		p.Add(0)
		p.Add(1)
	}
	p.Add(2)
	mode, ties, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Frequency != 3 || ties != 2 {
		t.Fatalf("Mode = %+v ties %d, want frequency 3 ties 2", mode, ties)
	}
	min, ties, err := p.Min()
	if err != nil {
		t.Fatal(err)
	}
	if min.Frequency != 0 || ties != 2 {
		t.Fatalf("Min = %+v ties %d, want frequency 0 ties 2", min, ties)
	}
	med, err := p.Median()
	if err != nil {
		t.Fatal(err)
	}
	if med.Frequency != 1 {
		t.Fatalf("Median frequency %d, want 1", med.Frequency)
	}
	if _, err := p.KthLargest(0); err == nil {
		t.Fatalf("KthLargest(0) succeeded")
	}
	if _, err := p.KthLargest(6); err == nil {
		t.Fatalf("KthLargest(6) succeeded")
	}
}

func TestMatchesOracleOnPaperStreams(t *testing.T) {
	for streamIdx := 1; streamIdx <= 3; streamIdx++ {
		const m = 80
		p := MustNew(m)
		oracle := bucketprof.MustNew(m)
		g, err := stream.PaperStream(streamIdx, m, uint64(streamIdx)*17)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			op := g.Next()
			if err := profiler.Apply(p, op); err != nil {
				t.Fatal(err)
			}
			if err := profiler.Apply(oracle, op); err != nil {
				t.Fatal(err)
			}
			if i%97 != 0 {
				continue
			}
			gotMode, gotTies, _ := p.Mode()
			wantMode, wantTies, _ := oracle.Mode()
			if gotMode.Frequency != wantMode.Frequency || gotTies != wantTies {
				t.Fatalf("stream%d op %d: mode (%d,%d), oracle (%d,%d)",
					streamIdx, i, gotMode.Frequency, gotTies, wantMode.Frequency, wantTies)
			}
			gotMin, _, _ := p.Min()
			wantMin, _, _ := oracle.Min()
			if gotMin.Frequency != wantMin.Frequency {
				t.Fatalf("stream%d op %d: min %d, oracle %d", streamIdx, i, gotMin.Frequency, wantMin.Frequency)
			}
			gotMed, _ := p.Median()
			wantMed, _ := oracle.Median()
			if gotMed.Frequency != wantMed.Frequency {
				t.Fatalf("stream%d op %d: median %d, oracle %d", streamIdx, i, gotMed.Frequency, wantMed.Frequency)
			}
			for _, k := range []int{1, m / 3, m} {
				gotK, err := p.KthLargest(k)
				if err != nil {
					t.Fatal(err)
				}
				wantK, err := oracle.KthLargest(k)
				if err != nil {
					t.Fatal(err)
				}
				if gotK.Frequency != wantK.Frequency {
					t.Fatalf("stream%d op %d: KthLargest(%d) %d, oracle %d",
						streamIdx, i, k, gotK.Frequency, wantK.Frequency)
				}
			}
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRangeGrowthRebuild(t *testing.T) {
	p := MustNew(2)
	initial := p.Rebuilds()
	// Push object 0's frequency well past the default indexed range.
	for i := 0; i < defaultHalfRange+10; i++ {
		if err := p.Add(0); err != nil {
			t.Fatal(err)
		}
	}
	if p.Rebuilds() <= initial {
		t.Fatalf("frequency grew past the indexed range without a rebuild")
	}
	mode, _, err := p.Mode()
	if err != nil {
		t.Fatal(err)
	}
	if mode.Object != 0 || mode.Frequency != int64(defaultHalfRange+10) {
		t.Fatalf("Mode = %+v after growth", mode)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// And the negative direction.
	for i := 0; i < defaultHalfRange+10; i++ {
		if err := p.Remove(1); err != nil {
			t.Fatal(err)
		}
	}
	min, _, err := p.Min()
	if err != nil {
		t.Fatal(err)
	}
	if min.Object != 1 || min.Frequency != -int64(defaultHalfRange+10) {
		t.Fatalf("Min = %+v after negative growth", min)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatchesOracleRandomOps(t *testing.T) {
	f := func(seed uint64, rawM uint8, rawN uint16) bool {
		m := int(rawM)%40 + 1
		n := int(rawN) % 600
		rng := stream.NewRNG(seed)
		p := MustNew(m)
		oracle := bucketprof.MustNew(m)
		for i := 0; i < n; i++ {
			x := rng.Intn(m)
			var op core.Tuple
			if rng.Bernoulli(0.55) {
				op = core.Tuple{Object: x, Action: core.ActionAdd}
			} else {
				op = core.Tuple{Object: x, Action: core.ActionRemove}
			}
			if profiler.Apply(p, op) != nil || profiler.Apply(oracle, op) != nil {
				return false
			}
		}
		if p.CheckInvariants() != nil {
			return false
		}
		gotMode, _, e1 := p.Mode()
		wantMode, _, e2 := oracle.Mode()
		gotMed, e3 := p.Median()
		wantMed, e4 := oracle.Median()
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			return false
		}
		return gotMode.Frequency == wantMode.Frequency && gotMed.Frequency == wantMed.Frequency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
