// Package fenwickprof is an extension baseline that indexes the frequency
// domain with a Fenwick tree (binary indexed tree).
//
// Where the balanced-tree baseline keys a tree on (frequency, object) pairs,
// this profiler counts how many objects currently hold each frequency value
// and stores those counters in a Fenwick tree, so the k-th order statistic of
// the frequency multiset is found by a single O(log F) descent, where F is
// the width of the frequency range seen so far. A per-frequency bucket of
// member objects provides a representative object for each answer in O(1).
//
// Updates are O(log F): two point updates on the Fenwick tree plus O(1)
// bucket bookkeeping. The structure therefore sits between the balanced tree
// (O(log m) per update, no dependence on the frequency range) and S-Profile
// (O(1) per update): the ablation benchmark BenchmarkAblationFenwick shows
// how close an O(log F) structure can get to the paper's O(1) bound when the
// frequency range stays small, and how it degrades when frequencies grow.
package fenwickprof

import (
	"fmt"

	"sprofile/internal/core"
	"sprofile/internal/profiler"
)

// defaultHalfRange is the initial one-sided width of the indexed frequency
// range [-defaultHalfRange, +defaultHalfRange]; the profiler regrows (and
// rebuilds in O(F + m)) whenever a frequency steps outside the current range.
const defaultHalfRange = 1 << 10

// Profiler is the Fenwick-tree-over-frequencies baseline. It is not safe for
// concurrent use.
type Profiler struct {
	freq []int64

	// offset maps a frequency f to the Fenwick index f+offset+1 (1-based).
	offset    int64
	halfRange int64
	bit       []int32 // Fenwick tree over frequency counts

	// buckets[f] lists the objects currently at frequency f; posInBucket[x]
	// is x's index inside its bucket so that removal is O(1) by swapping
	// with the last member.
	buckets     map[int64][]int32
	posInBucket []int32

	total    int64
	rebuilds int
}

var _ profiler.Profiler = (*Profiler)(nil)

// New returns a Fenwick profiler with m object slots, all at frequency zero.
func New(m int) (*Profiler, error) {
	if m < 0 || m > core.MaxCapacity {
		return nil, fmt.Errorf("fenwickprof: invalid capacity %d", m)
	}
	p := &Profiler{
		freq:        make([]int64, m),
		buckets:     make(map[int64][]int32),
		posInBucket: make([]int32, m),
	}
	if m > 0 {
		zero := make([]int32, m)
		for x := 0; x < m; x++ {
			zero[x] = int32(x)
			p.posInBucket[x] = int32(x)
		}
		p.buckets[0] = zero
	}
	p.rebuild(defaultHalfRange)
	return p, nil
}

// MustNew is New for callers with a known-good capacity; it panics on error.
func MustNew(m int) *Profiler {
	p, err := New(m)
	if err != nil {
		panic(err)
	}
	return p
}

// rebuild resizes the indexed frequency range to [-halfRange, +halfRange] and
// re-inserts every object's current frequency.
func (p *Profiler) rebuild(halfRange int64) {
	p.halfRange = halfRange
	p.offset = halfRange
	p.bit = make([]int32, 2*halfRange+2)
	for _, f := range p.freq {
		p.bitAdd(f, 1)
	}
	p.rebuilds++
}

// Rebuilds returns how many times the frequency range had to be regrown.
func (p *Profiler) Rebuilds() int { return p.rebuilds }

// bitIndex converts a frequency value to its 1-based Fenwick index.
func (p *Profiler) bitIndex(f int64) int { return int(f + p.offset + 1) }

// bitAdd adds delta to the count of frequency f.
func (p *Profiler) bitAdd(f int64, delta int32) {
	for i := p.bitIndex(f); i < len(p.bit); i += i & (-i) {
		p.bit[i] += delta
	}
}

// bitSelect returns the smallest frequency f such that the number of objects
// with frequency <= f is at least k (1-based k).
func (p *Profiler) bitSelect(k int32) int64 {
	idx := 0
	// highest power of two not exceeding len(bit)-1
	step := 1
	for step<<1 < len(p.bit) {
		step <<= 1
	}
	for ; step > 0; step >>= 1 {
		next := idx + step
		if next < len(p.bit) && p.bit[next] < k {
			idx = next
			k -= p.bit[next]
		}
	}
	return int64(idx+1) - p.offset - 1
}

func (p *Profiler) checkID(x int) error {
	if x < 0 || x >= len(p.freq) {
		return fmt.Errorf("%w: id %d, capacity %d", core.ErrObjectRange, x, len(p.freq))
	}
	return nil
}

// bucketRemove takes object x out of the bucket for frequency f.
func (p *Profiler) bucketRemove(x int32, f int64) {
	b := p.buckets[f]
	i := p.posInBucket[x]
	last := int32(len(b) - 1)
	if i != last {
		moved := b[last]
		b[i] = moved
		p.posInBucket[moved] = i
	}
	b = b[:last]
	if len(b) == 0 {
		delete(p.buckets, f)
	} else {
		p.buckets[f] = b
	}
}

// bucketAdd puts object x into the bucket for frequency f.
func (p *Profiler) bucketAdd(x int32, f int64) {
	b := p.buckets[f]
	p.posInBucket[x] = int32(len(b))
	p.buckets[f] = append(b, x)
}

// update changes the frequency of object x by delta.
func (p *Profiler) update(x int, delta int64) {
	old := p.freq[x]
	next := old + delta
	if next > p.halfRange || next < -p.halfRange {
		grown := p.halfRange * 2
		for next > grown || next < -grown {
			grown *= 2
		}
		p.rebuild(grown)
	}
	p.bitAdd(old, -1)
	p.bitAdd(next, 1)
	p.bucketRemove(int32(x), old)
	p.bucketAdd(int32(x), next)
	p.freq[x] = next
	p.total += delta
}

// Add applies an "add" event for object x.
func (p *Profiler) Add(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	p.update(x, 1)
	return nil
}

// Remove applies a "remove" event for object x.
func (p *Profiler) Remove(x int) error {
	if err := p.checkID(x); err != nil {
		return err
	}
	p.update(x, -1)
	return nil
}

// Count returns the current frequency of object x.
func (p *Profiler) Count(x int) (int64, error) {
	if err := p.checkID(x); err != nil {
		return 0, err
	}
	return p.freq[x], nil
}

// Cap returns the number of object slots.
func (p *Profiler) Cap() int { return len(p.freq) }

// Total returns the sum of all frequencies.
func (p *Profiler) Total() int64 { return p.total }

// entryAtAscRank returns the entry holding the k-th smallest frequency
// (1-based).
func (p *Profiler) entryAtAscRank(k int) (core.Entry, int, error) {
	if len(p.freq) == 0 {
		return core.Entry{}, 0, core.ErrEmptyProfile
	}
	if k < 1 || k > len(p.freq) {
		return core.Entry{}, 0, fmt.Errorf("%w: k %d, capacity %d", core.ErrBadRank, k, len(p.freq))
	}
	f := p.bitSelect(int32(k))
	members := p.buckets[f]
	if len(members) == 0 {
		return core.Entry{}, 0, fmt.Errorf("fenwickprof: internal error: empty bucket for frequency %d", f)
	}
	return core.Entry{Object: int(members[0]), Frequency: f}, len(members), nil
}

// Mode returns an object with maximum frequency, that frequency, and how many
// objects share it.
func (p *Profiler) Mode() (core.Entry, int, error) {
	return p.entryAtAscRank(len(p.freq))
}

// Min returns an object with minimum frequency, that frequency, and how many
// objects share it.
func (p *Profiler) Min() (core.Entry, int, error) {
	return p.entryAtAscRank(1)
}

// KthLargest returns an object holding the k-th largest frequency (1-based).
func (p *Profiler) KthLargest(k int) (core.Entry, error) {
	e, _, err := p.entryAtAscRank(len(p.freq) - k + 1)
	return e, err
}

// Median returns the lower-median entry of the frequency multiset, matching
// core.Profile.Median.
func (p *Profiler) Median() (core.Entry, error) {
	e, _, err := p.entryAtAscRank((len(p.freq)-1)/2 + 1)
	return e, err
}

// CheckInvariants validates the Fenwick counters and the bucket index against
// the raw frequency array; tests call it after randomised operation
// sequences.
func (p *Profiler) CheckInvariants() error {
	var total int64
	counts := make(map[int64]int)
	for _, f := range p.freq {
		total += f
		counts[f]++
	}
	if total != p.total {
		return fmt.Errorf("fenwickprof: total %d does not match frequency sum %d", p.total, total)
	}
	for f, want := range counts {
		if got := len(p.buckets[f]); got != want {
			return fmt.Errorf("fenwickprof: bucket for frequency %d holds %d objects, want %d", f, got, want)
		}
	}
	for f, members := range p.buckets {
		for i, x := range members {
			if p.freq[x] != f {
				return fmt.Errorf("fenwickprof: object %d in bucket %d has frequency %d", x, f, p.freq[x])
			}
			if p.posInBucket[x] != int32(i) {
				return fmt.Errorf("fenwickprof: object %d bucket position %d, want %d", x, p.posInBucket[x], i)
			}
		}
	}
	// Validate the Fenwick tree by checking a select for every distinct rank
	// boundary.
	if len(p.freq) > 0 {
		if got, want := p.prefixCount(p.halfRange), int32(len(p.freq)); got != want {
			return fmt.Errorf("fenwickprof: BIT total %d, want %d", got, want)
		}
	}
	return nil
}

// prefixCount returns the number of objects with frequency <= f.
func (p *Profiler) prefixCount(f int64) int32 {
	var s int32
	for i := p.bitIndex(f); i > 0; i -= i & (-i) {
		s += p.bit[i]
	}
	return s
}
