package failpoint

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		spec    string
		want    Policy
		wantErr bool
	}{
		{spec: "error(enospc)", want: Policy{Kind: KindError, Err: syscall.ENOSPC}},
		{spec: "error(eio)", want: Policy{Kind: KindError, Err: syscall.EIO}},
		{spec: "error()", want: Policy{Kind: KindError, Err: syscall.EIO}},
		{spec: "delay(50ms)", want: Policy{Kind: KindDelay, Delay: 50 * time.Millisecond}},
		{spec: "torn", want: Policy{Kind: KindTorn, Err: syscall.EIO}},
		{spec: "http(503)", want: Policy{Kind: KindHTTP, Code: 503}},
		{spec: "drop", want: Policy{Kind: KindDrop, Err: syscall.ECONNRESET}},
		{spec: "panic", want: Policy{Kind: KindPanic}},
		{spec: "error(enospc):count=3:skip=2", want: Policy{Kind: KindError, Err: syscall.ENOSPC, Count: 3, Skip: 2}},
		{spec: "error(eio):p=0.5", want: Policy{Kind: KindError, Err: syscall.EIO, P: 0.5}},
		{spec: "bogus", wantErr: true},
		{spec: "delay(xyz)", wantErr: true},
		{spec: "http(9999)", wantErr: true},
		{spec: "error(eio):count=0", wantErr: true},
		{spec: "error(eio):p=1.5", wantErr: true},
		{spec: "error(eio):nonsense", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParsePolicy(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePolicy(%q): want error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.spec, err)
			continue
		}
		if got.Kind != tc.want.Kind || got.Delay != tc.want.Delay || got.Code != tc.want.Code ||
			got.Count != tc.want.Count || got.Skip != tc.want.Skip || got.P != tc.want.P {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		if tc.want.Err != nil && !errors.Is(got.Err, tc.want.Err) {
			t.Errorf("ParsePolicy(%q).Err = %v, want %v", tc.spec, got.Err, tc.want.Err)
		}
	}
}

func TestInjectDisabledIsNil(t *testing.T) {
	DisableAll()
	if err := Inject("never.armed"); err != nil {
		t.Fatalf("unarmed Inject returned %v", err)
	}
	if Active() {
		t.Fatal("Active() true with no sites armed")
	}
}

func TestErrorInjectionAndCount(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("t.site", "error(enospc):count=2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Inject("t.site"); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("trigger %d: got %v, want ENOSPC", i, err)
		}
	}
	// Exhausting count disarms the site entirely.
	if err := Inject("t.site"); err != nil {
		t.Fatalf("after count exhausted: got %v, want nil", err)
	}
	if Active() {
		t.Fatal("site should have self-disarmed after count")
	}
}

func TestSkipModifier(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("t.skip", "error(eio):skip=3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Inject("t.skip"); err != nil {
			t.Fatalf("eval %d should have been skipped, got %v", i, err)
		}
	}
	if err := Inject("t.skip"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("post-skip eval: got %v, want EIO", err)
	}
}

func TestInjectWriteTorn(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("t.torn", "torn:count=1"); err != nil {
		t.Fatal(err)
	}
	n, err := InjectWrite("t.torn", 100)
	if n != 50 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write: n=%d err=%v, want n=50 err=EIO", n, err)
	}
	n, err = InjectWrite("t.torn", 100)
	if n != 100 || err != nil {
		t.Fatalf("after count: n=%d err=%v, want full write", n, err)
	}
}

func TestListAndTriggeredTotal(t *testing.T) {
	t.Cleanup(DisableAll)
	before := TriggeredTotal()
	Enable("a.site", "error(eio)")
	Enable("b.site", "error(eio)")
	Inject("a.site")
	Inject("a.site")
	Inject("b.site")
	st := List()
	if len(st) != 2 || st[0].Site != "a.site" || st[0].Triggered != 2 || st[1].Site != "b.site" || st[1].Triggered != 1 {
		t.Fatalf("List() = %+v", st)
	}
	if got := TriggeredTotal() - before; got != 3 {
		t.Fatalf("TriggeredTotal() grew by %d, want 3", got)
	}
	// The total is cumulative: disarming forgets per-site counts but not the
	// process-wide volume.
	DisableAll()
	if got := TriggeredTotal() - before; got != 3 {
		t.Fatalf("TriggeredTotal() after disarm grew by %d, want 3", got)
	}
}

func TestParseEnv(t *testing.T) {
	t.Cleanup(DisableAll)
	err := ParseEnv("a.env=error(enospc); b.env=delay(1ms) ;;bad-entry;c.env=bogus")
	if err == nil {
		t.Fatal("want error for malformed entries")
	}
	// Valid entries still armed despite the invalid ones.
	if err := Inject("a.env"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("a.env not armed: %v", err)
	}
	if err := Inject("b.env"); err != nil {
		t.Fatalf("b.env delay should not error: %v", err)
	}
}

func TestPanicPolicy(t *testing.T) {
	t.Cleanup(DisableAll)
	Enable("t.panic", "panic")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Inject("t.panic")
}

func TestTransportHTTPAndDrop(t *testing.T) {
	t.Cleanup(DisableAll)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real body")
	}))
	defer srv.Close()

	hc := &http.Client{Transport: RoundTripper("t.rt", nil)}

	// Unarmed: passes through.
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real body" {
		t.Fatalf("passthrough body = %q", body)
	}

	// http(503): synthesized locally.
	Enable("t.rt", "http(503):count=1")
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("synthesized status = %d, want 503", resp.StatusCode)
	}

	// drop: connection-level error.
	Enable("t.rt", "drop:count=1")
	if _, err = hc.Get(srv.URL); err == nil {
		t.Fatal("drop policy: want transport error")
	}
}

func TestTransportTornBody(t *testing.T) {
	t.Cleanup(DisableAll)
	payload := strings.Repeat("x", 1024)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	hc := &http.Client{Transport: RoundTripper("t.torn.rt", nil)}
	Enable("t.torn.rt", "torn:count=1")
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn body read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(body) >= len(payload) {
		t.Fatalf("torn body delivered %d bytes of %d — not truncated", len(body), len(payload))
	}
}

// BenchmarkInjectDisabled pins the acceptance criterion that an unarmed site
// costs no more than one atomic load: the loop body must not allocate and
// must stay in the single-nanosecond range.
func BenchmarkInjectDisabled(b *testing.B) {
	DisableAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject("bench.site"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInjectWriteDisabled(b *testing.B) {
	DisableAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if n, err := InjectWrite("bench.site", 4096); n != 4096 || err != nil {
			b.Fatal(n, err)
		}
	}
}
