package failpoint

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport wraps an http.RoundTripper with injection at a named site, the
// seam the replication follower and the client SDK run their requests
// through. Policies map onto transport behaviour:
//
//	error(...)   the round trip fails with the injected error (a drop
//	             after the request may already have been sent — the
//	             "ack lost" case clients must reason about)
//	drop         same, with ECONNRESET specifically
//	delay(d)     the request is held for d, then forwarded
//	http(code)   a response with the given status is synthesized locally;
//	             the request never reaches the wire (5xx bursts)
//	torn         the request is forwarded but the response body is
//	             truncated halfway (a torn body)
//	panic        panics
type Transport struct {
	Site string
	Base http.RoundTripper
}

// RoundTripper wraps base (or http.DefaultTransport when nil) with injection
// at site.
func RoundTripper(site string, base http.RoundTripper) *Transport {
	return &Transport{Site: site, Base: base}
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if armed.Load() == 0 {
		return t.base().RoundTrip(req)
	}
	pol, ok := eval(t.Site)
	if !ok {
		return t.base().RoundTrip(req)
	}
	switch pol.Kind {
	case KindDelay:
		timer := time.NewTimer(pol.Delay)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-timer.C:
		}
		return t.base().RoundTrip(req)
	case KindHTTP:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			StatusCode: pol.Code,
			Status:     fmt.Sprintf("%d failpoint", pol.Code),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"injected","code":"failpoint"}`)),
			Request: req,
		}, nil
	case KindTorn:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &tornBody{rc: resp.Body, remaining: tornBudget(resp.ContentLength)}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	case KindPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s", t.Site))
	default:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, pol.Err
	}
}

// tornBudget picks how many response-body bytes survive a torn policy: half
// the declared length, or a small fixed prefix when the length is unknown.
func tornBudget(contentLength int64) int64 {
	if contentLength > 0 {
		return contentLength / 2
	}
	return 64
}

// tornBody forwards up to remaining bytes, then fails with an unexpected-EOF
// style transport error — the reader sees a connection that died mid-body.
type tornBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF && b.remaining <= 0 {
		// The truncation point coincided with the real end; still report
		// the tear so the caller exercises its torn-body handling.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }
