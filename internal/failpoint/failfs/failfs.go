// Package failfs wraps *os.File behind failpoint injection sites so the WAL
// and checkpoint layers can have disk faults — fsync errors, ENOSPC, short
// (torn) writes, slow I/O — injected without touching a real flaky disk.
//
// Every wrapper carries a site prefix; operations evaluate derived sites:
//
//	<prefix>.open    OpenFile / Create
//	<prefix>.write   Write / WriteAt
//	<prefix>.sync    Sync
//
// When no failpoint is armed the wrappers cost one atomic load per call and
// delegate straight to the os package.
package failfs

import (
	"io/fs"
	"os"

	"sprofile/internal/failpoint"
)

// File is the subset of *os.File the WAL and checkpoint layers use. Both a
// raw *os.File and the failpoint-injecting wrapper satisfy it.
type File interface {
	Read(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Write(p []byte) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Close() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
	Name() string
}

// file wraps an *os.File with injection at the prefix-derived sites.
type file struct {
	*os.File
	writeSite string
	syncSite  string
}

// OpenFile is os.OpenFile with injection at <prefix>.open, returning a File
// whose writes and syncs evaluate <prefix>.write and <prefix>.sync.
func OpenFile(prefix, name string, flag int, perm os.FileMode) (File, error) {
	if err := failpoint.Inject(prefix + ".open"); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return Wrap(prefix, f), nil
}

// Wrap places an already-open *os.File behind <prefix>.write / <prefix>.sync
// injection.
func Wrap(prefix string, f *os.File) File {
	return &file{File: f, writeSite: prefix + ".write", syncSite: prefix + ".sync"}
}

func (f *file) Write(p []byte) (int, error) {
	n, inj := failpoint.InjectWrite(f.writeSite, len(p))
	if inj != nil {
		// A torn write persists the surviving prefix for real before the
		// error surfaces, so the bytes on disk look like a crashed write.
		written := 0
		if n > 0 {
			written, _ = f.File.Write(p[:n])
		}
		return written, &os.PathError{Op: "write", Path: f.File.Name(), Err: inj}
	}
	return f.File.Write(p)
}

func (f *file) Sync() error {
	if err := failpoint.Inject(f.syncSite); err != nil {
		return &os.PathError{Op: "sync", Path: f.File.Name(), Err: err}
	}
	return f.File.Sync()
}
