// Package failpoint is the fault-injection registry behind sprofile's
// robustness testing: named injection sites threaded through every I/O layer
// (WAL appends and fsyncs, checkpoint snapshot writes, replication fetches,
// client requests) that normally do nothing, but can be armed at runtime
// with a policy — return an error, inject ENOSPC, delay, tear a write,
// synthesize an HTTP failure, or panic — for a bounded number of triggers.
//
// The cardinal constraint is zero overhead when disabled: an unarmed
// process pays ONE atomic load per site evaluation (the global armed
// counter), no map lookup, no allocation, no lock. Production binaries keep
// the sites compiled in; they are inert until armed.
//
// Arming happens three ways:
//
//   - tests call Enable/Disable directly;
//   - the SPROFILE_FAILPOINTS environment variable arms sites at process
//     start ("wal.sync=error(enospc):count=3;replication.fetch=delay(50ms)");
//   - debug builds of the server expose POST /v1/admin/failpoint (guarded by
//     an explicit opt-in flag; see internal/server).
//
// Policy spec grammar (the string form used by env and HTTP activation):
//
//	spec     = kind [ ":" modifier ]...
//	kind     = "error(" reason ")"      reason: enospc | eio | free text
//	         | "delay(" duration ")"    e.g. delay(50ms)
//	         | "torn"                   short write: half the bytes, then EIO
//	         | "http(" status ")"       RoundTripper sites: synthesized answer
//	         | "drop"                   RoundTripper sites: connection error
//	         | "panic"
//	modifier = "count=" n               trigger at most n times, then disarm
//	         | "skip=" n                pass the first n evaluations through
//	         | "p=" float               trigger with this probability
//
// Every trigger increments the sprofile_failpoint_triggered_total{site}
// metric family, so a chaos run can assert how many faults were actually
// injected.
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"sprofile/internal/metrics"
)

// Kind enumerates what an armed site does when it triggers.
type Kind int

const (
	// KindError makes the site return its configured error.
	KindError Kind = iota
	// KindDelay makes the site sleep, then proceed normally.
	KindDelay
	// KindTorn makes a write site persist only a prefix of the buffer and
	// then fail with EIO — a torn write. Non-write sites treat it as EIO.
	KindTorn
	// KindHTTP makes a RoundTripper site synthesize a response with the
	// configured status code instead of forwarding the request.
	KindHTTP
	// KindDrop makes a RoundTripper site fail with a connection error
	// without sending anything. Non-transport sites treat it as ECONNRESET.
	KindDrop
	// KindPanic makes the site panic — the hammer for testing the
	// panic-recovery middleware and crash paths.
	KindPanic
)

// Policy is one armed site's behaviour.
type Policy struct {
	Kind  Kind
	Err   error         // KindError: the injected error
	Delay time.Duration // KindDelay: how long to sleep
	Code  int           // KindHTTP: synthesized status code

	// Skip passes the first Skip evaluations through untriggered.
	Skip int64
	// Count disarms the site after this many triggers (0 = unlimited).
	Count int64
	// P triggers with this probability per evaluation (0 or 1 = always).
	P float64
}

// site is one armed site's live state.
type site struct {
	pol       Policy
	evals     atomic.Int64 // evaluations since arming (for Skip)
	triggered atomic.Int64 // triggers since arming (for Count)
	rng       *rand.Rand   // non-nil only with P in (0,1)
	rngMu     sync.Mutex
}

var (
	// armed counts armed sites; the disabled fast path is one load of it.
	armed atomic.Int64

	mu    sync.Mutex
	sites sync.Map // site name → *site

	// triggered counts every injected fault process-wide; unlike the
	// per-site counts it survives disarming, so a chaos run can assert its
	// total fault volume after clearing the schedule.
	triggered atomic.Int64

	mTriggered = metrics.Default().CounterVec("sprofile_failpoint_triggered_total",
		"Faults injected, by failpoint site.", "site")
)

// Active reports whether any site is armed. Wrappers on hot paths use it to
// skip per-call bookkeeping entirely; it is the same single atomic load
// Inject's fast path performs.
func Active() bool { return armed.Load() > 0 }

// ErrInjected is the base of free-text injected errors, so tests can assert
// errors.Is(err, failpoint.ErrInjected) without matching message strings.
var ErrInjected = errors.New("failpoint: injected fault")

// injectedError tags a free-text injection under ErrInjected.
type injectedError struct{ msg string }

func (e *injectedError) Error() string { return e.msg }
func (e *injectedError) Unwrap() error { return ErrInjected }

// ParsePolicy parses the spec grammar documented on the package.
func ParsePolicy(spec string) (Policy, error) {
	parts := strings.Split(spec, ":")
	var p Policy
	kind := strings.TrimSpace(parts[0])
	arg := ""
	if i := strings.IndexByte(kind, '('); i >= 0 {
		if !strings.HasSuffix(kind, ")") {
			return p, fmt.Errorf("failpoint: malformed kind %q", kind)
		}
		arg = kind[i+1 : len(kind)-1]
		kind = kind[:i]
	}
	switch kind {
	case "error":
		p.Kind = KindError
		switch strings.ToLower(arg) {
		case "", "eio":
			p.Err = syscall.EIO
		case "enospc":
			p.Err = syscall.ENOSPC
		default:
			p.Err = &injectedError{msg: "failpoint: " + arg}
		}
	case "delay":
		p.Kind = KindDelay
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return p, fmt.Errorf("failpoint: delay needs a duration, got %q", arg)
		}
		p.Delay = d
	case "torn":
		p.Kind = KindTorn
		p.Err = syscall.EIO
	case "http":
		p.Kind = KindHTTP
		code, err := strconv.Atoi(arg)
		if err != nil || code < 100 || code > 599 {
			return p, fmt.Errorf("failpoint: http needs a status code, got %q", arg)
		}
		p.Code = code
	case "drop":
		p.Kind = KindDrop
		p.Err = syscall.ECONNRESET
	case "panic":
		p.Kind = KindPanic
	default:
		return p, fmt.Errorf("failpoint: unknown kind %q", kind)
	}
	for _, mod := range parts[1:] {
		k, v, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return p, fmt.Errorf("failpoint: malformed modifier %q", mod)
		}
		switch k {
		case "count":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("failpoint: count needs a positive integer, got %q", v)
			}
			p.Count = n
		case "skip":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return p, fmt.Errorf("failpoint: skip needs a non-negative integer, got %q", v)
			}
			p.Skip = n
		case "p":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("failpoint: p needs a probability in [0,1], got %q", v)
			}
			p.P = f
		default:
			return p, fmt.Errorf("failpoint: unknown modifier %q", k)
		}
	}
	return p, nil
}

// Enable arms name with the parsed spec, replacing any previous policy.
func Enable(name, spec string) error {
	pol, err := ParsePolicy(spec)
	if err != nil {
		return err
	}
	EnablePolicy(name, pol)
	return nil
}

// EnablePolicy arms name with pol, replacing any previous policy.
func EnablePolicy(name string, pol Policy) {
	s := &site{pol: pol}
	if pol.P > 0 && pol.P < 1 {
		s.rng = rand.New(rand.NewSource(rand.Int63()))
	}
	mu.Lock()
	_, existed := sites.Load(name)
	sites.Store(name, s)
	if !existed {
		armed.Add(1)
	}
	mu.Unlock()
}

// Disable disarms name; disarming an unarmed site is a no-op.
func Disable(name string) {
	mu.Lock()
	if _, existed := sites.Load(name); existed {
		sites.Delete(name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// DisableAll disarms every site. Tests call it in cleanup so one test's
// faults never leak into the next.
func DisableAll() {
	mu.Lock()
	sites.Range(func(k, _ any) bool {
		sites.Delete(k)
		armed.Add(-1)
		return true
	})
	mu.Unlock()
}

// List returns the armed sites and how often each has triggered, sorted by
// name — the document behind GET /v1/admin/failpoint.
func List() []Status {
	var out []Status
	sites.Range(func(k, v any) bool {
		s := v.(*site)
		out = append(out, Status{Site: k.(string), Triggered: s.triggered.Load()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Status describes one armed site.
type Status struct {
	Site      string `json:"site"`
	Triggered int64  `json:"triggered"`
}

// TriggeredTotal returns how many faults this process has injected across
// all sites since it started, including sites since disarmed. The chaos
// harness snapshots it around a fault schedule to assert a minimum injected
// volume; per-site counts (which reset on disarm) are in List.
func TriggeredTotal() int64 { return triggered.Load() }

// eval resolves whether site name triggers right now and with what policy.
// The caller has already checked armed > 0.
func eval(name string) (Policy, bool) {
	v, ok := sites.Load(name)
	if !ok {
		return Policy{}, false
	}
	s := v.(*site)
	if s.evals.Add(1) <= s.pol.Skip {
		return Policy{}, false
	}
	if s.rng != nil {
		s.rngMu.Lock()
		miss := s.rng.Float64() >= s.pol.P
		s.rngMu.Unlock()
		if miss {
			return Policy{}, false
		}
	}
	if s.pol.Count > 0 {
		if s.triggered.Add(1) > s.pol.Count {
			Disable(name)
			return Policy{}, false
		}
	} else {
		s.triggered.Add(1)
	}
	triggered.Add(1)
	mTriggered.With(name).Inc()
	return s.pol, true
}

// Inject evaluates site name: nil when unarmed (the common case — one atomic
// load), otherwise the armed policy's error after any configured delay.
// KindTorn and KindDrop surface as their errors here; write paths that can
// honour torn semantics properly use InjectWrite instead.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	pol, ok := eval(name)
	if !ok {
		return nil
	}
	switch pol.Kind {
	case KindDelay:
		time.Sleep(pol.Delay)
		return nil
	case KindHTTP:
		return &injectedError{msg: fmt.Sprintf("failpoint: injected http %d", pol.Code)}
	case KindPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s", name))
	default:
		return pol.Err
	}
}

// InjectWrite evaluates a write site against a buffer of n bytes. It returns
// how many bytes the caller should actually hand to the real write (n when
// untriggered) and the error to report afterwards. A torn policy keeps a
// prefix — half the buffer — so the stream ends mid-record exactly as a
// crashed disk would leave it.
func InjectWrite(name string, n int) (int, error) {
	if armed.Load() == 0 {
		return n, nil
	}
	pol, ok := eval(name)
	if !ok {
		return n, nil
	}
	switch pol.Kind {
	case KindDelay:
		time.Sleep(pol.Delay)
		return n, nil
	case KindTorn:
		return n / 2, pol.Err
	case KindPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %s", name))
	case KindHTTP:
		return 0, &injectedError{msg: fmt.Sprintf("failpoint: injected http %d", pol.Code)}
	default:
		return 0, pol.Err
	}
}

// EnvVar names the environment variable arming failpoints at process start.
const EnvVar = "SPROFILE_FAILPOINTS"

// ParseEnv arms every site of a semicolon-separated env specification
// ("site=spec;site=spec"). Unparseable entries are returned as one error
// after the valid ones are armed.
func ParseEnv(env string) error {
	var errs []error
	for _, entry := range strings.Split(env, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			errs = append(errs, fmt.Errorf("failpoint: malformed entry %q", entry))
			continue
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
