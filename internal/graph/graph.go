// Package graph implements the §2.3 application of the paper: heuristic
// "shaving" (greedy peeling) of a large graph, where the critical inner-loop
// operation is repeatedly finding a node of minimum degree while degrees
// decrease by one as neighbours are shaved away.
//
// Degrees only ever change by one per step, which is exactly the ±1 update
// pattern S-Profile exploits, so the peeling driver can be backed by an
// S-Profile tracker with O(1) work per degree change. The package also
// provides a lazy min-heap tracker and a classic bucket-queue tracker so the
// BenchmarkGraphShaving ablation can compare them; all three produce the same
// peeling order semantics (any minimum-degree node may be chosen at each
// step) and identical density sequences on the same tie-breaking rule.
//
// The densest-subgraph use is the FRAUDAR/greedy-peeling pattern: peel nodes
// one by one, always a currently-minimum-degree node, and remember the prefix
// whose remaining subgraph maximises average degree. That greedy is the
// classic 2-approximation to the densest subgraph.
package graph

import (
	"errors"
	"fmt"
)

// ErrNodeRange is returned when a node id lies outside [0, n).
var ErrNodeRange = errors.New("graph: node id out of range")

// ErrSelfLoop is returned by AddEdge when both endpoints are the same node.
var ErrSelfLoop = errors.New("graph: self loops are not supported")

// Graph is a simple undirected multigraph over nodes 0..n-1, stored as
// adjacency lists. It is not safe for concurrent mutation.
type Graph struct {
	n     int
	adj   [][]int32
	edges int
}

// NewGraph returns an empty graph over n nodes.
func NewGraph(n int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	return &Graph{n: n, adj: make([][]int32, n)}, nil
}

// MustNewGraph is NewGraph for callers with a known-good size; it panics on
// error.
func MustNewGraph(n int) *Graph {
	g, err := NewGraph(n)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges added so far.
func (g *Graph) NumEdges() int { return g.edges }

// checkNode validates a node id.
func (g *Graph) checkNode(v int) error {
	if v < 0 || v >= g.n {
		return fmt.Errorf("%w: %d (n=%d)", ErrNodeRange, v, g.n)
	}
	return nil
}

// AddEdge adds an undirected edge between u and v. Parallel edges are
// allowed (they model repeated interactions, e.g. multiple reviews by the
// same account); self loops are rejected.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.checkNode(u); err != nil {
		return err
	}
	if err := g.checkNode(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges++
	return nil
}

// Degree returns the degree of node v (counting parallel edges).
func (g *Graph) Degree(v int) (int, error) {
	if err := g.checkNode(v); err != nil {
		return 0, err
	}
	return len(g.adj[v]), nil
}

// Degrees returns the degree of every node.
func (g *Graph) Degrees() []int64 {
	out := make([]int64, g.n)
	for v := range g.adj {
		out[v] = int64(len(g.adj[v]))
	}
	return out
}

// Neighbors returns the adjacency list of v; the slice is shared with the
// graph and must not be modified.
func (g *Graph) Neighbors(v int) ([]int32, error) {
	if err := g.checkNode(v); err != nil {
		return nil, err
	}
	return g.adj[v], nil
}
