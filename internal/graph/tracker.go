package graph

import (
	"fmt"

	"sprofile/internal/core"
)

// Engine selects the data structure driving the minimum-degree queries of the
// peeling loop.
type Engine int

const (
	// EngineSProfile tracks degrees with the S-Profile block set: O(1) per
	// degree change and O(1) per extract-min.
	EngineSProfile Engine = iota
	// EngineHeap tracks degrees with a lazy binary min-heap: O(log n) per
	// degree change (a stale entry is left behind and skipped later).
	EngineHeap
	// EngineBucket tracks degrees with the classic bucket queue used by
	// textbook k-core peeling: O(1) amortised per change, but it needs the
	// maximum degree up front and a monotonically advancing minimum pointer.
	EngineBucket
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineSProfile:
		return "s-profile"
	case EngineHeap:
		return "heap"
	case EngineBucket:
		return "bucket"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Engines lists every available peeling engine.
func Engines() []Engine { return []Engine{EngineSProfile, EngineHeap, EngineBucket} }

// minTracker is the interface the peeling loop uses: it hands out a
// minimum-degree active node, lets the loop decrement degrees of active
// nodes, and retires peeled nodes.
type minTracker interface {
	// popMin removes a currently-minimum-degree active node and returns it
	// with its degree at removal time.
	popMin() (node int, degree int64)
	// decrement lowers the degree of an active node by one.
	decrement(node int)
}

// newTracker builds a tracker for the given engine from the initial degrees.
func newTracker(engine Engine, degrees []int64) (minTracker, error) {
	switch engine {
	case EngineSProfile:
		return newSProfileTracker(degrees)
	case EngineHeap:
		return newHeapTracker(degrees), nil
	case EngineBucket:
		return newBucketTracker(degrees), nil
	default:
		return nil, fmt.Errorf("graph: unknown engine %d", engine)
	}
}

// ---------------------------------------------------------------------------
// S-Profile tracker
// ---------------------------------------------------------------------------

// sprofileTracker keeps node degrees in a core.Profile (degree = frequency).
// Peeled nodes are driven to frequency -1, strictly below every active degree
// (degrees never go negative), so the minimum active node is always the
// (removed+1)-th smallest frequency — an O(1) query. Retiring a node of
// degree d costs d+1 constant-time removals, which telescopes to O(V + E)
// over a whole peel, preserving the linear total cost.
type sprofileTracker struct {
	p       *core.Profile
	removed int
	degrees []int64
}

func newSProfileTracker(degrees []int64) (*sprofileTracker, error) {
	for v, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("graph: node %d has negative degree %d", v, d)
		}
	}
	p, err := core.FromFrequencies(degrees)
	if err != nil {
		return nil, err
	}
	return &sprofileTracker{p: p, degrees: append([]int64(nil), degrees...)}, nil
}

func (t *sprofileTracker) popMin() (int, int64) {
	e, err := t.p.KthSmallest(t.removed + 1)
	if err != nil {
		panic(fmt.Sprintf("graph: sprofile tracker popMin on exhausted tracker: %v", err))
	}
	node, degree := e.Object, e.Frequency
	// Sink the node below every active degree so later popMin calls skip it.
	for i := degree; i >= 0; i-- {
		if err := t.p.Remove(node); err != nil {
			panic(fmt.Sprintf("graph: sprofile tracker remove: %v", err))
		}
	}
	t.removed++
	t.degrees[node] = -1
	return node, degree
}

func (t *sprofileTracker) decrement(node int) {
	if err := t.p.Remove(node); err != nil {
		panic(fmt.Sprintf("graph: sprofile tracker decrement: %v", err))
	}
	t.degrees[node]--
}

// ---------------------------------------------------------------------------
// Lazy min-heap tracker
// ---------------------------------------------------------------------------

// heapTracker is a lazy binary min-heap of (degree, node) pairs. Every
// decrement pushes a fresh pair; popMin discards pairs that are stale (their
// recorded degree no longer matches the node's current degree) or whose node
// was already peeled.
type heapTracker struct {
	entries []heapEntry
	degrees []int64
	peeled  []bool
}

type heapEntry struct {
	degree int64
	node   int32
}

func newHeapTracker(degrees []int64) *heapTracker {
	t := &heapTracker{
		entries: make([]heapEntry, 0, len(degrees)),
		degrees: append([]int64(nil), degrees...),
		peeled:  make([]bool, len(degrees)),
	}
	for v, d := range degrees {
		t.push(heapEntry{degree: d, node: int32(v)})
	}
	return t
}

func (t *heapTracker) push(e heapEntry) {
	t.entries = append(t.entries, e)
	i := len(t.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if t.entries[parent].degree <= t.entries[i].degree {
			break
		}
		t.entries[parent], t.entries[i] = t.entries[i], t.entries[parent]
		i = parent
	}
}

func (t *heapTracker) pop() heapEntry {
	top := t.entries[0]
	last := len(t.entries) - 1
	t.entries[0] = t.entries[last]
	t.entries = t.entries[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= len(t.entries) {
			break
		}
		smallest := left
		if right := left + 1; right < len(t.entries) && t.entries[right].degree < t.entries[left].degree {
			smallest = right
		}
		if t.entries[i].degree <= t.entries[smallest].degree {
			break
		}
		t.entries[i], t.entries[smallest] = t.entries[smallest], t.entries[i]
		i = smallest
	}
	return top
}

func (t *heapTracker) popMin() (int, int64) {
	for {
		e := t.pop()
		node := int(e.node)
		if t.peeled[node] || e.degree != t.degrees[node] {
			continue // stale entry
		}
		t.peeled[node] = true
		return node, e.degree
	}
}

func (t *heapTracker) decrement(node int) {
	t.degrees[node]--
	t.push(heapEntry{degree: t.degrees[node], node: int32(node)})
}

// ---------------------------------------------------------------------------
// Bucket-queue tracker
// ---------------------------------------------------------------------------

// bucketTracker is the classic k-core peeling structure: nodes grouped into
// buckets by degree, with a cursor that only moves forward by more than one
// when a bucket empties. Because a peeled node's neighbours lose one degree,
// the minimum can drop by at most one per step, so rewinding the cursor by
// one per extraction keeps the scan amortised linear.
type bucketTracker struct {
	buckets [][]int32
	pos     []int32
	degrees []int64
	peeled  []bool
	cursor  int64
}

func newBucketTracker(degrees []int64) *bucketTracker {
	var maxDeg int64
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	t := &bucketTracker{
		buckets: make([][]int32, maxDeg+1),
		pos:     make([]int32, len(degrees)),
		degrees: append([]int64(nil), degrees...),
		peeled:  make([]bool, len(degrees)),
	}
	for v, d := range degrees {
		t.pos[v] = int32(len(t.buckets[d]))
		t.buckets[d] = append(t.buckets[d], int32(v))
	}
	return t
}

func (t *bucketTracker) removeFromBucket(node int) {
	d := t.degrees[node]
	b := t.buckets[d]
	i := t.pos[node]
	last := int32(len(b) - 1)
	if i != last {
		moved := b[last]
		b[i] = moved
		t.pos[moved] = i
	}
	t.buckets[d] = b[:last]
}

func (t *bucketTracker) popMin() (int, int64) {
	for {
		if t.cursor >= int64(len(t.buckets)) {
			panic("graph: bucket tracker popMin on exhausted tracker")
		}
		b := t.buckets[t.cursor]
		if len(b) == 0 {
			t.cursor++
			continue
		}
		node := int(b[len(b)-1])
		t.buckets[t.cursor] = b[:len(b)-1]
		t.peeled[node] = true
		return node, t.cursor
	}
}

func (t *bucketTracker) decrement(node int) {
	t.removeFromBucket(node)
	t.degrees[node]--
	d := t.degrees[node]
	t.pos[node] = int32(len(t.buckets[d]))
	t.buckets[d] = append(t.buckets[d], int32(node))
	if d < t.cursor {
		t.cursor = d
	}
}
