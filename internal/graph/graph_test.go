package graph

import (
	"errors"
	"testing"

	"sprofile/internal/stream"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(-1); err == nil {
		t.Fatalf("NewGraph(-1) succeeded")
	}
	g := MustNewGraph(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph reports %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestMustNewGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNewGraph(-1) did not panic")
		}
	}()
	MustNewGraph(-1)
}

func TestAddEdgeValidation(t *testing.T) {
	g := MustNewGraph(3)
	if err := g.AddEdge(0, 3); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("AddEdge(0,3) error %v", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("AddEdge(-1,0) error %v", err)
	}
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("AddEdge(1,1) error %v", err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1) failed: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges() = %d, want 1", g.NumEdges())
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := MustNewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1) // parallel edge
	wantDeg := []int64{3, 2, 1, 0}
	for v, want := range wantDeg {
		d, err := g.Degree(v)
		if err != nil {
			t.Fatal(err)
		}
		if int64(d) != want {
			t.Fatalf("Degree(%d) = %d, want %d", v, d, want)
		}
	}
	degs := g.Degrees()
	for v, want := range wantDeg {
		if degs[v] != want {
			t.Fatalf("Degrees()[%d] = %d, want %d", v, degs[v], want)
		}
	}
	if _, err := g.Degree(9); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("Degree(9) error %v", err)
	}
	nb, err := g.Neighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 3 {
		t.Fatalf("Neighbors(0) has %d entries, want 3", len(nb))
	}
	if _, err := g.Neighbors(-1); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("Neighbors(-1) error %v", err)
	}
}

// buildCliqueWithTail returns a graph consisting of a k-clique (nodes 0..k-1)
// plus a path of tail nodes hanging off node 0.
func buildCliqueWithTail(k, tail int) *Graph {
	g := MustNewGraph(k + tail)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
		}
	}
	prev := 0
	for i := 0; i < tail; i++ {
		g.AddEdge(prev, k+i)
		prev = k + i
	}
	return g
}

func TestPeelFindsCliqueAsDensestSubgraph(t *testing.T) {
	const k, tail = 6, 10
	g := buildCliqueWithTail(k, tail)
	for _, engine := range Engines() {
		res, err := Peel(g, engine)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if len(res.Order) != g.NumNodes() {
			t.Fatalf("%s: peel order has %d nodes, want %d", engine, len(res.Order), g.NumNodes())
		}
		// The densest subgraph of a k-clique with a pendant path is the
		// clique itself, density (k-1)/2.
		wantDensity := float64(k-1) / 2
		if res.BestDensity != wantDensity {
			t.Fatalf("%s: BestDensity = %g, want %g", engine, res.BestDensity, wantDensity)
		}
		if len(res.BestSubgraph) != k {
			t.Fatalf("%s: BestSubgraph has %d nodes, want %d (%v)", engine, len(res.BestSubgraph), k, res.BestSubgraph)
		}
		for _, v := range res.BestSubgraph {
			if v >= k {
				t.Fatalf("%s: tail node %d in best subgraph", engine, v)
			}
		}
		// Cross-check the reported density from first principles.
		d, err := g.SubgraphDensity(res.BestSubgraph)
		if err != nil {
			t.Fatal(err)
		}
		if d != res.BestDensity {
			t.Fatalf("%s: SubgraphDensity = %g, reported %g", engine, d, res.BestDensity)
		}
	}
}

func TestPeelOrderIsPermutation(t *testing.T) {
	g := buildCliqueWithTail(5, 7)
	for _, engine := range Engines() {
		res, err := Peel(g, engine)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, g.NumNodes())
		for _, v := range res.Order {
			if v < 0 || v >= g.NumNodes() || seen[v] {
				t.Fatalf("%s: peel order %v is not a permutation", engine, res.Order)
			}
			seen[v] = true
		}
		if len(res.Densities) != g.NumNodes() {
			t.Fatalf("%s: %d density samples, want %d", engine, len(res.Densities), g.NumNodes())
		}
		if res.Densities[len(res.Densities)-1] != 0 {
			t.Fatalf("%s: final density %g, want 0", engine, res.Densities[len(res.Densities)-1])
		}
	}
}

func TestPeelEmptyAndEdgelessGraphs(t *testing.T) {
	for _, engine := range Engines() {
		empty := MustNewGraph(0)
		res, err := Peel(empty, engine)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Order) != 0 || res.BestDensity != 0 {
			t.Fatalf("%s: peel of empty graph = %+v", engine, res)
		}

		edgeless := MustNewGraph(5)
		res, err = Peel(edgeless, engine)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Order) != 5 || res.BestDensity != 0 {
			t.Fatalf("%s: peel of edgeless graph: order %d best %g", engine, len(res.Order), res.BestDensity)
		}
	}
}

func TestPeelUnknownEngine(t *testing.T) {
	g := MustNewGraph(2)
	g.AddEdge(0, 1)
	if _, err := Peel(g, Engine(42)); err == nil {
		t.Fatalf("Peel accepted unknown engine")
	}
	if Engine(42).String() == "" {
		t.Fatalf("unknown engine has empty string form")
	}
}

// randomGraph builds a random multigraph with the given node and edge counts.
func randomGraph(n, edges int, seed uint64) *Graph {
	g := MustNewGraph(n)
	rng := stream.NewRNG(seed)
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		g.AddEdge(u, v)
	}
	return g
}

func TestEnginesProduceValidMinDegreePeels(t *testing.T) {
	// With degree ties, different engines may legitimately pick different
	// nodes and end up with slightly different best densities (all are valid
	// greedy 2-approximations). The invariant every engine must satisfy is
	// that each peeled node has the minimum remaining degree at its step and
	// that the reported densities and best subgraph are self-consistent.
	for trial := 0; trial < 20; trial++ {
		n := 10 + trial*3
		g := randomGraph(n, n*3, uint64(trial))
		for _, engine := range Engines() {
			res, err := Peel(g, engine)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, engine, err)
			}
			verifyDensitySequence(t, g, res)
			verifyMinDegreeOrder(t, g, res)

			// BestDensity must equal the maximum over the initial density and
			// the per-step densities, and match the reported subgraph.
			best := float64(g.NumEdges()) / float64(g.NumNodes())
			for _, d := range res.Densities {
				if d > best {
					best = d
				}
			}
			if res.BestDensity != best {
				t.Fatalf("trial %d %s: BestDensity %g, want %g", trial, engine, res.BestDensity, best)
			}
			d, err := g.SubgraphDensity(res.BestSubgraph)
			if err != nil {
				t.Fatal(err)
			}
			if d != res.BestDensity {
				t.Fatalf("trial %d %s: SubgraphDensity(best) = %g, reported %g", trial, engine, d, res.BestDensity)
			}
		}
	}
}

// verifyMinDegreeOrder replays the peel and checks that every peeled node had
// the minimum degree among the still-active nodes at its step.
func verifyMinDegreeOrder(t *testing.T, g *Graph, res *PeelResult) {
	t.Helper()
	n := g.NumNodes()
	deg := g.Degrees()
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for step, v := range res.Order {
		minDeg := int64(-1)
		for u := 0; u < n; u++ {
			if active[u] && (minDeg < 0 || deg[u] < minDeg) {
				minDeg = deg[u]
			}
		}
		if deg[v] != minDeg {
			t.Fatalf("%s: step %d peeled node %d with degree %d, minimum active degree is %d",
				res.Engine, step, v, deg[v], minDeg)
		}
		for _, u := range g.adj[v] {
			if active[u] {
				deg[u]--
			}
		}
		active[v] = false
	}
}

// verifyDensitySequence recomputes the density after each peel step from
// first principles and compares with the reported sequence.
func verifyDensitySequence(t *testing.T, g *Graph, res *PeelResult) {
	t.Helper()
	n := g.NumNodes()
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remainingEdges := g.NumEdges()
	remainingNodes := n
	for step, v := range res.Order {
		for _, u := range g.adj[v] {
			if active[u] {
				remainingEdges--
			}
		}
		active[v] = false
		remainingNodes--
		var want float64
		if remainingNodes > 0 {
			want = float64(remainingEdges) / float64(remainingNodes)
		}
		if res.Densities[step] != want {
			t.Fatalf("%s: density after step %d = %g, recomputed %g", res.Engine, step, res.Densities[step], want)
		}
	}
}

func TestSubgraphDensity(t *testing.T) {
	g := MustNewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(0, 3)
	d, err := g.SubgraphDensity([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.0 {
		t.Fatalf("triangle density %g, want 1", d)
	}
	d, err = g.SubgraphDensity(nil)
	if err != nil || d != 0 {
		t.Fatalf("empty subgraph density %g, %v", d, err)
	}
	if _, err := g.SubgraphDensity([]int{9}); err == nil {
		t.Fatalf("SubgraphDensity accepted out-of-range node")
	}
}

func TestKCore(t *testing.T) {
	// A 4-clique (nodes 0-3) with pendant node 4 attached to node 0.
	g := MustNewGraph(5)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	g.AddEdge(0, 4)
	for _, engine := range Engines() {
		core3, err := KCore(g, 3, engine)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if len(core3) != 4 {
			t.Fatalf("%s: 3-core has %d nodes (%v), want 4", engine, len(core3), core3)
		}
		for _, v := range core3 {
			if v > 3 {
				t.Fatalf("%s: pendant node %d in 3-core", engine, v)
			}
		}
		core5, err := KCore(g, 5, engine)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if core5 != nil {
			t.Fatalf("%s: 5-core should be empty, got %v", engine, core5)
		}
		core0, err := KCore(g, 0, engine)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if len(core0) != 5 {
			t.Fatalf("%s: 0-core has %d nodes, want all 5", engine, len(core0))
		}
	}
	if _, err := KCore(g, -1, EngineSProfile); err == nil {
		t.Fatalf("KCore accepted negative k")
	}
	if nodes, err := KCore(MustNewGraph(0), 1, EngineSProfile); err != nil || nodes != nil {
		t.Fatalf("KCore on empty graph = %v, %v", nodes, err)
	}
}

func TestEngineStrings(t *testing.T) {
	if EngineSProfile.String() != "s-profile" || EngineHeap.String() != "heap" || EngineBucket.String() != "bucket" {
		t.Fatalf("unexpected engine strings")
	}
	if len(Engines()) != 3 {
		t.Fatalf("Engines() lists %d engines, want 3", len(Engines()))
	}
}

func TestSProfileTrackerRejectsNegativeDegrees(t *testing.T) {
	if _, err := newSProfileTracker([]int64{1, -2}); err == nil {
		t.Fatalf("sprofile tracker accepted negative degree")
	}
}
