package graph

import "fmt"

// PeelResult records the outcome of a greedy peel.
type PeelResult struct {
	// Order lists the nodes in the order they were peeled (first element is
	// the first node removed).
	Order []int

	// Densities[i] is the density (edges / nodes) of the subgraph remaining
	// after peeling Order[0..i]; the final entry is always 0 because the last
	// remaining node has no edges left.
	Densities []float64

	// BestDensity is the maximum density seen over all prefixes, including
	// the density of the full graph before any node was peeled.
	BestDensity float64

	// BestSubgraph lists the nodes of the densest remaining subgraph (the
	// nodes not yet peeled at the step achieving BestDensity).
	BestSubgraph []int

	// Engine is the tracker used for the minimum-degree queries.
	Engine Engine
}

// Peel runs the greedy minimum-degree peel over the whole graph using the
// requested engine and returns the peeling order plus the densest-subgraph
// bookkeeping.
//
// At every step the node with the (currently) smallest degree is removed and
// the degrees of its still-active neighbours drop by one. The density of the
// remaining subgraph is tracked after every removal; the best prefix is the
// classic 2-approximation of the densest subgraph.
func Peel(g *Graph, engine Engine) (*PeelResult, error) {
	n := g.NumNodes()
	res := &PeelResult{
		Order:     make([]int, 0, n),
		Densities: make([]float64, 0, n),
		Engine:    engine,
	}
	if n == 0 {
		return res, nil
	}

	tracker, err := newTracker(engine, g.Degrees())
	if err != nil {
		return nil, err
	}

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remainingNodes := n
	remainingEdges := g.NumEdges()

	density := func() float64 {
		if remainingNodes == 0 {
			return 0
		}
		return float64(remainingEdges) / float64(remainingNodes)
	}

	res.BestDensity = density()
	bestStep := -1 // -1 means "before any node was peeled"

	for step := 0; step < n; step++ {
		v, _ := tracker.popMin()
		if v < 0 || v >= n || !active[v] {
			return nil, fmt.Errorf("graph: %s tracker returned invalid node %d at step %d", engine, v, step)
		}
		for _, u := range g.adj[v] {
			if active[u] {
				tracker.decrement(int(u))
				remainingEdges--
			}
		}
		active[v] = false
		remainingNodes--
		res.Order = append(res.Order, v)

		d := density()
		res.Densities = append(res.Densities, d)
		if d > res.BestDensity {
			res.BestDensity = d
			bestStep = step
		}
	}

	if remainingEdges != 0 {
		return nil, fmt.Errorf("graph: %d edges unaccounted for after peeling", remainingEdges)
	}

	// Reconstruct the densest remaining subgraph: the nodes not peeled in
	// Order[0..bestStep].
	peeledAtBest := make([]bool, n)
	for i := 0; i <= bestStep; i++ {
		peeledAtBest[res.Order[i]] = true
	}
	for v := 0; v < n; v++ {
		if !peeledAtBest[v] {
			res.BestSubgraph = append(res.BestSubgraph, v)
		}
	}
	return res, nil
}

// SubgraphDensity returns edges/nodes of the subgraph induced by nodes
// (parallel edges counted). It is used by tests to validate PeelResult
// densities from first principles.
func (g *Graph) SubgraphDensity(nodes []int) (float64, error) {
	if len(nodes) == 0 {
		return 0, nil
	}
	in := make([]bool, g.n)
	for _, v := range nodes {
		if err := g.checkNode(v); err != nil {
			return 0, err
		}
		in[v] = true
	}
	edges := 0
	for _, v := range nodes {
		for _, u := range g.adj[v] {
			if in[u] {
				edges++
			}
		}
	}
	// every edge with both endpoints inside is counted twice
	return float64(edges) / 2 / float64(len(nodes)), nil
}

// KCore returns the maximal subgraph in which every node has degree >= k,
// computed by peeling nodes of degree < k. It reuses the same tracker
// machinery as Peel and is a second standard "shaving" application.
func KCore(g *Graph, k int, engine Engine) ([]int, error) {
	if k < 0 {
		return nil, fmt.Errorf("graph: negative core order %d", k)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	tracker, err := newTracker(engine, g.Degrees())
	if err != nil {
		return nil, err
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := n
	for remaining > 0 {
		v, d := tracker.popMin()
		if d >= int64(k) {
			// The minimum active degree already satisfies k: everything still
			// active (including v, which popMin retired from the tracker) is
			// in the k-core.
			var coreNodes []int
			for u := 0; u < n; u++ {
				if active[u] {
					coreNodes = append(coreNodes, u)
				}
			}
			return coreNodes, nil
		}
		for _, u := range g.adj[v] {
			if active[u] {
				tracker.decrement(int(u))
			}
		}
		active[v] = false
		remaining--
	}
	return nil, nil
}
