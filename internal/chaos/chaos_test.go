// Package chaos subjects a leader/follower pair to a seeded, randomized
// fault schedule — WAL fsync failures and ENOSPC, slow I/O, replication-link
// 5xx bursts, torn response bodies and dropped connections, checkpoint
// failures — while ingest and queries keep running, and then proves the
// robustness contract end to end:
//
//   - no acknowledged write is ever lost: reopening the leader's directory
//     replays exactly the acknowledged multiset;
//   - the follower's mirror converges byte-for-byte with the leader's log;
//   - reads keep answering throughout, including while the node is degraded;
//   - the node returns to full health (writes accepted, sprofile_degraded 0)
//     within five seconds of the faults clearing.
//
// The schedule is driven by a PRNG seeded from SPROFILE_CHAOS_SEED (default
// 1); the seed is logged so any failure reproduces.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"sprofile/internal/failpoint"
	"sprofile/internal/server"
)

// chaosKeys is the closed key universe; counts over it are the invariant the
// harness checks at every boundary.
var chaosKeys = []string{
	"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
	"eta", "theta", "iota", "kappa", "lambda", "mu",
}

func chaosSeed(t *testing.T) int64 {
	seed := int64(1)
	if s := os.Getenv("SPROFILE_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SPROFILE_CHAOS_SEED=%q: %v", s, err)
		}
		seed = n
	}
	t.Logf("chaos seed %d (rerun with SPROFILE_CHAOS_SEED=%d)", seed, seed)
	return seed
}

type harness struct {
	t        *testing.T
	rng      *rand.Rand
	leader   *server.Server
	lts      *httptest.Server
	follower *server.Server
	fts      *httptest.Server
	acked    map[string]int64
	// failedApplied counts writes that surfaced the WAL fault itself (500
	// wal_append): the event was applied to the queryable state before the
	// fsync failed, so Roll salvages it into the fresh segment and it becomes
	// durable-but-unacknowledged — the ordinary indeterminate outcome of an
	// errored write. Degraded rejections (503) are never applied.
	failedApplied map[string]int64
}

type eventOut struct {
	Applied int    `json:"applied"`
	Error   string `json:"error"`
	Code    string `json:"code"`
}

type healthDoc struct {
	Status   string `json:"status"`
	Degraded bool   `json:"degraded"`
	WALError string `json:"wal_error"`
	WAL      *struct {
		Segment uint64 `json:"segment"`
		Offset  int64  `json:"offset"`
	} `json:"wal"`
	Replication *struct {
		CaughtUp bool   `json:"caught_up"`
		Segment  uint64 `json:"segment"`
		Offset   int64  `json:"offset"`
	} `json:"replication"`
}

// write posts one event for key and returns the HTTP status and wire code.
// A 200 is an acknowledgement: the record is durable and must survive
// anything the schedule does afterwards.
func (h *harness) write(key string) (int, string) {
	h.t.Helper()
	body := fmt.Sprintf(`[{"object":%q,"action":"add"}]`, key)
	resp, err := http.Post(h.lts.URL+"/v1/events", "application/json", strings.NewReader(body))
	if err != nil {
		h.t.Fatalf("write %s: %v", key, err)
	}
	var out eventOut
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if out.Applied != 1 {
			h.t.Fatalf("write %s acked with applied=%d", key, out.Applied)
		}
		h.acked[key]++
	}
	if resp.StatusCode == http.StatusInternalServerError && out.Code == "wal_append" {
		h.failedApplied[key]++
	}
	return resp.StatusCode, out.Code
}

// writeRand writes a random key, asserting the status is one of the shapes
// the robustness contract allows under faults: acked, the initial fault
// surfacing (500 wal_append), or the degraded rejection (503 degraded).
func (h *harness) writeRand() (int, string) {
	h.t.Helper()
	status, code := h.write(chaosKeys[h.rng.Intn(len(chaosKeys))])
	switch {
	case status == http.StatusOK:
	case status == http.StatusInternalServerError && code == "wal_append":
	case status == http.StatusServiceUnavailable && code == "degraded":
	default:
		h.t.Fatalf("write returned %d %q; not an allowed outcome under faults", status, code)
	}
	return status, code
}

// readCount asserts the read plane answers 200 — degraded or not — and
// returns the count. Reads failing under WAL faults would break the
// degraded-mode contract.
func (h *harness) readCount(ts *httptest.Server, key string) int64 {
	h.t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats/count?object=" + key)
	if err != nil {
		h.t.Fatalf("count %s: %v", key, err)
	}
	var out struct {
		Frequency int64 `json:"frequency"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("read of %s returned %d; reads must keep serving under faults", key, resp.StatusCode)
	}
	return out.Frequency
}

func (h *harness) counts(ts *httptest.Server) map[string]int64 {
	h.t.Helper()
	m := make(map[string]int64, len(chaosKeys))
	for _, k := range chaosKeys {
		m[k] = h.readCount(ts, k)
	}
	return m
}

func (h *harness) health(ts *httptest.Server) healthDoc {
	h.t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		h.t.Fatal(err)
	}
	var doc healthDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		h.t.Fatal(err)
	}
	resp.Body.Close()
	return doc
}

func (h *harness) metric(ts *httptest.Server, name string) string {
	h.t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			return line
		}
	}
	return ""
}

// waitHealthy polls until the leader accepts a write and reports undegraded
// health, failing after the contract's five-second recovery bound.
func (h *harness) waitHealthy(bound time.Duration) {
	h.t.Helper()
	deadline := time.Now().Add(bound)
	for time.Now().Before(deadline) {
		if status, _ := h.writeRand(); status == http.StatusOK {
			if doc := h.health(h.lts); !doc.Degraded {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.t.Fatalf("leader did not return to health within %s of faults clearing: %+v",
		bound, h.health(h.lts))
}

// waitFollowerCaughtUp polls until the follower reports caught-up at the
// leader's durable position.
func (h *harness) waitFollowerCaughtUp() {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ld := h.health(h.lts)
		fd := h.health(h.fts)
		if ld.WAL != nil && fd.Replication != nil && fd.Replication.CaughtUp &&
			fd.Replication.Segment == ld.WAL.Segment && fd.Replication.Offset == ld.WAL.Offset {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.t.Fatalf("follower never converged: leader=%+v follower=%+v",
		h.health(h.lts).WAL, h.health(h.fts).Replication)
}

func arm(t *testing.T, site, spec string) {
	t.Helper()
	if err := failpoint.Enable(site, spec); err != nil {
		t.Fatalf("arm %s=%s: %v", site, spec, err)
	}
}

// TestChaosSchedule is the chaos harness: a seeded fault schedule across
// every injectable seam, with the no-loss / convergence / recovery
// assertions at the end. Run it under -race; the CI chaos-smoke job does.
func TestChaosSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(chaosSeed(t)))
	t.Cleanup(failpoint.DisableAll)

	leaderDir := filepath.Join(t.TempDir(), "leader-wal")
	followerDir := filepath.Join(t.TempDir(), "follower-wal")

	leader, err := server.New(server.Config{Capacity: 4096, WALPath: leaderDir})
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(leader)

	follower, err := server.New(server.Config{
		Capacity:   4096,
		WALPath:    followerDir,
		Follow:     lts.URL,
		FollowPoll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(follower)
	defer fts.Close()

	h := &harness{t: t, rng: rng, leader: leader, lts: lts,
		follower: follower, fts: fts,
		acked: make(map[string]int64), failedApplied: make(map[string]int64)}

	triggersBefore := failpoint.TriggeredTotal()

	// Phase A — slow I/O everywhere, full throughput. Every write's fsync and
	// every follower fetch triggers a delay fault; nothing fails, so this
	// phase banks the bulk of the ≥1000 injected faults the harness must
	// demonstrate while proving delays alone never surface as errors.
	arm(t, "wal.sync", "delay(100us)")
	arm(t, "replication.fetch", "delay(1ms)")
	phaseAWrites := 1000 + rng.Intn(200)
	for i := 0; i < phaseAWrites; i++ {
		if status, code := h.writeRand(); status != http.StatusOK {
			t.Fatalf("write under pure-delay faults failed: %d %q", status, code)
		}
		if i%97 == 0 {
			h.readCount(h.lts, chaosKeys[rng.Intn(len(chaosKeys))])
		}
	}
	failpoint.Disable("wal.sync")
	failpoint.Disable("replication.fetch")

	// Phase B — repeated disk-failure rounds. Each round arms a bounded
	// ENOSPC/EIO burst against WAL fsync: the first failing write poisons the
	// log, subsequent writes see the degraded rejection while reads keep
	// answering, and once the burst's trigger budget is exhausted the degrade
	// watcher's Roll probe proves the disk and restores write service — all
	// without any operator action. Every round must complete the full
	// poison → degraded → recovered cycle within the 5s bound.
	rounds := 8 + rng.Intn(5)
	for round := 0; round < rounds; round++ {
		kind := "enospc"
		if rng.Intn(2) == 0 {
			kind = "eio"
		}
		burst := 1 + rng.Intn(3)
		arm(t, "wal.sync", fmt.Sprintf("error(%s):count=%d", kind, burst))

		status, code := h.writeRand()
		if status != http.StatusInternalServerError || code != "wal_append" {
			t.Fatalf("round %d: poisoned write = %d %q, want 500 wal_append", round, status, code)
		}
		// While degraded: writes rejected with the retryable 503 shape (unless
		// the probe already recovered), reads and health keep serving.
		if status, code := h.writeRand(); status == http.StatusServiceUnavailable {
			if code != "degraded" {
				t.Fatalf("round %d: degraded rejection code = %q", round, code)
			}
		}
		h.readCount(h.lts, chaosKeys[rng.Intn(len(chaosKeys))])
		h.waitHealthy(5 * time.Second)
	}
	failpoint.Disable("wal.sync")
	if line := h.metric(h.lts, "sprofile_wal_rolls_total"); line == "" {
		t.Fatal("sprofile_wal_rolls_total not exported after recovery rounds")
	}

	// Phase C — a hostile replication link: 5xx bursts, torn response
	// bodies, dropped connections. The follower must treat each as a
	// transient fetch failure and converge once the link heals.
	for _, spec := range []string{
		fmt.Sprintf("http(503):count=%d", 3+rng.Intn(4)),
		fmt.Sprintf("torn:count=%d", 3+rng.Intn(4)),
		fmt.Sprintf("drop:count=%d", 3+rng.Intn(4)),
	} {
		arm(t, "replication.fetch", spec)
		for i := 0; i < 30; i++ {
			if status, code := h.writeRand(); status != http.StatusOK {
				t.Fatalf("leader write failed under replication faults: %d %q", status, code)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	failpoint.Disable("replication.fetch")

	// Phase D — checkpoint failures: the snapshot protocol's temp-file
	// writes hit ENOSPC. The admin endpoint surfaces the failure, the log
	// keeps appending, and a later attempt succeeds once space returns.
	arm(t, "checkpoint.snap.write", "error(enospc):count=2")
	cpResp, err := http.Post(lts.URL+"/v1/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cpResp.Body.Close()
	if cpResp.StatusCode == http.StatusOK {
		t.Fatal("checkpoint under injected ENOSPC reported success")
	}
	for i := 0; i < 20; i++ {
		if status, code := h.writeRand(); status != http.StatusOK {
			t.Fatalf("write after failed checkpoint = %d %q", status, code)
		}
	}
	failpoint.Disable("checkpoint.snap.write")
	cpResp, err = http.Post(lts.URL+"/v1/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cpResp.Body.Close()
	if cpResp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint after faults cleared = %d", cpResp.StatusCode)
	}

	// Faults over. The node must be fully healthy within the bound, and the
	// schedule must have actually exercised the seams it claims to.
	failpoint.DisableAll()
	h.waitHealthy(5 * time.Second)
	if delta := failpoint.TriggeredTotal() - triggersBefore; delta < 1000 {
		t.Fatalf("schedule injected only %d faults, want >= 1000", delta)
	}
	if line := h.metric(h.lts, "sprofile_degraded"); !strings.HasSuffix(line, " 0") {
		t.Fatalf("sprofile_degraded after recovery = %q, want 0", line)
	}

	// A final burst of clean traffic, then the convergence checks.
	for i := 0; i < 50; i++ {
		if status, code := h.writeRand(); status != http.StatusOK {
			t.Fatalf("post-recovery write = %d %q", status, code)
		}
	}
	h.waitFollowerCaughtUp()

	// Expected counts: every acknowledged write, plus the writes that
	// surfaced the fault itself (applied before the fsync failed, salvaged
	// into the fresh segment by Roll). Nothing less — no acked-write loss —
	// and nothing more.
	expected := func(k string) int64 { return h.acked[k] + h.failedApplied[k] }
	leaderCounts := h.counts(h.lts)
	followerCounts := h.counts(h.fts)
	for _, k := range chaosKeys {
		if leaderCounts[k] < h.acked[k] {
			t.Errorf("leader count(%s) = %d < acked %d: acked-write loss", k, leaderCounts[k], h.acked[k])
		}
		if leaderCounts[k] != expected(k) {
			t.Errorf("leader count(%s) = %d, want acked %d + salvaged %d",
				k, leaderCounts[k], h.acked[k], h.failedApplied[k])
		}
		if followerCounts[k] != leaderCounts[k] {
			t.Errorf("follower count(%s) = %d, leader has %d: replicas diverged",
				k, followerCounts[k], leaderCounts[k])
		}
	}

	// Byte-for-byte: every segment file present in both directories is
	// identical. The feed serves only fsynced bytes, so not even a
	// truncating post-fault Roll may have let the mirror diverge.
	compareSegments(t, leaderDir, followerDir)

	// Stop both planes, then reopen the leader's directory cold: recovery
	// must replay exactly the acknowledged multiset — acked writes survived
	// every fault, and nothing the faults rejected leaked back in.
	fts.Close()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	lts.Close()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	reborn, err := server.New(server.Config{Capacity: 4096, WALPath: leaderDir})
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	rts := httptest.NewServer(reborn)
	defer rts.Close()
	defer reborn.Close()
	rebornCounts := h.counts(rts)
	for _, k := range chaosKeys {
		if rebornCounts[k] < h.acked[k] {
			t.Errorf("reopened count(%s) = %d < acked %d: acked-write loss",
				k, rebornCounts[k], h.acked[k])
		}
		if rebornCounts[k] != expected(k) {
			t.Errorf("reopened count(%s) = %d, want acked %d + salvaged %d",
				k, rebornCounts[k], h.acked[k], h.failedApplied[k])
		}
	}
}

// compareSegments asserts every WAL segment file present in both dirs holds
// identical bytes. The mirror may hold fewer files (bootstrap skipped pruned
// history) but never different ones.
func compareSegments(t *testing.T, leaderDir, followerDir string) {
	t.Helper()
	entries, err := os.ReadDir(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		fb, err := os.ReadFile(filepath.Join(followerDir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		lb, err := os.ReadFile(filepath.Join(leaderDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, fb) {
			t.Errorf("segment %s diverged: leader %d bytes, follower %d bytes", name, len(lb), len(fb))
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no common segment files to compare; harness lost the mirror entirely")
	}
	t.Logf("compared %d common segment files byte-for-byte", compared)
}
