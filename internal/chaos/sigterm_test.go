package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sprofile/internal/server"
)

// TestChaosSIGTERMMidIngest runs the real sprofiled binary, hammers it with
// concurrent writes, and delivers SIGTERM mid-ingest. The drain-ordered
// shutdown contract: the process exits 0 after draining and settling the
// data plane, and reopening its WAL directory recovers every write it ever
// acknowledged — a write racing the shutdown either completed durably or
// failed visibly, never half.
func TestChaosSIGTERMMidIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the sprofiled binary")
	}

	bin := filepath.Join(t.TempDir(), "sprofiled")
	build := exec.Command("go", "build", "-o", bin, "sprofile/cmd/sprofiled")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build sprofiled: %v\n%s", err, out)
	}

	// Reserve a port; the gap between closing the probe listener and the
	// daemon binding it is a benign test-only race.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	walDir := filepath.Join(t.TempDir(), "wal")
	var logBuf bytes.Buffer
	daemon := exec.Command(bin,
		"-addr", addr,
		"-wal", walDir,
		"-capacity", "4096",
		"-drain-timeout", "5s",
	)
	daemon.Stdout = &logBuf
	daemon.Stderr = &logBuf
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	base := "http://" + addr
	waitUp := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(waitUp) {
			t.Fatalf("daemon never came up on %s\n%s", addr, logBuf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Concurrent writers run until the process stops answering; each 200 is
	// a durability promise the reopened directory must honor.
	var mu sync.Mutex
	acked := make(map[string]int64)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hc := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				key := fmt.Sprintf("writer%d-k%d", w, i%8)
				body := fmt.Sprintf(`[{"object":%q,"action":"add"}]`, key)
				resp, err := hc.Post(base+"/v1/events", "application/json", strings.NewReader(body))
				if err != nil {
					return // the listener is gone; drain has begun or finished
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					mu.Lock()
					acked[key]++
					mu.Unlock()
				}
			}
		}(w)
	}

	// Let ingest run, then terminate mid-flight.
	time.Sleep(300 * time.Millisecond)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, logBuf.String())
		}
	case <-time.After(15 * time.Second):
		daemon.Process.Kill()
		t.Fatalf("daemon did not exit within 15s of SIGTERM\n%s", logBuf.String())
	}
	wg.Wait()

	logs := logBuf.String()
	for _, want := range []string{"draining", "stopped"} {
		if !strings.Contains(logs, want) {
			t.Errorf("daemon log missing %q:\n%s", want, logs)
		}
	}
	// The settle phase takes a final checkpoint, so restart recovers from a
	// snapshot instead of replaying the whole log.
	if entries, err := os.ReadDir(walDir); err == nil {
		var hasSnap bool
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".sks") || strings.Contains(e.Name(), "snap") {
				hasSnap = true
			}
		}
		if !hasSnap {
			names := make([]string, 0, len(entries))
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Logf("no snapshot file after shutdown (dir: %v); final checkpoint may have been skipped", names)
		}
	}

	// Reopen the directory: every acknowledged write must be there.
	reborn, err := server.New(server.Config{Capacity: 4096, WALPath: walDir})
	if err != nil {
		t.Fatalf("reopen after SIGTERM: %v", err)
	}
	defer reborn.Close()
	rts := httptest.NewServer(reborn)
	defer rts.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged before SIGTERM; the test proved nothing")
	}
	total := int64(0)
	for key, want := range acked {
		resp, err := http.Get(rts.URL + "/v1/stats/count?object=" + key)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Frequency int64 `json:"frequency"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if out.Frequency < want {
			t.Errorf("count(%s) = %d after reopen, acked %d: SIGTERM lost acknowledged writes",
				key, out.Frequency, want)
		}
		total += want
	}
	t.Logf("%d acknowledged writes across %d keys all survived SIGTERM", total, len(acked))
}
