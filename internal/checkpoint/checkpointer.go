package checkpoint

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Policy configures automatic checkpoint triggering.
type Policy struct {
	// Every triggers a checkpoint once this much time has passed since the
	// previous one (and at least one record has been appended since). Zero
	// disables the timer.
	Every time.Duration
	// EveryBytes triggers a checkpoint once the WAL tail grows past this
	// many bytes. Zero disables the size trigger.
	EveryBytes int64
}

// Enabled reports whether the policy triggers anything.
func (p Policy) Enabled() bool { return p.Every > 0 || p.EveryBytes > 0 }

// Checkpointer runs checkpoints in the background on a Policy's cadence. At
// most one checkpoint is in flight at a time (run is invoked from a single
// goroutine, and the Store serialises against manual checkpoints anyway).
type Checkpointer struct {
	pol       Policy
	run       func() error
	tailBytes func() int64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	lastErr  atomic.Value // errBox
}

type errBox struct{ err error }

// Start launches the background loop. run performs one checkpoint;
// tailBytes reports the WAL tail size for the byte trigger (and gates the
// time trigger, so an idle profile is not re-snapshotted forever).
func Start(pol Policy, run func() error, tailBytes func() int64) *Checkpointer {
	c := &Checkpointer{
		pol:       pol,
		run:       run,
		tailBytes: tailBytes,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go pprof.Do(context.Background(), pprof.Labels("sprofile_plane", "checkpointer"), func(context.Context) {
		c.loop()
	})
	return c
}

func (c *Checkpointer) loop() {
	defer close(c.done)
	// The size trigger needs polling; a tenth of a second keeps it
	// responsive at negligible cost (one atomic read per tick).
	const bytePoll = 100 * time.Millisecond
	poll := c.pol.Every
	if poll <= 0 || (c.pol.EveryBytes > 0 && poll > bytePoll) {
		poll = bytePoll
	}
	// After a failed checkpoint (full disk, usually), hold off before
	// retrying: each attempt rotates the log first, so retrying on every
	// poll tick would spray near-empty segment files while making the
	// disk-pressure failure worse.
	const failureBackoff = 5 * time.Second
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	last := time.Now()
	var notBefore time.Time
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		if time.Now().Before(notBefore) {
			continue
		}
		grown := c.tailBytes() > 0
		due := c.pol.Every > 0 && grown && time.Since(last) >= c.pol.Every
		if c.pol.EveryBytes > 0 && c.tailBytes() >= c.pol.EveryBytes {
			due = true
		}
		if !due {
			continue
		}
		err := c.run()
		c.lastErr.Store(errBox{err: err})
		last = time.Now()
		if err != nil {
			notBefore = last.Add(failureBackoff)
		}
	}
}

// LastError returns the outcome of the most recent background checkpoint
// (nil if none has run, or the last one succeeded).
func (c *Checkpointer) LastError() error {
	if v, ok := c.lastErr.Load().(errBox); ok {
		return v.err
	}
	return nil
}

// Stop terminates the loop and waits for an in-flight checkpoint to finish.
func (c *Checkpointer) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}
