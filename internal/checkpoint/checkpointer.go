package checkpoint

import (
	"context"
	"math/rand/v2"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Policy configures automatic checkpoint triggering.
type Policy struct {
	// Every triggers a checkpoint once this much time has passed since the
	// previous one (and at least one record has been appended since). Zero
	// disables the timer.
	Every time.Duration
	// EveryBytes triggers a checkpoint once the WAL tail grows past this
	// many bytes. Zero disables the size trigger.
	EveryBytes int64
}

// Enabled reports whether the policy triggers anything.
func (p Policy) Enabled() bool { return p.Every > 0 || p.EveryBytes > 0 }

// Checkpointer runs checkpoints in the background on a Policy's cadence. At
// most one checkpoint is in flight at a time (run is invoked from a single
// goroutine, and the Store serialises against manual checkpoints anyway).
type Checkpointer struct {
	pol       Policy
	run       func() error
	tailBytes func() int64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	lastErr  atomic.Value // errBox
}

type errBox struct{ err error }

// Start launches the background loop. run performs one checkpoint;
// tailBytes reports the WAL tail size for the byte trigger (and gates the
// time trigger, so an idle profile is not re-snapshotted forever).
func Start(pol Policy, run func() error, tailBytes func() int64) *Checkpointer {
	c := &Checkpointer{
		pol:       pol,
		run:       run,
		tailBytes: tailBytes,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go pprof.Do(context.Background(), pprof.Labels("sprofile_plane", "checkpointer"), func(context.Context) {
		c.loop()
	})
	return c
}

func (c *Checkpointer) loop() {
	defer close(c.done)
	// The size trigger needs polling; a tenth of a second keeps it
	// responsive at negligible cost (one atomic read per tick).
	const bytePoll = 100 * time.Millisecond
	poll := c.pol.Every
	if poll <= 0 || (c.pol.EveryBytes > 0 && poll > bytePoll) {
		poll = bytePoll
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	last := time.Now()
	var notBefore time.Time
	failures := 0
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		if time.Now().Before(notBefore) {
			continue
		}
		grown := c.tailBytes() > 0
		due := c.pol.Every > 0 && grown && time.Since(last) >= c.pol.Every
		if c.pol.EveryBytes > 0 && c.tailBytes() >= c.pol.EveryBytes {
			due = true
		}
		if !due {
			continue
		}
		err := c.run()
		c.lastErr.Store(errBox{err: err})
		last = time.Now()
		if err != nil {
			failures++
			notBefore = last.Add(retryBackoff(failures))
		} else {
			failures = 0
		}
	}
}

// Retry backoff after failed checkpoints (full or failing disk, usually).
// Each attempt rotates the log first, so retrying on every poll tick would
// spray near-empty segment files while making the disk-pressure failure
// worse. The delay doubles per consecutive failure from retryBase up to
// retryCap, jittered into [d/2, d) so a fleet of nodes that all hit the same
// fault does not retry in lockstep.
const (
	retryBase = 1 * time.Second
	retryCap  = 30 * time.Second
)

func retryBackoff(failures int) time.Duration {
	d := retryBase
	for i := 1; i < failures && d < retryCap; i++ {
		d *= 2
	}
	if d > retryCap {
		d = retryCap
	}
	half := d / 2
	return half + rand.N(d-half)
}

// LastError returns the outcome of the most recent background checkpoint
// (nil if none has run, or the last one succeeded).
func (c *Checkpointer) LastError() error {
	if v, ok := c.lastErr.Load().(errBox); ok {
		return v.err
	}
	return nil
}

// Stop terminates the loop and waits for an in-flight checkpoint to finish.
func (c *Checkpointer) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}
