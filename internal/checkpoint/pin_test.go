package checkpoint_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"sprofile/internal/checkpoint"
	"sprofile/internal/wal"
)

func hasFile(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestPinRetainsSnapshotAndSegments: a live lease must hold the pinned
// snapshot and the segments after its sealed watermark across checkpoints;
// once released, the next checkpoint reclaims them.
func TestPinRetainsSnapshotAndSegments(t *testing.T) {
	dir := t.TempDir()
	s, f, _ := reopen(t, dir)
	defer s.Close()

	appendN(t, s, f, "a", "b", "a")
	doCheckpoint(t, s, f) // snapshot 1, seals segment 1

	ps := s.PinSnapshot(time.Hour)
	if ps.Seq != 1 || ps.Path == "" {
		t.Fatalf("PinSnapshot = %+v, want seq 1 with a path", ps)
	}
	if filepath.Base(ps.Path) != checkpoint.SnapshotName(1) {
		t.Fatalf("pinned path %q, want %q", ps.Path, checkpoint.SnapshotName(1))
	}

	appendN(t, s, f, "c")
	doCheckpoint(t, s, f) // snapshot 2 would normally prune snapshot 1 + segment 2

	files := listFiles(t, dir)
	if !hasFile(files, checkpoint.SnapshotName(1)) {
		t.Fatalf("pinned snapshot 1 was pruned; files: %v", files)
	}
	if !hasFile(files, wal.SegmentName(ps.SealedSeg+1)) {
		t.Fatalf("pinned segment %d was pruned; files: %v", ps.SealedSeg+1, files)
	}

	if !s.RefreshPin(ps.Pin, time.Hour) {
		t.Fatal("RefreshPin lost a live lease")
	}
	s.Unpin(ps.Pin)
	appendN(t, s, f, "d")
	doCheckpoint(t, s, f)
	files = listFiles(t, dir)
	if hasFile(files, checkpoint.SnapshotName(1)) || hasFile(files, checkpoint.SnapshotName(2)) {
		t.Fatalf("released lease did not let superseded snapshots go; files: %v", files)
	}
	if s.RefreshPin(ps.Pin, time.Hour) {
		t.Fatal("RefreshPin revived a released lease")
	}
}

// TestPinExpires: an expired lease holds nothing.
func TestPinExpires(t *testing.T) {
	dir := t.TempDir()
	s, f, _ := reopen(t, dir)
	defer s.Close()

	appendN(t, s, f, "a")
	doCheckpoint(t, s, f)
	ps := s.PinSnapshot(-time.Second) // born expired
	appendN(t, s, f, "b")
	doCheckpoint(t, s, f)
	if files := listFiles(t, dir); hasFile(files, checkpoint.SnapshotName(ps.Seq)) {
		t.Fatalf("expired lease retained snapshot %d; files: %v", ps.Seq, files)
	}
	if s.RefreshPin(ps.Pin, time.Hour) {
		t.Fatal("RefreshPin revived an expired lease")
	}
}

// TestReplayTailReadOnly: the read-only recovery path must rebuild the same
// state as ReplayTail, report the byte-exact replica position, and leave the
// directory untouched (no pruning, no truncation, no append head).
func TestReplayTailReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a", "b")
	doCheckpoint(t, s, f)
	appendN(t, s, f, "c", "c")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before := listFiles(t, dir)

	ro, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := newFake()
	if st := ro.TakeState(); st != nil {
		g.restore(st)
	}
	n, pos, err := ro.ReplayTailReadOnly(g.apply)
	if err != nil {
		t.Fatalf("ReplayTailReadOnly: %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d tail records, want 2", n)
	}
	wantCounts(t, g, map[string]int64{"a": 1, "b": 1, "c": 2})

	fi, err := os.Stat(filepath.Join(dir, wal.SegmentName(pos.Segment)))
	if err != nil {
		t.Fatalf("replica position names segment %d: %v", pos.Segment, err)
	}
	if pos.Offset != fi.Size() {
		t.Fatalf("replica position offset %d, want full segment size %d", pos.Offset, fi.Size())
	}
	after := listFiles(t, dir)
	if len(after) != len(before) {
		t.Fatalf("read-only replay changed the directory: before %v, after %v", before, after)
	}
}
