package checkpoint_test

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sprofile/internal/checkpoint"
	"sprofile/internal/core"
	"sprofile/internal/wal"
)

// fakeProfile is a minimal keyed state machine for exercising the store:
// recovery must reproduce exactly the counts the writing run held, whatever
// mix of snapshot restore and tail replay gets there.
type fakeProfile struct {
	counts  map[string]int64
	adds    uint64
	removes uint64
}

func newFake() *fakeProfile { return &fakeProfile{counts: make(map[string]int64)} }

func (f *fakeProfile) apply(rec wal.Record) error {
	if rec.Action == core.ActionAdd {
		f.counts[rec.Key]++
		f.adds++
	} else {
		f.counts[rec.Key]--
		f.removes++
	}
	return nil
}

func (f *fakeProfile) state() *checkpoint.State {
	st := &checkpoint.State{Keyed: true, Capacity: 1 << 20, Adds: f.adds, Removes: f.removes}
	keys := make([]string, 0, len(f.counts))
	for k := range f.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st.Keys = append(st.Keys, k)
		st.Freqs = append(st.Freqs, f.counts[k])
	}
	return st
}

func (f *fakeProfile) restore(st *checkpoint.State) {
	for i, k := range st.Keys {
		f.counts[k] = st.Freqs[i]
	}
	f.adds = st.Adds
	f.removes = st.Removes
}

// reopen runs the full recovery protocol over dir and returns the store, the
// rebuilt state, and the number of tail records replayed.
func reopen(t *testing.T, dir string) (*checkpoint.Store, *fakeProfile, int) {
	t.Helper()
	s, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	f := newFake()
	if st := s.TakeState(); st != nil {
		f.restore(st)
	}
	n, err := s.ReplayTail(f.apply)
	if err != nil {
		t.Fatalf("ReplayTail: %v", err)
	}
	return s, f, n
}

// doCheckpoint runs one checkpoint of f's current state through the store.
func doCheckpoint(t *testing.T, s *checkpoint.Store, f *fakeProfile) {
	t.Helper()
	if err := s.Checkpoint(func() (*checkpoint.State, uint64, error) {
		sealed, err := s.Rotate()
		if err != nil {
			return nil, 0, err
		}
		return f.state(), sealed, nil
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
}

func appendN(t *testing.T, s *checkpoint.Store, f *fakeProfile, keys ...string) {
	t.Helper()
	for _, k := range keys {
		rec := wal.Record{Key: k, Action: core.ActionAdd}
		if _, err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := f.apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func wantCounts(t *testing.T, f *fakeProfile, want map[string]int64) {
	t.Helper()
	for k, v := range want {
		if f.counts[k] != v {
			t.Fatalf("count[%s] = %d, want %d (all: %v)", k, f.counts[k], v, f.counts)
		}
	}
	for k, v := range f.counts {
		if v != 0 && want[k] == 0 {
			t.Fatalf("unexpected recovered key %s=%d", k, v)
		}
	}
}

func listFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a", "b", "a")
	doCheckpoint(t, s, f)
	appendN(t, s, f, "c", "a")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, f2, tail := reopen(t, dir)
	defer s2.Close()
	wantCounts(t, f2, map[string]int64{"a": 3, "b": 1, "c": 1})
	if tail != 2 {
		t.Fatalf("tail replay = %d records, want 2 (only the post-checkpoint events)", tail)
	}
	stats := s2.Stats()
	if stats.SnapshotSeq != 1 || stats.SnapshotEvents != 3 || stats.TailRecords != 2 {
		t.Fatalf("stats = %+v, want snapshot 1 covering 3 events plus 2 tail records", stats)
	}
	if f2.adds != 5 {
		t.Fatalf("recovered adds = %d, want 5", f2.adds)
	}
	// The covered segment must be gone.
	for _, name := range listFiles(t, dir) {
		if name == wal.SegmentName(1) {
			t.Fatalf("segment 1 still present after checkpoint: %v", listFiles(t, dir))
		}
	}
}

// TestRecoverTornRecordAtSegmentBoundary tears the final record of the tail
// segment right after a checkpoint's rotation: recovery must keep the
// snapshot plus the clean prefix of the tail and drop only the torn bytes.
func TestRecoverTornRecordAtSegmentBoundary(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a", "b")
	doCheckpoint(t, s, f)
	appendN(t, s, f, "cc", "dd")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record of the newest segment — the first record past the
	// segment boundary stays intact, the second is cut mid-key.
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	tail := segs[len(segs)-1]
	if err := os.Truncate(tail.Path, tail.Size-2); err != nil {
		t.Fatal(err)
	}

	s2, f2, tailRecords := reopen(t, dir)
	defer s2.Close()
	wantCounts(t, f2, map[string]int64{"a": 1, "b": 1, "cc": 1})
	if tailRecords != 1 {
		t.Fatalf("tail replay = %d, want 1 (dd was torn)", tailRecords)
	}
}

// TestRecoverPartialSnapshotTemp simulates a crash while the snapshot file
// was still being written: the .tmp must be ignored (recovery picks the
// previous snapshot) and cleaned up.
func TestRecoverPartialSnapshotTemp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a")
	doCheckpoint(t, s, f)
	appendN(t, s, f, "b")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A half-written snapshot 2 that never got renamed.
	tmp := filepath.Join(dir, "snap-0000000000000002.sks.tmp")
	if err := os.WriteFile(tmp, []byte("SKS1\x01\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, f2, tail := reopen(t, dir)
	defer s2.Close()
	wantCounts(t, f2, map[string]int64{"a": 1, "b": 1})
	if s2.Seq() != 1 {
		t.Fatalf("recovered snapshot seq = %d, want 1", s2.Seq())
	}
	if tail != 1 {
		t.Fatalf("tail replay = %d, want 1", tail)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp snapshot not cleaned up: %v", err)
	}
}

// TestRecoverInterruptedBetweenRenameAndDeletion simulates a checkpoint that
// crashed after publishing the snapshot but before deleting the segments it
// covers: recovery must use the snapshot, replay only the newer tail (the
// stale segments' events are already inside the snapshot and must not be
// double-counted), and delete the stale files.
func TestRecoverInterruptedBetweenRenameAndDeletion(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a", "b", "a")

	// Copy the covered segment aside before the checkpoint deletes it...
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg1 := segs[0]
	data, err := os.ReadFile(seg1.Path)
	if err != nil {
		t.Fatal(err)
	}
	doCheckpoint(t, s, f)
	appendN(t, s, f, "c")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and put it back, as if the deletion never ran.
	if err := os.WriteFile(seg1.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, f2, tail := reopen(t, dir)
	defer s2.Close()
	wantCounts(t, f2, map[string]int64{"a": 2, "b": 1, "c": 1})
	if tail != 1 {
		t.Fatalf("tail replay = %d, want 1 — the resurrected covered segment must not replay", tail)
	}
	if _, err := os.Stat(seg1.Path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale covered segment not cleaned up")
	}
}

// TestRecoverCorruptNewestSnapshotFallsBack damages the newest snapshot
// after it was renamed into place but before its checkpoint deleted any
// segments: recovery must reject it on the checksum and fall back to the
// previous snapshot plus the full tail.
func TestRecoverCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a")
	doCheckpoint(t, s, f)
	appendN(t, s, f, "b")

	// Second checkpoint: keep everything it would delete (the covered
	// segments and the superseded snapshot 1), then corrupt its own snapshot
	// — the combined "crashed after rename, damaged file" case.
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	saved := make(map[string][]byte)
	for _, sg := range segs {
		data, err := os.ReadFile(sg.Path)
		if err != nil {
			t.Fatal(err)
		}
		saved[sg.Path] = data
	}
	snap1 := filepath.Join(dir, "snap-0000000000000001.sks")
	snap1Data, err := os.ReadFile(snap1)
	if err != nil {
		t.Fatal(err)
	}
	saved[snap1] = snap1Data
	doCheckpoint(t, s, f)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for path, data := range saved {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snap2 := filepath.Join(dir, "snap-0000000000000002.sks")
	data, err := os.ReadFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snap2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, f2, tail := reopen(t, dir)
	defer s2.Close()
	wantCounts(t, f2, map[string]int64{"a": 1, "b": 1})
	if s2.Seq() != 1 {
		t.Fatalf("recovered snapshot seq = %d, want fallback to 1", s2.Seq())
	}
	if tail != 1 {
		t.Fatalf("tail replay = %d, want 1 (the b record)", tail)
	}
	// The corrupt snapshot must be pruned so it cannot shadow future ones.
	for _, name := range listFiles(t, dir) {
		if strings.Contains(name, "0000000000000002.sks") {
			t.Fatalf("corrupt snapshot still present: %v", listFiles(t, dir))
		}
	}
}

// TestRecoverFreshAndEmpty: an empty directory and a directory with only an
// empty log must both come up cleanly.
func TestRecoverFreshAndEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, f, tail := reopen(t, dir)
	if tail != 0 || len(f.counts) != 0 {
		t.Fatalf("fresh dir replayed %d records", tail)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, tail2 := reopen(t, dir)
	defer s2.Close()
	if tail2 != 0 {
		t.Fatalf("empty log replayed %d records", tail2)
	}
}

// TestCheckpointKeepsDenseProfile round-trips a dense snapshot through the
// store, exercising the SPF1-embedded payload kind.
func TestCheckpointKeepsDenseProfile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReplayTail(func(wal.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p := core.MustNew(8)
	for i := 0; i < 5; i++ {
		if err := p.Add(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(func() (*checkpoint.State, uint64, error) {
		sealed, err := s.Rotate()
		if err != nil {
			return nil, 0, err
		}
		return &checkpoint.State{Dense: p.Clone()}, sealed, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.TakeState()
	if st == nil || st.Keyed {
		t.Fatalf("state = %+v, want dense snapshot", st)
	}
	if got, _ := st.Dense.Count(0); got != 2 {
		t.Fatalf("restored Count(0) = %d, want 2", got)
	}
	adds, removes := st.Dense.Events()
	if adds != 5 || removes != 0 {
		t.Fatalf("restored events = %d/%d, want 5/0", adds, removes)
	}
	if _, err := s2.ReplayTail(func(wal.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRefusesWhenOnlySnapshotDamaged: once a checkpoint has deleted
// the segments it covers, damaging its snapshot must make recovery fail
// loudly — the surviving segments' headers record that they depend on it, so
// silently replaying only the tail (and losing everything the snapshot held)
// would be data loss masquerading as success.
func TestRecoverRefusesWhenOnlySnapshotDamaged(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, f, _ := reopen(t, dir)
	appendN(t, s, f, "a", "b")
	doCheckpoint(t, s, f)
	appendN(t, s, f, "c")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap1 := filepath.Join(dir, "snap-0000000000000001.sks")
	data, err := os.ReadFile(snap1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snap1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Open(dir, checkpoint.Options{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open with damaged sole snapshot = %v, want ErrCorrupt", err)
	}
	// The damaged snapshot must still be on disk for forensics.
	if _, err := os.Stat(snap1); err != nil {
		t.Fatalf("damaged snapshot was deleted: %v", err)
	}
}
